#!/usr/bin/env python
"""Quickstart: train A3C on the Catch environment in under a minute.

Demonstrates the core public API:

* build an environment factory and a policy/value network factory;
* configure A3C (paper defaults: t_max = 5, shared RMSProp, entropy
  regularisation, linear learning-rate annealing);
* train with the asynchronous multi-agent trainer;
* read the training curve from the score tracker.

Run:  python examples/quickstart.py
"""

from repro.core import A3CConfig, A3CTrainer
from repro.envs import Catch
from repro.harness import format_curve
from repro.nn.network import MLPPolicyNetwork


def main():
    config = A3CConfig(
        num_agents=4,           # parallel actor-learners
        t_max=5,                # rollout length (paper Section 2.2)
        learning_rate=1e-2,     # small net, small env: larger rate
        anneal_steps=10 ** 9,   # effectively constant for this demo
        entropy_beta=0.02,
        max_steps=80_000,
        seed=1,
    )

    trainer = A3CTrainer(
        env_factory=lambda agent_id: Catch(size=7),
        network_factory=lambda: MLPPolicyNetwork(
            num_actions=3, input_shape=(7, 7), hidden=64),
        config=config,
    )

    print(f"Training A3C on Catch: {config.num_agents} agents, "
          f"t_max={config.t_max}, {config.max_steps} steps...")
    result = trainer.train(
        threads=False,
        progress=lambda step, tracker: print(
            f"  step {step:>6}: mean score (last 500) = "
            f"{tracker.recent_mean(500):+.3f}"),
        progress_interval=20_000,
    )

    steps, scores = result.tracker.curve()
    print()
    print(format_curve(steps, scores, "catch (moving average)"))
    print(f"\nDone: {result.global_steps} steps, {result.episodes} "
          f"episodes, {result.steps_per_second:.0f} steps/s.")
    final = result.tracker.recent_mean(500)
    print(f"Final mean score: {final:+.3f}  (optimal = +1.0, "
          f"random play = -0.7)")


if __name__ == "__main__":
    main()
