#!/usr/bin/env python
"""PAAC on the batched environment engine — the post-GA3C rollout shape.

PAAC (Clemente et al., 2017) steps all agents in lockstep and trains on
one synchronous batch; the environment half of that loop is exactly what
`repro.ale.vec` accelerates.  This example builds a
`BatchedVectorEnv` — B copies of Breakout living in structure-of-arrays
NumPy state behind the full DeepMind preprocessing stack — and hands it
to `PAACTrainer` via `vector_env=`, replacing the N scalar wrapper
chains of `SyncVectorEnv` with one vectorized `step(actions)` per
frame-skip cycle.  The training dynamics are bit-identical to the scalar
path (tests/test_envs_batched.py); only the wall clock changes.

Run:  python examples/paac_batched.py [steps]
(default 4,000 steps — a CI-sized smoke; scale up as your budget
allows.)
"""

import sys

from repro.ale import make_game
from repro.core import A3CConfig
from repro.core.paac import PAACTrainer
from repro.envs import BatchedVectorEnv, make_atari_env
from repro.nn.network import A3CNetwork


def main(max_steps: int = 4_000):
    game_name = "breakout"
    num_actions = make_game(game_name).action_space.n

    config = A3CConfig(
        num_agents=8,                   # = batch width B
        t_max=5,
        learning_rate=7e-4,
        anneal_steps=100_000_000,
        max_steps=max_steps,
        seed=1,
    )

    # One SoA engine stepping all 8 slots per call.  Seeding with
    # config.seed applies the same per-slot derivation SyncVectorEnv
    # uses, so this run is bit-identical to the scalar vector env.
    batched = BatchedVectorEnv(game_name, num_envs=config.num_agents,
                               seed=config.seed, max_episode_steps=1500)

    def env_factory(agent_id):              # unused with vector_env=
        return make_atari_env(make_game(game_name),
                              max_episode_steps=1500)

    trainer = PAACTrainer(env_factory,
                          lambda: A3CNetwork(num_actions), config,
                          vector_env=batched)

    print(f"Training PAAC on batched {game_name}: "
          f"B={config.num_agents} slots in one SoA engine, "
          f"{max_steps} steps...")
    result = trainer.train()
    print(f"{result.global_steps} steps in {result.wall_seconds:.1f}s "
          f"({result.steps_per_second:.0f} steps/s), "
          f"{result.episodes} episodes, "
          f"{result.routines} update rounds.")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 4_000)
