#!/usr/bin/env python
"""Watch the six simulated Atari games in the terminal.

Plays a short burst of each game with random actions and renders
ASCII snapshots — a visual sanity check that the pixel environments the
paper's pipeline consumes are real games, not noise generators.

Run:  python examples/watch_games.py [game]
"""

import sys

import numpy as np

from repro.ale import GAME_NAMES, make_game
from repro.ale.render import screen_to_ascii, side_by_side


def snapshot(name: str, frames: int) -> str:
    game = make_game(name)
    game.seed(7)
    game.reset()
    rng = np.random.default_rng(0)
    for _ in range(frames):
        _, _, done, _ = game.step(game.action_space.sample(rng))
        if done:
            game.reset()
    return screen_to_ascii(game.screen.copy(), width=52, height=24)


def main(names):
    for name in names:
        early = snapshot(name, frames=30)
        later = snapshot(name, frames=400)
        print(f"\n=== {name}  (frame ~30 | frame ~400) ===")
        print(side_by_side(early, later))


if __name__ == "__main__":
    main(sys.argv[1:] or GAME_NAMES)
