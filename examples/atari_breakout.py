#!/usr/bin/env python
"""Train A3C on simulated Atari Breakout — the paper's full pipeline.

This is the exact workload of the paper's evaluation at reduced scale:
210x160 RGB frames from the simulated Arcade Learning Environment,
DeepMind preprocessing (frame-skip + max, grayscale, 84x84 resize,
4-frame stack, reward clipping, episodic life), the Table 1 DNN, 16-style
asynchronous agents with shared RMSProp, learning rate 7e-4 annealed
linearly.

Run:  python examples/atari_breakout.py [steps]
(default 20,000 steps; the paper trains for 100M — scale as your budget
allows.  Expect a clearly rising score within the first ~25k steps.)
"""

import sys

from repro.ale import make_game
from repro.core import A3CConfig, A3CTrainer
from repro.envs import make_atari_env
from repro.harness import format_curve
from repro.nn.network import A3CNetwork


def main(max_steps: int = 20_000):
    game_name = "breakout"
    num_actions = make_game(game_name).action_space.n

    def env_factory(agent_id):
        return make_atari_env(make_game(game_name),
                              max_episode_steps=1500)

    config = A3CConfig(
        num_agents=4,
        t_max=5,
        learning_rate=7e-4,             # the paper's setting
        anneal_steps=100_000_000,       # annealed over 100M steps
        max_steps=max_steps,
        seed=1,
    )
    trainer = A3CTrainer(env_factory,
                         lambda: A3CNetwork(num_actions), config)

    print(f"Training A3C on simulated {game_name}: "
          f"{config.num_agents} agents, {max_steps} steps "
          f"(lr 7e-4, t_max 5, shared RMSProp)...")
    result = trainer.train(
        threads=True,
        progress=lambda step, tracker: print(
            f"  step {step:>7}: episodes={len(tracker)} "
            f"mean score={tracker.recent_mean(50):.1f}"),
        progress_interval=5_000,
    )

    steps, scores = result.tracker.curve()
    print()
    print(format_curve(steps, scores, game_name))
    print(f"\n{result.global_steps} steps in {result.wall_seconds:.0f}s "
          f"({result.steps_per_second:.0f} steps/s), "
          f"{result.episodes} full games.")
    print(f"Mean score over the last 50 games: "
          f"{result.tracker.recent_mean(50):.1f}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 20_000)
