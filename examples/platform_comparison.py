#!/usr/bin/env python
"""Compare FA3C against the GPU/CPU baselines (Figures 8 and 9).

Runs the discrete-event throughput simulation for all five platforms over
a sweep of agent counts, then applies the dummy-platform power methodology
— reproducing the paper's headline numbers: FA3C > 2,550 IPS at n = 16,
~27.9 % over A3C-cuDNN, ~18 W, ~1.6x the energy efficiency.

Run:  python examples/platform_comparison.py
"""

from repro.fpga.platform import FA3CPlatform
from repro.gpu.platform import (
    A3CTFCPUPlatform,
    A3CTFGPUPlatform,
    A3CcuDNNPlatform,
    GA3CTFPlatform,
)
from repro.harness import format_series, format_table
from repro.nn.network import A3CNetwork
from repro.platforms import measure_ips, sweep_agents
from repro.power import PowerModel

AGENTS = (1, 2, 4, 8, 16, 32)


def main():
    topology = A3CNetwork(num_actions=6).topology()
    platforms = [
        FA3CPlatform.fa3c(topology),
        A3CcuDNNPlatform(topology),
        GA3CTFPlatform(topology),
        A3CTFGPUPlatform(topology),
        A3CTFCPUPlatform(topology),
    ]

    print("Simulating the multi-agent throughput experiment "
          "(Figure 8)...\n")
    series = {}
    for platform in platforms:
        results = sweep_agents(platform, AGENTS, routines_per_agent=30)
        series[results[0].platform] = [round(r.ips) for r in results]
    print(format_series(AGENTS, series,
                        title="IPS vs number of agents"))

    fa3c_best = max(series["FA3C"])
    cudnn_best = max(series["A3C-cuDNN"])
    print(f"\nFA3C best IPS: {fa3c_best}  (paper: > 2,550)")
    print(f"FA3C vs A3C-cuDNN: +{(fa3c_best / cudnn_best - 1) * 100:.1f}%"
          f"  (paper: +27.9%)")

    print("\nApplying the dummy-platform power methodology "
          "(Figure 9)...\n")
    results16 = [measure_ips(p, 16, routines_per_agent=25)
                 for p in platforms]
    rows = PowerModel().figure9(results16)
    print(format_table(
        rows, columns=["platform", "watts", "ips_per_watt",
                       "relative_power", "relative_efficiency"],
        title="Power and energy efficiency at n = 16 "
              "(normalised to A3C-cuDNN)"))
    fa3c_row = [r for r in rows if r["platform"] == "FA3C"][0]
    print(f"\nFA3C: {fa3c_row['watts']:.1f} W "
          f"({fa3c_row['relative_power'] * 100:.0f}% of cuDNN; "
          f"paper: 18 W, 70%), "
          f"{fa3c_row['ips_per_watt']:.0f} IPS/W "
          f"({fa3c_row['relative_efficiency']:.2f}x; paper: >142, "
          f"1.62x)")


if __name__ == "__main__":
    main()
