#!/usr/bin/env python
"""Drive the simulated FA3C hardware directly.

Shows the microarchitectural machinery of paper Section 4 working on real
data:

* parameters serialised into 16x16-word DRAM patch images (single copy);
* the same image loaded in the FW layout (untransposed) and in the BW
  layout through the register-level transpose load unit;
* a full A3C training step executed by the compute units and the
  RMSProp module, bit-equivalent to the software implementation;
* DRAM traffic and PE-cycle accounting.

Run:  python examples/fpga_backend_demo.py
"""

import numpy as np

from repro.fpga.functional import FPGANetworkBackend
from repro.fpga.layouts import dram_image_from_fw, fw_layout
from repro.fpga.tlu import TransposeLoadUnit
from repro.nn.losses import a3c_loss_and_head_gradients
from repro.nn.network import A3CNetwork
from repro.nn.optim import RMSProp


def demo_tlu():
    print("1. Transpose Load Unit (Section 4.4.3)")
    tlu = TransposeLoadUnit()
    patch = np.arange(256, dtype=np.float32)
    tlu.stage(patch)
    transposed = tlu.transpose_next()
    ok = np.array_equal(transposed, patch.reshape(16, 16).T)
    print(f"   16x16 patch transposed via register shifts in "
          f"{tlu.transpose_cycles()} cycles: "
          f"{'matches numpy transpose' if ok else 'MISMATCH'}")


def demo_single_copy():
    print("\n2. Single parameter copy in DRAM (Section 4.4)")
    rng = np.random.default_rng(0)
    weight = rng.standard_normal((16, 4, 8, 8)).astype(np.float32)
    fw = fw_layout(weight)
    image = dram_image_from_fw(fw)
    print(f"   Conv1 weights -> FW matrix {fw.shape} -> DRAM image of "
          f"{image.size} words ({image.size // 256} patches)")
    print("   FW load: patches streamed in storage order")
    print("   BW load: patch grid walked transposed + TLU per-patch "
          "transpose  ==>  full matrix transpose, no second copy")


def demo_training_equivalence():
    print("\n3. Hardware/software training equivalence (Section 5.6)")
    rng = np.random.default_rng(7)
    network = A3CNetwork(num_actions=6)
    params = network.init_params(rng)
    backend = FPGANetworkBackend(network, params=params.copy())
    sw_params = params.copy()
    optimizer = RMSProp(learning_rate=7e-4)
    optimizer.attach(sw_params)

    for step in range(3):
        states = rng.standard_normal((5, 4, 84, 84)).astype(np.float32)
        actions = rng.integers(0, 6, 5)
        returns = rng.standard_normal(5).astype(np.float32)

        # Software path.
        logits, values = network.forward(states, sw_params)
        loss = a3c_loss_and_head_gradients(logits, values, actions,
                                           returns)
        grads = network.backward_and_grads(loss.dlogits, loss.dvalues,
                                           sw_params)
        optimizer.step(sw_params, grads)

        # Hardware path: CUs + layouts + RMSProp module.
        hw_loss = backend.train_step(states, actions, returns,
                                     learning_rate=7e-4)
        print(f"   step {step}: loss (hardware path) = {hw_loss:9.4f}")

    hw_params = backend.parameters()
    worst = max(float(np.abs(hw_params[name] - sw_params[name]).max())
                for name in sw_params)
    print(f"   max |theta_hw - theta_sw| after 3 steps: {worst:.2e}")

    traffic = backend.dram.total_traffic()
    print(f"\n4. Accounting")
    print(f"   DRAM traffic: {traffic.loaded_bytes / 1e6:.1f} MB loaded, "
          f"{traffic.stored_bytes / 1e6:.1f} MB stored")
    print(f"   training-CU PE cycles: "
          f"{backend.training_cu.pes.total_cycles:,} "
          f"(utilisation {backend.training_cu.pes.utilisation():.2f})")
    print(f"   RMSProp module updates: {backend.rmsprop.updates} "
          f"({backend.rmsprop.total_cycles:,} cycles)")


if __name__ == "__main__":
    demo_tlu()
    demo_single_copy()
    demo_training_equivalence()
