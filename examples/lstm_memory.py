#!/usr/bin/env python
"""The A3C-LSTM variant on a memory task.

The original A3C publication also evaluates a recurrent agent (256 LSTM
cells after the last hidden layer); FA3C's generic-PE argument covers it
as just another accumulation frequency.  This example shows *why* the
variant exists: on a task where the deciding observation carries no
information (a cue must be remembered for a few steps), the feed-forward
agent is stuck at chance while the LSTM agent solves it.

Run:  python examples/lstm_memory.py
"""

from repro.core import A3CConfig, A3CTrainer, RecurrentA3CAgent
from repro.envs import MemoryCue
from repro.nn import mlp_lstm_network
from repro.nn.network import MLPPolicyNetwork


def train(label, network_factory, agent_class=None):
    config = A3CConfig(num_agents=4, t_max=5, max_steps=50_000,
                       learning_rate=1e-2, anneal_steps=10 ** 9,
                       entropy_beta=0.02, seed=1)
    kwargs = {} if agent_class is None else {"agent_class": agent_class}
    trainer = A3CTrainer(lambda i: MemoryCue(delay=3), network_factory,
                         config, **kwargs)
    result = trainer.train(threads=False)
    score = result.tracker.recent_mean(500)
    print(f"  {label:22s} final mean score: {score:+.3f}")
    return score


def main():
    print("MemoryCue (recall a 2-way cue after a 3-step delay; "
          "+1 correct / -1 wrong):\n")
    lstm = train(
        "A3C-LSTM",
        lambda: mlp_lstm_network(2, (3,), hidden=16, lstm_hidden=16),
        agent_class=RecurrentA3CAgent)
    feedforward = train(
        "A3C (feed-forward)",
        lambda: MLPPolicyNetwork(2, (3,), hidden=16))
    print(f"\nThe recurrent agent remembers the cue "
          f"({lstm:+.2f} vs {feedforward:+.2f} at chance).")


if __name__ == "__main__":
    main()
