#!/usr/bin/env python
"""Make the Figure 10 dual-CU overlap claim *visible* in a timeline.

Runs the same multi-agent workload on two FA3C configurations:

* **FA3C** — per CU pair, one CU dedicated to inference and one to
  training (Section 4.2.2), so the two task types overlap; and
* **FA3C-SingleCU** — one 2N-PE CU per pair serving both task types, so
  inference queues behind training.

Each run is captured with :mod:`repro.obs` and exported as a Chrome
trace-event file.  Open the JSON files in ``chrome://tracing`` or
https://ui.perfetto.dev: in the dual-CU trace the ``icu0`` and ``tcu0``
lanes are busy *simultaneously*, while the single-CU trace serialises
everything onto one ``cu0`` lane — the overlap is the throughput gap.

Run:  python examples/trace_dual_cu.py [out_dir]
"""

import sys

from repro import obs
from repro.fpga.platform import FA3CPlatform
from repro.nn.network import A3CNetwork
from repro.platforms import measure_ips

AGENTS = 8
ROUTINES = 12


def capture(platform, path):
    """One observed run -> (ips, busy-lane summary, trace file)."""
    obs.enable(reset=True)
    result = measure_ips(platform, AGENTS, routines_per_agent=ROUTINES)
    spans = obs.write_chrome_trace(path, obs.tracer(),
                                   meta={"platform": result.platform,
                                         "agents": AGENTS})
    gantt = obs.tracer().to_sim_tracer()
    obs.disable()
    return result, gantt, spans


def main(out_dir="."):
    topology = A3CNetwork(num_actions=6).topology()
    configs = [
        (FA3CPlatform.fa3c(topology, cu_pairs=1), "trace_dual_cu.json"),
        (FA3CPlatform.single_cu(topology, cu_pairs=1),
         "trace_single_cu.json"),
    ]
    results = []
    for platform, name in configs:
        path = f"{out_dir}/{name}"
        result, gantt, spans = capture(platform, path)
        results.append(result)
        print(f"{result.platform}: {result.ips:,.0f} IPS with "
              f"{AGENTS} agents -> {path} ({spans} spans)")
        # A window from the middle of the run: past pipeline fill.
        lo, hi = gantt.window()
        mid = lo + (hi - lo) * 0.4
        print(gantt.gantt(width=68, start=mid,
                          end=mid + (hi - lo) * 0.2))
        for row in gantt.summary():
            print(f"   {row['lane']:<6} busy {row['utilisation']:6.1%} "
                  f"over {row['spans']} spans")
        print()
    dual, single = results
    print(f"dual-CU speedup over single-CU: "
          f"{dual.ips / single.ips:.2f}x — load both traces in "
          f"Perfetto to see why: the dual-CU icu/tcu lanes overlap.")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else ".")
