#!/usr/bin/env python
"""Explore the FA3C design space (Figure 10 and beyond).

Reproduces the paper's configuration ablation — FW-layout-everywhere
(Alt1), dual DRAM layouts (Alt2), single combined CU — and extends it
with the design-space sweeps DESIGN.md calls out: PE count per CU, number
of CU pairs, and DRAM efficiency.

Run:  python examples/ablation_study.py
"""

from repro.fpga.platform import FA3CPlatform
from repro.harness import format_series, format_table
from repro.nn.network import A3CNetwork
from repro.platforms import measure_ips, sweep_agents

AGENTS = (1, 2, 4, 8, 16)


def figure10(topology):
    print("Figure 10: FA3C configurations (1 CU pair, as the paper's "
          "Stratix V board)\n")
    variants = {
        "FA3C": FA3CPlatform.fa3c(topology, cu_pairs=1),
        "FA3C-Alt1": FA3CPlatform.alt1(topology, cu_pairs=1),
        "FA3C-Alt2": FA3CPlatform.alt2(topology, cu_pairs=1),
        "FA3C-SingleCU": FA3CPlatform.single_cu(topology, cu_pairs=1),
    }
    series = {}
    for name, platform in variants.items():
        results = sweep_agents(platform, AGENTS, routines_per_agent=25)
        series[name] = [r.ips for r in results]
    base = series["FA3C"][-1]
    normalised = {name: [round(v / base, 3) for v in values]
                  for name, values in series.items()}
    print(format_series(AGENTS, normalised,
                        title="relative IPS (FA3C at n=16 = 1.0)"))
    print(f"\nAlt1 at n=16: {normalised['FA3C-Alt1'][-1]:.2f} "
          f"(paper: ~0.67)")
    print(f"SingleCU: wins at n=1 "
          f"({normalised['FA3C-SingleCU'][0]:.2f} vs "
          f"{normalised['FA3C'][0]:.2f}), loses at n=16 "
          f"({normalised['FA3C-SingleCU'][-1]:.2f})")


def design_space(topology):
    print("\n\nDesign-space extension: PEs per CU and CU pairs "
          "(n = 16 agents)\n")
    rows = []
    for n_pe in (32, 64, 128):
        for pairs in (1, 2, 3):
            platform = FA3CPlatform.fa3c(topology, n_pe=n_pe,
                                         cu_pairs=pairs)
            ips = measure_ips(platform, 16, routines_per_agent=15).ips
            fits = platform.resource_model().fits()
            rows.append({"pe_per_cu": n_pe, "cu_pairs": pairs,
                         "ips": round(ips),
                         "fits_vu9p": fits})
    print(format_table(rows))
    print("\nThe paper's build (64 PEs x 2 pairs) sits at the knee: "
          "more PEs help little\n(the FC layers are bandwidth-bound), "
          "a third pair still scales.")


if __name__ == "__main__":
    topology = A3CNetwork(num_actions=6).topology()
    figure10(topology)
    design_space(topology)
