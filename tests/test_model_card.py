"""Tests for the calibration model card, plus the LSTM hardware
topology."""

import pytest

from repro.analysis import model_card, model_card_rows
from repro.nn.network import A3CNetwork
from repro.nn.network_lstm import lstm_a3c_network


@pytest.fixture(scope="module")
def topology():
    return A3CNetwork(num_actions=6).topology()


class TestModelCard:
    def test_every_entry_has_anchor_and_check(self, topology):
        entries = model_card(topology)
        assert len(entries) >= 10
        for entry in entries:
            assert entry.anchor
            assert entry.check

    def test_no_calibration_drift(self, topology):
        """Every live anchor check passes — moving a constant in
        calibration.py without retuning trips this test."""
        for entry in model_card(topology):
            assert "OFF" not in entry.check, \
                f"{entry.name} drifted: {entry.check}"

    def test_rows_are_printable(self, topology):
        from repro.harness import format_table
        text = format_table(model_card_rows(topology))
        assert "gpu.launch_overhead" in text
        assert "fpga.clock_hz" in text


class TestLSTMTopology:
    def test_lstm_appears_as_dense_layer(self):
        topology = lstm_a3c_network(num_actions=6).topology()
        names = [spec.name for spec in topology.layers]
        assert names == ["Conv1", "Conv2", "FC3", "LSTM", "FC4"]
        lstm = topology.layers[3]
        assert lstm.kind == "dense"
        assert lstm.in_channels == 512      # I + H
        assert lstm.out_channels == 1024    # 4H

    def test_parameter_count_matches_cell(self):
        net = lstm_a3c_network(num_actions=6)
        topology = net.topology()
        assert topology.num_params == net.num_params()

    def test_lstm_variant_costs_more_traffic(self):
        feedforward = A3CNetwork(num_actions=6).topology()
        recurrent = lstm_a3c_network(num_actions=6).topology()
        assert recurrent.num_params - feedforward.num_params == 525_312

    def test_lstm_topology_drives_fpga_model(self):
        """The hardware models consume the recurrent topology without
        special-casing — the generic-PE claim."""
        from repro.fpga.platform import FA3CPlatform
        platform = FA3CPlatform.fa3c(
            lstm_a3c_network(num_actions=6).topology())
        assert platform.inference_latency() > \
            FA3CPlatform.fa3c(
                A3CNetwork(num_actions=6).topology()).inference_latency()
