"""Tests for weight initialisers and the GA3C predictor/trainer DES."""

import hypothesis
import hypothesis.strategies as st
import numpy as np
import pytest

from repro.gpu.platform import GA3CTFPlatform
from repro.nn.initializers import he_uniform, torch_dqn_init, zeros
from repro.nn.network import A3CNetwork
from repro.sim import Engine


class TestInitializers:
    @hypothesis.given(st.integers(0, 2 ** 31 - 1))
    @hypothesis.settings(max_examples=15, deadline=None)
    def test_torch_dqn_bounds(self, seed):
        rng = np.random.default_rng(seed)
        weight = torch_dqn_init((16, 4, 8, 8), rng)
        bound = 1.0 / np.sqrt(4 * 64)
        assert weight.dtype == np.float32
        assert np.abs(weight).max() <= bound

    def test_dense_fan_in(self):
        rng = np.random.default_rng(0)
        weight = torch_dqn_init((5, 100), rng)
        assert np.abs(weight).max() <= 1.0 / np.sqrt(100)

    def test_he_uniform_wider_than_dqn(self):
        rng = np.random.default_rng(0)
        he = he_uniform((64, 64), np.random.default_rng(1))
        dqn = torch_dqn_init((64, 64), np.random.default_rng(1))
        assert np.abs(he).max() > np.abs(dqn).max()

    def test_zeros(self):
        np.testing.assert_array_equal(zeros((3, 3)), 0.0)

    def test_unknown_shape_rejected(self):
        with pytest.raises(ValueError):
            torch_dqn_init((2, 2, 2, 2, 2))

    def test_initial_policy_is_near_uniform(self):
        """Fan-in init keeps initial logits small: the starting policy
        is near-uniform, as A3C's entropy-driven exploration expects."""
        net = A3CNetwork(num_actions=6)
        params = net.init_params(np.random.default_rng(0))
        x = np.random.default_rng(1).random(
            (8, 4, 84, 84)).astype(np.float32)
        logits, _ = net.forward(x, params)
        from repro.nn.losses import entropy, softmax
        mean_entropy = float(entropy(softmax(logits)).mean())
        assert mean_entropy > 0.95 * np.log(6)


class TestGA3CSim:
    @pytest.fixture
    def sim(self):
        topology = A3CNetwork(6).topology()
        platform = GA3CTFPlatform(topology, max_prediction_batch=8)
        engine = Engine()
        return platform, engine, platform.build_sim(engine)

    def test_predictor_batches_waiting_requests(self, sim):
        """Requests queued while the predictor is busy are served
        together in one batched kernel."""
        platform, engine, ga3c = sim
        done_times = []

        def agent(i):
            yield from ga3c.inference(i)
            done_times.append(engine.now)

        for i in range(6):
            engine.process(agent(i))
        engine.run()
        # First request forms a batch of 1; the other five coalesce.
        assert len(set(np.round(done_times, 9))) <= 2
        assert len(done_times) == 6

    def test_training_does_not_block_agent(self, sim):
        platform, engine, ga3c = sim
        finished = []

        def agent():
            yield from ga3c.train(0, 5)
            finished.append(engine.now)

        engine.process(agent())
        engine.run()
        # Agent returns immediately; device work continues afterwards.
        assert finished[0] == pytest.approx(0.0)
        assert engine.now > 0.0

    def test_sync_is_noop(self, sim):
        platform, engine, ga3c = sim

        def agent():
            yield from ga3c.sync(0)

        engine.process(agent())
        engine.run()
        # No device time consumed: GA3C has no per-agent model to sync.
        assert ga3c.device.utilisation() == 0.0

    def test_batch_capped_at_max(self, sim):
        platform, engine, ga3c = sim
        served = []

        def agent(i):
            yield from ga3c.inference(i)
            served.append(engine.now)

        for i in range(20):
            engine.process(agent(i))
        engine.run()
        # max_prediction_batch=8 forces at least ceil(20/8)=3 batches
        # (the first is a singleton, so at least 4 service instants).
        assert len(set(np.round(served, 9))) >= 3
