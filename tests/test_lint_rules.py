"""Rule-level tests driven by the fixture corpus.

Every file in ``tests/data/lint_corpus/`` declares its synthetic
repository path on line 1 (``# LINT-PATH: ...``) and marks each line
where a finding is expected with a trailing ``# EXPECT: rule`` comment.
A second-line ``# LINT-OPTIONS: {json}`` header feeds per-rule options
(the layering cases declare their own layer map this way).  The runner
asserts the linter produces *exactly* the expected ``(line, rule)``
set — unexpected findings fail as loudly as missed ones, so every rule
keeps at least one true positive and one true negative under test.
"""

import json
import pathlib
import re

import pytest

from repro.lint import LintConfig, lint_source

CORPUS_DIR = pathlib.Path(__file__).parent / "data" / "lint_corpus"
CORPUS = sorted(CORPUS_DIR.glob("*.py"))

_LINT_PATH = re.compile(r"#\s*LINT-PATH:\s*(\S+)")
_LINT_OPTIONS = re.compile(r"#\s*LINT-OPTIONS:\s*(\{.*\})")
_EXPECT = re.compile(r"#\s*EXPECT:\s*([\w-]+(?:\s*,\s*[\w-]+)*)")


def load_case(path):
    source = path.read_text(encoding="utf-8")
    lines = source.splitlines()
    header = _LINT_PATH.match(lines[0])
    assert header, f"{path.name} must start with a # LINT-PATH: header"
    options = {}
    if len(lines) > 1:
        options_header = _LINT_OPTIONS.match(lines[1])
        if options_header:
            options = json.loads(options_header.group(1))
    expected = set()
    for lineno, line in enumerate(lines, start=1):
        match = _EXPECT.search(line)
        if match:
            for rule in re.split(r"\s*,\s*", match.group(1)):
                expected.add((lineno, rule))
    return source, header.group(1), options, expected


def test_corpus_is_present_and_balanced():
    """Each rule has at least one expected-positive and one clean file."""
    assert CORPUS, "lint corpus is empty"
    positives = set()
    negatives_exist = False
    for path in CORPUS:
        _, _, _, expected = load_case(path)
        if expected:
            positives |= {rule for _, rule in expected}
        else:
            negatives_exist = True
    assert positives == {"attribution", "determinism", "fp32-order",
                         "hot-path", "hot-path-transitive", "layering",
                         "seed-flow", "seqlock"}
    assert negatives_exist


@pytest.mark.parametrize("path", CORPUS, ids=lambda p: p.stem)
def test_corpus_file(path):
    source, relpath, options, expected = load_case(path)
    result = lint_source(source, relpath,
                         LintConfig(rule_options=options))
    assert result.error is None, result.error
    actual = {(f.line, f.rule) for f in result.findings}
    missed = expected - actual
    unexpected = actual - expected
    detail = "\n".join(f.location() + " " + f.message
                       for f in result.findings)
    assert not missed and not unexpected, (
        f"{path.name}: missed={sorted(missed)} "
        f"unexpected={sorted(unexpected)}\nfindings:\n{detail}")


def test_seeded_violation_file_fires():
    """The CI self-check file must produce findings path-independently."""
    seeded = CORPUS_DIR.parent / "lint_seeded_violation.py"
    result = lint_source(seeded.read_text(encoding="utf-8"),
                         "anywhere/at/all.py", LintConfig())
    rules = {f.rule for f in result.findings}
    assert "determinism" in rules
    assert "hot-path" in rules


def test_hot_function_via_config_listing():
    """Functions named in config options are hot without the decorator."""
    source = (
        "import time\n"
        "\n"
        "\n"
        "class Engine:\n"
        "    def step(self):\n"
        "        return time.perf_counter()\n"
    )
    config = LintConfig(rule_options={
        "hot-path": {"functions": ["repro.sim.engine.Engine.step"]}})
    result = lint_source(source, "src/repro/sim/engine.py", config,
                         select=["hot-path"])
    assert [f.rule for f in result.findings] == ["hot-path"]
    # The same source under a different module path is not hot.
    other = lint_source(source, "src/repro/core/other.py", config,
                        select=["hot-path"])
    assert not other.findings


def test_rule_options_override_module_scope():
    """Config module lists replace the rule defaults."""
    source = "import numpy as np\n\n\ndef f(a, b):\n    return np.dot(a, b)\n"
    widened = LintConfig(rule_options={
        "fp32-order": {"modules": ["repro/custom"]}})
    hit = lint_source(source, "src/repro/custom/kernels.py", widened,
                      select=["fp32-order"])
    assert len(hit.findings) == 1
    # The default scope no longer applies once overridden.
    miss = lint_source(source, "src/repro/nn/ops.py", widened,
                       select=["fp32-order"])
    assert not miss.findings
