"""Tests for the compute unit's functional FW/BW/GC and the DRAM model."""

import numpy as np
import pytest

from repro.fpga.cu import ComputeUnit
from repro.fpga.dram import DRAMChannel, DRAMModel, WORDS_PER_BEAT
from repro.fpga.layouts import (
    dram_image_from_fw,
    fw_layout,
    fw_layout_to_weight,
    load_fw_from_dram,
)
from repro.nn import functional as F
from repro.nn.network import LayerSpec

CONV_SPEC = LayerSpec(name="Conv1", kind="conv", in_channels=4,
                      out_channels=16, kernel=8, stride=4,
                      in_height=84, in_width=84,
                      out_height=20, out_width=20)
DENSE_SPEC = LayerSpec(name="FC", kind="dense", in_channels=40,
                       out_channels=24, kernel=1, stride=1,
                       in_height=1, in_width=1, out_height=1, out_width=1)


@pytest.fixture
def conv_data():
    rng = np.random.default_rng(0)
    w = rng.standard_normal((16, 4, 8, 8)).astype(np.float32)
    b = rng.standard_normal(16).astype(np.float32)
    x = rng.standard_normal((2, 4, 84, 84)).astype(np.float32)
    dy = rng.standard_normal((2, 16, 20, 20)).astype(np.float32)
    return w, b, x, dy


class TestComputeUnitConv:
    def test_fw_matches_software(self, conv_data):
        w, b, x, _ = conv_data
        cu = ComputeUnit("cu")
        image = dram_image_from_fw(fw_layout(w))
        y = cu.run_fw(CONV_SPEC, x, image, b)
        expected, _ = F.conv_forward(x, w, b, 4)
        np.testing.assert_allclose(y, expected, rtol=1e-5, atol=1e-5)

    def test_fw_with_relu(self, conv_data):
        w, b, x, _ = conv_data
        cu = ComputeUnit("cu")
        image = dram_image_from_fw(fw_layout(w))
        y = cu.run_fw(CONV_SPEC, x, image, b, apply_relu=True)
        assert (y >= 0).all()

    def test_bw_matches_software(self, conv_data):
        w, _, x, dy = conv_data
        cu = ComputeUnit("cu")
        image = dram_image_from_fw(fw_layout(w))
        dx = cu.run_bw(CONV_SPEC, dy, image, x.shape)
        expected = F.conv_backward_input(dy, w, 4, x.shape)
        np.testing.assert_array_equal(dx, expected)

    def test_bw_through_register_level_tlu(self, conv_data):
        """The shift-register TLU path yields the same gradients."""
        w, _, x, dy = conv_data
        fast = ComputeUnit("fast", use_tlu_emulation=False)
        slow = ComputeUnit("slow", use_tlu_emulation=True)
        image = dram_image_from_fw(fw_layout(w))
        np.testing.assert_array_equal(
            fast.run_bw(CONV_SPEC, dy, image, x.shape),
            slow.run_bw(CONV_SPEC, dy, image, x.shape))
        assert slow.tlus[0].patches_transposed > 0
        assert slow.tlus[1].patches_transposed > 0  # double buffering

    def test_gc_matches_software(self, conv_data):
        w, _, x, dy = conv_data
        cu = ComputeUnit("cu")
        grad_image, db = cu.run_gc(CONV_SPEC, x, dy)
        cols, _ = F.im2col(x, 8, 4)
        dw_expected, db_expected = F.conv_grad_params(cols, dy, w.shape)
        fw = fw_layout(w)
        dw = fw_layout_to_weight(
            load_fw_from_dram(grad_image, *fw.shape), w.shape)
        np.testing.assert_array_equal(dw, dw_expected)
        np.testing.assert_array_equal(db, db_expected)

    def test_traffic_accounted_on_channel(self, conv_data):
        w, b, x, _ = conv_data
        cu = ComputeUnit("cu")
        channel = DRAMChannel("local", efficiency=1.0)
        image = dram_image_from_fw(fw_layout(w))
        cu.run_fw(CONV_SPEC, x, image, b, channel=channel)
        assert channel.traffic.loaded_words == image.size


class TestComputeUnitDense:
    def test_fw_bw_gc_match_software(self):
        rng = np.random.default_rng(1)
        w = rng.standard_normal((24, 40)).astype(np.float32)
        b = rng.standard_normal(24).astype(np.float32)
        x = rng.standard_normal((3, 40)).astype(np.float32)
        dy = rng.standard_normal((3, 24)).astype(np.float32)
        cu = ComputeUnit("cu", use_tlu_emulation=True)
        image = dram_image_from_fw(fw_layout(w))
        np.testing.assert_allclose(cu.run_fw(DENSE_SPEC, x, image, b),
                                   x @ w.T + b, rtol=1e-5, atol=1e-5)
        np.testing.assert_allclose(
            cu.run_bw(DENSE_SPEC, dy, image, x.shape), dy @ w,
            rtol=1e-5, atol=1e-5)
        grad_image, db = cu.run_gc(DENSE_SPEC, x, dy)
        fw = fw_layout(w)
        dw = fw_layout_to_weight(
            load_fw_from_dram(grad_image, *fw.shape), w.shape)
        np.testing.assert_allclose(dw, dy.T @ x, rtol=1e-5, atol=1e-5)
        np.testing.assert_allclose(db, dy.sum(axis=0), rtol=1e-5)

    def test_pe_cycles_accumulate(self):
        cu = ComputeUnit("cu")
        rng = np.random.default_rng(2)
        w = rng.standard_normal((24, 40)).astype(np.float32)
        image = dram_image_from_fw(fw_layout(w))
        x = rng.standard_normal((1, 40)).astype(np.float32)
        before = cu.pes.total_cycles
        cu.run_fw(DENSE_SPEC, x, image,
                  np.zeros(24, dtype=np.float32))
        assert cu.pes.total_cycles > before
        assert cu.tasks_executed == 1


class TestDRAMChannel:
    def test_transfer_cycles_burst_rounding(self):
        channel = DRAMChannel("c", efficiency=1.0)
        assert channel.transfer_cycles(16) == 1
        assert channel.transfer_cycles(17) == 2

    def test_efficiency_derates_bandwidth(self):
        channel = DRAMChannel("c", efficiency=0.5)
        assert channel.transfer_cycles(16) == 2

    def test_nonsequential_pays_latency(self):
        channel = DRAMChannel("c", efficiency=1.0, latency_cycles=40)
        assert channel.transfer_cycles(16, sequential=False) == 41

    def test_load_store_counters(self):
        channel = DRAMChannel("c")
        channel.load(100)
        channel.store(50)
        assert channel.traffic.loaded_words == 100
        assert channel.traffic.stored_words == 50
        assert channel.traffic.total_bytes == 600
        assert channel.busy_cycles > 0

    def test_efficiency_validation(self):
        with pytest.raises(ValueError):
            DRAMChannel("c", efficiency=0.0)


class TestDRAMModel:
    def test_region_allocation_and_io(self):
        dram = DRAMModel(num_channels=2)
        data = np.arange(32, dtype=np.float32)
        dram.write("theta", data, channel=0)
        out = dram.read("theta", channel=0)
        np.testing.assert_array_equal(out, data)
        assert dram.channels[0].traffic.loaded_words == 32
        assert dram.channels[0].traffic.stored_words == 32

    def test_region_size_conflict(self):
        dram = DRAMModel()
        dram.allocate("r", 16)
        with pytest.raises(ValueError):
            dram.allocate("r", 32)

    def test_total_traffic_aggregates_channels(self):
        dram = DRAMModel(num_channels=2)
        dram.write("a", np.zeros(16, dtype=np.float32), channel=0)
        dram.write("b", np.zeros(16, dtype=np.float32), channel=1)
        assert dram.total_traffic().stored_words == 32

    def test_words_per_beat_is_sixteen(self):
        """512-bit bus / 32-bit words (Section 4.3)."""
        assert WORDS_PER_BEAT == 16
