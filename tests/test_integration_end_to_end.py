"""End-to-end integration: the full paper pipeline at reduced scale.

Simulated Atari game -> DeepMind preprocessing -> Table 1 network ->
multi-agent A3C training, plus the throughput experiment consistency
checks that tie Figures 8-10 together.
"""

import numpy as np
import pytest

from repro.ale import make_game
from repro.core import A3CConfig, A3CTrainer
from repro.envs import make_atari_env
from repro.fpga.platform import FA3CPlatform
from repro.gpu.platform import A3CcuDNNPlatform
from repro.nn.network import A3CNetwork
from repro.platforms import measure_ips


class TestAtariPipeline:
    def test_short_pong_training_runs(self):
        """Two agents, a few hundred steps of real pixel A3C."""
        config = A3CConfig(num_agents=2, t_max=5, max_steps=200,
                           seed=0)

        def env_factory(agent_id):
            return make_atari_env(make_game("pong"),
                                  max_episode_steps=300)

        trainer = A3CTrainer(env_factory, lambda: A3CNetwork(6), config)
        result = trainer.train(threads=False)
        assert result.global_steps >= 200
        assert result.routines >= 40
        # global parameters actually moved
        fresh = A3CNetwork(6).init_params(
            np.random.default_rng(config.seed))
        assert not result.params.allclose(fresh)

    def test_network_matches_game_action_space(self):
        game = make_game("breakout")
        env = make_atari_env(game)
        env.seed(0)
        net = A3CNetwork(num_actions=env.action_space.n)
        params = net.init_params(np.random.default_rng(0))
        obs = env.reset()
        logits, values = net.forward(obs[None].astype(np.float32), params)
        assert logits.shape == (1, env.action_space.n)

    def test_all_six_games_fit_the_fc4_head(self):
        """Every game's minimal action set (+1 value output) fits the
        32-wide padded FC4 of Table 1."""
        from repro.ale import GAME_NAMES
        for name in GAME_NAMES:
            game = make_game(name)
            assert game.action_space.n + 1 <= 32
            A3CNetwork(num_actions=game.action_space.n)


class TestFigureConsistency:
    @pytest.fixture(scope="class")
    def topology(self):
        return A3CNetwork(num_actions=6).topology()

    def test_fa3c_beats_cudnn_at_16_agents(self, topology):
        """The headline Figure 8 result: FA3C > 2,550 IPS at n = 16 and
        ~27.9 % over A3C-cuDNN."""
        fa3c = measure_ips(FA3CPlatform.fa3c(topology), 16,
                           routines_per_agent=25)
        cudnn = measure_ips(A3CcuDNNPlatform(topology), 16,
                            routines_per_agent=25)
        assert fa3c.ips > 2400
        assert fa3c.ips / cudnn.ips == pytest.approx(1.279, abs=0.12)

    def test_single_cu_crossover(self, topology):
        """Figure 10: SingleCU wins below ~4 agents, loses above."""
        fa3c_1 = measure_ips(FA3CPlatform.fa3c(topology), 1,
                             routines_per_agent=15)
        single_1 = measure_ips(FA3CPlatform.single_cu(topology), 1,
                               routines_per_agent=15)
        fa3c_16 = measure_ips(FA3CPlatform.fa3c(topology), 16,
                              routines_per_agent=15)
        single_16 = measure_ips(FA3CPlatform.single_cu(topology), 16,
                                routines_per_agent=15)
        assert single_1.ips > fa3c_1.ips
        assert single_16.ips < fa3c_16.ips

    def test_alt1_single_pair_degradation(self, topology):
        """Figure 10 is measured on one CU pair (Stratix V): Alt1 loses
        roughly a third of the performance at n = 16."""
        fa3c = measure_ips(FA3CPlatform.fa3c(topology, cu_pairs=1), 16,
                           routines_per_agent=15)
        alt1 = measure_ips(FA3CPlatform.alt1(topology, cu_pairs=1), 16,
                           routines_per_agent=15)
        assert alt1.ips / fa3c.ips == pytest.approx(0.67, abs=0.12)

    def test_alt2_slightly_slower(self, topology):
        fa3c = measure_ips(FA3CPlatform.fa3c(topology), 16,
                           routines_per_agent=15)
        alt2 = measure_ips(FA3CPlatform.alt2(topology), 16,
                           routines_per_agent=15)
        assert 0.90 < alt2.ips / fa3c.ips < 1.01
