"""Extra GPU-model coverage: analytic vs DES consistency, calibration
sensitivity, and the TF overhead structure."""

import pytest

from repro.gpu import (
    A3CTFGPUPlatform,
    A3CcuDNNPlatform,
    GPUCalibration,
)
from repro.nn.network import A3CNetwork
from repro.platforms import HostModel, measure_ips


@pytest.fixture(scope="module")
def topology():
    return A3CNetwork(num_actions=6).topology()


class TestAnalyticVsSim:
    def test_single_agent_routine_matches_analytic(self, topology):
        platform = A3CcuDNNPlatform(topology)
        host = HostModel()
        result = measure_ips(platform, 1, routines_per_agent=20,
                             host=host)
        measured = 5.0 / result.ips
        analytic = (platform.sync_seconds()
                    + 6 * platform.inference_seconds()
                    + platform.training_seconds(5)
                    + 5 * host.step_time + host.train_prep_time)
        assert measured == pytest.approx(analytic, rel=0.03)

    def test_saturated_ips_equals_device_service_rate(self, topology):
        platform = A3CcuDNNPlatform(topology)
        result = measure_ips(platform, 32, routines_per_agent=15)
        device_routine = (platform.sync_seconds()
                          + 6 * platform.inference_seconds()
                          + platform.training_seconds(5))
        assert result.ips == pytest.approx(5.0 / device_routine,
                                           rel=0.05)


class TestCalibrationSensitivity:
    def test_launch_overhead_drives_routine_cost(self, topology):
        cheap = A3CcuDNNPlatform(topology, calibration=GPUCalibration(
            launch_overhead=1e-6))
        dear = A3CcuDNNPlatform(topology, calibration=GPUCalibration(
            launch_overhead=30e-6))
        assert dear.inference_seconds() > cheap.inference_seconds() * 1.5

    def test_memory_efficiency_drives_fc_layers(self, topology):
        slow = A3CcuDNNPlatform(topology, calibration=GPUCalibration(
            memory_efficiency=0.2))
        fast = A3CcuDNNPlatform(topology, calibration=GPUCalibration(
            memory_efficiency=0.9))
        assert slow.inference_seconds() > fast.inference_seconds()

    def test_tf_overhead_is_additive_per_task(self, topology):
        cudnn = A3CcuDNNPlatform(topology)
        tf = A3CTFGPUPlatform(topology)
        delta_inference = tf.inference_seconds() \
            - cudnn.inference_seconds()
        # At least the per-run overhead, plus the kernel slowdown.
        assert delta_inference >= tf.cal.tf_run_overhead

    def test_frozen_calibration_defaults(self):
        """The shipped constants are the ones EXPERIMENTS.md documents;
        changing them should be a conscious, test-visible act."""
        cal = GPUCalibration()
        assert cal.launch_overhead == pytest.approx(13e-6)
        assert cal.kernel_efficiency == pytest.approx(0.12)
        assert cal.opencl_slowdown == pytest.approx(1.12)
        assert cal.mismatched_layout_slowdown == pytest.approx(1.56)
        assert cal.tf_run_overhead == pytest.approx(350e-6)
