"""Fused agent chains vs generator processes: bit-exact equivalence.

The fast path (`repro.perf.runtime` enabled, the default) replaces the
throughput experiment's generator agent processes with callback chains
(`repro.gpu.platform._GPUAgentChain` / `_GA3CAgentChain` and the fused
GA3C predictor/trainer).  The contract is that every modelled number —
IPS, simulated seconds, utilisation, inference latencies — is
bit-identical to the generator reference (``REPRO_FASTPATH=0``), not
merely close: the chains must create the same events in the same heap
order.
"""

import pytest

from repro.obs import runtime as _obs
from repro.obs.prof import baseline
from repro.perf import runtime as _fast
from repro.platforms.throughput import measure_ips

FIELDS = ("ips", "sim_seconds", "utilisation", "routines",
          "inference_latencies")

# One scenario per simulator family — plain GPU device, the CPU
# executor pool, GA3C's predictor/trainer queues — plus the batched
# host model (different step_time through the same chain).
SCENARIOS = ("gpu-cudnn-n8", "a3c-tf-cpu-n8", "ga3c-tf-n8",
             "ga3c-tf-batched-n8")


def _measure(name, num_agents):
    scenario = baseline._BY_NAME[name]
    return measure_ips(scenario.build(), num_agents,
                       t_max=scenario.t_max,
                       routines_per_agent=scenario.routines,
                       host=scenario.build_host())


@pytest.mark.parametrize("name", SCENARIOS)
@pytest.mark.parametrize("num_agents", (1, 3, 8))
def test_chain_matches_generator(name, num_agents):
    assert _fast.enabled()
    fast = _measure(name, num_agents)
    with _fast.disabled_scope():
        slow = _measure(name, num_agents)
    for field in FIELDS:
        assert getattr(fast, field) == getattr(slow, field), field


@pytest.mark.parametrize("name", SCENARIOS)
def test_chain_matches_generator_with_telemetry(name):
    """With observability on, the chains record the same task profiles
    (scenario entries include the rounded attribution buckets)."""
    with _obs.enabled_scope(reset=True):
        fast_entry = baseline.run_scenario(name)[0]
    with _fast.disabled_scope():
        with _obs.enabled_scope(reset=True):
            slow_entry = baseline.run_scenario(name)[0]
    assert fast_entry == slow_entry


def test_fpga_sims_keep_generator_path():
    """FPGASim has no agent_chain; both modes run the generator and the
    modelled numbers agree trivially."""
    fast = _measure("fa3c-n8", 4)
    with _fast.disabled_scope():
        slow = _measure("fa3c-n8", 4)
    for field in FIELDS:
        assert getattr(fast, field) == getattr(slow, field), field
