"""Tests for the cycle model, the platform variants, and Table 4."""

import numpy as np
import pytest

from repro.fpga.platform import FA3CPlatform, FPGAConfig
from repro.fpga.resources import STRATIX_V, VU9P, ResourceModel, \
    resource_table
from repro.fpga.timing import GLOBAL, LOCAL, TimingModel
from repro.nn.network import A3CNetwork
from repro.platforms import measure_ips
from repro.sim import Engine


@pytest.fixture(scope="module")
def topology():
    return A3CNetwork(num_actions=6).topology()


class TestTimingModel(object):
    def test_total_param_words_covers_table1(self, topology):
        timing = TimingModel(topology)
        # weights padded to 16x16 patches + burst-aligned biases
        assert timing.total_param_words() >= topology.num_params
        assert timing.total_param_words() < topology.num_params * 1.01

    def test_input_words_match_paper_110kb(self, topology):
        timing = TimingModel(topology)
        assert timing.input_words(1) * 4 == pytest.approx(110.25 * 1024,
                                                          rel=0.01)

    def test_fw_stage_conv1_cycles(self, topology):
        """Conv1 FW: 6400 outputs on 64 PEs, 257 cycles each round."""
        timing = TimingModel(topology, n_pe=64)
        stage = timing.fw_stage(topology.layers[0], batch=1,
                                first_layer=True)
        expected = (6400 // 64) * 257 + timing.STAGE_OVERHEAD_CYCLES
        assert stage.compute_cycles == expected

    def test_fc3_fw_is_memory_dominated(self, topology):
        """FC3 moves ~2.6 MB of parameters for ~1.3 MFLOP: the paper's
        operational-intensity argument in one stage."""
        timing = TimingModel(topology)
        stage = timing.fw_stage(topology.layers[2], batch=1,
                                first_layer=False)
        memory_cycles = stage.words(LOCAL) / 16
        assert memory_cycles > stage.compute_cycles

    def test_inference_task_has_one_stage_per_layer(self, topology):
        timing = TimingModel(topology)
        stages = timing.inference_task()
        assert [s.name for s in stages] == \
            ["FW:Conv1", "FW:Conv2", "FW:FC3", "FW:FC4"]

    def test_training_task_schedule_gc_before_bw(self, topology):
        """GC precedes BW per layer, last to first; no BW for the first
        layer; RMSProp closes the task (Section 4.3)."""
        timing = TimingModel(topology)
        names = [s.name for s in timing.training_task(batch=5)]
        assert names == ["GC:FC4", "BW:FC4", "GC:FC3", "BW:FC3",
                         "GC:Conv2", "BW:Conv2", "GC:Conv1", "RMSProp"]

    def test_gradients_go_to_global_channel(self, topology):
        timing = TimingModel(topology)
        gc = timing.gc_stage(topology.layers[2], 5, first_layer=False)
        assert gc.stores.get(GLOBAL, 0) > 0
        assert gc.stores.get(LOCAL, 0) == 0

    def test_sync_moves_one_parameter_set_each_way(self, topology):
        timing = TimingModel(topology)
        (stage,) = timing.sync_task()
        assert stage.loads[GLOBAL] == timing.total_param_words()
        assert stage.stores[LOCAL] == timing.total_param_words()

    def test_alt1_inflates_bw_fc_cycles(self, topology):
        fa3c = TimingModel(topology, layout_mode="fa3c")
        alt1 = TimingModel(topology, layout_mode="alt1")
        fc3 = topology.layers[2]
        fast = fa3c.bw_stage(fc3, 5, None).compute_cycles
        slow = alt1.bw_stage(fc3, 5, None).compute_cycles
        assert slow > 5 * fast

    def test_alt2_stores_extra_layout_copy(self, topology):
        fa3c = TimingModel(topology, layout_mode="fa3c")
        alt2 = TimingModel(topology, layout_mode="alt2")
        extra = alt2.rmsprop_stage().stores[GLOBAL] \
            - fa3c.rmsprop_stage().stores[GLOBAL]
        assert extra == fa3c.total_param_words()

    def test_unknown_layout_mode_rejected(self, topology):
        with pytest.raises(ValueError):
            TimingModel(topology, layout_mode="alt9")

    def test_rmsprop_compute_scales_with_rus(self, topology):
        four = TimingModel(topology, num_rus=4).rmsprop_stage()
        eight = TimingModel(topology, num_rus=8).rmsprop_stage()
        assert four.compute_cycles > eight.compute_cycles


class TestFA3CPlatform:
    def test_variant_constructors(self, topology):
        assert FA3CPlatform.fa3c(topology).config.name == "FA3C"
        assert FA3CPlatform.single_cu(topology).config.single_cu
        assert FA3CPlatform.alt1(topology).config.layout_mode == "alt1"
        assert FA3CPlatform.alt2(topology).config.layout_mode == "alt2"

    def test_single_cu_doubles_pes(self, topology):
        platform = FA3CPlatform.single_cu(topology)
        assert platform.config.pe_per_cu == 128
        assert platform.config.cus_per_pair == 1

    def test_task_latency_ordering(self, topology):
        """Training (batch 5, GC+BW+RMSProp) takes longer than one
        inference; sync is cheapest."""
        platform = FA3CPlatform.fa3c(topology)
        inference = platform.inference_latency()
        training = platform.training_latency(5)
        sync = platform.sync_latency()
        assert sync < inference < training

    def test_task_overhead_fraction_below_paper_bound(self, topology):
        """FPGA task-start overhead < 0.02 % of task time
        (Section 3.4)."""
        platform = FA3CPlatform.fa3c(topology)
        fraction = platform.task_launch_overhead() / \
            platform.inference_latency()
        assert fraction < 0.002

    def test_alt1_slower_training(self, topology):
        base = FA3CPlatform.fa3c(topology).training_latency(5)
        alt1 = FA3CPlatform.alt1(topology).training_latency(5)
        assert alt1 > base * 1.2

    def test_sim_runs_and_reports_utilisation(self, topology):
        platform = FA3CPlatform.fa3c(topology)
        result = measure_ips(platform, num_agents=4,
                             routines_per_agent=5)
        assert result.ips > 0
        assert 0.0 < result.utilisation <= 1.0

    def test_sim_single_cu_shares_one_resource(self, topology):
        platform = FA3CPlatform.single_cu(topology)
        sim = platform.build_sim(Engine())
        assert sim.infer_cus[0] is sim.train_cus[0]


class TestResourceModel:
    def test_default_config_fits_vu9p(self):
        model = ResourceModel()
        assert model.fits()

    def test_utilisation_matches_paper_ballpark(self):
        """Table 4 totals: 57.3 % logic, 37.0 % registers, 40.6 % memory
        blocks, 34.3 % DSPs."""
        util = ResourceModel().utilisation()
        assert util["logic_luts"] == pytest.approx(0.573, abs=0.06)
        assert util["registers"] == pytest.approx(0.370, abs=0.06)
        assert util["memory_blocks"] == pytest.approx(0.406, abs=0.08)
        assert util["dsp_blocks"] == pytest.approx(0.343, abs=0.05)

    def test_pe_dsp_count_matches_table4(self):
        components = {c.component: c for c in ResourceModel().components()}
        assert components["PEs"].dsp_blocks == 2048

    def test_table_rows_include_total(self):
        rows = resource_table()
        assert rows[-1]["component"] == "Total"
        assert len(rows) == 12

    def test_bigger_config_may_not_fit_stratix(self):
        model = ResourceModel(num_cus=4, n_pe=64, device=STRATIX_V)
        assert not model.fits()

    def test_scaling_with_pe_count(self):
        small = ResourceModel(num_cus=2, n_pe=64).total()
        large = ResourceModel(num_cus=4, n_pe=64).total()
        assert large.dsp_blocks > small.dsp_blocks
        assert large.logic_luts > small.logic_luts

    def test_device_capacities(self):
        assert VU9P.dsp_blocks == 6840
        assert VU9P.logic_luts > STRATIX_V.logic_luts
