"""Unit tests for the engine and process semantics."""

import pytest

from repro.sim import Engine, Interrupt


class TestEngineClock:
    def test_starts_at_zero(self):
        assert Engine().now == 0.0

    def test_run_until_deadline(self):
        engine = Engine()
        engine.timeout(10.0)
        engine.run(until=4.0)
        assert engine.now == 4.0

    def test_deadline_past_queue_advances_clock(self):
        engine = Engine()
        engine.timeout(1.0)
        engine.run(until=100.0)
        assert engine.now == 100.0

    def test_events_fire_in_time_order(self):
        engine = Engine()
        order = []
        for delay in (3.0, 1.0, 2.0):
            engine.timeout(delay).callbacks.append(
                lambda e, d=delay: order.append(d))
        engine.run()
        assert order == [1.0, 2.0, 3.0]

    def test_ties_broken_by_insertion_order(self):
        engine = Engine()
        order = []
        for tag in "abc":
            engine.timeout(1.0).callbacks.append(
                lambda e, t=tag: order.append(t))
        engine.run()
        assert order == ["a", "b", "c"]

    def test_run_until_event_drained_queue_raises(self):
        engine = Engine()
        never = engine.event()
        with pytest.raises(RuntimeError, match="drained"):
            engine.run(never)


class TestProcess:
    def test_simple_process_advances_time(self):
        engine = Engine()
        def body():
            yield engine.timeout(1.0)
            yield engine.timeout(2.0)
            return "finished"
        proc = engine.process(body())
        engine.run(proc)
        assert engine.now == 3.0
        assert proc.value == "finished"

    def test_requires_generator(self):
        engine = Engine()
        with pytest.raises(TypeError):
            engine.process(lambda: None)

    def test_yielding_non_event_raises(self):
        engine = Engine()
        def body():
            yield 42
        engine.process(body())
        with pytest.raises(TypeError, match="not an Event"):
            engine.run()

    def test_process_receives_event_value(self):
        engine = Engine()
        received = []
        def body():
            value = yield engine.timeout(1.0, value="hello")
            received.append(value)
        engine.process(body())
        engine.run()
        assert received == ["hello"]

    def test_failed_event_raises_inside_process(self):
        engine = Engine()
        trap = engine.event()
        caught = []
        def body():
            try:
                yield trap
            except ValueError as error:
                caught.append(str(error))
        engine.process(body())
        trap.fail(ValueError("injected"))
        engine.run()
        assert caught == ["injected"]

    def test_process_waiting_on_finished_process(self):
        engine = Engine()
        def child():
            yield engine.timeout(1.0)
            return "child-result"
        def parent(proc):
            value = yield proc
            return f"saw {value}"
        child_proc = engine.process(child())
        parent_proc = engine.process(parent(child_proc))
        engine.run(parent_proc)
        assert parent_proc.value == "saw child-result"

    def test_chained_processes_sequential_time(self):
        engine = Engine()
        def stage(duration):
            yield engine.timeout(duration)
        def pipeline():
            yield engine.process(stage(1.0))
            yield engine.process(stage(2.0))
        proc = engine.process(pipeline())
        engine.run(proc)
        assert engine.now == 3.0

    def test_interrupt_wakes_process(self):
        engine = Engine()
        log = []
        def body():
            try:
                yield engine.timeout(100.0)
            except Interrupt as stop:
                log.append(stop.cause)
        proc = engine.process(body())
        def interrupter():
            yield engine.timeout(1.0)
            proc.interrupt("enough")
        engine.process(interrupter())
        engine.run(proc)
        assert log == ["enough"]
        assert engine.now == 1.0

    def test_interrupting_finished_process_raises(self):
        engine = Engine()
        def body():
            yield engine.timeout(0.0)
        proc = engine.process(body())
        engine.run(proc)
        with pytest.raises(RuntimeError):
            proc.interrupt()

    def test_determinism_across_runs(self):
        def simulate():
            engine = Engine()
            trace = []
            def worker(i):
                for k in range(3):
                    yield engine.timeout(0.5 * (i + 1))
                    trace.append((engine.now, i, k))
            for i in range(3):
                engine.process(worker(i))
            engine.run()
            return trace
        assert simulate() == simulate()
