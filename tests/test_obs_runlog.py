"""Tests for run directories, shard merging, and the chrome pid map."""

import json
import os

import pytest

from repro import obs
from repro.obs import chrome
from repro.obs import runlog
from repro.obs.registry import MetricsRegistry
from repro.obs.tracer import SIM, WALL, ObsSpan, SpanTracer


@pytest.fixture
def runs_root(tmp_path):
    return str(tmp_path / "runs")


def open_run(runs_root, command="train", **meta):
    return runlog.RunLog.open(command, argv=["train", "--x"],
                              root=runs_root, **meta)


class TestRegistryMerge:
    def test_absorb_rows_sums_counters_with_labels(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("ps.updates").inc(3.0)
        b.absorb_rows(a.snapshot(), worker="worker-0")
        b.absorb_rows(a.snapshot(), worker="worker-1")
        assert b.counter("ps.updates").value(worker="worker-0") == 3.0
        assert b.counter("ps.updates").total() == 6.0

    def test_absorb_rows_folds_histogram_moments(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        for value in (1.0, 3.0):
            a.histogram("ps.lock_wait_seconds").observe(value, op="apply")
        b.absorb_rows(a.snapshot(), worker="w0")
        row = [r for r in b.snapshot()
               if r["name"] == "ps.lock_wait_seconds"][0]
        assert row["count"] == 2 and row["sum"] == 4.0
        assert row["min"] == 1.0 and row["max"] == 3.0
        # HDR buckets fold across shards, so percentiles stay real
        # (bucket midpoints: within the ~6% bucket resolution).
        assert row["p50"] == pytest.approx(1.0, rel=0.07)
        assert row["p99"] == pytest.approx(3.0, rel=0.07)
        assert row["hdr"]

    def test_absorb_rows_gauge_last_write_wins(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.gauge("x").set(1.0)
        b.gauge("x").set(9.0)
        b.absorb_rows(a.snapshot())
        assert b.gauge("x").value() == 1.0

    def test_gauge_fold_is_arrival_order_independent(self):
        """(gen, pid) priority makes the merged gauge deterministic."""
        def gauge_row(value, gen, pid):
            return {"name": "x", "type": "gauge", "labels": {},
                    "value": value, "gen": gen, "pid": pid}

        rows = [gauge_row(1.0, 1, 50), gauge_row(2.0, 2, 40)]
        forward, backward = MetricsRegistry(), MetricsRegistry()
        forward.absorb_rows(rows)
        backward.absorb_rows(list(reversed(rows)))
        assert forward.gauge("x").value() == 2.0
        assert backward.gauge("x").value() == 2.0

    def test_gauge_pid_breaks_generation_ties(self):
        def gauge_row(value, gen, pid):
            return {"name": "x", "type": "gauge", "labels": {},
                    "value": value, "gen": gen, "pid": pid}

        for ordering in ([(3.0, 2, 9001), (4.0, 2, 9002)],
                         [(4.0, 2, 9002), (3.0, 2, 9001)]):
            registry = MetricsRegistry()
            registry.absorb_rows([gauge_row(*row) for row in ordering])
            assert registry.gauge("x").value() == 4.0

    def test_gauge_live_set_resumes_last_write_wins(self):
        registry = MetricsRegistry()
        registry.absorb_rows([{"name": "x", "type": "gauge",
                               "labels": {}, "value": 5.0,
                               "gen": 9, "pid": 9}])
        registry.gauge("x").set(1.0)
        assert registry.gauge("x").value() == 1.0


class TestTracerMerge:
    def test_snapshot_roundtrip_with_pid(self):
        a = SpanTracer()
        a.record("lane", "work", 0.0, 1.0)
        b = SpanTracer()
        assert b.absorb_rows(a.snapshot(), pid=4242) == 1
        span = b.spans[0]
        assert span.pid == 4242 and span.lane == "lane"
        assert span.as_dict()["pid"] == 4242

    def test_local_spans_have_no_pid_key(self):
        tracer = SpanTracer()
        tracer.record("lane", "work", 0.0, 1.0)
        assert "pid" not in tracer.snapshot()[0]


class TestRunLog:
    def test_manifest_written_and_finished(self, runs_root):
        log = open_run(runs_root, config={"game": "pong"},
                       platform="fa3c-fpga", seed=7)
        manifest = runlog.load_manifest(log.path)
        assert manifest["schema"] == runlog.SCHEMA_VERSION
        assert manifest["command"] == "train"
        assert manifest["outcome"] == "running"
        assert manifest["pid"] == os.getpid()
        assert manifest["config"] == {"game": "pong"}
        log.finish(outcome="ok", global_steps=100)
        manifest = runlog.load_manifest(log.path)
        assert manifest["outcome"] == "ok"
        assert manifest["global_steps"] == 100
        assert manifest["wall_seconds"] >= 0.0

    def test_run_ids_are_unique(self, runs_root):
        ids = {open_run(runs_root).run_id for _ in range(3)}
        assert len(ids) == 3

    def test_shard_flush_and_load(self, runs_root):
        log = open_run(runs_root)
        with obs.enabled_scope():
            obs.metrics().counter("ps.updates").inc(5.0)
            obs.tracer().record("lane", "work", 0.0, 1.0)
            shard = log.shard("main", interval=0.0)
            shard.flush(routines=1)
            obs.metrics().counter("ps.updates").inc(2.0)
            shard.flush(final=True, routines=2)
        obs.metrics().reset()
        obs.tracer().clear()
        loaded = runlog.load_shard(shard.path)
        assert loaded.pid == os.getpid()
        assert loaded.worker == "main"
        assert loaded.final is not None
        assert len(loaded.heartbeats) == 2
        # Only the newest generation survives: the counter reads 7.
        rows = [r for r in loaded.rows if r["name"] == "ps.updates"]
        assert rows[0]["value"] == 7.0
        assert loaded.spans[0]["lane"] == "lane"
        assert loaded.stats() == {"routines": 2}

    def test_maybe_heartbeat_respects_interval(self, runs_root):
        log = open_run(runs_root)
        shard = log.shard("main", interval=3600.0)
        assert not shard.maybe_heartbeat(routines=1)
        shard.interval = 0.0
        assert shard.maybe_heartbeat(routines=2)

    def test_list_and_resolve(self, runs_root):
        log_a = open_run(runs_root)
        log_b = open_run(runs_root, command="bench")
        log_a.finish()
        rows = runlog.list_runs(runs_root)
        assert sorted(r["command"] for r in rows) == ["bench", "train"]
        assert runlog.resolve_run(log_b.run_id, runs_root) == log_b.path
        assert runlog.resolve_run("bench", runs_root) == log_b.path
        with pytest.raises(ValueError):
            runlog.resolve_run("nope", runs_root)

    def test_resolve_ambiguous_fragment(self, runs_root):
        open_run(runs_root)
        open_run(runs_root)
        with pytest.raises(ValueError, match="ambiguous"):
            runlog.resolve_run("train", runs_root)


def write_worker_shard(run_dir, pid, worker, rows=(), spans=(),
                       final=True, routines=10, opened=100.0,
                       beat=101.0):
    records = [{"kind": "open", "pid": pid, "worker": worker,
                "time": opened, "interval": 2.0},
               {"kind": "heartbeat", "seq": 1, "time": beat,
                "stats": {"routines": routines}}]
    records.extend({"kind": "metric", "seq": 1, "row": row}
                   for row in rows)
    records.extend({"kind": "span", "seq": 1, "row": span}
                   for span in spans)
    if final:
        records.append({"kind": "final", "seq": 1, "time": beat,
                        "stats": {"routines": routines}})
    path = os.path.join(
        run_dir, f"{runlog.SHARD_PREFIX}{pid}{runlog.SHARD_SUFFIX}")
    with open(path, "a", encoding="utf-8") as fh:
        for record in records:
            fh.write(json.dumps(record) + "\n")
    return path


def counter_row(name, value, **labels):
    return {"name": name, "type": "counter", "labels": labels,
            "value": value}


class TestMergeRun:
    def test_merge_labels_rows_and_spans_per_worker(self, runs_root):
        log = open_run(runs_root)
        write_worker_shard(
            log.path, 9001, "worker-0",
            rows=[counter_row("ps.updates", 3.0)],
            spans=[{"lane": "agent-0", "label": "routine",
                    "start": 0.0, "end": 1.0, "clock": WALL}])
        write_worker_shard(
            log.path, 9002, "worker-1",
            rows=[counter_row("ps.updates", 4.0)])
        log.finish()
        merged = runlog.merge_run(log.path)
        by_worker = {r["labels"]["worker"]: r["value"]
                     for r in merged.rows if r["name"] == "ps.updates"}
        assert by_worker == {"worker-0": 3.0, "worker-1": 4.0}
        assert merged.spans[0]["pid"] == 9001
        assert len(merged.worker_shards()) == 2

    def test_parent_reimported_rows_are_dropped(self, runs_root):
        """The parent absorbs worker rows back into its registry; its
        shard must not double-count them against the worker's shard."""
        log = open_run(runs_root)
        write_worker_shard(
            log.path, os.getpid(), "main",
            rows=[counter_row("ps.updates", 3.0, worker="worker-0"),
                  counter_row("platform.ips", 100.0)])
        write_worker_shard(
            log.path, 9001, "worker-0",
            rows=[counter_row("ps.updates", 3.0)])
        log.finish()
        merged = runlog.merge_run(log.path)
        aggregate = runlog.aggregate_rows(merged.rows)
        updates = [r for r in aggregate if r["name"] == "ps.updates"]
        assert updates[0]["value"] == 3.0
        # Parent spans keep no pid (they stay in the sim/wall groups).
        parent_rows = [r for r in merged.rows
                       if r["name"] == "platform.ips"]
        assert parent_rows[0]["labels"]["worker"] == "main"

    def test_aggregate_strips_worker_and_sums(self, runs_root):
        log = open_run(runs_root)
        write_worker_shard(log.path, 9001, "worker-0",
                           rows=[counter_row("ps.updates", 3.0)])
        write_worker_shard(log.path, 9002, "worker-1",
                           rows=[counter_row("ps.updates", 4.0)])
        log.finish()
        aggregate = runlog.aggregate_rows(
            runlog.merge_run(log.path).rows)
        row = [r for r in aggregate if r["name"] == "ps.updates"][0]
        assert row["value"] == 7.0
        assert "worker" not in row["labels"]


class TestDiffRuns:
    def _run_with(self, runs_root, updates, command="bench",
                  scenarios=None):
        log = open_run(runs_root, command=command)
        write_worker_shard(log.path, 9001, "worker-0",
                           rows=[counter_row("ps.updates", updates)])
        if scenarios is not None:
            log.update(scenarios=scenarios)
        log.finish()
        return log

    def test_metric_and_scenario_deltas(self, runs_root):
        log_a = self._run_with(
            runs_root, 3.0,
            scenarios={"s1": {"ips": 100.0,
                              "buckets": {"pe_compute": 0.5}}})
        log_b = self._run_with(
            runs_root, 5.0,
            scenarios={"s1": {"ips": 110.0,
                              "buckets": {"pe_compute": 0.6}}})
        diff = runlog.diff_runs(log_a.run_id, log_b.run_id,
                                root=runs_root)
        metric = [r for r in diff["metrics"]
                  if r["metric"] == "ps.updates"][0]
        assert metric["delta"] == 2.0
        fields = {r["field"]: r["delta"] for r in diff["scenarios"]}
        assert fields["ips"] == pytest.approx(10.0)
        assert fields["bucket:pe_compute"] == pytest.approx(0.1)

    def test_latency_deltas_between_runs(self, runs_root):
        def lat_rows(seconds):
            registry = MetricsRegistry()
            registry.histogram("lat.segment_seconds").observe(
                seconds, trainer="a3c", segment="infer")
            return registry.snapshot()

        logs = []
        for seconds in (0.001, 0.002):
            log = open_run(runs_root)
            write_worker_shard(log.path, 9001, "worker-0",
                               rows=lat_rows(seconds))
            log.finish()
            logs.append(log)
        diff = runlog.diff_runs(logs[0].run_id, logs[1].run_id,
                                root=runs_root)
        rows = {(r["segment"], r["field"]): r for r in diff["latency"]}
        row = rows[("segment=infer,trainer=a3c", "p50_ms")]
        # HDR midpoints: 1ms -> 2ms is a +1ms delta at ~6% resolution.
        assert row["delta"] == pytest.approx(1.0, rel=0.15)
        assert row["a"] == pytest.approx(1.0, rel=0.07)
        assert row["b"] == pytest.approx(2.0, rel=0.07)


class TestCrashedRuns:
    def test_unfinished_run_lists_as_crashed(self, runs_root):
        open_run(runs_root)  # never finished: no end stamp
        rows = runlog.list_runs(runs_root)
        assert rows[0]["outcome"] == "crashed"
        assert rows[0]["wall_seconds"] is None

    def test_torn_manifest_lists_as_crashed_stub(self, runs_root):
        log = open_run(runs_root)
        with open(os.path.join(log.path, runlog.MANIFEST_NAME), "w",
                  encoding="utf-8") as fh:
            fh.write('{"run_id": "torn", ')  # killed mid-write
        rows = runlog.list_runs(runs_root)
        assert len(rows) == 1
        assert rows[0]["outcome"] == "crashed"
        assert rows[0]["run_id"] == os.path.basename(log.path)

    def test_diff_tolerates_crashed_run(self, runs_root):
        log_a = open_run(runs_root)
        write_worker_shard(log_a.path, 9001, "worker-0",
                           rows=[counter_row("ps.updates", 3.0)])
        with open(os.path.join(log_a.path, runlog.MANIFEST_NAME), "w",
                  encoding="utf-8") as fh:
            fh.write("{not json")
        log_b = open_run(runs_root)
        write_worker_shard(log_b.path, 9002, "worker-0",
                           rows=[counter_row("ps.updates", 5.0)])
        log_b.finish()
        diff = runlog.diff_runs(log_a.path, log_b.path, root=runs_root)
        assert diff["a"] == os.path.basename(log_a.path)
        metric = [r for r in diff["metrics"]
                  if r["metric"] == "ps.updates"][0]
        assert metric["delta"] == 2.0

    def test_merge_run_stub_manifest_outcome(self, runs_root):
        log = open_run(runs_root)
        with open(os.path.join(log.path, runlog.MANIFEST_NAME), "w",
                  encoding="utf-8") as fh:
            fh.write("")
        merged = runlog.merge_run(log.path)
        assert merged.manifest["outcome"] == "crashed"


class TestChromeMultiProcess:
    def _merged_tracer(self, runs_root):
        """Two synthetic worker shards plus local sim/wall spans."""
        log = open_run(runs_root)
        write_worker_shard(
            log.path, 9001, "worker-0",
            spans=[{"lane": "agent-0", "label": "routine",
                    "start": 10.0, "end": 11.0, "clock": WALL},
                   {"lane": "agent-2", "label": "routine",
                    "start": 11.0, "end": 12.0, "clock": WALL}])
        write_worker_shard(
            log.path, 9002, "worker-1",
            spans=[{"lane": "agent-1", "label": "routine",
                    "start": 10.5, "end": 11.5, "clock": WALL}])
        log.finish()
        tracer = runlog.merge_run(log.path).tracer()
        tracer.record("cu0", "FW", 0.0, 5.0, clock=SIM)
        tracer.record("trainer", "step", 10.0, 12.0, clock=WALL)
        return tracer

    def test_workers_get_distinct_process_groups(self, runs_root):
        events = chrome.chrome_trace_events(
            self._merged_tracer(runs_root).spans)
        names = {e["pid"]: e["args"]["name"] for e in events
                 if e.get("ph") == "M"
                 and e.get("name") == "process_name"}
        assert names[chrome.PID_SIM] == "sim-time"
        assert names[chrome.PID_WALL] == "wall-clock"
        assert names[9001] == "worker-9001"
        assert names[9002] == "worker-9002"
        pids = {e["pid"] for e in events if e.get("ph") == "X"}
        assert {chrome.PID_SIM, chrome.PID_WALL, 9001, 9002} == pids

    def test_tid_ordering_is_first_appearance_per_process(
            self, runs_root):
        events = chrome.chrome_trace_events(
            self._merged_tracer(runs_root).spans)
        threads = {(e["pid"], e["args"]["name"]): e["tid"]
                   for e in events if e.get("ph") == "M"
                   and e.get("name") == "thread_name"}
        # worker-9001's lanes in shard order: agent-0 then agent-2.
        assert threads[(9001, "agent-0")] == 1
        assert threads[(9001, "agent-2")] == 2
        assert threads[(9002, "agent-1")] == 1

    def test_real_pids_never_collide_with_pseudo_pids(self):
        spans = [
            ObsSpan(lane="trainer", label="local", start=0.0, end=1.0,
                    clock=WALL),
            ObsSpan(lane="agent-0", label="w", start=0.0, end=1.0,
                    clock=WALL, pid=1),
            ObsSpan(lane="agent-1", label="w", start=0.0, end=1.0,
                    clock=WALL, pid=2),
        ]
        events = chrome.chrome_trace_events(spans)
        pids = {e["pid"] for e in events if e.get("ph") == "X"}
        assert chrome.PID_WALL in pids
        assert chrome.WORKER_PID_BASE + 1 in pids
        assert chrome.WORKER_PID_BASE + 2 in pids
        names = {e["pid"]: e["args"]["name"] for e in events
                 if e.get("ph") == "M"
                 and e.get("name") == "process_name"}
        # The remapped groups still display the real OS pid.
        assert names[chrome.WORKER_PID_BASE + 1] == "worker-1"
        assert names[chrome.WORKER_PID_BASE + 2] == "worker-2"

    def test_remap_is_injective_for_colliding_high_pids(self):
        """A real OS pid equal to an already-remapped value must not
        merge into the remapped worker's Perfetto process group."""
        spans = [
            ObsSpan(lane="agent-0", label="w", start=0.0, end=1.0,
                    clock=WALL, pid=1),
            ObsSpan(lane="agent-1", label="w", start=0.0, end=1.0,
                    clock=WALL, pid=chrome.WORKER_PID_BASE + 1),
        ]
        events = chrome.chrome_trace_events(spans)
        pids = {e["pid"] for e in events if e.get("ph") == "X"}
        assert pids == {chrome.WORKER_PID_BASE + 1,
                        2 * chrome.WORKER_PID_BASE + 1}
        names = {e["pid"]: e["args"]["name"] for e in events
                 if e.get("ph") == "M"
                 and e.get("name") == "process_name"}
        assert names[chrome.WORKER_PID_BASE + 1] == "worker-1"
        assert names[2 * chrome.WORKER_PID_BASE + 1] == \
            f"worker-{chrome.WORKER_PID_BASE + 1}"


class TestRunReport:
    def test_run_report_renders_workers_and_health(self, runs_root):
        log = open_run(runs_root)
        write_worker_shard(log.path, 9001, "worker-0",
                           rows=[counter_row("ps.updates", 3.0)])
        write_worker_shard(log.path, 9002, "worker-1",
                           rows=[counter_row("ps.updates", 4.0)],
                           final=False)
        log.finish()
        merged = runlog.merge_run(log.path)
        text = obs.run_report(merged)
        assert "Per-worker breakdown" in text
        assert "worker-0" in text and "worker-1" in text
        assert "straggler" in text

    def test_write_health_jsonl(self, runs_root):
        log = open_run(runs_root)
        log.finish()
        count = runlog.write_health(
            log.path, [{"kind": "health", "event": "stall"}])
        assert count == 1
        path = os.path.join(log.path, runlog.HEALTH_NAME)
        assert json.loads(open(path).readline())["event"] == "stall"
