"""Tests for the shared-memory store and the multiprocessing backend."""

import multiprocessing
import os

import numpy as np
import pytest

from repro.core import A3CConfig, A3CTrainer, ParameterServer
from repro.core.shared_params import (
    SharedParameterServer,
    SharedParameterStore,
)
from repro.envs import Catch
from repro.nn.network import MLPPolicyNetwork

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="procs backend requires the fork start method")


def small_net():
    return MLPPolicyNetwork(num_actions=3, input_shape=(5, 5), hidden=16)


def template_params(seed=0):
    return small_net().init_params(np.random.default_rng(seed))


def make_store(params=None):
    ctx = multiprocessing.get_context("fork")
    return SharedParameterStore(ctx, params or template_params())


class TestSharedParameterStore:
    def test_publish_read_roundtrip(self):
        params = template_params()
        store = make_store(params)
        out = params.zeros_like()
        store.read_params_into(out)
        for name, value in params.items():
            np.testing.assert_array_equal(out[name], value)

    def test_view_set_aliases_shared_memory(self):
        store = make_store()
        views = store.view_set(store.theta_flat())
        name = views.names()[0]
        views[name].flat[0] = 123.0
        assert store.theta_flat()[store._offsets[0]] == 123.0

    def test_seqlock_version_brackets_writes(self):
        store = make_store()
        assert store._version.value % 2 == 0
        store.begin_write()
        assert store._version.value % 2 == 1
        store.end_write()
        assert store._version.value % 2 == 0

    def test_publish_statistics_and_step(self):
        params = template_params()
        stats = params.zeros_like()
        for name in stats:
            stats[name] += 0.5
        store = make_store(params)
        store.publish(params, statistics=stats, global_step=42)
        assert store.global_step == 42
        out = params.zeros_like()
        with store.lock:
            out.load_flat(store.g_flat().copy())
        for name in out:
            np.testing.assert_array_equal(out[name],
                                          np.full_like(out[name], 0.5))


class TestSharedParameterServer:
    def _pair(self):
        """A threaded server and a shared server seeded identically."""
        config = A3CConfig(num_agents=2, max_steps=1000,
                           learning_rate=1e-2, seed=0)
        params = template_params()
        threaded = ParameterServer(params.copy(), config)
        store = make_store(params)
        shared = SharedParameterServer(store, config)
        return threaded, shared

    def test_updates_match_threaded_server_bitwise(self):
        threaded, shared = self._pair()
        rng = np.random.default_rng(7)
        for _ in range(5):
            grads = threaded.params.zeros_like()
            for name in grads:
                grads[name] += rng.standard_normal(
                    grads[name].shape).astype(np.float32)
            threaded.apply_gradients(grads.copy())
            shared.apply_gradients(grads.copy())
            threaded.add_steps(10)
            shared.add_steps(10)
        assert shared.global_step == threaded.global_step
        for name, value in threaded.params.items():
            np.testing.assert_array_equal(shared.params[name], value)
        for name, value in threaded.rmsprop_statistics.items():
            np.testing.assert_array_equal(
                shared.rmsprop_statistics[name], value)

    def test_snapshot_into_reuses_destination(self):
        _, shared = self._pair()
        local = shared.snapshot()
        arrays_before = [id(local[name]) for name in local]
        shared.params[local.names()[0]].flat[0] = 9.0
        shared.snapshot_into(local)
        assert [id(local[name]) for name in local] == arrays_before
        assert local[local.names()[0]].flat[0] == 9.0

    def test_step_counter(self):
        _, shared = self._pair()
        assert shared.add_steps(5) == 5
        assert shared.add_steps(3) == 8
        assert shared.global_step == 8
        shared.set_global_step(100)
        assert shared.global_step == 100


class TestProcsBackend:
    def _trainer(self, max_steps=2000):
        config = A3CConfig(num_agents=4, t_max=5, max_steps=max_steps,
                           learning_rate=1e-2, anneal_steps=10 ** 9,
                           entropy_beta=0.02, seed=1)
        return A3CTrainer(lambda i: Catch(size=5), small_net, config)

    def test_procs_backend_completes_and_reports(self):
        trainer = self._trainer()
        result = trainer.train(backend="procs", workers=2)
        assert result.global_steps >= 2000
        assert result.routines > 0
        assert result.episodes > 0
        assert len(trainer.tracker) > 0
        assert trainer.server.global_step == result.global_steps
        assert trainer.server.updates_applied > 0
        for _, value in result.params.items():
            assert np.isfinite(value).all()

    def test_procs_learning_matches_threaded_sanity(self):
        result = self._trainer(max_steps=20_000).train(backend="procs",
                                                       workers=2)
        # Threaded Catch training reaches ~1.0 at this budget; the procs
        # backend must land in the same regime (not bit-identical — the
        # interleaving is asynchronous by design).
        assert result.tracker.recent_mean(300) > 0.5

    def test_workers_clamped_to_agent_count(self):
        trainer = self._trainer(max_steps=500)
        result = trainer.train(backend="procs", workers=64)
        assert result.global_steps >= 500

    def test_unknown_backend_rejected(self):
        trainer = self._trainer(max_steps=10)
        with pytest.raises(ValueError):
            trainer.train(backend="warp")

    @pytest.mark.skipif((os.cpu_count() or 1) < 4,
                        reason="scaling smoke needs >= 4 cores")
    def test_procs_scales_with_workers(self):
        # On multi-core hosts four workers must clearly beat one; on the
        # single-core CI container this is skipped (no parallel headroom).
        solo = self._trainer(max_steps=8000).train(backend="procs",
                                                   workers=1)
        quad = self._trainer(max_steps=8000).train(backend="procs",
                                                   workers=4)
        assert quad.steps_per_second >= 2.0 * solo.steps_per_second


class TestProcsObservability:
    def _trainer(self, max_steps=600):
        config = A3CConfig(num_agents=2, t_max=5, max_steps=max_steps,
                           learning_rate=1e-2, anneal_steps=10 ** 9,
                           entropy_beta=0.02, seed=1)
        return A3CTrainer(lambda i: Catch(size=5), small_net, config)

    def test_worker_metrics_reach_parent_registry(self):
        """Workers ship their final metrics snapshot through the results
        queue; the parent folds it in under a ``worker`` label."""
        from repro import obs

        with obs.enabled_scope():
            self._trainer().train(actors="procs", workers=2)
            updates = obs.metrics().counter("ps.updates")
            assert updates.total() > 0
            per_worker = [updates.value(worker=f"worker-{i}")
                          for i in range(2)]
            assert all(value > 0 for value in per_worker)
            assert sum(per_worker) == updates.total()

    def test_procs_run_writes_worker_shards(self, tmp_path):
        from repro import obs
        from repro.obs import runlog

        log = runlog.RunLog.open("train", root=str(tmp_path / "runs"))
        with obs.enabled_scope():
            self._trainer().train(actors="procs", workers=2, runlog=log)
        log.finish()
        merged = runlog.merge_run(log.path)
        workers = merged.worker_shards()
        assert {shard.worker for shard in workers} == {"worker-0",
                                                       "worker-1"}
        for shard in workers:
            assert shard.final is not None
            assert shard.stats()["routines"] > 0
            names = {row["name"] for row in shard.rows}
            assert "ps.updates" in names
            assert "ps.lock_wait_seconds" in names
