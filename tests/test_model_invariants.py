"""Cross-cutting invariants tying the models together.

These tests check relationships *between* subsystems — the timing model
vs ideal PE throughput, the discrete-event simulation vs the analytic
latencies, gradient linearity across rollouts — rather than any single
module's behaviour.
"""

import hypothesis
import hypothesis.strategies as st
import numpy as np
import pytest

from repro.fpga.platform import FA3CPlatform
from repro.fpga.timing import GLOBAL, LOCAL, TimingModel
from repro.nn.losses import a3c_loss_and_head_gradients
from repro.nn.network import A3CNetwork, LayerSpec, NetworkTopology
from repro.platforms import HostModel, measure_ips


@pytest.fixture(scope="module")
def topology():
    return A3CNetwork(num_actions=6).topology()


layer_specs = st.builds(
    lambda i, o, k, s, hw: LayerSpec(
        name="L", kind="conv", in_channels=i, out_channels=o, kernel=k,
        stride=s, in_height=hw, in_width=hw,
        out_height=(hw - k) // s + 1, out_width=(hw - k) // s + 1),
    st.integers(1, 8), st.integers(1, 32), st.integers(1, 4),
    st.integers(1, 2), st.integers(8, 32),
).filter(lambda spec: spec.in_height >= spec.kernel)


class TestTimingInvariants:
    @hypothesis.given(layer_specs, st.integers(1, 8))
    @hypothesis.settings(max_examples=40, deadline=None)
    def test_schedule_never_beats_ideal_pe_throughput(self, spec, batch):
        """No schedule can need fewer cycles than MACs / N_PE."""
        timing = TimingModel(NetworkTopology((spec.in_channels,
                                              spec.in_height,
                                              spec.in_width),
                                             (spec,)), n_pe=64)
        fw = timing.fw_stage(spec, batch, first_layer=True)
        ideal = spec.macs_fw(batch) / 64
        assert fw.compute_cycles >= ideal * 0.99

    @hypothesis.given(layer_specs, st.integers(1, 8))
    @hypothesis.settings(max_examples=40, deadline=None)
    def test_alt1_never_faster_than_fa3c(self, spec, batch):
        topo = NetworkTopology((spec.in_channels, spec.in_height,
                                spec.in_width), (spec,))
        fa3c = TimingModel(topo, layout_mode="fa3c")
        alt1 = TimingModel(topo, layout_mode="alt1")
        assert alt1.bw_stage(spec, batch, None).compute_cycles >= \
            fa3c.bw_stage(spec, batch, None).compute_cycles

    def test_traffic_totals_equal_stage_sums(self, topology):
        """The Table 2 calculator and the per-stage timing model agree
        on parameter traffic."""
        timing = TimingModel(topology)
        inference = timing.inference_task(1)
        param_loads = sum(
            stage.loads.get(LOCAL, 0) for stage in inference) \
            - timing.input_words(1)
        assert param_loads == timing.total_param_words()

    def test_training_stores_one_gradient_set(self, topology):
        timing = TimingModel(topology)
        training = timing.training_task(5)
        gradient_stores = sum(stage.stores.get(GLOBAL, 0)
                              for stage in training
                              if stage.name.startswith("GC"))
        assert gradient_stores == timing.total_param_words()


class TestSimVsAnalytic:
    def test_single_agent_routine_time_matches_analytic(self, topology):
        """With one agent there is no contention: the DES routine time
        equals the analytic task times plus host/PCIe overheads."""
        platform = FA3CPlatform.fa3c(topology)
        host = HostModel()
        result = measure_ips(platform, 1, routines_per_agent=20,
                             host=host)
        measured_routine = 5.0 / result.ips
        analytic = (6 * platform.inference_latency()
                    + platform.training_latency(5)
                    + platform.sync_latency()
                    + 5 * host.step_time + host.train_prep_time)
        # PCIe DMA per inference adds a few percent on top.
        assert measured_routine == pytest.approx(analytic, rel=0.06)

    def test_saturated_ips_bounded_by_training_cu(self, topology):
        """At saturation, per-pair throughput cannot exceed the training
        CU's service rate."""
        platform = FA3CPlatform.fa3c(topology)
        result = measure_ips(platform, 32, routines_per_agent=15)
        pairs = platform.config.cu_pairs
        cap = pairs * 5.0 / platform.training_latency(5)
        assert result.ips <= cap * 1.01

    def test_more_cu_pairs_scale_throughput(self, topology):
        one = measure_ips(FA3CPlatform.fa3c(topology, cu_pairs=1), 16,
                          routines_per_agent=15)
        two = measure_ips(FA3CPlatform.fa3c(topology, cu_pairs=2), 16,
                          routines_per_agent=15)
        assert two.ips > one.ips * 1.6


class TestGradientLinearity:
    def test_batch_gradient_equals_sum_of_per_sample_gradients(self):
        """The A3C loss sums over the batch, so gradients are additive —
        the property that lets FA3C accumulate GC results across the
        rollout."""
        rng = np.random.default_rng(0)
        net = A3CNetwork(num_actions=4, input_shape=(2, 20, 20),
                         conv_channels=(4, 8), hidden=32)
        params = net.init_params(rng)
        states = rng.standard_normal((3, 2, 20, 20)).astype(np.float32)
        actions = np.array([0, 1, 2])
        returns = rng.standard_normal(3).astype(np.float32)

        def grads_for(index_list):
            s = states[index_list]
            a = actions[index_list]
            r = returns[index_list]
            logits, values = net.forward(s, params)
            loss = a3c_loss_and_head_gradients(logits, values, a, r)
            return net.backward_and_grads(loss.dlogits, loss.dvalues,
                                          params)

        whole = grads_for([0, 1, 2])
        parts = [grads_for([i]) for i in range(3)]
        for name in whole:
            summed = parts[0][name] + parts[1][name] + parts[2][name]
            np.testing.assert_allclose(whole[name], summed, rtol=1e-3,
                                       atol=1e-5)

    def test_zero_advantage_zero_entropy_gives_zero_policy_gradient(self):
        """With R = V and no entropy term, the policy head gets no
        gradient (the actor-critic fixed point)."""
        rng = np.random.default_rng(1)
        logits = rng.standard_normal((4, 3)).astype(np.float32)
        values = rng.standard_normal(4).astype(np.float32)
        result = a3c_loss_and_head_gradients(
            logits, values, np.array([0, 1, 2, 0]), values.copy(),
            entropy_beta=0.0)
        np.testing.assert_allclose(result.dlogits, 0.0, atol=1e-6)
        np.testing.assert_allclose(result.dvalues, 0.0, atol=1e-6)
