"""Tests for rollout storage and n-step bootstrapped returns."""

import hypothesis
import hypothesis.strategies as st
import numpy as np
import pytest

from repro.core import Rollout, compute_returns


class TestComputeReturns:
    def test_terminal_returns_are_plain_discounted_sums(self):
        returns = compute_returns([1.0, 0.0, 2.0], bootstrap_value=0.0,
                                  gamma=0.5)
        # R2 = 2; R1 = 0 + 0.5*2 = 1; R0 = 1 + 0.5*1 = 1.5
        np.testing.assert_allclose(returns, [1.5, 1.0, 2.0])

    def test_bootstrap_value_discounted_through(self):
        returns = compute_returns([0.0, 0.0], bootstrap_value=4.0,
                                  gamma=0.5)
        np.testing.assert_allclose(returns, [1.0, 2.0])

    def test_matches_paper_formula(self):
        """R_t = sum_i gamma^i r_{t+i} + gamma^k V(s_{t+k})."""
        rewards = [0.3, -1.0, 0.5, 2.0, 0.1]
        gamma = 0.99
        bootstrap = 1.7
        returns = compute_returns(rewards, bootstrap, gamma)
        for t in range(len(rewards)):
            k = len(rewards) - t
            expected = sum(gamma ** i * rewards[t + i] for i in range(k))
            expected += gamma ** k * bootstrap
            assert returns[t] == pytest.approx(expected, rel=1e-5)

    @hypothesis.given(
        st.lists(st.floats(-5, 5), min_size=1, max_size=20),
        st.floats(-5, 5),
        st.floats(0.01, 1.0))
    @hypothesis.settings(max_examples=50, deadline=None)
    def test_recurrence_property(self, rewards, bootstrap, gamma):
        """R_t == r_t + gamma * R_{t+1} for every t."""
        returns = compute_returns(rewards, bootstrap, gamma)
        for t in range(len(rewards) - 1):
            assert returns[t] == pytest.approx(
                rewards[t] + gamma * returns[t + 1], rel=1e-4, abs=1e-4)
        assert returns[-1] == pytest.approx(
            rewards[-1] + gamma * bootstrap, rel=1e-4, abs=1e-4)

    def test_gamma_one_is_plain_sum(self):
        returns = compute_returns([1.0, 1.0, 1.0], 0.0, gamma=1.0)
        np.testing.assert_allclose(returns, [3.0, 2.0, 1.0])


class TestRollout:
    def _filled(self, n=3):
        rollout = Rollout()
        for i in range(n):
            rollout.add(np.full((2, 2), i, dtype=np.float32), i,
                        float(i), float(i) / 2)
        return rollout

    def test_add_and_len(self):
        assert len(self._filled(4)) == 4

    def test_batch_shapes(self):
        states, actions, returns = self._filled(3).batch(0.0, 0.99)
        assert states.shape == (3, 2, 2)
        assert actions.dtype == np.int64
        assert returns.shape == (3,)

    def test_empty_batch_raises(self):
        with pytest.raises(ValueError):
            Rollout().batch(0.0, 0.99)

    def test_clear_resets(self):
        rollout = self._filled()
        rollout.terminal = True
        rollout.clear()
        assert len(rollout) == 0
        assert not rollout.terminal

    def test_advantages(self):
        rollout = Rollout()
        rollout.add(np.zeros(1, dtype=np.float32), 0, 1.0, 0.5)
        adv = rollout.advantages(bootstrap_value=0.0, gamma=0.9)
        assert adv[0] == pytest.approx(0.5)
