"""Tests for trainer-level checkpoint/resume."""

import os

import numpy as np
import pytest

from repro.core import A3CConfig, A3CTrainer
from repro.envs import Catch
from repro.nn.network import MLPPolicyNetwork


def _trainer(seed=3, max_steps=3000):
    config = A3CConfig(num_agents=2, t_max=5, max_steps=max_steps,
                       learning_rate=5e-3, seed=seed)
    return A3CTrainer(lambda i: Catch(size=5),
                      lambda: MLPPolicyNetwork(3, (5, 5), hidden=8),
                      config)


class TestTrainerCheckpoint:
    def test_save_restore_round_trip(self, tmp_path):
        trainer = _trainer()
        trainer.train(threads=False)
        path = os.path.join(tmp_path, "ckpt.npz")
        trainer.save_checkpoint(path)

        resumed = _trainer()
        metadata = trainer.server.global_step
        meta = resumed.restore_checkpoint(path)
        assert resumed.server.global_step == metadata
        assert resumed.server.params.allclose(trainer.server.params,
                                              rtol=0, atol=0)
        assert meta["config"]["learning_rate"] == pytest.approx(5e-3)

    def test_restore_syncs_agent_local_params(self, tmp_path):
        trainer = _trainer()
        trainer.train(threads=False)
        path = os.path.join(tmp_path, "ckpt.npz")
        trainer.save_checkpoint(path)

        resumed = _trainer()
        resumed.restore_checkpoint(path)
        for agent in resumed.agents:
            assert agent.local_params.allclose(resumed.server.params,
                                               rtol=0, atol=0)

    def test_restore_resumes_annealed_learning_rate(self, tmp_path):
        trainer = _trainer(max_steps=2000)
        trainer.train(threads=False)
        path = os.path.join(tmp_path, "ckpt.npz")
        trainer.save_checkpoint(path)

        resumed = _trainer(max_steps=4000)
        resumed.restore_checkpoint(path)
        # The learning rate continues from the saved step, not from 0.
        grads = resumed.server.params.zeros_like()
        lr = resumed.server.apply_gradients(grads)
        expected = resumed.config.learning_rate_at(
            resumed.server.global_step)
        assert lr == pytest.approx(expected)
        assert lr < resumed.config.learning_rate

    def test_resumed_training_continues(self, tmp_path):
        trainer = _trainer(max_steps=2000)
        trainer.train(threads=False)
        path = os.path.join(tmp_path, "ckpt.npz")
        trainer.save_checkpoint(path)

        resumed = _trainer(max_steps=4000)
        resumed.restore_checkpoint(path)
        result = resumed.train(threads=False)
        assert result.global_steps >= 4000
