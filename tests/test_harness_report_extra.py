"""Extra coverage for report formatting and the sim Store edge cases."""

import numpy as np
import pytest

from repro.harness.report import _fmt, format_curve, format_table
from repro.sim import Engine, Store


class TestFormatting:
    def test_fmt_small_floats_scientific(self):
        assert "e" in _fmt(1.3e-05)

    def test_fmt_large_floats_scientific(self):
        assert "e" in _fmt(3.2e9)

    def test_fmt_mid_range_floats_plain(self):
        assert _fmt(1234.5) == "1,234.5"
        assert _fmt(0.25) == "0.25"

    def test_fmt_zero_and_ints(self):
        assert _fmt(0.0) == "0"
        assert _fmt(42) == "42"

    def test_format_table_missing_column_blank(self):
        text = format_table([{"a": 1}, {"a": 2, "b": 3}],
                            columns=["a", "b"])
        assert "3" in text

    def test_format_curve_constant_scores(self):
        steps = np.arange(50)
        scores = np.full(50, 7.0)
        text = format_curve(steps, scores, "flat")
        assert "first=7.0" in text

    def test_format_curve_single_point(self):
        text = format_curve(np.array([1]), np.array([2.0]), "one")
        assert "one" in text


class TestStoreEdgeCases:
    def test_interleaved_getters_and_puts(self):
        engine = Engine()
        store = Store(engine)
        first = store.get()
        second = store.get()
        store.put("a")
        store.put("b")
        assert first.value == "a"
        assert second.value == "b"

    def test_put_counter(self):
        engine = Engine()
        store = Store(engine)
        for i in range(5):
            store.put(i)
        store.get_batch(3)
        assert store.total_puts == 5
        assert len(store) == 2

    def test_blocked_getter_inside_process(self):
        engine = Engine()
        store = Store(engine)
        received = []

        def consumer():
            item = yield store.get()
            received.append((item, engine.now))

        def producer():
            yield engine.timeout(2.0)
            store.put("late-item")

        engine.process(consumer())
        engine.process(producer())
        engine.run()
        assert received == [("late-item", 2.0)]

    def test_get_batch_zero(self):
        engine = Engine()
        store = Store(engine)
        store.put(1)
        assert store.get_batch(0) == []
        assert len(store) == 1
