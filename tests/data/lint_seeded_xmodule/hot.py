"""Seeded cross-module violations for the CI lint self-check.

Everything wrong here crosses a module boundary, so only the
whole-program rules can see it: the hot loop lives in this file while
its hazards hide in :mod:`helpers`; the seed contract is forked in
``helpers`` and consumed here; ``laya``/``layb`` form a cross-package
import cycle.  CI lints these files and asserts a non-zero exit whose
output names all three program rules — proof the interprocedural
pipeline is actually wired, not just configured.
"""
import numpy as np

from repro.perf.hotpath import hot_path

from . import helpers


@hot_path
def drain(batches):
    total = 0
    for batch in batches:
        total += int(helpers.scratch(len(batch))[0])
    helpers.emit(total)
    return total


def build_rng(seed, worker_id):
    return np.random.default_rng(helpers.fork_seed(seed, worker_id))
