"""One half of a deliberate cross-package import cycle (self-check)."""
from tests.data.lint_seeded_xmodule.layb import PONG

PING = "ping-" + PONG
