"""Hazard-bearing helpers for the seeded cross-module self-check.

Deliberately clean under the per-file rules: nothing here is hot and
nothing seeds an RNG, so every finding must arrive through the
whole-program index (``hot.drain`` reaching these hazards, and
``hot.build_rng`` consuming the forked seed contract).
"""
import numpy as np

from repro.obs import runtime as _obs


def emit(count):
    _obs.metrics().counter("drained").inc(count)


def scratch(n):
    return np.zeros(n)


def fork_seed(seed, worker_id):
    return seed * 31 + worker_id
