"""Other half of the deliberate cross-package import cycle."""
from tests.data.lint_seeded_xmodule.laya import PING

PONG = "pong-" + PING
