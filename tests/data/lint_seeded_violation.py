"""Deliberately violating module for the CI lint self-check.

CI runs ``repro lint`` over this file and asserts a non-zero exit, so a
silently broken linter (one that finds nothing anywhere) fails the build
instead of greenwashing it.  The violations here are path-independent:
they fire regardless of where the repository is checked out.
"""

import numpy as np

from repro.obs import runtime as _obs
from repro.perf.hotpath import hot_path

#: determinism: module-level draw from numpy's unseeded global RNG.
NOISE = np.random.rand(4)


@hot_path
def hot_leaf(values):
    # hot-path: ungated obs call and f-string in a @hot_path function.
    _obs.metrics().counter("seeded.violation").inc()
    return f"total={sum(values)}"
