# LINT-PATH: repro/harness/fixture_fp32_elsewhere.py
"""Corpus: fp32-order only applies inside the bit-exact modules."""
import numpy as np


def analysis(a, b):
    return np.dot(a, b) + np.sum(a)
