# LINT-PATH: repro/core/fixture_clock.py
"""Corpus: wall clock and set iteration are fine outside the scoped
modules (trainer-layer telemetry owns the host clock)."""
import time


def timed_round(work):
    started = time.perf_counter()
    for item in {1, 2}:
        work(item)
    return time.perf_counter() - started
