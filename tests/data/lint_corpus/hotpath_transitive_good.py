# LINT-PATH: repro/core/fixture_transitive_good.py
"""Corpus: hot-path-transitive true negatives.

Every crossing here is sanctioned: the call site is obs-gated (directly,
through a cached class flag, or the callee gates internally on an
optional recorder parameter), the callee is itself ``@hot_path`` (linted
directly), or the reached allocation is one-off straight-line code.
"""
import time

import numpy as np

from repro.obs import runtime as _obs
from repro.perf.hotpath import hot_path


def emit_metrics(count):
    _obs.metrics().counter("batch").inc(count)


def scratch(n):
    return np.zeros(n)


def record(steps, lat=None):
    started = time.perf_counter_ns() if lat is not None else 0
    if lat is not None:
        lat.add_ns("train", time.perf_counter_ns() - started)
    return steps


@hot_path
def hot_leaf(value):
    return value + 1


@hot_path
def one_off_allocation(n):
    buf = scratch(n)
    return int(buf[0])


@hot_path
def gated_call_site(total):
    if _obs.enabled():
        emit_metrics(total)
    return total


@hot_path
def recorder_param_callee(steps):
    return record(steps)


@hot_path
def hot_callee_checked_directly(values):
    total = 0
    for value in values:
        total += hot_leaf(value)
    return total


class Chain:
    def __init__(self):
        self._observing = _obs.enabled()

    @hot_path
    def advance(self, op):
        if self._observing:
            emit_metrics(op)
        return op
