# LINT-PATH: repro/core/fixture_transitive_bad.py
"""Corpus: hot-path-transitive true positives.

The hot function is clean line-by-line — every hazard lives in a plain
helper it calls.  Findings anchor at the call site inside the hot
function (the first hop of the chain).
"""
import time

import numpy as np

from repro.obs import runtime as _obs
from repro.perf.hotpath import hot_path


def emit_metrics(count):
    _obs.metrics().counter("batch").inc(count)


def stamp():
    return time.perf_counter()


def scratch(n):
    return np.zeros(n)


def relay(count):
    emit_metrics(count)


@hot_path
def drain(batches):
    total = 0
    for batch in batches:
        total += len(batch)
        buf = scratch(len(batch))                  # EXPECT: hot-path-transitive
        total += int(buf[0])
    stamp()                                        # EXPECT: hot-path-transitive
    relay(total)                                   # EXPECT: hot-path-transitive
    return total
