# LINT-PATH: repro/core/fixture_seedflow_bad.py
"""Corpus: seed-flow true positives (forked derivation contracts)."""
import numpy as np


def fork_contract(seed, worker_id):                # EXPECT: seed-flow
    return seed * 31 + worker_id


def inline_arithmetic(seed, num_workers):
    rngs = []
    for worker_id in range(num_workers):
        rngs.append(np.random.default_rng(seed * 1009 + worker_id))  # EXPECT: seed-flow
    return rngs


def named_provenance(env, seed, agent_id):
    agent_seed = seed * 7919 + agent_id
    env.seed(agent_seed)                           # EXPECT: seed-flow
    return env


def parallel_contract_call(seed, worker_id):
    return np.random.default_rng(fork_contract(seed, worker_id))  # EXPECT: seed-flow
