# LINT-PATH: repro/fpga/fixture_attribution_bad.py
"""Corpus: attribution true positives (cycle counters the profiler
never sees)."""


class Unit:
    def step(self, cycles):
        self.total_cycles += cycles                # EXPECT: attribution
        self.busy_ns += 2 * cycles                 # EXPECT: attribution
