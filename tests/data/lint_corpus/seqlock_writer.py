# LINT-PATH: repro/core/shared_params.py
"""Corpus: seqlock writer side — store-module mutations need the lock."""
import numpy as np


class Store:
    def unsafe_bump(self):
        self._version.value += 1                   # EXPECT: seqlock

    def unsafe_step(self, count):
        self._step.value = count                   # EXPECT: seqlock

    def unsafe_writes(self, data):
        self.theta_flat()[0] = 1.0                 # EXPECT: seqlock
        np.copyto(self.g_flat(), data)             # EXPECT: seqlock

    def safe_with_lock(self, data):
        with self.lock:
            self._step.value += 1
            np.copyto(self.g_flat(), data)

    def safe_after_acquire(self):
        self.lock.acquire()
        try:
            self._updates.value += 1
        finally:
            self.lock.release()

    def safe_via_helper(self, data):
        self._timed_acquire("apply")
        try:
            self.theta_flat()[:] = data
        finally:
            self.lock.release()
