# LINT-PATH: repro/core/fixture_layering_bad.py
# LINT-OPTIONS: {"layering": {"layers": ["trainers: repro.core", "platforms: repro.fpga"], "forbid": ["trainers -> platforms"]}}
"""Corpus: layering true positive — module-scope downward import."""
from repro.fpga import platform as fpga_platform   # EXPECT: layering


def build():
    return fpga_platform
