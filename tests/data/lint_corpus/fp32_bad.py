# LINT-PATH: repro/nn/fixture_fp32_bad.py
"""Corpus: fp32-order true positives (order-free / axis-less reductions)."""
import numpy as np


def reductions(a, b):
    unordered = np.dot(a, b)                       # EXPECT: fp32-order
    paired = np.inner(a, b)                        # EXPECT: fp32-order
    flat = np.vdot(a, b)                           # EXPECT: fp32-order
    pairwise = np.add.reduce(a)                    # EXPECT: fp32-order
    implicit = np.sum(a)                           # EXPECT: fp32-order
    method = (a * b).sum()                         # EXPECT: fp32-order
    return unordered, paired, flat, pairwise, implicit, method
