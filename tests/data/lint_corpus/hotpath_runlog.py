# LINT-PATH: repro/core/fixture_hot_runlog.py
"""Corpus: runlog shard writes in hot paths must be REPRO_OBS-gated."""
from repro.obs import runlog
from repro.obs import runtime as _obs
from repro.perf.hotpath import hot_path


@hot_path
def gated_shard_flush(shard, values):
    total = 0.0
    for value in values:
        total += value
    if _obs.enabled():
        shard.maybe_heartbeat(routines=total)
    return total


@hot_path
def early_return_gated_flush(shard, values):
    total = sum(values)
    if not _obs.enabled():
        return total
    shard.flush(final=True, routines=total)
    return total


@hot_path
def ungated_shard_writes(shard, run_dir, events, values):
    total = sum(values)
    shard.heartbeat(total)  # EXPECT: hot-path
    shard.maybe_heartbeat(routines=total)  # EXPECT: hot-path
    shard.flush(final=True)  # EXPECT: hot-path
    runlog.write_health(run_dir, events)  # EXPECT: hot-path
    return total


@hot_path
def stream_flush_is_not_a_shard(stream, values):
    total = sum(values)
    stream.flush()
    return total
