# LINT-PATH: repro/nn/quant.py
# LINT-OPTIONS: {"fp32-order": {"quantized-modules": ["repro/nn/quant.py"]}}
"""Corpus: declared quantized-kernel modules are exempt from fp32-order.

The module path is inside the rule's default ``repro/nn`` scope, but the
``quantized-modules`` config declaration lifts it out of the bit-exact
contract — no pragmas needed on the calls below.
"""
import numpy as np


def quantized_kernel(a, b):
    unordered = np.dot(a, b)
    implicit = np.sum(a)
    method = (a * b).sum()
    return unordered + implicit + method
