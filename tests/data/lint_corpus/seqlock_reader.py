# LINT-PATH: repro/core/fixture_reader.py
"""Corpus: seqlock reader side — only the snapshot API outside the store."""


def bad_reader(store, my_store, dest):
    raw = store.theta_flat()                       # EXPECT: seqlock
    stats = store.g_flat()                         # EXPECT: seqlock
    store.begin_write()                            # EXPECT: seqlock
    store.end_write()                              # EXPECT: seqlock
    version = store._version.value                 # EXPECT: seqlock
    buffer = my_store._theta                       # EXPECT: seqlock
    dest[:] = raw
    return stats, version, buffer


def good_reader(store, dest, params):
    store.snapshot_flat_into(dest)
    store.read_params_into(params)
    store.publish(params)
    return store.global_step


def unrelated_underscores(optimizer):
    # `_g` on a non-store base is the optimizer's own attribute.
    optimizer._g = 0.0
    return optimizer._g
