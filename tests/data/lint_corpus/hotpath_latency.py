# LINT-PATH: repro/core/fixture_hot_latency.py
"""Corpus: latency-recorder calls in hot paths must be REPRO_OBS-gated."""
from repro.obs import lat as _lat
from repro.obs import runtime as _obs
from repro.perf.hotpath import hot_path


@hot_path
def sentinel_gated_recorder(values):
    lat = _lat.RoutineLatency("corpus") if _obs.enabled() else None
    total = 0.0
    for value in values:
        total += value
    if lat is not None:
        lat.add_ns("infer", 1)
    timed = lat is not None
    if timed:
        lat.finish()
    return total


@hot_path
def block_gated_recorder(values):
    lat = None
    if _obs.enabled():
        lat = _lat.RoutineLatency("corpus")
    total = sum(values)
    if lat is not None:
        lat.add_ns("train", 2)
        lat.finish()
    return total


@hot_path
def ungated_recorder(lat, values):
    total = sum(values)
    lat.add_ns("infer", 1)  # EXPECT: hot-path
    lat.finish()  # EXPECT: hot-path
    _lat.RoutineLatency("corpus")  # EXPECT: hot-path
    return total


@hot_path
def writer_finish_is_not_a_recorder(writer, values):
    total = sum(values)
    writer.finish()
    return total
