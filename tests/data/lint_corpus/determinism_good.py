# LINT-PATH: repro/fpga/fixture_determinism_good.py
"""Corpus: determinism true negatives (seeded RNG, stable iteration)."""
import random

import numpy as np


def seeded_simulator(seed):
    rng = np.random.default_rng(seed)
    weights = rng.normal(size=4)
    coin = random.Random(seed)
    jitter = coin.random()
    total = 0.0
    for item in sorted({1, 2, 3}):
        total += item
    for item in (4, 5, 6):
        total += item
    return weights, jitter, total
