# LINT-PATH: repro/nn/ops.py
# LINT-OPTIONS: {"fp32-order": {"quantized-modules": ["repro/nn/quant.py"]}}
"""Corpus: the quantized-modules exemption is surgical.

Same options as ``fp32_quantized_ok.py``, but this file is *not* one of
the declared quantized modules, so the bit-exact contract still applies
in full.
"""
import numpy as np


def ordinary_kernel(a, b):
    unordered = np.dot(a, b)                       # EXPECT: fp32-order
    implicit = np.sum(a)                           # EXPECT: fp32-order
    return unordered + implicit
