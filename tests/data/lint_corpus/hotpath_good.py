# LINT-PATH: repro/core/fixture_hot_good.py
"""Corpus: hot-path true negatives (every gating idiom the repo uses)."""
import time

import numpy as np

from repro.obs import runtime as _obs
from repro.perf.hotpath import hot_path


@hot_path
def if_block_gate(values, out):
    started = time.perf_counter() if _obs.enabled() else 0.0
    total = 0.0
    for value in values:
        total += value
        out[0] = total
    if _obs.enabled():
        _obs.metrics().counter("fixture.calls").inc()
        _obs.metrics().histogram("fixture.seconds").observe(
            time.perf_counter() - started)
    return total


@hot_path
def early_return_gate(values):
    total = float(np.add.reduce(np.asarray(values), axis=0))
    if not _obs.enabled():
        return total
    _obs.metrics().counter("fixture.totals").inc()
    return total


@hot_path
def alias_gate(values):
    observing = _obs.enabled()
    if observing:
        _obs.metrics().counter("fixture.aliased").inc()
    if not values:
        raise ValueError(f"no values: {values!r}")
    return len(values)


@hot_path
def span_gate(values):
    with _obs.span("fixture", "work"):
        return max(values)


@hot_path
def reset_handed_off_list(events):
    for event in events:
        event.callbacks = []
    return events


def cold_path(values):
    print(f"cold code may allocate freely: {list(values)!r}")
    return [v * v for v in values]
