# LINT-PATH: repro/core/fixture_layering_good.py
# LINT-OPTIONS: {"layering": {"layers": ["trainers: repro.core", "platforms: repro.fpga"], "forbid": ["trainers -> platforms"]}}
"""Corpus: layering true negative — a lazy (function-scoped) import is
the sanctioned way to cross downward: nothing binds at module import
time, so layer load order stays acyclic."""


def build():
    from repro.fpga import platform as fpga_platform
    return fpga_platform
