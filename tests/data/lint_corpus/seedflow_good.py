# LINT-PATH: repro/core/fixture_seedflow_good.py
"""Corpus: seed-flow true negatives (the contract, and non-derivations)."""
import numpy as np

from repro.backends.protocol import derive_agent_seed


def through_the_contract(seed, num_workers):
    return [np.random.default_rng(derive_agent_seed(seed, wid))
            for wid in range(num_workers)]


def plain_passthrough(seed):
    return np.random.default_rng(seed)


def fixed_offset_not_a_stream(seed):
    return np.random.default_rng(seed + 1)
