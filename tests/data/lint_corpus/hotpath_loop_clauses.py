# LINT-PATH: repro/core/fixture_hot_loops.py
"""Corpus: loop-clause semantics — only what re-executes per iteration.

A ``for`` iterable is evaluated once; ``else`` clauses run once on
normal exit; a ``while`` test re-evaluates every iteration; and an
outer loop makes everything inside per-iteration regardless of clause.
"""
import numpy as np

from repro.perf.hotpath import hot_path


@hot_path
def while_test_reallocates(limit):
    index = 0
    while index < len(np.zeros(3)):                # EXPECT: hot-path
        index += 1
        if index >= limit:
            break
    return index


@hot_path
def for_iterable_and_else_run_once(n):
    total = 0.0
    for value in np.zeros(n):
        total += value
    else:
        leftovers = np.ones(n)
        total += leftovers[0]
    return total


@hot_path
def while_body_reallocates(n):
    count = 0
    while count < n:
        scratch = np.zeros(4)                      # EXPECT: hot-path
        count += int(scratch[0]) + 1
    else:
        tail = np.ones(2)
        count += int(tail[0])
    return count


@hot_path
def outer_loop_poisons_inner_iterable(rows):
    total = 0.0
    for row in rows:
        for value in np.zeros(3):                  # EXPECT: hot-path
            total += value + row
    return total
