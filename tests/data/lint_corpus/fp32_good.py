# LINT-PATH: repro/nn/fixture_fp32_good.py
"""Corpus: fp32-order true negatives (explicit axis/order intent)."""
import numpy as np


def reductions(a, b):
    gemm = np.matmul(a, b)
    ordered = np.add.reduce(a, axis=0, dtype=np.float32)
    running = np.add.accumulate(a, dtype=np.float32)
    deliberate = a.sum(axis=None)
    rows = np.sum(a, axis=1)
    positional = np.sum(a, 0)
    return gemm, ordered, running, deliberate, rows, positional
