# LINT-PATH: repro/core/fixture_hot_bad.py
"""Corpus: hot-path true positives (ungated telemetry and allocation)."""
import time

import numpy as np

from repro.obs import runtime as _obs
from repro.perf.hotpath import hot_path


@hot_path
def leaf(values):
    started = time.perf_counter()                  # EXPECT: hot-path
    _obs.metrics().counter("x").inc()              # EXPECT: hot-path
    label = f"n={len(values)}"                     # EXPECT: hot-path
    total = 0.0
    for value in values:
        scratch = np.zeros(4)                      # EXPECT: hot-path
        extras = list(values)                      # EXPECT: hot-path
        squares = [v * v for v in values]          # EXPECT: hot-path
        copied = value.copy()                      # EXPECT: hot-path
        total += scratch[0] + len(extras) + len(squares) + copied
    print(total)                                   # EXPECT: hot-path
    return started, label, total
