# LINT-PATH: repro/fpga/fixture_attribution_good.py
"""Corpus: attribution true negatives (mirrored or decomposed counters)."""
from repro.obs import runtime as _obs
from repro.obs.prof.buckets import fpga_stage_buckets


class Unit:
    def gated_mirror(self, cycles):
        self.total_cycles += cycles
        if _obs.enabled():
            _obs.metrics().counter("fpga.fixture.cycles").inc(cycles)

    def decomposed(self, stage, cycles):
        self.stage_cycles += cycles
        return fpga_stage_buckets(stage, cycles)

    def local_accumulator(self, cycles):
        total_cycles = 0
        total_cycles += cycles
        return total_cycles

    def non_cycle_counter(self, n):
        self.updates += n
