# LINT-PATH: repro/fpga/fixture_determinism_bad.py
"""Corpus: determinism true positives (unseeded RNG, wall clock, sets)."""
import random
import time

import numpy as np


def noisy_simulator():
    weights = np.random.rand(4)                    # EXPECT: determinism
    jitter = random.random()                       # EXPECT: determinism
    shuffled = np.random.permutation(4)            # EXPECT: determinism
    started = time.time()                          # EXPECT: determinism
    tick = time.perf_counter()                     # EXPECT: determinism
    total = 0.0
    for item in {1, 2, 3}:                         # EXPECT: determinism
        total += item
    ordered = [x for x in set([4, 5])]             # EXPECT: determinism
    return weights, jitter, shuffled, started, tick, total, ordered
