"""Tests for the ASCII renderer plus failure-injection/robustness cases
across the simulation and hardware substrates."""

import numpy as np
import pytest

from repro.ale import make_game
from repro.ale.render import screen_to_ascii, side_by_side
from repro.fpga.buffers import LineBuffer, OnChipBuffer
from repro.fpga.cu import ComputeUnit
from repro.fpga.layouts import dram_image_from_fw, fw_layout
from repro.fpga.platform import FA3CPlatform, FPGAConfig
from repro.nn.network import A3CNetwork, LayerSpec
from repro.sim import Engine, Resource


class TestAsciiRender:
    def test_dimensions(self):
        frame = np.zeros((210, 160, 3), dtype=np.uint8)
        text = screen_to_ascii(frame, width=40, height=20)
        lines = text.splitlines()
        assert len(lines) == 20
        assert all(len(line) == 40 for line in lines)

    def test_bright_object_visible(self):
        frame = np.zeros((210, 160, 3), dtype=np.uint8)
        frame[100:120, 70:90] = 255
        text = screen_to_ascii(frame, width=40, height=20)
        assert "@" in text
        assert " " in text

    def test_constant_frame_no_crash(self):
        frame = np.full((210, 160, 3), 80, dtype=np.uint8)
        text = screen_to_ascii(frame)
        assert len(text.splitlines()) == 28

    def test_grayscale_input(self):
        text = screen_to_ascii(np.zeros((84, 84), dtype=np.float32),
                               width=10, height=5)
        assert len(text.splitlines()) == 5

    def test_side_by_side_alignment(self):
        combined = side_by_side("ab\ncd", "XY\nZW\nQQ")
        lines = combined.splitlines()
        assert len(lines) == 3
        assert lines[0].endswith("XY")
        assert lines[2].strip() == "QQ"

    def test_game_render_is_recognisable(self):
        game = make_game("breakout")
        game.seed(0)
        game.reset()
        text = screen_to_ascii(game.screen.copy())
        # walls + bricks produce a spread of glyphs, not a blank frame
        assert len(set(text) - {"\n"}) >= 4


class TestRobustness:
    def test_engine_survives_many_simultaneous_events(self):
        engine = Engine()
        fired = []
        for i in range(1000):
            engine.timeout(1.0).callbacks.append(
                lambda e, i=i: fired.append(i))
        engine.run()
        assert fired == list(range(1000))

    def test_resource_heavy_contention(self):
        engine = Engine()
        resource = Resource(engine, capacity=3)
        done = []

        def worker(i):
            yield from resource.use(1.0)
            done.append(i)

        for i in range(30):
            engine.process(worker(i))
        engine.run()
        assert len(done) == 30
        assert engine.now == pytest.approx(10.0)
        assert resource.in_use == 0

    def test_line_buffer_full_drain_and_reuse(self):
        line = LineBuffer(8)
        line.load(np.arange(8, dtype=np.float32))
        line.shift(100)           # over-shift clamps
        assert line.registers.sum() == 0
        line.load(np.ones(8, dtype=np.float32))
        assert line.registers.sum() == 8

    def test_onchip_buffer_row_bounds(self):
        buffer = OnChipBuffer("b", rows=2)
        with pytest.raises(IndexError):
            buffer.write_row(5, np.zeros(4, dtype=np.float32))

    def test_cu_rejects_mismatched_image(self):
        cu = ComputeUnit("cu")
        spec = LayerSpec(name="FC", kind="dense", in_channels=8,
                         out_channels=8, kernel=1, stride=1,
                         in_height=1, in_width=1, out_height=1,
                         out_width=1)
        wrong_image = np.zeros(37, dtype=np.float32)  # not patch-shaped
        with pytest.raises(ValueError):
            cu.load_fw_parameters(wrong_image, spec)

    def test_platform_invalid_layout_mode(self):
        topology = A3CNetwork(6).topology()
        with pytest.raises(ValueError):
            FA3CPlatform(topology, FPGAConfig(layout_mode="bogus"))

    def test_platform_zero_buffering_config(self):
        """Disabling double buffering degrades but never breaks."""
        topology = A3CNetwork(6).topology()
        platform = FA3CPlatform.fa3c(topology, double_buffering=False)
        assert platform.inference_latency() > \
            FA3CPlatform.fa3c(topology).inference_latency()

    def test_game_reseed_mid_episode(self):
        """Re-seeding between episodes must not corrupt game state."""
        game = make_game("seaquest")
        game.seed(1)
        game.reset()
        for _ in range(50):
            game.step(0)
        game.seed(2)
        obs = game.reset()
        assert obs.shape == (210, 160, 3)
        for _ in range(50):
            game.step(0)

    def test_network_rejects_wrong_input_channels(self):
        net = A3CNetwork(6)
        params = net.init_params(np.random.default_rng(0))
        with pytest.raises(ValueError):
            net.forward(np.zeros((1, 3, 84, 84), dtype=np.float32),
                        params)
