"""Tests for the parameter server, agents, trainers, and baselines."""

import numpy as np
import pytest

from repro.core import (
    A3CConfig,
    A3CTrainer,
    GA3CTrainer,
    PAACTrainer,
    ParameterServer,
    ScoreTracker,
    moving_average,
)
from repro.core.parameter_server import clip_by_global_norm
from repro.envs import Catch
from repro.envs.base import Env
from repro.envs.spaces import Box, Discrete
from repro.nn import ParameterSet
from repro.nn.network import MLPPolicyNetwork


class Bandit(Env):
    """One-step episodes: action 0 pays +1, action 1 pays -1."""

    def __init__(self):
        super().__init__()
        self.observation_space = Box(0, 1, (2,))
        self.action_space = Discrete(2)

    def reset(self):
        return np.ones(2, dtype=np.float32)

    def step(self, action):
        reward = 1.0 if int(action) == 0 else -1.0
        return np.ones(2, dtype=np.float32), reward, True, {}


def bandit_net():
    return MLPPolicyNetwork(num_actions=2, input_shape=(2,), hidden=8)


class TestA3CConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            A3CConfig(num_agents=0)
        with pytest.raises(ValueError):
            A3CConfig(t_max=0)
        with pytest.raises(ValueError):
            A3CConfig(gamma=1.5)

    def test_learning_rate_anneals_linearly_to_zero(self):
        config = A3CConfig(learning_rate=1e-3, max_steps=1000)
        assert config.learning_rate_at(0) == pytest.approx(1e-3)
        assert config.learning_rate_at(500) == pytest.approx(5e-4)
        assert config.learning_rate_at(1000) == 0.0
        assert config.learning_rate_at(2000) == 0.0

    def test_anneal_steps_override(self):
        config = A3CConfig(learning_rate=1e-3, max_steps=10,
                           anneal_steps=100)
        assert config.effective_anneal_steps == 100


class TestClipByGlobalNorm:
    def test_no_clip_under_threshold(self):
        grads = ParameterSet({"w": np.array([3.0, 4.0])})  # norm 5
        norm = clip_by_global_norm(grads, 10.0)
        assert norm == pytest.approx(5.0)
        np.testing.assert_allclose(grads["w"], [3.0, 4.0])

    def test_clips_to_threshold(self):
        grads = ParameterSet({"w": np.array([3.0, 4.0])})
        clip_by_global_norm(grads, 1.0)
        assert np.linalg.norm(grads["w"]) == pytest.approx(1.0, rel=1e-5)

    def test_norm_is_global_across_arrays(self):
        grads = ParameterSet({"a": np.array([3.0]), "b": np.array([4.0])})
        assert clip_by_global_norm(grads, 100.0) == pytest.approx(5.0)


class TestParameterServer:
    def _server(self):
        net = bandit_net()
        params = net.init_params(np.random.default_rng(0))
        return ParameterServer(params, A3CConfig(max_steps=1000)), net

    def test_snapshot_is_copy(self):
        server, _ = self._server()
        snap = server.snapshot()
        snap["FC1.weight"][0, 0] = 99.0
        assert server.params["FC1.weight"][0, 0] != 99.0

    def test_snapshot_into_syncs(self):
        server, _ = self._server()
        local = server.snapshot()
        server.params["FC1.weight"][0, 0] = 7.0
        server.snapshot_into(local)
        assert local["FC1.weight"][0, 0] == 7.0

    def test_step_counter_atomic_accumulation(self):
        server, _ = self._server()
        assert server.add_steps(5) == 5
        assert server.add_steps(3) == 8
        assert server.global_step == 8

    def test_apply_gradients_changes_params_and_counts(self):
        server, _ = self._server()
        grads = server.params.zeros_like()
        grads["FC1.weight"] += 1.0
        before = server.params["FC1.weight"].copy()
        lr = server.apply_gradients(grads)
        assert lr == pytest.approx(server.config.learning_rate)
        assert server.updates_applied == 1
        assert not np.allclose(server.params["FC1.weight"], before)

    def test_learning_rate_decays_with_steps(self):
        server, _ = self._server()
        server.add_steps(500)
        grads = server.params.zeros_like()
        lr = server.apply_gradients(grads)
        assert lr == pytest.approx(server.config.learning_rate * 0.5)


class TestA3CTrainer:
    def test_bandit_is_solved(self):
        config = A3CConfig(num_agents=2, t_max=5, max_steps=4000,
                           learning_rate=1e-2, anneal_steps=10 ** 9,
                           seed=1)
        trainer = A3CTrainer(lambda i: Bandit(), bandit_net, config)
        result = trainer.train(threads=False)
        assert result.global_steps >= 4000
        assert result.tracker.recent_mean(200) > 0.8

    def test_threaded_mode_runs(self):
        config = A3CConfig(num_agents=2, t_max=5, max_steps=600,
                           learning_rate=1e-2, seed=2)
        trainer = A3CTrainer(lambda i: Bandit(), bandit_net, config)
        result = trainer.train(threads=True)
        assert result.global_steps >= 600
        assert result.episodes > 0

    def test_progress_callback_invoked(self):
        config = A3CConfig(num_agents=1, t_max=5, max_steps=300, seed=0)
        trainer = A3CTrainer(lambda i: Bandit(), bandit_net, config)
        calls = []
        trainer.train(threads=False,
                      progress=lambda step, tracker: calls.append(step),
                      progress_interval=100)
        assert calls and calls[0] >= 100

    def test_catch_learns_round_robin(self):
        config = A3CConfig(num_agents=4, t_max=5, max_steps=40_000,
                           learning_rate=1e-2, anneal_steps=10 ** 9,
                           entropy_beta=0.02, seed=1)
        trainer = A3CTrainer(
            lambda i: Catch(size=5),
            lambda: MLPPolicyNetwork(3, (5, 5), hidden=32), config)
        result = trainer.train(threads=False)
        assert result.tracker.recent_mean(300) > 0.5

    def test_agents_have_independent_envs_and_networks(self):
        config = A3CConfig(num_agents=3, t_max=2, max_steps=10, seed=0)
        trainer = A3CTrainer(lambda i: Bandit(), bandit_net, config)
        envs = {id(agent.env) for agent in trainer.agents}
        nets = {id(agent.network) for agent in trainer.agents}
        assert len(envs) == 3 and len(nets) == 3


class TestBaselines:
    def test_ga3c_learns_bandit(self):
        config = A3CConfig(num_agents=4, t_max=5, max_steps=6000,
                           learning_rate=1e-2, anneal_steps=10 ** 9,
                           seed=3)
        result = GA3CTrainer(lambda i: Bandit(), bandit_net, config,
                             training_batch_rollouts=2).train()
        assert result.tracker.recent_mean(200) > 0.7

    def test_paac_learns_bandit(self):
        config = A3CConfig(num_agents=4, t_max=5, max_steps=6000,
                           learning_rate=1e-2, anneal_steps=10 ** 9,
                           seed=4)
        result = PAACTrainer(lambda i: Bandit(), bandit_net,
                             config).train()
        assert result.tracker.recent_mean(200) > 0.7

    def test_paac_is_synchronous(self):
        """All agents advance in lockstep: global steps are a multiple of
        num_agents * t_max after each round."""
        config = A3CConfig(num_agents=3, t_max=4, max_steps=24, seed=0)
        trainer = PAACTrainer(lambda i: Bandit(), bandit_net, config)
        result = trainer.train()
        assert result.global_steps % (3 * 4) == 0


class TestScoreTracker:
    def test_moving_average_growing_window(self):
        out = moving_average([1, 2, 3, 4], window=2)
        np.testing.assert_allclose(out, [1.0, 1.5, 2.5, 3.5])

    def test_moving_average_empty(self):
        assert moving_average([], 10).size == 0

    def test_curve_and_recent_mean(self):
        tracker = ScoreTracker(window=2)
        for step, score in [(10, 1.0), (20, 3.0), (30, 5.0)]:
            tracker.record(step, score)
        steps, curve = tracker.curve()
        np.testing.assert_array_equal(steps, [10, 20, 30])
        np.testing.assert_allclose(curve, [1.0, 2.0, 4.0])
        assert tracker.recent_mean(2) == pytest.approx(4.0)

    def test_steps_to_reach(self):
        tracker = ScoreTracker()
        for step, score in [(10, 0.0), (20, 10.0), (30, 10.0)]:
            tracker.record(step, score)
        assert tracker.steps_to_reach(5.0, window=1) == 20
        assert tracker.steps_to_reach(100.0) is None

    def test_recent_mean_empty_is_nan(self):
        assert np.isnan(ScoreTracker().recent_mean())
