"""Tests for the convolution/dense/activation primitives, including
property-based checks of the im2col/col2im adjoint pair and numerical
gradient validation."""

import hypothesis
import hypothesis.strategies as st
import numpy as np
import pytest

from repro.nn import functional as F


def naive_conv(x, w, b, stride):
    """Reference convolution with explicit loops."""
    n, c, h, width = x.shape
    o, i, k, _ = w.shape
    oh = (h - k) // stride + 1
    ow = (width - k) // stride + 1
    y = np.zeros((n, o, oh, ow), dtype=np.float64)
    for ni in range(n):
        for oi in range(o):
            for r in range(oh):
                for col in range(ow):
                    patch = x[ni, :, r * stride:r * stride + k,
                              col * stride:col * stride + k]
                    y[ni, oi, r, col] = (patch * w[oi]).sum() + b[oi]
    return y.astype(np.float32)


small_conv = st.tuples(
    st.integers(1, 2),            # batch
    st.integers(1, 3),            # in channels
    st.integers(1, 4),            # out channels
    st.sampled_from([(5, 2, 1), (5, 2, 2), (7, 3, 2), (4, 3, 1)]),
)


class TestConvForward:
    def test_output_size(self):
        assert F.conv_output_size(84, 8, 4) == 20
        assert F.conv_output_size(20, 4, 2) == 9

    def test_output_size_too_small(self):
        with pytest.raises(ValueError):
            F.conv_output_size(3, 4, 1)

    def test_channel_mismatch_raises(self):
        x = np.zeros((1, 3, 8, 8), dtype=np.float32)
        w = np.zeros((4, 2, 3, 3), dtype=np.float32)
        with pytest.raises(ValueError):
            F.conv_forward(x, w, np.zeros(4, dtype=np.float32), 1)

    @hypothesis.given(small_conv, st.integers(0, 2 ** 31 - 1))
    @hypothesis.settings(max_examples=25, deadline=None)
    def test_matches_naive_convolution(self, dims, seed):
        n, c, o, (size, k, stride) = dims
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((n, c, size, size)).astype(np.float32)
        w = rng.standard_normal((o, c, k, k)).astype(np.float32)
        b = rng.standard_normal(o).astype(np.float32)
        y, _ = F.conv_forward(x, w, b, stride)
        np.testing.assert_allclose(y, naive_conv(x, w, b, stride),
                                   rtol=1e-4, atol=1e-4)

    def test_a3c_conv1_shape(self):
        x = np.zeros((2, 4, 84, 84), dtype=np.float32)
        w = np.zeros((16, 4, 8, 8), dtype=np.float32)
        y, cols = F.conv_forward(x, w, np.zeros(16, dtype=np.float32), 4)
        assert y.shape == (2, 16, 20, 20)
        assert cols.shape == (2, 4 * 64, 400)


class TestIm2ColAdjoint:
    @hypothesis.given(small_conv, st.integers(0, 2 ** 31 - 1))
    @hypothesis.settings(max_examples=25, deadline=None)
    def test_col2im_is_adjoint_of_im2col(self, dims, seed):
        """<im2col(x), y> == <x, col2im(y)> — the defining property of
        the adjoint, which backward propagation relies on."""
        n, c, _o, (size, k, stride) = dims
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((n, c, size, size)).astype(np.float64)
        cols, _ = F.im2col(x, k, stride)
        y = rng.standard_normal(cols.shape)
        lhs = float((cols * y).sum())
        back = F.col2im(y, x.shape, k, stride)
        rhs = float((x * back).sum())
        assert lhs == pytest.approx(rhs, rel=1e-9)

    def test_col2im_accumulates_overlaps(self):
        cols = np.ones((1, 4, 4), dtype=np.float32)  # k=2, 3x3 input, s=1
        out = F.col2im(cols, (1, 1, 3, 3), 2, 1)
        # centre element overlaps all four windows
        assert out[0, 0, 1, 1] == 4.0
        assert out[0, 0, 0, 0] == 1.0


class TestGradients:
    def _conv_setup(self, seed=0):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((2, 3, 7, 7)).astype(np.float64)
        w = rng.standard_normal((4, 3, 3, 3)).astype(np.float64)
        b = rng.standard_normal(4).astype(np.float64)
        return x, w, b

    def test_conv_backward_input_matches_numerical(self):
        x, w, b = self._conv_setup()
        target = np.random.default_rng(1).standard_normal((2, 4, 3, 3))

        def loss():
            y, _ = F.conv_forward(x, w, b, 2)  # float64 throughout
            return float((y * target).sum())

        dx = F.conv_backward_input(target, w, 2, x.shape)
        from repro.nn.gradcheck import numerical_gradient
        numeric = numerical_gradient(loss, x, eps=1e-5)
        np.testing.assert_allclose(dx, numeric, rtol=1e-4, atol=1e-7)

    def test_conv_grad_params_matches_numerical(self):
        x, w, b = self._conv_setup()
        target = np.random.default_rng(1).standard_normal((2, 4, 3, 3))

        def loss():
            y, _ = F.conv_forward(x, w, b, 2)  # float64 throughout
            return float((y * target).sum())

        cols, _ = F.im2col(x, 3, 2)
        dw, db = F.conv_grad_params(cols, target, w.shape)
        from repro.nn.gradcheck import numerical_gradient
        np.testing.assert_allclose(dw, numerical_gradient(loss, w, 1e-5),
                                   rtol=1e-4, atol=1e-7)
        np.testing.assert_allclose(db, numerical_gradient(loss, b, 1e-5),
                                   rtol=1e-4, atol=1e-7)

    def test_dense_gradients_match_numerical(self):
        rng = np.random.default_rng(3)
        x = rng.standard_normal((4, 6)).astype(np.float64)
        w = rng.standard_normal((5, 6)).astype(np.float64)
        b = rng.standard_normal(5).astype(np.float64)
        target = rng.standard_normal((4, 5))

        def loss():
            return float((F.dense_forward(x, w, b) * target).sum())

        from repro.nn.gradcheck import numerical_gradient
        dw, db = F.dense_grad_params(x, target)
        dx = F.dense_backward_input(target, w)
        np.testing.assert_allclose(dw, numerical_gradient(loss, w, 1e-5),
                                   rtol=1e-3, atol=1e-6)
        np.testing.assert_allclose(db, numerical_gradient(loss, b, 1e-5),
                                   rtol=1e-3, atol=1e-6)
        np.testing.assert_allclose(dx, numerical_gradient(loss, x, 1e-5),
                                   rtol=1e-3, atol=1e-6)


class TestReLU:
    def test_forward_clamps_negatives(self):
        x = np.array([-2.0, -0.5, 0.0, 0.5, 2.0], dtype=np.float32)
        np.testing.assert_array_equal(
            F.relu_forward(x), [0.0, 0.0, 0.0, 0.5, 2.0])

    def test_backward_masks_gradient(self):
        x = np.array([-1.0, 1.0], dtype=np.float32)
        dy = np.array([5.0, 5.0], dtype=np.float32)
        np.testing.assert_array_equal(F.relu_backward(dy, x), [0.0, 5.0])

    @hypothesis.given(st.integers(0, 2 ** 31 - 1))
    @hypothesis.settings(max_examples=20, deadline=None)
    def test_relu_gradient_zero_exactly_where_input_nonpositive(self, seed):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal(50).astype(np.float32)
        dy = rng.standard_normal(50).astype(np.float32)
        dx = F.relu_backward(dy, x)
        np.testing.assert_array_equal(dx[x <= 0], 0.0)
        np.testing.assert_array_equal(dx[x > 0], dy[x > 0])
