"""Tests for the synchronous vectorised environment."""

import numpy as np
import pytest

from repro.envs import Catch, SyncVectorEnv
from repro.envs.classic import MemoryCue


def _vec(n=3, seed=0):
    return SyncVectorEnv([lambda: Catch(size=5) for _ in range(n)],
                         seed=seed)


class TestSyncVectorEnv:
    def test_requires_environments(self):
        with pytest.raises(ValueError):
            SyncVectorEnv([])

    def test_reset_shape_and_dtype(self):
        vec = _vec(4)
        obs = vec.reset()
        assert obs.shape == (4, 5, 5)
        assert obs.dtype == np.float32

    def test_observations_before_reset_raises(self):
        with pytest.raises(RuntimeError):
            _ = _vec().observations

    def test_step_contract(self):
        vec = _vec(3)
        vec.reset()
        step = vec.step([1, 1, 1])
        assert step.observations.shape == (3, 5, 5)
        assert step.rewards.shape == (3,)
        assert step.dones.dtype == bool
        assert len(step.infos) == 3

    def test_action_count_validated(self):
        vec = _vec(3)
        vec.reset()
        with pytest.raises(ValueError):
            vec.step([1, 1])

    def test_done_slots_auto_reset(self):
        vec = _vec(2)
        vec.reset()
        for _ in range(4):           # Catch(5) episodes last 4 steps
            step = vec.step([1, 1])
        assert step.dones.all()
        # No exception on the next step: slots were reset.
        vec.step([1, 1])

    def test_finished_scores_reported_once(self):
        vec = _vec(2, seed=1)
        vec.reset()
        scores = []
        for _ in range(20):
            step = vec.step([1, 1])
            scores.extend(step.finished_scores)
        # 20 steps / 4-step episodes x 2 slots = 10 finished games.
        assert len(scores) == 10
        assert all(score in (-1.0, 1.0) for _, score in scores)

    def test_independent_seeding_per_slot(self):
        vec = _vec(2, seed=5)
        obs = vec.reset()
        # With distinct streams the two slots rarely share a ball column
        # across several resets; check they are not always identical.
        different = not np.array_equal(obs[0], obs[1])
        for _ in range(12):
            step = vec.step([1, 1])
            different = different or not np.array_equal(
                step.observations[0], step.observations[1])
        assert different

    def test_deterministic_under_seed(self):
        def trace(seed):
            vec = _vec(2, seed=seed)
            vec.reset()
            out = []
            for _ in range(12):
                step = vec.step([0, 2])
                out.append((step.rewards.tolist(),
                            step.dones.tolist()))
            return out
        assert trace(9) == trace(9)
        assert trace(9) != trace(10)

    def test_heterogeneous_episode_lengths(self):
        vec = SyncVectorEnv([lambda: MemoryCue(delay=1),
                             lambda: MemoryCue(delay=4)], seed=0)
        vec.reset()
        step = vec.step([0, 0])
        assert step.dones[0] and not step.dones[1]

    def test_heterogeneous_action_spaces_rejected(self):
        # Catch is Discrete(3); MemoryCue is Discrete(2).  Slot 0's
        # space sizes the policy head, so mixing must fail fast.
        with pytest.raises(ValueError, match="heterogeneous"):
            SyncVectorEnv([lambda: Catch(size=5),
                           lambda: MemoryCue(delay=2)])

    def test_same_sized_action_spaces_accepted(self):
        vec = SyncVectorEnv([lambda: Catch(size=5),
                             lambda: Catch(size=7)], seed=0)
        assert vec.num_envs == 2
