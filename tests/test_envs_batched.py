"""BatchedVectorEnv as a bit-exact drop-in for SyncVectorEnv.

The batched path must reproduce the scalar wrapper stack — MaxAndSkip /
EpisodicLife / AtariPreprocessing / FrameStack / ClipReward / TimeLimit
— per slot: same observations, rewards, dones, infos and finished
scores under the same seed and actions.  ``Catch``-style toy envs are
not covered (the engine wraps the SoA Atari games only).
"""

import numpy as np
import pytest

from repro.ale import GAME_NAMES, make_game
from repro.envs import BatchedVectorEnv, SyncVectorEnv, make_atari_env
from repro.envs.batched import BatchPreprocessor
from repro.envs.preprocessing import preprocess_frame

SEED = 17
BATCH = 3


def _scalar_vec(name, batch, seed, **kwargs):
    return SyncVectorEnv(
        [lambda: make_atari_env(make_game(name), **kwargs)
         for _ in range(batch)],
        seed=seed)


def _assert_steps_match(step_a, step_b, context):
    assert np.array_equal(step_a.observations, step_b.observations), context
    assert np.array_equal(step_a.rewards, step_b.rewards), context
    assert np.array_equal(step_a.dones, step_b.dones), context
    assert step_a.infos == step_b.infos, context
    assert step_a.finished_scores == step_b.finished_scores, context


def _run_pair(name, steps=150, batch=BATCH, seed=SEED, **kwargs):
    batched = BatchedVectorEnv(name, num_envs=batch, seed=seed, **kwargs)
    scalar = _scalar_vec(name, batch, seed, **kwargs)
    obs_b = batched.reset()
    obs_s = scalar.reset()
    assert obs_b.dtype == obs_s.dtype == np.float32
    assert np.array_equal(obs_b, obs_s)
    rng = np.random.default_rng(99)
    for step in range(steps):
        actions = rng.integers(0, batched.action_space.n, size=batch)
        _assert_steps_match(batched.step(actions),
                            scalar.step(actions.tolist()),
                            (name, step, kwargs))
    batched.close()
    scalar.close()


@pytest.mark.parametrize("name", GAME_NAMES)
def test_default_stack_bit_identical(name):
    _run_pair(name)


def test_no_episodic_life():
    _run_pair("breakout", steps=120, episodic_life=False)


def test_unclipped_rewards():
    _run_pair("qbert", steps=120, clip_rewards=False)


def test_time_limit_truncation():
    _run_pair("pong", steps=120, max_episode_steps=25)


def test_frame_skip_and_stack_variants():
    _run_pair("seaquest", steps=80, frame_skip=2, stack=2)


def test_reset_after_steps_matches():
    """A mid-run reset (EpisodicLife pseudo-reset regime) stays aligned."""
    name = "breakout"
    batched = BatchedVectorEnv(name, num_envs=2, seed=SEED)
    scalar = _scalar_vec(name, 2, SEED)
    batched.reset()
    scalar.reset()
    rng = np.random.default_rng(3)
    for _ in range(60):
        actions = rng.integers(0, batched.action_space.n, size=2)
        batched.step(actions)
        scalar.step(actions.tolist())
    assert np.array_equal(batched.reset(), scalar.reset())


class TestConstructor:
    def test_name_requires_num_envs(self):
        with pytest.raises(ValueError):
            BatchedVectorEnv("pong")

    def test_accepts_prebuilt_engine(self):
        from repro.ale.vec import make_vec_game
        engine = make_vec_game("pong", 2)
        vec = BatchedVectorEnv(engine, seed=SEED)
        assert vec.num_envs == 2
        assert np.array_equal(vec.reset(),
                              _scalar_vec("pong", 2, SEED).reset())

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            BatchedVectorEnv("pong", num_envs=2, frame_skip=0)
        with pytest.raises(ValueError):
            BatchedVectorEnv("pong", num_envs=2, stack=0)
        with pytest.raises(ValueError):
            BatchedVectorEnv("pong", num_envs=2, max_episode_steps=0)

    def test_observations_before_reset_raises(self):
        with pytest.raises(RuntimeError):
            _ = BatchedVectorEnv("pong", num_envs=1, seed=0).observations

    def test_action_count_validated(self):
        vec = BatchedVectorEnv("pong", num_envs=2, seed=0)
        vec.reset()
        with pytest.raises(ValueError):
            vec.step([0])


class TestBatchPreprocessor:
    def test_matches_scalar_preprocess_frame(self):
        rng = np.random.default_rng(0)
        frames = rng.integers(0, 256, size=(4, 210, 160, 3),
                              dtype=np.uint8)
        batched = BatchPreprocessor(210, 160, 84, 84)(frames)
        for index in range(4):
            assert np.array_equal(batched[index],
                                  preprocess_frame(frames[index]))

    def test_identity_size_skips_resize(self):
        rng = np.random.default_rng(1)
        frames = rng.integers(0, 256, size=(2, 84, 84, 3), dtype=np.uint8)
        out = BatchPreprocessor(84, 84, 84, 84)(frames)
        assert out.shape == (2, 84, 84)
        for index in range(2):
            assert np.array_equal(out[index],
                                  preprocess_frame(frames[index]))
