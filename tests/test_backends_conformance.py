"""Conformance suite for every registered execution backend.

Each test is parametrized over the full registry, so registering a new
backend (one ``repro.backends.register`` call) automatically subjects it
to the same contract the built-in platforms satisfy: registry
round-trip, deterministic seeding, positive analytic step latencies that
never record metrics, attribution buckets that sum to the simulated
total, and a drivable discrete-event sim.
"""

import warnings

import pytest

from repro import backends, obs
from repro.backends.protocol import (
    AGENT_SEED_STRIDE,
    Backend,
    derive_agent_seed,
)
from repro.obs.prof import AttributionReport
from repro.platforms import measure_ips
from repro.sim import Engine, Tracer

ALL_BACKENDS = backends.names()


@pytest.fixture(autouse=True)
def _obs_off():
    """Every test starts and ends with collection off and clean."""
    obs.disable()
    obs.metrics().reset()
    yield
    obs.disable()
    obs.metrics().reset()


class TestRegistry:
    @pytest.mark.parametrize("name", ALL_BACKENDS)
    def test_roundtrip(self, name):
        backend = backends.create(name)
        assert isinstance(backend, Backend)
        assert backend.registry_name == name
        assert backends.is_registered(name)
        assert isinstance(backend.name, str) and backend.name

    def test_expected_platforms_registered(self):
        for name in ("fa3c-fpga", "fa3c-single-cu", "fa3c-alt1",
                     "fa3c-alt2", "fa3c-fp16", "fa3c-int8",
                     "a3c-cudnn", "a3c-tf-gpu",
                     "a3c-tf-cpu", "ga3c-tf"):
            assert backends.is_registered(name)

    def test_unknown_name_raises_with_choices(self):
        with pytest.raises(ValueError, match="fa3c-fpga"):
            backends.create("warp-drive")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            backends.register("fa3c-fpga", lambda topology=None: None)

    def test_resolve_default_and_passthrough(self):
        default = backends.resolve(None)
        assert default.registry_name == backends.DEFAULT_BACKEND
        instance = backends.create("a3c-cudnn")
        assert backends.resolve(instance) is instance


class TestCapabilities:
    @pytest.mark.parametrize("name", ALL_BACKENDS)
    def test_kind_and_flags(self, name):
        backend = backends.create(name)
        caps = backend.capabilities
        assert caps.kind in ("fpga", "gpu", "host")
        assert backend.needs_sync == caps.needs_sync
        assert backend.needs_bootstrap == caps.needs_bootstrap

    def test_ga3c_has_no_local_parameters(self):
        caps = backends.create("ga3c-tf").capabilities
        assert not caps.needs_sync
        assert not caps.needs_bootstrap
        assert caps.batched_inference


class TestSeeding:
    @pytest.mark.parametrize("name", ALL_BACKENDS)
    def test_agent_seed_follows_contract(self, name):
        backend = backends.create(name)
        for seed in (0, 1, 7):
            for agent_id in (0, 3, 15):
                expected = seed * AGENT_SEED_STRIDE + agent_id
                assert backend.agent_seed(agent_id, seed) == expected
                assert derive_agent_seed(seed, agent_id) == expected

    def test_streams_never_collide(self):
        seen = set()
        for seed in range(4):
            for agent_id in range(64):
                seen.add(derive_agent_seed(seed, agent_id))
        assert len(seen) == 4 * 64


class TestAnalyticSteps:
    @pytest.mark.parametrize("name", ALL_BACKENDS)
    def test_latencies_positive_and_deterministic(self, name):
        first = backends.create(name)
        second = backends.create(name)
        assert first.infer_step() > 0.0
        assert first.train_step(5) > 0.0
        assert first.sync_step() >= 0.0
        assert first.infer_step() == second.infer_step()
        assert first.train_step(5) == second.train_step(5)
        assert first.sync_step() == second.sync_step()

    @pytest.mark.parametrize("name", ALL_BACKENDS)
    def test_compile_plans_covers_the_routine(self, name):
        assert backends.create(name).compile_plans(t_max=5) == 3

    @pytest.mark.parametrize("name", ALL_BACKENDS)
    def test_analytic_queries_record_nothing(self, name):
        backend = backends.create(name)
        with obs.enabled_scope(reset=True):
            backend.compile_plans(t_max=5)
            backend.infer_step()
            backend.train_step(5)
            backend.sync_step()
            backend.attribution("inference")
            backend.attribution("train")
            assert obs.metrics().snapshot() == []

    @pytest.mark.parametrize("name", ALL_BACKENDS)
    def test_attribution_shapes(self, name):
        backend = backends.create(name)
        for task in ("inference", "train"):
            buckets = backend.attribution(task)
            assert buckets, f"{name}: empty {task} attribution"
            assert all(cycles >= 0 for cycles in buckets.values())
        with pytest.raises(ValueError, match="unknown task"):
            backend.attribution("teleport")


class TestSimulation:
    @pytest.mark.parametrize("name", ALL_BACKENDS)
    def test_sim_drives_and_attribution_sums_to_total(self, name):
        backend = backends.create(name)
        with obs.enabled_scope(reset=True):
            result = measure_ips(backend, 2, routines_per_agent=4)
            report = AttributionReport.from_registry(
                obs.metrics()).validate()
        assert result.platform == backend.name
        assert result.ips > 0.0
        shares = report.bucket_shares()
        assert shares
        assert sum(shares.values()) == pytest.approx(1.0)

    @pytest.mark.parametrize("name", ALL_BACKENDS)
    def test_tracer_support_matches_capabilities(self, name):
        backend = backends.create(name)
        engine = Engine()
        if backend.capabilities.supports_tracing:
            assert backend.build_sim(engine, tracer=Tracer()) is not None
        else:
            with pytest.raises(ValueError, match="tracing"):
                backend.build_sim(engine, tracer=Tracer())

    @pytest.mark.parametrize("name", ALL_BACKENDS)
    def test_matches_direct_platform_numbers(self, name):
        """The adapter is a view, not a remodel: IPS through the backend
        equals IPS measured on the wrapped platform directly."""
        backend = backends.create(name)
        direct = measure_ips(backend.platform, 2, routines_per_agent=4)
        adapted = measure_ips(backends.create(name), 2,
                              routines_per_agent=4)
        assert adapted.ips == direct.ips
        assert adapted.platform == direct.platform


class TestPrecision:
    """Precision capability contract over the whole registry."""

    @pytest.mark.parametrize("name", ALL_BACKENDS)
    def test_declared_precision_resolves(self, name):
        from repro.precision import resolve_precision
        backend = backends.create(name)
        spec = resolve_precision(backend.capabilities.precision)
        assert spec.accumulate_bits == 32

    def test_quantized_family_registered_with_capabilities(self):
        assert backends.create("fa3c-fp16").capabilities.precision \
            == "fp16"
        assert backends.create("fa3c-int8").capabilities.precision \
            == "int8"
        # Capability mirrors the platform config, including overrides.
        overridden = backends.create("fa3c-fpga", precision="fp16")
        assert overridden.capabilities.precision == "fp16"

    def test_fp32_reference_unchanged_bitwise(self):
        """Every fp32 backend's modelled numbers are byte-for-byte the
        pre-refactor arithmetic: all precision scaling factors are
        exactly 1 at fp32, so nothing can drift."""
        reference = backends.create("fa3c-fpga")
        config = reference.platform.config
        assert config.words_per_beat == 16
        assert config.word_bytes == 4
        assert config.pe_per_cu == 64
        for name in ALL_BACKENDS:
            backend = backends.create(name)
            if backend.capabilities.precision != "fp32":
                continue
            a = measure_ips(backend, 2, routines_per_agent=4)
            b = measure_ips(backends.create(name), 2,
                            routines_per_agent=4)
            assert a.ips == b.ips

    @pytest.mark.parametrize("name", ("fa3c-fp16", "fa3c-int8"))
    def test_quantized_latency_banded_and_deterministic(self, name):
        """Quantized datapaths are tolerance-banded against fp32 (they
        model the same network, so latency lands within the packing
        bound) and exactly deterministic run to run."""
        fp32 = backends.create("fa3c-fpga")
        quantized = backends.create(name)
        scale = quantized.platform.config.precision_spec.pe_scale
        ref = fp32.infer_step(1)
        got = quantized.infer_step(1)
        # Never slower than fp32; never faster than the ideal packing
        # bound allows (compute and DMA both scale at most by `scale`).
        assert got <= ref
        assert got >= ref / (2 * scale)
        again = backends.create(name).infer_step(1)
        assert got == again
        run_a = measure_ips(backends.create(name), 2,
                            routines_per_agent=4)
        run_b = measure_ips(backends.create(name), 2,
                            routines_per_agent=4)
        assert run_a.ips == run_b.ips

    def test_int8_wins_modelled_ips_and_energy(self):
        """The ablation ordering the datapath exists to expose."""
        from repro.power import PowerModel
        model = PowerModel()
        results = {}
        for name in ("fa3c-fpga", "fa3c-int8"):
            result = measure_ips(backends.create(name), 4,
                                 routines_per_agent=8)
            results[name] = (result.ips,
                             model.report(result).watts)
        fp32_ips, fp32_watts = results["fa3c-fpga"]
        int8_ips, int8_watts = results["fa3c-int8"]
        assert int8_ips > fp32_ips
        assert int8_watts < fp32_watts
        assert int8_ips / int8_watts > fp32_ips / fp32_watts

    def test_unsupported_precision_rejected_at_create_time(self):
        from repro.backends.protocol import BackendCapabilities

        class BadBackend:
            registry_name = "bad-int4"
            capabilities = BackendCapabilities(kind="fpga",
                                               precision="int4")

        backends.register("bad-int4", lambda topology=None: BadBackend())
        try:
            with pytest.raises(ValueError, match="int4"):
                backends.create("bad-int4")
        finally:
            from repro.backends import registry as _registry
            _registry._REGISTRY.pop("bad-int4", None)

    def test_capability_query_suggests_nearest_field(self):
        backend = backends.create("fa3c-int8")
        assert backends.capability(backend, "precision") == "int8"
        with pytest.raises(ValueError, match="did you mean 'precision'"):
            backends.capability(backend, "precison")


class TestEvaluationShim:
    def test_scores_rename_keeps_old_imports_working(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            import importlib

            import repro.core.evaluation as evaluation
            importlib.reload(evaluation)
        assert any(issubclass(w.category, DeprecationWarning)
                   for w in caught)
        from repro.core.scores import ScoreTracker, moving_average
        assert evaluation.ScoreTracker is ScoreTracker
        assert evaluation.moving_average is moving_average
