"""Tests for the execution tracer, BCU schedules, and policy evaluation."""

import numpy as np
import pytest

from repro.core import A3CConfig, A3CTrainer, evaluate_policy, \
    evaluate_recurrent_policy
from repro.envs import Catch, MemoryCue
from repro.fpga.platform import FA3CPlatform
from repro.fpga.schedule import (
    bw_schedule,
    fw_schedule,
    gc_schedule,
    stage_schedules,
)
from repro.nn import mlp_lstm_network
from repro.nn.network import A3CNetwork, MLPPolicyNetwork
from repro.platforms.metrics import IPSMeter
from repro.platforms.throughput import HostModel, _agent_process
from repro.sim import Engine, Tracer


class TestTracer:
    def _traced(self):
        tracer = Tracer()
        tracer.record("cu0", "FW:Conv1", 0.0, 1.0)
        tracer.record("cu0", "FW:Conv2", 1.0, 1.5)
        tracer.record("cu1", "GC:FC3", 0.5, 2.0)
        return tracer

    def test_lane_order_and_busy(self):
        tracer = self._traced()
        assert tracer.lanes() == ["cu0", "cu1"]
        assert tracer.lane_busy("cu0") == pytest.approx(1.5)
        assert tracer.lane_busy("cu1") == pytest.approx(1.5)

    def test_window(self):
        assert self._traced().window() == (0.0, 2.0)

    def test_invalid_span_rejected(self):
        with pytest.raises(ValueError):
            Tracer().record("x", "bad", 2.0, 1.0)

    def test_gantt_renders_lanes(self):
        text = self._traced().gantt(width=20)
        lines = text.splitlines()
        assert len(lines) == 3
        assert lines[1].startswith("cu0")
        assert "F" in lines[1]
        assert "G" in lines[2]

    def test_gantt_empty(self):
        assert Tracer().gantt() == "(empty trace)"

    def test_summary_utilisation(self):
        rows = {row["lane"]: row for row in self._traced().summary()}
        assert rows["cu0"]["utilisation"] == pytest.approx(0.75)
        assert rows["cu1"]["spans"] == 1

    def test_fpga_sim_produces_dual_cu_trace(self):
        """The Section 4.2.2 story, visible: both CUs of a pair carry
        load concurrently."""
        topology = A3CNetwork(6).topology()
        platform = FA3CPlatform.fa3c(topology, cu_pairs=1)
        engine = Engine()
        tracer = Tracer()
        sim = platform.build_sim(engine, tracer=tracer)
        meter = IPSMeter(5)
        processes = [
            engine.process(_agent_process(sim, engine, i, 5, 4,
                                          HostModel(), meter, True,
                                          True))
            for i in range(4)]
        engine.run(engine.all_of(processes))
        summary = {row["lane"]: row for row in tracer.summary()}
        assert summary["icu0"]["utilisation"] > 0.5
        assert summary["tcu0"]["utilisation"] > 0.3
        # Inference stages only on the inference CU, training stages
        # only on the training CU.
        for span in tracer.spans:
            if span.lane == "icu0":
                assert span.label.startswith("FW")
            else:
                assert not span.label.startswith("FW")


class TestStageSchedules:
    @pytest.fixture(scope="class")
    def conv1(self):
        return A3CNetwork(6).topology().layers[0]

    @pytest.fixture(scope="class")
    def fc3(self):
        return A3CNetwork(6).topology().layers[2]

    def test_fw_stitching_only_for_wide_rows(self, conv1, fc3):
        assert fw_schedule(conv1).stitch_ops > 0     # 84 > 16 words
        assert fw_schedule(fc3).stitch_ops == 0      # dense: 1-wide rows

    def test_fw_shift_count_conv1(self, conv1):
        """Each loaded line shifts (out_width - 1) x stride times."""
        schedule = fw_schedule(conv1)
        assert schedule.line_loads == 20 * 8 * 4
        assert schedule.shift_ops == schedule.line_loads * 19 * 4

    def test_gc_loads_k_plus_mgc_lines(self, conv1):
        schedule = gc_schedule(conv1, batch=5, n_pe=64)
        # per output row per channel per sample: K + floor(64/K^2) lines
        assert schedule.line_loads == 5 * 20 * 4 * (8 + 1)

    def test_bw_scatter_covers_input_gradients(self, conv1):
        schedule = bw_schedule(conv1, batch=5, n_pe=64)
        assert schedule.scatter_ops == -(-5 * conv1.num_inputs // 64)

    def test_three_stages_per_layer(self, conv1):
        schedules = stage_schedules(conv1, batch=5)
        assert [s.stage for s in schedules] == ["FW", "GC", "BW"]
        assert all(s.total_bcu_ops > 0 for s in schedules)

    def test_dense_layers_shift_free_fw(self, fc3):
        """Dense FW has a width-1 'feature map': nothing to shift."""
        assert fw_schedule(fc3).shift_ops == 0


class TestEvaluatePolicy:
    def _trained_catch(self):
        config = A3CConfig(num_agents=4, t_max=5, max_steps=50_000,
                           learning_rate=1e-2, anneal_steps=10 ** 9,
                           entropy_beta=0.02, seed=1)
        trainer = A3CTrainer(
            lambda i: Catch(size=5),
            lambda: MLPPolicyNetwork(3, (5, 5), hidden=32), config)
        result = trainer.train(threads=False)
        return trainer.agents[0].network, result.params

    def test_trained_policy_beats_untrained(self):
        network, trained = self._trained_catch()
        untrained = MLPPolicyNetwork(3, (5, 5), hidden=32).init_params(
            np.random.default_rng(99))
        env = Catch(size=5)
        good = evaluate_policy(env, network, trained, episodes=40,
                               seed=3)
        bad = evaluate_policy(env, network, untrained, episodes=40,
                              seed=3)
        assert good.mean > bad.mean + 0.5
        assert good.mean > 0.6

    def test_greedy_vs_sampled(self):
        network, trained = self._trained_catch()
        env = Catch(size=5)
        greedy = evaluate_policy(env, network, trained, episodes=30,
                                 sample=False, seed=4)
        assert greedy.mean >= 0.6

    def test_epsilon_floor_randomises(self):
        network, trained = self._trained_catch()
        env = Catch(size=5)
        random_play = evaluate_policy(env, network, trained,
                                      episodes=40, epsilon=1.0, seed=5)
        assert random_play.mean < 0.5

    def test_result_statistics(self):
        from repro.core.evaluate import EvaluationResult
        result = EvaluationResult(scores=[1.0, -1.0, 1.0], steps=18)
        assert result.mean == pytest.approx(1.0 / 3.0)
        assert result.best == 1.0
        assert np.isnan(EvaluationResult(scores=[], steps=0).mean)

    def test_recurrent_evaluation(self):
        config = A3CConfig(num_agents=4, t_max=5, max_steps=40_000,
                           learning_rate=1e-2, anneal_steps=10 ** 9,
                           entropy_beta=0.02, seed=1)
        from repro.core import RecurrentA3CAgent
        trainer = A3CTrainer(
            lambda i: MemoryCue(delay=3),
            lambda: mlp_lstm_network(2, (3,), hidden=16,
                                     lstm_hidden=16),
            config, agent_class=RecurrentA3CAgent)
        result = trainer.train(threads=False)
        network = trainer.agents[0].network
        evaluation = evaluate_recurrent_policy(
            MemoryCue(delay=3), network, result.params, episodes=50,
            sample=False, seed=2)
        assert evaluation.mean > 0.8
