"""The repro.obs observability layer.

Covers the registry (labels, histogram percentiles, snapshot/reset,
JSONL round-trip), the unified tracer (sim + wall spans, nesting,
absorbing a sim tracer), the Chrome trace-event export schema, the
disabled-mode no-op guarantee of instrumented hot paths, and the
IPSMeter warm-up boundary fix.
"""

import json
import math
import threading

import pytest

from repro import obs
from repro.obs.registry import HISTOGRAM_WINDOW
from repro.platforms.metrics import IPSMeter
from repro.sim.trace import Tracer as SimTracer


@pytest.fixture
def registry():
    return obs.MetricsRegistry()


class TestCounter:
    def test_labelled_samples_are_independent(self, registry):
        counter = registry.counter("fpga.dram.bytes")
        counter.inc(64, channel="ddr0", dir="load")
        counter.inc(32, channel="ddr0", dir="store")
        counter.inc(16, channel="ddr1", dir="load")
        assert counter.value(channel="ddr0", dir="load") == 64
        assert counter.value(channel="ddr0", dir="store") == 32
        assert counter.value(channel="ddr1", dir="load") == 16
        assert counter.total() == 112

    def test_label_order_does_not_matter(self, registry):
        counter = registry.counter("c")
        counter.inc(1, a="x", b="y")
        counter.inc(1, b="y", a="x")
        assert counter.value(a="x", b="y") == 2

    def test_counter_rejects_decrease(self, registry):
        with pytest.raises(ValueError):
            registry.counter("c").inc(-1)

    def test_kind_conflict_raises(self, registry):
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")


class TestGauge:
    def test_set_and_add(self, registry):
        gauge = registry.gauge("util")
        gauge.set(0.5, cu="icu0")
        gauge.set(0.7, cu="icu0")
        gauge.add(0.1, cu="icu1")
        assert gauge.value(cu="icu0") == 0.7
        assert gauge.value(cu="icu1") == pytest.approx(0.1)


class TestHistogram:
    def test_percentiles_interpolate(self, registry):
        hist = registry.histogram("lat")
        for value in range(1, 101):
            hist.observe(float(value))
        assert hist.percentile(50) == pytest.approx(50.5)
        assert hist.percentile(0) == 1.0
        assert hist.percentile(100) == 100.0
        assert hist.percentile(90) == pytest.approx(90.1)
        assert hist.mean() == pytest.approx(50.5)
        assert hist.count() == 100

    def test_empty_histogram_is_nan(self, registry):
        hist = registry.histogram("lat")
        assert math.isnan(hist.percentile(50))
        assert hist.count() == 0

    def test_window_slides_but_totals_stay_exact(self, registry):
        hist = registry.histogram("lat")
        n = HISTOGRAM_WINDOW + 100
        for value in range(n):
            hist.observe(float(value))
        sample = hist._sample({})
        assert hist.count() == n
        assert sample.min == 0.0
        assert sample.max == float(n - 1)
        assert len(sample.window) == HISTOGRAM_WINDOW
        # Percentiles now describe the retained (most recent) window.
        assert hist.percentile(0) == 100.0


class TestRegistry:
    def test_snapshot_rows_and_reset(self, registry):
        registry.counter("a").inc(3, k="v")
        registry.histogram("h").observe(1.0)
        rows = registry.snapshot(meta={"run": "r1"})
        by_name = {row["name"]: row for row in rows}
        assert by_name["a"]["value"] == 3
        assert by_name["a"]["labels"] == {"k": "v"}
        assert by_name["a"]["run"] == "r1"
        assert by_name["h"]["count"] == 1
        registry.reset()
        assert registry.snapshot() == []

    def test_jsonl_round_trip(self, registry, tmp_path):
        registry.counter("a").inc(5, x="1")
        registry.gauge("g").set(2.5)
        path = str(tmp_path / "m.jsonl")
        assert registry.write_jsonl(path) == 2
        rows = obs.load_jsonl(path)
        assert {row["name"] for row in rows} == {"a", "g"}
        for row in rows:
            json.dumps(row)  # every row is JSON-serialisable


class TestSpanTracer:
    def test_wall_spans_nest(self):
        tracer = obs.SpanTracer()
        with tracer.span("lane", "outer"):
            with tracer.span("lane", "inner"):
                pass
        inner, outer = tracer.spans
        assert (inner.label, inner.depth) == ("inner", 1)
        assert (outer.label, outer.depth) == ("outer", 0)
        assert outer.start <= inner.start <= inner.end <= outer.end
        # Busy counts top-level spans only: no double counting.
        assert tracer.lane_busy("lane") == pytest.approx(outer.duration)

    def test_decorator_records_span(self):
        tracer = obs.SpanTracer()

        @tracer.traced("work")
        def double(x):
            return 2 * x

        assert double(21) == 42
        assert len(tracer) == 1
        assert tracer.spans[0].lane == "work"

    def test_sim_record_signature_matches_sim_tracer(self):
        tracer = obs.SpanTracer()
        tracer.record("icu0", "FW:conv1", 0.0, 1e-3)
        span = tracer.spans[0]
        assert span.clock == obs.SIM
        assert span.duration == pytest.approx(1e-3)
        with pytest.raises(ValueError):
            tracer.record("icu0", "bad", 1.0, 0.5)

    def test_absorb_sim_tracer_and_sink_forwarding(self):
        sim_tracer = SimTracer()
        sim_tracer.record("tcu0", "BW:fc1", 0.0, 2.0)
        unified = obs.SpanTracer()
        assert unified.absorb(sim_tracer) == 1
        assert unified.by_clock(obs.SIM)[0].lane == "tcu0"
        # Live forwarding: a sim Tracer with an obs sink mirrors spans.
        mirrored = obs.SpanTracer()
        live = SimTracer(sink=mirrored)
        live.record("icu0", "FW:conv1", 0.0, 1.0)
        assert len(live.spans) == 1 and len(mirrored) == 1

    def test_thread_local_nesting_depths(self):
        tracer = obs.SpanTracer()

        def worker():
            with tracer.span("t2", "outer"):
                pass

        with tracer.span("t1", "outer"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert all(span.depth == 0 for span in tracer.spans)


class TestChromeExport:
    def _tracer(self):
        tracer = obs.SpanTracer()
        tracer.record("icu0", "FW:conv1", 0.0, 0.5)
        tracer.record("tcu0", "GC:fc2", 0.25, 0.75)
        with tracer.span("agent-0", "routine", steps=5):
            pass
        return tracer

    def test_schema_fields(self, tmp_path):
        path = str(tmp_path / "trace.json")
        assert obs.write_chrome_trace(path, self._tracer()) == 3
        doc = json.loads(open(path).read())
        events = doc["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        assert len(complete) == 3
        for event in complete:
            assert {"name", "ph", "ts", "dur", "pid", "tid"} <= set(event)
            assert event["dur"] >= 0
        # sim and wall spans live in different trace processes.
        assert {e["pid"] for e in complete} == {1, 2}
        # Lanes are named through thread_name metadata events.
        names = {e["args"]["name"] for e in events
                 if e["ph"] == "M" and e["name"] == "thread_name"}
        assert {"icu0", "tcu0", "agent-0"} <= names

    def test_wall_spans_rebased_near_zero(self):
        events = obs.chrome_trace_events(self._tracer().spans)
        wall = [e for e in events if e.get("cat") == "wall"]
        assert wall and min(e["ts"] for e in wall) == pytest.approx(0.0)

    def test_span_args_exported(self):
        events = obs.chrome_trace_events(self._tracer().spans)
        routine = [e for e in events if e.get("name") == "routine"]
        assert routine[0]["args"]["steps"] == 5


class TestDisabledModeIsNoOp:
    def test_disabled_by_default_and_counters_stay_empty(self):
        assert not obs.enabled()
        before = len(obs.metrics().snapshot())
        # Exercise instrumented hot paths with collection off.
        from repro.fpga.buffers import BufferControlUnit, LineBuffer
        from repro.fpga.dram import DRAMChannel
        channel = DRAMChannel("ddr-test")
        channel.load(1024)
        channel.store(512)
        bcu = BufferControlUnit()
        line = LineBuffer(8)
        list(bcu.shift_window(line, 4))
        assert len(obs.metrics().snapshot()) == before
        assert "fpga.dram.bytes" not in obs.metrics() or \
            obs.metrics().counter("fpga.dram.bytes").value(
                channel="ddr-test", dir="load") == 0

    def test_disabled_span_is_shared_noop(self):
        from repro.obs import runtime
        assert not obs.enabled()
        before = len(obs.tracer().by_clock(obs.WALL))
        cm1 = obs.span("lane", "x")
        cm2 = obs.span("lane", "y")
        assert cm1 is cm2 is runtime._NULL_CONTEXT
        with cm1:
            pass
        assert len(obs.tracer().by_clock(obs.WALL)) == before

    def test_enabled_scope_restores_previous_state(self):
        assert not obs.enabled()
        with obs.enabled_scope():
            assert obs.enabled()
            obs.metrics().counter("scoped").inc()
            assert obs.metrics().counter("scoped").value() == 1
        assert not obs.enabled()

    def test_hot_paths_collect_when_enabled(self):
        from repro.fpga.dram import DRAMChannel
        with obs.enabled_scope():
            DRAMChannel("ddr-test").load(16)
            assert obs.metrics().counter("fpga.dram.bytes").value(
                channel="ddr-test", dir="load") == 64


class TestEndToEndSimCapture:
    def test_fpga_sim_populates_metrics_and_trace(self):
        from repro.fpga.platform import FA3CPlatform
        from repro.nn.network import A3CNetwork
        from repro.platforms import measure_ips

        topology = A3CNetwork(num_actions=6).topology()
        with obs.enabled_scope():
            result = measure_ips(FA3CPlatform.fa3c(topology), 2,
                                 routines_per_agent=4)
            metrics = obs.metrics()
            assert metrics.counter("fpga.cu.busy_seconds").total() > 0
            assert metrics.counter("fpga.dram.bytes").total() > 0
            assert metrics.gauge("platform.ips").value(
                platform="FA3C", agents="2") == pytest.approx(result.ips)
            utilisation = metrics.gauge("fpga.cu.utilisation")
            assert 0 < utilisation.value(cu="icu0", platform="FA3C") <= 1
            sim_spans = obs.tracer().by_clock(obs.SIM)
            assert {"icu0", "tcu0"} <= {s.lane for s in sim_spans}
            report = obs.registry_report(metrics)
            assert "Compute-unit utilisation" in report
            assert "DRAM traffic by channel" in report


class TestIPSMeterBoundary:
    """The warm-up discard fix for tiny measurement windows."""

    def test_three_routines_discard_at_least_one(self):
        meter = IPSMeter(t_max=5)
        meter.record_routine(0.0, 5)    # warm-up outlier
        meter.record_routine(10.0, 5)
        meter.record_routine(10.01, 5)
        # Before the fix int(3 * 0.25) == 0 kept the outlier: ~1 IPS.
        assert meter.ips() == pytest.approx(500.0, rel=0.01)

    def test_two_routines_cannot_discard(self):
        meter = IPSMeter(t_max=5)
        meter.record_routine(0.0, 5)
        meter.record_routine(0.01, 5)
        assert meter.ips() == pytest.approx(500.0, rel=0.01)

    def test_zero_discard_fraction_keeps_everything(self):
        meter = IPSMeter(t_max=5)
        meter.record_routine(0.0, 5)
        meter.record_routine(1.0, 5)
        meter.record_routine(2.0, 5)
        assert meter.ips(discard_fraction=0.0) == pytest.approx(5.0)

    def test_large_windows_unchanged(self):
        meter = IPSMeter(t_max=5)
        for i in range(1, 21):
            meter.record_routine(i * 0.01, 5)
        assert meter.ips() == pytest.approx(500.0, rel=0.01)
