"""Tests for the processing elements and the RMSProp module."""

import hypothesis
import hypothesis.strategies as st
import numpy as np
import pytest

from repro.fpga.dram import DRAMChannel
from repro.fpga.pe import PEArray, ProcessingElement
from repro.fpga.rmsprop_module import RMSPropModule
from repro.nn.optim import RMSProp
from repro.nn.parameters import ParameterSet


class TestProcessingElement:
    def test_mac_accumulates_fp32(self):
        pe = ProcessingElement()
        pe.mac(2.0, 3.0)
        pe.mac(1.0, 4.0)
        assert pe.value == 10.0
        assert pe.mac_count == 2

    def test_clear_resets_accumulator(self):
        pe = ProcessingElement()
        pe.mac(1.0, 1.0)
        pe.clear()
        assert pe.value == 0.0

    def test_controllable_accumulation_frequency(self):
        """The same PE serves accumulation frequencies of any length —
        the Section 4.2.1 differentiator vs adder trees."""
        pe = ProcessingElement()
        for freq in (1, 5, 257):
            result = pe.accumulate_sequence([1.0] * freq, [2.0] * freq)
            assert result == pytest.approx(2.0 * freq)

    def test_sequence_length_mismatch(self):
        with pytest.raises(ValueError):
            ProcessingElement().accumulate_sequence([1.0], [1.0, 2.0])

    def test_fp32_rounding_behaviour(self):
        """Accumulation happens in fp32, like the hardware datapath."""
        pe = ProcessingElement()
        pe.mac(1e8, 1.0)
        pe.mac(1.0, 1.0)
        assert pe.value == np.float32(np.float32(1e8) + np.float32(1.0))


class TestPEArray:
    def test_reduction_matches_dot_product(self):
        rng = np.random.default_rng(0)
        a = rng.standard_normal((10, 7)).astype(np.float32)
        b = rng.standard_normal((10, 7)).astype(np.float32)
        out = PEArray(4).run_reduction(a, b)
        np.testing.assert_allclose(out, (a * b).sum(axis=0), rtol=1e-5)

    def test_cycle_count_rounds_up_to_pe_groups(self):
        pes = PEArray(4)
        pes.run_reduction(np.ones((3, 9), dtype=np.float32),
                          np.ones((3, 9), dtype=np.float32))
        # 9 outputs on 4 PEs -> 3 rounds x 3 accumulation cycles
        assert pes.total_cycles == 9

    def test_utilisation_accounts_idle_pes(self):
        pes = PEArray(8)
        pes.schedule_cycles(n_outputs=4, accumulation_frequency=10)
        assert pes.utilisation() == pytest.approx(0.5)

    def test_parallel_limit_inflates_cycles(self):
        """A starving data layout (Alt1) costs rounds, not correctness."""
        free = PEArray(64)
        starved = PEArray(64)
        free.schedule_cycles(64, 100)
        starved.schedule_cycles(64, 100, parallel_limit=8)
        assert starved.total_cycles == 8 * free.total_cycles

    def test_validation(self):
        with pytest.raises(ValueError):
            PEArray(0)
        with pytest.raises(ValueError):
            PEArray(2).run_reduction(np.ones((2, 2)), np.ones((3, 2)))


class TestRMSPropModule:
    def test_matches_software_optimizer_exactly(self):
        """The RU datapath and the software RMSProp produce identical
        fp32 trajectories (hardware/software equivalence)."""
        rng = np.random.default_rng(0)
        theta_hw = rng.standard_normal(1000).astype(np.float32)
        g_hw = np.zeros_like(theta_hw)
        params = ParameterSet({"w": theta_hw.copy()})
        opt = RMSProp(learning_rate=7e-4, rho=0.99, eps=0.1)
        module = RMSPropModule(learning_rate=7e-4, rho=0.99, eps=0.1)
        for step in range(10):
            grad = rng.standard_normal(1000).astype(np.float32)
            opt.step(params, ParameterSet({"w": grad.copy()}))
            module.update_arrays(theta_hw, g_hw, grad)
        np.testing.assert_array_equal(theta_hw, params["w"])
        np.testing.assert_array_equal(g_hw, opt.statistics["w"])

    def test_learning_rate_override(self):
        module = RMSPropModule()
        theta = np.ones(4, dtype=np.float32)
        g = np.zeros(4, dtype=np.float32)
        module.update_arrays(theta, g, np.ones(4, dtype=np.float32),
                             learning_rate=0.0)
        np.testing.assert_array_equal(theta, 1.0)
        assert (g > 0).all()  # statistics still update

    def test_shape_validation(self):
        module = RMSPropModule()
        with pytest.raises(ValueError):
            module.update_arrays(np.ones(4), np.ones(4), np.ones(3))

    def test_required_rus_saturate_interface(self):
        """Four RUs saturate a 16-word DRAM interface (Section 4.2.3):
        each RU moves 2 reads + 2 writes per cycle."""
        assert RMSPropModule().required_rus(16) == 4
        assert RMSPropModule().required_rus(32) == 8

    def test_update_stats_cycles_and_traffic(self):
        module = RMSPropModule(num_rus=4, buffer_words=4096)
        channel = DRAMChannel("g", efficiency=1.0)
        theta = np.zeros(4096, dtype=np.float32)
        g = np.zeros_like(theta)
        stats = module.update_with_stats(theta, g,
                                         np.ones_like(theta),
                                         channel=channel)
        assert stats.elements == 4096
        assert stats.compute_cycles == 4096 // 4 + module.PIPELINE_DEPTH
        # theta + g loaded, theta + g stored
        assert channel.traffic.loaded_words == 2 * 4096
        assert channel.traffic.stored_words == 2 * 4096
        assert stats.pipelined_cycles == max(stats.compute_cycles,
                                             stats.memory_cycles)

    def test_alt2_extra_store_copy(self):
        """FA3C-Alt2 writes a second layout copy per update
        (Section 5.4)."""
        module = RMSPropModule()
        channel = DRAMChannel("g", efficiency=1.0)
        theta = np.zeros(256, dtype=np.float32)
        module.update_with_stats(theta, np.zeros_like(theta),
                                 np.ones_like(theta), channel=channel,
                                 extra_store_copies=1)
        assert channel.traffic.stored_words == 3 * 256

    @hypothesis.given(st.integers(0, 2 ** 31 - 1))
    @hypothesis.settings(max_examples=20, deadline=None)
    def test_update_decreases_loss_on_quadratic(self, seed):
        rng = np.random.default_rng(seed)
        theta = rng.standard_normal(32).astype(np.float32) * 5
        g = np.zeros_like(theta)
        module = RMSPropModule(learning_rate=0.05)
        start = float((theta ** 2).sum())
        for _ in range(50):
            module.update_arrays(theta, g, 2.0 * theta)
        assert float((theta ** 2).sum()) < start
