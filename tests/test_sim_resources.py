"""Unit and property tests for Resource and Store."""

import hypothesis
import hypothesis.strategies as st
import pytest

from repro.sim import Engine, Resource, Store


class TestResource:
    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            Resource(Engine(), capacity=0)

    def test_immediate_grant_when_idle(self):
        engine = Engine()
        resource = Resource(engine)
        event = resource.acquire()
        assert event.triggered
        assert resource.in_use == 1

    def test_queueing_beyond_capacity(self):
        engine = Engine()
        resource = Resource(engine, capacity=1)
        resource.acquire()
        second = resource.acquire()
        assert not second.triggered
        assert resource.queue_length == 1

    def test_release_wakes_fifo_order(self):
        engine = Engine()
        resource = Resource(engine, capacity=1)
        resource.acquire()
        waiters = [resource.acquire() for _ in range(3)]
        resource.release()
        assert waiters[0].triggered
        assert not waiters[1].triggered

    def test_release_idle_raises(self):
        with pytest.raises(RuntimeError):
            Resource(Engine()).release()

    def test_use_holds_for_duration(self):
        engine = Engine()
        resource = Resource(engine, capacity=1)
        done = []
        def worker(i):
            yield from resource.use(2.0)
            done.append((i, engine.now))
        for i in range(3):
            engine.process(worker(i))
        engine.run()
        assert done == [(0, 2.0), (1, 4.0), (2, 6.0)]

    def test_parallel_servers(self):
        engine = Engine()
        resource = Resource(engine, capacity=2)
        done = []
        def worker(i):
            yield from resource.use(2.0)
            done.append(engine.now)
        for i in range(4):
            engine.process(worker(i))
        engine.run()
        assert done == [2.0, 2.0, 4.0, 4.0]

    def test_utilisation_full(self):
        engine = Engine()
        resource = Resource(engine, capacity=1)
        def worker():
            yield from resource.use(5.0)
        engine.process(worker())
        engine.run()
        assert resource.utilisation() == pytest.approx(1.0)

    def test_utilisation_half(self):
        engine = Engine()
        resource = Resource(engine, capacity=1)
        def worker():
            yield from resource.use(1.0)
            yield engine.timeout(1.0)
        engine.process(worker())
        engine.run()
        assert resource.utilisation() == pytest.approx(0.5)

    def test_wait_time_accounting(self):
        engine = Engine()
        resource = Resource(engine, capacity=1)
        def worker():
            yield from resource.use(3.0)
        engine.process(worker())
        engine.process(worker())
        engine.run()
        assert resource.total_wait_time == pytest.approx(3.0)
        assert resource.total_requests == 2

    @hypothesis.given(st.lists(st.floats(min_value=0.01, max_value=10.0),
                               min_size=1, max_size=20))
    def test_serial_resource_time_equals_sum(self, durations):
        """With one server, total time is exactly the sum of holds."""
        engine = Engine()
        resource = Resource(engine, capacity=1)
        def worker(d):
            yield from resource.use(d)
        for d in durations:
            engine.process(worker(d))
        engine.run()
        assert engine.now == pytest.approx(sum(durations))


class TestStore:
    def test_put_then_get(self):
        engine = Engine()
        store = Store(engine)
        store.put("item")
        event = store.get()
        assert event.triggered
        assert event.value == "item"

    def test_get_blocks_until_put(self):
        engine = Engine()
        store = Store(engine)
        event = store.get()
        assert not event.triggered
        store.put("late")
        assert event.triggered
        assert event.value == "late"

    def test_fifo_order(self):
        engine = Engine()
        store = Store(engine)
        for i in range(5):
            store.put(i)
        values = [store.get().value for _ in range(5)]
        assert values == list(range(5))

    def test_get_batch_nonblocking(self):
        engine = Engine()
        store = Store(engine)
        for i in range(3):
            store.put(i)
        assert store.get_batch(10) == [0, 1, 2]
        assert store.get_batch(10) == []

    def test_len_counts_items(self):
        engine = Engine()
        store = Store(engine)
        store.put("x")
        store.put("y")
        assert len(store) == 2
