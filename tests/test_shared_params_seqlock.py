"""Regression tests for the seqlock retry path in SharedParameterStore.

``snapshot_flat_into`` must never return a torn snapshot: it retries when
the version word is odd (a write is in progress) or changed mid-copy (a
write overlapped the copy).  The retry branches are impossible to hit
deterministically with real writers, so these tests drive them with a
scripted version word whose reads can mutate θ at exact protocol points.
"""

import multiprocessing
import threading

import numpy as np
import pytest

from repro.core.shared_params import SharedParameterStore
from repro.nn.network import MLPPolicyNetwork

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="shared store requires the fork start method")


def template_params(seed=0):
    net = MLPPolicyNetwork(num_actions=3, input_shape=(5, 5), hidden=16)
    return net.init_params(np.random.default_rng(seed))


def make_store(params=None):
    ctx = multiprocessing.get_context("fork")
    return SharedParameterStore(ctx, params or template_params())


class ScriptedVersion:
    """Stands in for the shared version word.

    Each read of ``.value`` pops ``(value, side_effect)`` from the
    script; ``side_effect`` (if any) runs before the value is returned,
    which lets a test mutate θ "during" the reader's copy window.
    """

    def __init__(self, script):
        self._script = list(script)
        self.reads = 0

    @property
    def value(self):
        if not self._script:
            raise AssertionError("seqlock read past the scripted sequence")
        self.reads += 1
        value, side_effect = self._script.pop(0)
        if side_effect is not None:
            side_effect()
        return value


class TestTornReadRetry:
    def test_version_change_mid_copy_forces_retry(self):
        """A write overlapping the copy must discard the torn snapshot."""
        store = make_store()
        theta = store.theta_flat()
        stale = np.full(store.total_values, 1.0, dtype=np.float32)
        fresh = np.full(store.total_values, 2.0, dtype=np.float32)
        np.copyto(theta, stale)

        def overlap_write():
            # Runs at the post-copy version check: the reader has already
            # copied the stale vector, so this models a writer landing
            # inside the copy window.
            np.copyto(theta, fresh)

        store._version = ScriptedVersion([
            (2, None),            # read 1: before -> even, copy proceeds
            (3, overlap_write),   # read 2: changed mid-copy -> retry
            (4, None),            # read 3: stable again, copy proceeds
            (4, None),            # read 4: unchanged -> accept
        ])
        dest = np.empty(store.total_values, dtype=np.float32)
        store.snapshot_flat_into(dest)
        # A broken retry path would return the stale copy here.
        np.testing.assert_array_equal(dest, fresh)
        assert store._version.reads == 4

    def test_odd_version_defers_copy(self):
        """Readers must not copy at all while the version word is odd."""
        store = make_store()
        theta = store.theta_flat()
        final = np.full(store.total_values, 7.0, dtype=np.float32)

        def finish_write():
            np.copyto(theta, final)

        # Mid-write garbage a premature copy would observe.
        np.copyto(theta, np.full(store.total_values, np.nan,
                                 dtype=np.float32))
        store._version = ScriptedVersion(
            [(5, None)] * 3              # write in progress: spin
            + [(6, finish_write),        # write retires, θ now stable
               (6, None)])               # unchanged -> accept
        dest = np.empty(store.total_values, dtype=np.float32)
        store.snapshot_flat_into(dest)
        np.testing.assert_array_equal(dest, final)

    def test_long_odd_streak_yields_and_terminates(self):
        """The spin loop must survive >64 retries (the sleep(0) branch)."""
        store = make_store()
        theta = store.theta_flat()
        final = np.full(store.total_values, 3.0, dtype=np.float32)
        np.copyto(theta, final)
        store._version = ScriptedVersion(
            [(1, None)] * 130 + [(2, None), (2, None)])
        dest = np.empty(store.total_values, dtype=np.float32)
        store.snapshot_flat_into(dest)
        np.testing.assert_array_equal(dest, final)
        assert store._version.reads == 132


class TestConcurrentConsistency:
    def test_snapshots_are_never_torn_under_a_live_writer(self):
        """Property check: every snapshot is one published vector.

        A writer publishes constant-valued vectors while a reader
        snapshots concurrently; a torn read would mix two constants.
        """
        store = make_store()
        n = store.total_values
        stop = threading.Event()
        errors = []

        def writer():
            params = store.view_set(store.empty_flat())
            k = 0.0
            while not stop.is_set():
                k += 1.0
                for name in params:
                    params[name][...] = k
                store.publish(params)

        def reader():
            dest = np.empty(n, dtype=np.float32)
            try:
                for _ in range(400):
                    store.snapshot_flat_into(dest)
                    if dest.min() != dest.max():
                        errors.append((float(dest.min()),
                                       float(dest.max())))
                        return
            finally:
                stop.set()

        np.copyto(store.theta_flat(),
                  np.zeros(n, dtype=np.float32))
        threads = [threading.Thread(target=writer),
                   threading.Thread(target=reader)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not errors, f"torn snapshot observed: {errors[0]}"
