"""Integration: the GA3C and PAAC baselines on the real pixel pipeline,
plus cross-algorithm consistency checks."""

import numpy as np
import pytest

from repro.ale import make_game
from repro.core import A3CConfig, A3CTrainer, GA3CTrainer, PAACTrainer
from repro.envs import Catch, make_atari_env
from repro.nn.network import A3CNetwork, MLPPolicyNetwork


def _pixel_env_factory(agent_id):
    return make_atari_env(make_game("breakout"), max_episode_steps=250)


class TestBaselinesOnPixels:
    def test_ga3c_runs_on_atari(self):
        config = A3CConfig(num_agents=2, t_max=5, max_steps=120, seed=0)
        result = GA3CTrainer(_pixel_env_factory, lambda: A3CNetwork(4),
                             config, training_batch_rollouts=2).train()
        assert result.global_steps >= 120
        assert result.routines > 0

    def test_paac_runs_on_atari(self):
        config = A3CConfig(num_agents=2, t_max=5, max_steps=100, seed=0)
        result = PAACTrainer(_pixel_env_factory, lambda: A3CNetwork(4),
                             config).train()
        assert result.global_steps >= 100
        assert result.routines == result.global_steps // (2 * 5)


class TestAlgorithmConsistency:
    """All three algorithms optimise the same objective: on an easy task
    they converge to comparable policies."""

    @pytest.mark.parametrize("algorithm", ["a3c", "ga3c", "paac"])
    def test_all_solve_catch(self, algorithm):
        config = A3CConfig(num_agents=4, t_max=5, max_steps=70_000,
                           learning_rate=1e-2, anneal_steps=10 ** 9,
                           entropy_beta=0.02, seed=2)
        env_factory = lambda i: Catch(size=5)         # noqa: E731
        net_factory = lambda: MLPPolicyNetwork(       # noqa: E731
            3, (5, 5), hidden=32)
        if algorithm == "a3c":
            trainer = A3CTrainer(env_factory, net_factory, config)
            result = trainer.train(threads=False)
        elif algorithm == "ga3c":
            result = GA3CTrainer(env_factory, net_factory, config,
                                 training_batch_rollouts=2).train()
        else:
            result = PAACTrainer(env_factory, net_factory,
                                 config).train()
        assert result.tracker.recent_mean(300) > 0.5, algorithm

    def test_ga3c_policy_lag_is_real(self):
        """GA3C's defining deviation: rollouts may train against a
        *different* model than the one that produced them (the paper's
        stability caveat).  The parameter server moves between a
        worker's rollout start and its training, unlike in A3C where the
        local snapshot is fixed per routine."""
        config = A3CConfig(num_agents=4, t_max=5, max_steps=400,
                           learning_rate=1e-2, seed=0)
        trainer = GA3CTrainer(lambda i: Catch(size=5),
                              lambda: MLPPolicyNetwork(3, (5, 5),
                                                       hidden=8),
                              config, training_batch_rollouts=4)
        before = trainer.server.params.copy()
        trainer.train()
        # Single shared parameter set; no agent owns a local copy.
        assert not hasattr(trainer.workers[0], "local_params")
        assert not trainer.server.params.allclose(before)


class TestDeterminism:
    def test_round_robin_a3c_fully_deterministic(self):
        def run():
            config = A3CConfig(num_agents=2, t_max=5, max_steps=2_000,
                               learning_rate=5e-3, seed=11)
            trainer = A3CTrainer(lambda i: Catch(size=5),
                                 lambda: MLPPolicyNetwork(3, (5, 5),
                                                          hidden=8),
                                 config)
            result = trainer.train(threads=False)
            return result.params.flatten()

        np.testing.assert_array_equal(run(), run())

    def test_paac_deterministic(self):
        def run():
            config = A3CConfig(num_agents=3, t_max=4, max_steps=1_200,
                               learning_rate=5e-3, seed=7)
            result = PAACTrainer(lambda i: Catch(size=5),
                                 lambda: MLPPolicyNetwork(3, (5, 5),
                                                          hidden=8),
                                 config).train()
            return result.params.flatten()

        np.testing.assert_array_equal(run(), run())
