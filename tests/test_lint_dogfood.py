"""The repository's own source must stay lint-clean.

This is the in-suite mirror of the CI lint job: `repro lint src
--strict` passing at HEAD is an acceptance criterion, and running it
from pytest means a violation fails locally before CI sees it.
"""

import pathlib

from repro.lint import lint_paths, load_config

REPO_ROOT = pathlib.Path(__file__).parent.parent


def test_src_tree_is_lint_clean():
    config = load_config(str(REPO_ROOT / "pyproject.toml"))
    run = lint_paths([str(REPO_ROOT / "src")], config)
    assert not run.errors, [(r.path, r.error) for r in run.errors]
    detail = "\n".join(f"{f.location()}: [{f.rule}] {f.message}"
                       for f in run.findings)
    assert not run.findings, f"lint findings at HEAD:\n{detail}"
    # Sanity: the walk actually saw the tree (not an empty directory).
    assert run.files_checked > 50
    # The repo really does use pragmas (the seqlock protocol primitives),
    # so suppression accounting being exercised here is intentional.
    assert run.suppressed >= 1
