"""Tests for the ALE-style interface over the simulated games."""

import numpy as np
import pytest

from repro.ale import SimulatedALE, make_game
from repro.ale.games.base import ALE_ACTIONS


class TestSimulatedALE:
    def test_minimal_action_set_codes(self):
        ale = SimulatedALE("pong", seed=0)
        codes = ale.getMinimalActionSet()
        assert codes[0] == ALE_ACTIONS.index("NOOP") == 0
        assert len(codes) == 6
        assert codes == sorted(codes)

    def test_legal_action_set_is_full_18(self):
        ale = SimulatedALE("breakout", seed=0)
        assert ale.getLegalActionSet() == list(range(18))

    def test_act_returns_reward_and_advances(self):
        ale = SimulatedALE("breakout", seed=0)
        before = ale.getEpisodeFrameNumber()
        reward = ale.act(0)
        assert isinstance(reward, float)
        assert ale.getEpisodeFrameNumber() == before + 1

    def test_screen_formats(self):
        ale = SimulatedALE("seaquest", seed=0)
        rgb = ale.getScreenRGB()
        gray = ale.getScreenGrayscale()
        assert rgb.shape == (210, 160, 3)
        assert gray.shape == (210, 160)
        assert gray.dtype == np.uint8

    def test_lives_and_game_over(self):
        ale = SimulatedALE("pong", seed=0)
        assert ale.lives() == 1
        assert not ale.game_over()

    def test_reset_game_restarts(self):
        ale = SimulatedALE("space_invaders", seed=0)
        for _ in range(50):
            ale.act(1)
        ale.reset_game()
        assert ale.getEpisodeFrameNumber() == 0

    def test_unknown_action_code_maps_to_noop(self):
        ale = SimulatedALE("breakout", seed=0)
        ale.act(17)  # DOWNLEFTFIRE is not in Breakout's minimal set
        assert ale.getEpisodeFrameNumber() == 1

    def test_sticky_actions_repeat(self):
        game = make_game("pong")
        ale = SimulatedALE(game, seed=0)
        up = ALE_ACTIONS.index("RIGHT")   # Pong maps RIGHT to up
        ale.act(up)
        y_after_up = game.agent_y
        # Force stickiness: the next request is ignored, UP repeats.
        ale.repeat_action_probability = 1.0
        ale.act(ALE_ACTIONS.index("LEFT"))
        assert game.agent_y < y_after_up  # still moving up

    def test_full_episode_via_ale_api(self):
        ale = SimulatedALE("pong", seed=1)
        actions = ale.getMinimalActionSet()
        rng = np.random.default_rng(0)
        steps = 0
        while not ale.game_over() and steps < 50_000:
            ale.act(int(rng.choice(actions)))
            steps += 1
        assert ale.game_over()

    def test_requires_known_game(self):
        with pytest.raises(KeyError):
            SimulatedALE("defender")
