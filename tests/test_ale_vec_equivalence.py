"""Bit-equivalence of the SoA batched games to their scalar originals.

The contract (``repro.ale.vec.base``): slot ``i`` of a
:class:`~repro.ale.vec.base.VecAtariGame`, seeded like the scalar env and
fed the same actions, produces bit-identical frames, rewards, lives,
scores and game-over flags at every step.  Each game is driven through
whole episodes (resets included) with a per-slot action stream so the
slots desynchronise — the regime the masked sub-batch stepping exists
for.
"""

import numpy as np
import pytest

from repro.ale import GAME_NAMES, make_game
from repro.ale.vec import make_vec_game

BATCH = 3
STEPS = 250
SEED = 17


def _slot_seed(index):
    return SEED * 1009 + index


def _actions(rng, n):
    return rng.integers(0, n, size=STEPS)


@pytest.mark.parametrize("name", GAME_NAMES)
class TestSlotBitEquivalence:
    def test_lockstep_trace_matches_scalar(self, name):
        """All slots stepped together, full episode lifecycle."""
        vec = make_vec_game(name, BATCH)
        vec.seed([_slot_seed(i) for i in range(BATCH)])
        vec.reset()
        n = vec.action_space.n
        plan = np.stack([_actions(np.random.default_rng(100 + i), n)
                         for i in range(BATCH)], axis=1)

        scalars = []
        for index in range(BATCH):
            env = make_game(name)
            env.seed(_slot_seed(index))
            env.reset()
            scalars.append(env)

        for step in range(STEPS):
            actions = plan[step]
            rewards, dones = vec.step(actions)
            for index, env in enumerate(scalars):
                frame, reward, done, info = env.step(int(actions[index]))
                assert reward == rewards[index], (name, step, index)
                assert done == dones[index], (name, step, index)
                assert info["lives"] == vec.lives[index]
                assert info["score"] == vec.score[index]
                assert np.array_equal(frame, vec.frames[index]), \
                    (name, step, index)
            done_idx = np.nonzero(dones)[0]
            if done_idx.size:
                vec.reset_slots(done_idx)
                for index in done_idx:
                    reset_frame = scalars[index].reset()
                    assert np.array_equal(reset_frame,
                                          vec.frames[index])

    def test_masked_subbatch_stepping(self, name):
        """Stepping a slot subset leaves the other slots untouched and
        still matches the scalar trace of the stepped slot."""
        vec = make_vec_game(name, BATCH)
        vec.seed([_slot_seed(i) for i in range(BATCH)])
        vec.reset()
        frozen = vec.frames[2].copy()
        frozen_state = (int(vec.frame[2]), float(vec.score[2]))

        env = make_game(name)
        env.seed(_slot_seed(0))
        env.reset()
        rng = np.random.default_rng(7)
        for _ in range(60):
            action = int(rng.integers(0, vec.action_space.n))
            rewards, dones = vec.step([action], np.array([0]))
            frame, reward, done, _ = env.step(action)
            assert reward == rewards[0]
            assert done == dones[0]
            assert np.array_equal(frame, vec.frames[0])
            if done:
                env.reset()
                vec.reset_slots(np.array([0]))
        assert np.array_equal(vec.frames[2], frozen)
        assert (int(vec.frame[2]), float(vec.score[2])) == frozen_state


@pytest.mark.parametrize("name", GAME_NAMES)
def test_reset_frame_matches_scalar(name):
    vec = make_vec_game(name, 2)
    vec.seed([_slot_seed(i) for i in range(2)])
    frames = vec.reset()
    for index in range(2):
        env = make_game(name)
        env.seed(_slot_seed(index))
        assert np.array_equal(env.reset(), frames[index])
        assert vec.lives[index] == env.lives


class TestVecProtocol:
    def test_step_on_finished_slot_raises(self):
        vec = make_vec_game("pong", 1)
        vec.seed([0])
        vec.reset()
        vec.game_over[0] = True
        with pytest.raises(RuntimeError):
            vec.step([0])

    def test_action_validation(self):
        vec = make_vec_game("breakout", 2)
        vec.seed([0, 1])
        vec.reset()
        with pytest.raises(ValueError):
            vec.step([0])                        # wrong count
        with pytest.raises(ValueError):
            vec.step([0, 99])                    # out of range

    def test_seed_count_validation(self):
        vec = make_vec_game("qbert", 2)
        with pytest.raises(ValueError):
            vec.seed([1])

    def test_unknown_game(self):
        with pytest.raises(KeyError):
            make_vec_game("tetris", 2)

    def test_frames_is_shared_view(self):
        vec = make_vec_game("pong", 2)
        vec.seed([0, 1])
        vec.reset()
        assert vec.frames is vec.screen.pixels
