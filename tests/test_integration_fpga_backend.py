"""Integration: A3C training *through the simulated FA3C hardware* is
numerically equivalent to the software path.

This is the reproduction's analogue of the paper's Section 5.6 claim that
the FA3C platform "correctly trains the A3C DNNs": the full
forward / backward / gradient / RMSProp pipeline runs through the DRAM
patch images, the FW/BW layout loads, the compute units, and the RMSProp
module — and lands on the same parameters as the software implementation.
"""

import numpy as np
import pytest

from repro.fpga.functional import FPGANetworkBackend
from repro.nn.losses import a3c_loss_and_head_gradients
from repro.nn.network import A3CNetwork
from repro.nn.optim import RMSProp


@pytest.fixture(scope="module")
def setup():
    rng = np.random.default_rng(42)
    network = A3CNetwork(num_actions=6)
    params = network.init_params(rng)
    backend = FPGANetworkBackend(network, params=params.copy())
    return rng, network, params, backend


class TestHardwareSoftwareEquivalence:
    def test_parameters_round_trip_through_dram(self, setup):
        _, _, params, backend = setup
        recovered = backend.parameters()
        for name in params:
            np.testing.assert_array_equal(recovered[name], params[name])

    def test_forward_matches_software(self, setup):
        rng, network, params, backend = setup
        states = rng.standard_normal((3, 4, 84, 84)).astype(np.float32)
        hw_logits, hw_values = backend.forward(states)
        sw_logits, sw_values = network.forward(states, params)
        np.testing.assert_allclose(hw_logits, sw_logits, rtol=1e-4,
                                   atol=1e-5)
        np.testing.assert_allclose(hw_values, sw_values, rtol=1e-4,
                                   atol=1e-5)

    def test_training_trajectory_matches_software(self):
        rng = np.random.default_rng(7)
        network = A3CNetwork(num_actions=6)
        params = network.init_params(rng)
        backend = FPGANetworkBackend(network, params=params.copy())
        sw_params = params.copy()
        optimizer = RMSProp(learning_rate=7e-4)
        optimizer.attach(sw_params)

        for _ in range(3):
            states = rng.standard_normal((5, 4, 84, 84)) \
                .astype(np.float32)
            actions = rng.integers(0, 6, 5)
            returns = rng.standard_normal(5).astype(np.float32)

            logits, values = network.forward(states, sw_params)
            loss = a3c_loss_and_head_gradients(logits, values, actions,
                                               returns)
            grads = network.backward_and_grads(loss.dlogits,
                                               loss.dvalues, sw_params)
            optimizer.step(sw_params, grads)
            backend.train_step(states, actions, returns,
                               learning_rate=7e-4)

        hw_params = backend.parameters()
        for name in sw_params:
            np.testing.assert_allclose(hw_params[name], sw_params[name],
                                       rtol=1e-4, atol=1e-6)

    def test_load_parameters_syncs_from_software(self, setup):
        rng, network, _, backend = setup
        fresh = network.init_params(np.random.default_rng(99))
        backend.load_parameters(fresh)
        recovered = backend.parameters()
        for name in fresh:
            np.testing.assert_array_equal(recovered[name], fresh[name])

    def test_dram_traffic_recorded(self, setup):
        _, _, _, backend = setup
        traffic = backend.dram.total_traffic()
        assert traffic.loaded_words > 0
        assert traffic.stored_words > 0

    def test_train_step_returns_finite_loss(self, setup):
        rng, _, _, backend = setup
        states = rng.standard_normal((5, 4, 84, 84)).astype(np.float32)
        loss = backend.train_step(states, np.zeros(5, dtype=np.int64),
                                  np.zeros(5, dtype=np.float32))
        assert np.isfinite(loss)

    def test_register_level_tlu_backend_matches(self):
        """The slow shift-register TLU path produces identical BW loads
        on the real network's FC4 layer."""
        rng = np.random.default_rng(3)
        network = A3CNetwork(num_actions=6)
        params = network.init_params(rng)
        fast = FPGANetworkBackend(network, params=params.copy())
        slow = FPGANetworkBackend(network, params=params.copy(),
                                  use_tlu_emulation=True)
        fc4 = fast.topology.layers[3]
        image = fast.dram.region("FC4.theta")
        bw_fast = fast.training_cu.load_bw_parameters(image, fc4)
        bw_slow = slow.training_cu.load_bw_parameters(
            slow.dram.region("FC4.theta"), fc4)
        np.testing.assert_array_equal(bw_fast, bw_slow)
