"""Tests for the LSTM cell, the recurrent network, and the A3C-LSTM
agent."""

import numpy as np
import pytest

from repro.core import A3CConfig, A3CTrainer, RecurrentA3CAgent
from repro.envs import Catch, MemoryCue
from repro.nn import lstm_a3c_network, mlp_lstm_network
from repro.nn.gradcheck import numerical_gradient
from repro.nn.network import MLPPolicyNetwork
from repro.nn.parameters import ParameterSet
from repro.nn.recurrent import LSTMCell, LSTMState, sigmoid


class TestSigmoid:
    def test_range_and_symmetry(self):
        x = np.linspace(-50, 50, 101)
        y = sigmoid(x)
        assert (y >= 0).all() and (y <= 1).all()
        assert 0 < sigmoid(np.array([0.0]))[0] < 1
        np.testing.assert_allclose(y + sigmoid(-x), 1.0, atol=1e-12)

    def test_extreme_values_stable(self):
        assert sigmoid(np.array([-1000.0]))[0] == 0.0
        assert sigmoid(np.array([1000.0]))[0] == 1.0


class TestLSTMCell:
    def _setup(self, seed=0, input_size=3, hidden=4):
        rng = np.random.default_rng(seed)
        cell = LSTMCell("L", input_size, hidden)
        params = ParameterSet()
        cell.init_params(params, rng)
        return cell, params, rng

    def test_param_shapes(self):
        cell, params, _ = self._setup()
        assert params["L.weight"].shape == (16, 7)
        assert params["L.bias"].shape == (16,)
        assert cell.num_params() == 16 * 7 + 16

    def test_forget_bias_initialised_to_one(self):
        _, params, _ = self._setup()
        np.testing.assert_array_equal(params["L.bias"][4:8], 1.0)
        np.testing.assert_array_equal(params["L.bias"][:4], 0.0)

    def test_step_shapes_and_state(self):
        cell, params, rng = self._setup()
        x = rng.standard_normal((2, 3)).astype(np.float32)
        h, state, _ = cell.step(x, cell.zero_state(2), params)
        assert h.shape == (2, 4)
        assert state.c.shape == (2, 4)
        np.testing.assert_array_equal(h, state.h)

    def test_state_carries_information(self):
        """Different histories with the same current input produce
        different outputs — the memory feed-forward nets lack."""
        cell, params, rng = self._setup()
        x_now = rng.standard_normal((1, 3)).astype(np.float32)
        past_a = rng.standard_normal((1, 3)).astype(np.float32)
        past_b = rng.standard_normal((1, 3)).astype(np.float32)
        _, state_a, _ = cell.step(past_a, cell.zero_state(1), params)
        _, state_b, _ = cell.step(past_b, cell.zero_state(1), params)
        h_a, _, _ = cell.step(x_now, state_a, params)
        h_b, _, _ = cell.step(x_now, state_b, params)
        assert not np.allclose(h_a, h_b)

    def test_state_reset(self):
        state = LSTMState(h=np.ones((1, 4), dtype=np.float32),
                          c=np.ones((1, 4), dtype=np.float32))
        state.reset()
        assert state.h.sum() == 0 and state.c.sum() == 0

    def test_state_copy_is_independent(self):
        state = LSTMState(h=np.zeros((1, 4), dtype=np.float32),
                          c=np.zeros((1, 4), dtype=np.float32))
        clone = state.copy()
        clone.h += 1
        assert state.h.sum() == 0

    def test_bptt_gradients_match_numerical(self):
        """Full-precision BPTT against central differences."""
        rng = np.random.default_rng(0)
        cell = LSTMCell("L", 3, 4)
        base = ParameterSet()
        cell.init_params(base, rng)
        params = {"L.weight": base["L.weight"].astype(np.float64),
                  "L.bias": base["L.bias"].astype(np.float64)}
        xs = rng.standard_normal((5, 2, 3))
        target = rng.standard_normal((5, 2, 4))

        def loss():
            hs, _, _ = cell.forward_sequence(xs, cell.zero_state(2),
                                             params)
            return float((hs * target).sum())

        _, _, caches = cell.forward_sequence(xs, cell.zero_state(2),
                                             params)
        grads = {"L.weight": np.zeros_like(params["L.weight"]),
                 "L.bias": np.zeros_like(params["L.bias"])}
        dxs = cell.backward_sequence(target, caches, params, grads)
        np.testing.assert_allclose(
            grads["L.weight"],
            numerical_gradient(loss, params["L.weight"], 1e-6),
            rtol=1e-4, atol=1e-7)
        np.testing.assert_allclose(
            grads["L.bias"],
            numerical_gradient(loss, params["L.bias"], 1e-6),
            rtol=1e-4, atol=1e-7)
        np.testing.assert_allclose(
            dxs, numerical_gradient(loss, xs, 1e-6),
            rtol=1e-4, atol=1e-7)

    def test_sequence_equals_chained_steps(self):
        cell, params, rng = self._setup()
        xs = rng.standard_normal((4, 1, 3)).astype(np.float32)
        hs, final, _ = cell.forward_sequence(xs, cell.zero_state(1),
                                             params)
        state = cell.zero_state(1)
        for t in range(4):
            h, state, _ = cell.step(xs[t], state, params)
            np.testing.assert_array_equal(h, hs[t])
        np.testing.assert_array_equal(state.h, final.h)


class TestRecurrentPolicyNetwork:
    def test_head_width_validation(self):
        with pytest.raises(ValueError):
            mlp_lstm_network(5, (3,)).__class__(
                mlp_lstm_network(5, (3,)).trunk, num_actions=40,
                head_width=8)

    def test_forward_step_shapes(self):
        net = mlp_lstm_network(2, (3,), hidden=8, lstm_hidden=8)
        params = net.init_params(np.random.default_rng(0))
        logits, values, carry = net.forward_step(
            np.zeros((1, 3), dtype=np.float32), params,
            net.initial_state())
        assert logits.shape == (1, 2)
        assert values.shape == (1,)
        assert carry.h.shape == (1, 8)

    def test_rollout_matches_stepwise(self):
        """forward_rollout replays exactly what forward_step produced —
        the premise of the A3C-LSTM training procedure."""
        rng = np.random.default_rng(1)
        net = mlp_lstm_network(3, (4,), hidden=8, lstm_hidden=8)
        params = net.init_params(rng)
        states = rng.standard_normal((5, 4)).astype(np.float32)
        carry = net.initial_state()
        step_logits = []
        rollout_carry = carry.copy()
        for t in range(5):
            logits, _, carry = net.forward_step(states[t][None], params,
                                                carry)
            step_logits.append(logits[0])
        roll_logits, _, final = net.forward_rollout(states, params,
                                                    rollout_carry)
        np.testing.assert_allclose(roll_logits, np.stack(step_logits),
                                   rtol=1e-5, atol=1e-6)
        np.testing.assert_allclose(final.h, carry.h, rtol=1e-5)

    def test_backward_requires_forward(self):
        net = mlp_lstm_network(2, (3,))
        params = net.init_params(np.random.default_rng(0))
        with pytest.raises(RuntimeError):
            net.backward_and_grads(np.zeros((1, 2), dtype=np.float32),
                                   np.zeros(1, dtype=np.float32), params)

    def test_gradients_cover_all_parameters(self):
        rng = np.random.default_rng(2)
        net = mlp_lstm_network(2, (3,), hidden=8, lstm_hidden=8)
        params = net.init_params(rng)
        states = rng.standard_normal((4, 3)).astype(np.float32)
        net.forward_rollout(states, params, net.initial_state())
        grads = net.backward_and_grads(
            np.ones((4, 2), dtype=np.float32),
            np.ones(4, dtype=np.float32), params)
        assert set(grads.names()) == set(params.names())

    def test_table1_trunk_variant(self):
        net = lstm_a3c_network(num_actions=6)
        params = net.init_params(np.random.default_rng(0))
        logits, values, carry = net.forward_step(
            np.zeros((1, 4, 84, 84), dtype=np.float32), params,
            net.initial_state())
        assert logits.shape == (1, 6)
        assert carry.h.shape == (1, 256)
        # LSTM params: 4*256 x (256+256) + 4*256
        assert params["LSTM.weight"].shape == (1024, 512)


class TestRecurrentAgentLearning:
    def test_lstm_agent_solves_memory_task(self):
        """The separating experiment: the recurrent agent solves
        MemoryCue; a feed-forward agent is chance-level."""
        config = A3CConfig(num_agents=4, t_max=5, max_steps=50_000,
                           learning_rate=1e-2, anneal_steps=10 ** 9,
                           entropy_beta=0.02, seed=1)
        trainer = A3CTrainer(
            lambda i: MemoryCue(delay=3),
            lambda: mlp_lstm_network(2, (3,), hidden=16, lstm_hidden=16),
            config, agent_class=RecurrentA3CAgent)
        result = trainer.train(threads=False)
        assert result.tracker.recent_mean(500) > 0.85

    def test_feedforward_agent_fails_memory_task(self):
        config = A3CConfig(num_agents=4, t_max=5, max_steps=30_000,
                           learning_rate=1e-2, anneal_steps=10 ** 9,
                           entropy_beta=0.02, seed=1)
        trainer = A3CTrainer(
            lambda i: MemoryCue(delay=3),
            lambda: MLPPolicyNetwork(2, (3,), hidden=16), config)
        result = trainer.train(threads=False)
        assert abs(result.tracker.recent_mean(500)) < 0.4  # chance

    def test_lstm_agent_on_markov_task_still_works(self):
        """Recurrence should not hurt a memoryless task."""
        config = A3CConfig(num_agents=2, t_max=5, max_steps=25_000,
                           learning_rate=1e-2, anneal_steps=10 ** 9,
                           entropy_beta=0.02, seed=3)
        trainer = A3CTrainer(
            lambda i: Catch(size=5),
            lambda: mlp_lstm_network(3, (5, 5), hidden=32,
                                     lstm_hidden=16),
            config, agent_class=RecurrentA3CAgent)
        result = trainer.train(threads=False)
        assert result.tracker.recent_mean(300) > 0.3


class TestMemoryCueEnv:
    def test_cue_visible_only_at_start(self):
        env = MemoryCue(delay=3)
        env.seed(0)
        obs = env.reset()
        assert obs[:2].sum() == 1.0
        obs, _, _, _ = env.step(0)
        assert obs[:2].sum() == 0.0

    def test_answer_flag_on_last_step(self):
        env = MemoryCue(delay=2)
        env.seed(0)
        obs = env.reset()
        assert obs[2] == 0.0
        obs, _, done, _ = env.step(0)
        assert obs[2] == 1.0 and not done
        _, reward, done, _ = env.step(0)
        assert done and reward in (-1.0, 1.0)

    def test_correct_recall_rewarded(self):
        env = MemoryCue(delay=1)
        env.seed(0)
        for _ in range(20):
            obs = env.reset()
            cue = int(np.argmax(obs[:2]))
            _, reward, done, _ = env.step(cue)
            assert done and reward == 1.0

    def test_delay_validation(self):
        with pytest.raises(ValueError):
            MemoryCue(delay=0)
