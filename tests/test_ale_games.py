"""Behavioural tests for the six simulated Atari games."""

import numpy as np
import pytest

from repro.ale import GAME_NAMES, make_game
from repro.ale.games import BeamRider, Breakout, Pong, Qbert, Seaquest, \
    SpaceInvaders
from repro.ale.games.base import ALE_ACTIONS, AtariGame, Screen


class TestScreen:
    def test_fill_rect_clips_to_frame(self):
        screen = Screen(height=10, width=10)
        screen.fill_rect(-5, -5, 8, 8, (10, 20, 30))
        assert tuple(screen.pixels[0, 0]) == (10, 20, 30)
        assert tuple(screen.pixels[3, 3]) == (0, 0, 0)

    def test_fill_rect_offscreen_noop(self):
        screen = Screen(height=10, width=10)
        screen.fill_rect(20, 20, 5, 5, (255, 255, 255))
        assert screen.pixels.sum() == 0

    def test_clear(self):
        screen = Screen(height=4, width=4)
        screen.clear((1, 2, 3))
        assert (screen.pixels == (1, 2, 3)).all()


class TestGameContract:
    """Every game honours the AtariGame/Env contract."""

    @pytest.fixture(params=GAME_NAMES)
    def game(self, request):
        game = make_game(request.param)
        game.seed(123)
        return game

    def test_reset_returns_full_screen(self, game):
        obs = game.reset()
        assert obs.shape == (210, 160, 3)
        assert obs.dtype == np.uint8

    def test_minimal_action_set_is_valid(self, game):
        for meaning in game.action_meanings():
            assert meaning in ALE_ACTIONS

    def test_step_contract(self, game):
        game.reset()
        obs, reward, done, info = game.step(0)
        assert obs.shape == (210, 160, 3)
        assert isinstance(reward, float)
        assert isinstance(done, bool)
        assert "lives" in info and "score" in info

    def test_invalid_action_rejected(self, game):
        game.reset()
        with pytest.raises(ValueError):
            game.step(99)

    def test_step_before_reset_raises(self, game):
        fresh = type(game)()
        with pytest.raises(RuntimeError):
            fresh.step(0)

    def test_determinism_under_seed(self, game):
        name = {Pong: "pong", Breakout: "breakout", Qbert: "qbert",
                Seaquest: "seaquest", SpaceInvaders: "space_invaders",
                BeamRider: "beam_rider"}[type(game)]

        def trace(seed):
            g = make_game(name)
            g.seed(seed)
            g.reset()
            rng = np.random.default_rng(99)
            out = []
            for _ in range(200):
                _, r, done, info = g.step(g.action_space.sample(rng))
                out.append((r, done, info["lives"]))
                if done:
                    g.reset()
            return out

        assert trace(5) == trace(5)

    def test_screen_changes_over_time(self, game):
        game.reset()
        first = game.step(0)[0]
        for _ in range(30):
            game.step(game.action_space.sample(np.random.default_rng(0)))
        later = game.screen.copy()
        assert (first != later).any()

    def test_random_play_terminates(self, game):
        game.reset()
        rng = np.random.default_rng(11)
        for _ in range(type(game).MAX_FRAMES + 1):
            _, _, done, _ = game.step(game.action_space.sample(rng))
            if done:
                break
        assert game.game_over


class TestPong:
    def test_action_set_matches_ale(self):
        assert len(Pong().action_meanings()) == 6

    def test_opponent_scores_against_idle_agent(self):
        game = Pong()
        game.seed(0)
        game.reset()
        total = 0.0
        for _ in range(5000):
            _, reward, done, _ = game.step(0)
            total += reward
            if done:
                break
        assert total < 0          # idle play loses points

    def test_game_ends_at_21(self):
        game = Pong()
        game.seed(0)
        game.reset()
        while not game.game_over:
            game.step(0)
        assert max(game.agent_score, game.opponent_score) == 21


class TestBreakout:
    def test_fire_launches_ball(self):
        game = Breakout()
        game.seed(0)
        game.reset()
        assert not game.ball_in_play
        game.step(1)              # FIRE
        assert game.ball_in_play

    def test_ball_miss_costs_life(self):
        game = Breakout()
        game.seed(0)
        game.reset()
        game.step(1)
        lives = game.lives
        while game.lives == lives and not game.game_over:
            game.step(0)          # never move: eventually miss
        assert game.lives == lives - 1

    def test_bricks_score_by_row(self):
        game = Breakout()
        game.seed(1)
        game.reset()
        # knock bricks by simulating ball at a brick location
        game.step(1)
        rewards = set()
        for _ in range(20000):
            _, r, done, _ = game.step(
                game.action_space.sample(game.rng))
            if r > 0:
                rewards.add(r)
            if done:
                break
        assert rewards <= {1.0, 4.0, 7.0}
        assert rewards            # at least one brick hit


class TestSpaceInvaders:
    def test_shooting_scores(self):
        game = SpaceInvaders()
        game.seed(0)
        game.reset()
        total = 0.0
        for _ in range(3000):
            _, r, done, _ = game.step(1)   # FIRE repeatedly
            total += r
            if done:
                break
        assert total > 0

    def test_row_scores_match_cartridge(self):
        from repro.ale.games.space_invaders import _ROW_SCORES
        assert _ROW_SCORES == (30, 25, 20, 15, 10, 5)


class TestQbert:
    def test_hop_colors_cube_and_scores(self):
        game = Qbert()
        game.seed(0)
        game.reset()
        total = 0.0
        # hop down-right repeatedly (action DOWN maps to a downward hop)
        for _ in range(60):
            _, r, done, _ = game.step(5)
            total += r
            if done:
                break
        assert total >= game.CUBE_SCORE

    def test_hop_off_pyramid_costs_life(self):
        game = Qbert()
        game.seed(0)
        game.reset()
        lives = game.lives
        for _ in range(40):
            _, _, done, _ = game.step(2)   # UP from the apex: off the top
            if game.lives < lives or done:
                break
        assert game.lives == lives - 1


class TestSeaquest:
    def test_oxygen_runs_out_underwater(self):
        game = Seaquest()
        game.seed(0)
        game.reset()
        lives = game.lives
        for _ in range(int(game.OXYGEN_MAX) + 200):
            game.step(5)          # DOWN: stay under water
            if game.lives < lives:
                break
        assert game.lives == lives - 1

    def test_surface_refills_oxygen(self):
        game = Seaquest()
        game.seed(0)
        game.SPAWN_PROBABILITY = 0.0   # no sharks: isolate the oxygen loop
        game.DIVER_PROBABILITY = 0.0
        game.reset()
        for _ in range(100):
            game.step(0)          # idle below the surface: oxygen drains
        low = game.oxygen
        assert low < game.OXYGEN_MAX
        for _ in range(200):
            game.step(2)          # UP to the surface
        assert game.oxygen == game.OXYGEN_MAX


class TestBeamRider:
    def test_sector_size_is_15(self):
        assert BeamRider.SECTOR_SIZE == 15

    def test_shooting_enemies_scores(self):
        game = BeamRider()
        game.seed(0)
        game.reset()
        total = 0.0
        rng = np.random.default_rng(0)
        for _ in range(5000):
            _, r, done, _ = game.step(int(rng.choice([1, 2, 3])))
            total += r
            if done:
                break
        assert total > 0


class TestRegistry:
    def test_all_six_games_present(self):
        assert len(GAME_NAMES) == 6

    def test_make_game_normalises_names(self):
        assert isinstance(make_game("Space-Invaders"), SpaceInvaders)
        assert isinstance(make_game("beam_rider"), BeamRider)

    def test_unknown_game_raises(self):
        with pytest.raises(KeyError):
            make_game("pitfall")
