"""Extra timing-model coverage: batch scaling, layout comparisons, and
the launch-overhead accounting."""

import pytest

from repro.fpga.timing import GLOBAL, LOCAL, TimingModel
from repro.nn.network import A3CNetwork


@pytest.fixture(scope="module")
def timing():
    return TimingModel(A3CNetwork(num_actions=6).topology())


class TestBatchScaling:
    def test_fw_compute_scales_linearly_with_batch(self, timing):
        conv1 = timing.topology.layers[0]
        one = timing.fw_stage(conv1, 1, True).compute_cycles
        five = timing.fw_stage(conv1, 5, True).compute_cycles
        assert five == pytest.approx(5 * one, rel=0.02)

    def test_fw_parameter_traffic_independent_of_batch(self, timing):
        conv2 = timing.topology.layers[1]
        one = timing.fw_stage(conv2, 1, False)
        five = timing.fw_stage(conv2, 5, False)
        assert one.loads[LOCAL] == five.loads[LOCAL]
        # Feature-map stores do scale.
        assert five.stores[LOCAL] == 5 * one.stores[LOCAL]

    def test_gc_accumulation_frequency_is_batch_for_dense(self, timing):
        fc3 = timing.topology.layers[2]
        assert fc3.accumulation_frequency_gc(1) == 1
        assert fc3.accumulation_frequency_gc(5) == 5

    def test_operational_intensity_motivation(self, timing):
        """Per-inference parameter traffic dwarfs compute on FC3: the
        memory wall the whole design is built around."""
        fc3 = timing.topology.layers[2]
        stage = timing.fw_stage(fc3, 1, False)
        words_per_cycle = stage.words(LOCAL) / stage.compute_cycles
        assert words_per_cycle > 10   # >10 words needed per PE cycle


class TestTaskAccounting:
    def test_task_words_helper(self, timing):
        stages = timing.inference_task(1)
        total = TimingModel.task_words(stages)
        local = TimingModel.task_words(stages, LOCAL)
        global_ = TimingModel.task_words(stages, GLOBAL)
        assert total == local + global_
        assert global_ == 0     # inference never touches global theta

    def test_task_compute_helper(self, timing):
        stages = timing.training_task(5)
        assert TimingModel.task_compute_cycles(stages) == \
            sum(stage.compute_cycles for stage in stages)

    def test_sync_task_is_pure_dma(self, timing):
        (stage,) = timing.sync_task()
        assert stage.compute_cycles == 0

    def test_rmsprop_words_cover_theta_and_g_both_ways(self, timing):
        stage = timing.rmsprop_stage()
        words = timing.total_param_words()
        assert stage.loads[GLOBAL] == 2 * words
        assert stage.stores[GLOBAL] == 2 * words

    def test_inference_task_overhead_on_first_stage(self, timing):
        plain = timing.fw_stage(timing.topology.layers[0], 1, True)
        task = timing.inference_task(1)
        assert task[0].compute_cycles == plain.compute_cycles \
            + TimingModel.TASK_OVERHEAD_CYCLES
