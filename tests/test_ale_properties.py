"""Property-based tests over the simulated games: arbitrary action
sequences must never violate the game invariants."""

import hypothesis
import hypothesis.strategies as st
import numpy as np
import pytest

from repro.ale import GAME_NAMES, make_game

action_sequences = st.lists(st.integers(0, 17), min_size=1, max_size=120)


@pytest.mark.parametrize("name", GAME_NAMES)
class TestGameInvariants:
    @hypothesis.given(seed=st.integers(0, 2 ** 31 - 1),
                      actions=action_sequences)
    @hypothesis.settings(max_examples=10, deadline=None)
    def test_arbitrary_play_preserves_invariants(self, name, seed,
                                                 actions):
        game = make_game(name)
        game.seed(seed)
        game.reset()
        n_actions = game.action_space.n
        prev_lives = game.lives
        for raw in actions:
            if game.game_over:
                game.reset()
                prev_lives = game.lives
            obs, reward, done, info = game.step(raw % n_actions)
            # Invariants.
            assert obs.dtype == np.uint8
            assert obs.shape == (210, 160, 3)
            assert np.isfinite(reward)
            assert 0 <= info["lives"] <= game.START_LIVES
            assert info["lives"] <= prev_lives or done
            prev_lives = info["lives"]
            assert done == game.game_over

    @hypothesis.given(seed=st.integers(0, 2 ** 31 - 1))
    @hypothesis.settings(max_examples=5, deadline=None)
    def test_reset_always_restores_full_lives(self, name, seed):
        game = make_game(name)
        game.seed(seed)
        game.reset()
        rng = np.random.default_rng(seed)
        for _ in range(300):
            if game.game_over:
                break
            game.step(game.action_space.sample(rng))
        game.reset()
        assert game.lives == game.START_LIVES
        assert game.frame == 0
        assert game.score == 0.0

    def test_score_matches_cumulative_rewards(self, name):
        game = make_game(name)
        game.seed(3)
        game.reset()
        rng = np.random.default_rng(3)
        total = 0.0
        for _ in range(500):
            _, reward, done, info = game.step(
                game.action_space.sample(rng))
            total += reward
            assert info["score"] == pytest.approx(total)
            if done:
                break

    def test_noop_never_scores_positive_in_most_games(self, name):
        """Pure NOOP play never earns points (Q*bert colours its start
        cube at reset, Beam Rider escapes may recycle — but no positive
        reward should appear from standing still in any game except by
        the scripted opponent's errors in Pong, which only yields
        negative rewards for the idle side)."""
        game = make_game(name)
        game.seed(5)
        game.reset()
        for _ in range(600):
            _, reward, done, _ = game.step(0)
            assert reward <= 0.0
            if done:
                break
