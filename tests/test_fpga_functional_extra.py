"""Extra coverage for the FPGA functional backend: non-default network
geometries and the accounting surfaces."""

import numpy as np
import pytest

from repro.fpga.functional import FPGANetworkBackend
from repro.nn.network import A3CNetwork


class TestBackendGeometry:
    def test_small_network_variant(self):
        """The backend follows the network object, not hard-coded
        Table 1 shapes."""
        rng = np.random.default_rng(0)
        net = A3CNetwork(num_actions=4, input_shape=(2, 20, 20),
                         conv_channels=(4, 8), hidden=16)
        backend = FPGANetworkBackend(net, rng=rng)
        states = rng.standard_normal((2, 2, 20, 20)).astype(np.float32)
        logits, values = backend.forward(states)
        assert logits.shape == (2, 4)
        sw_logits, sw_values = net.forward(states, backend.parameters())
        np.testing.assert_allclose(logits, sw_logits, rtol=1e-4,
                                   atol=1e-5)

    def test_eighteen_action_game_head(self):
        """The full 18-action ALE set plus the value output fits FC4."""
        net = A3CNetwork(num_actions=18)
        backend = FPGANetworkBackend(net,
                                     rng=np.random.default_rng(1))
        states = np.zeros((1, 4, 84, 84), dtype=np.float32)
        logits, values = backend.forward(states)
        assert logits.shape == (1, 18)

    def test_inference_and_training_use_separate_cus(self):
        rng = np.random.default_rng(2)
        net = A3CNetwork(num_actions=4, input_shape=(2, 20, 20),
                         conv_channels=(4, 8), hidden=16)
        backend = FPGANetworkBackend(net, rng=rng)
        states = rng.standard_normal((1, 2, 20, 20)).astype(np.float32)
        backend.forward(states, training=False)
        assert backend.inference_cu.tasks_executed > 0
        assert backend.training_cu.tasks_executed == 0
        backend.train_step(states, np.zeros(1, dtype=np.int64),
                           np.zeros(1, dtype=np.float32))
        assert backend.training_cu.tasks_executed > 0

    def test_rmsprop_module_statistics_accumulate(self):
        rng = np.random.default_rng(3)
        net = A3CNetwork(num_actions=4, input_shape=(2, 20, 20),
                         conv_channels=(4, 8), hidden=16)
        backend = FPGANetworkBackend(net, rng=rng)
        states = rng.standard_normal((2, 2, 20, 20)).astype(np.float32)
        backend.train_step(states, np.zeros(2, dtype=np.int64),
                           np.ones(2, dtype=np.float32))
        # Each layer's weight image got one RU pass.
        assert backend.rmsprop.updates == len(backend.topology.layers)
        g = backend.dram.region("FC3.g")
        assert float(np.abs(g).max()) > 0

    def test_gradient_padding_regions_stay_zero(self):
        """Patch padding in the theta image must never train."""
        rng = np.random.default_rng(4)
        net = A3CNetwork(num_actions=4, input_shape=(2, 20, 20),
                         conv_channels=(4, 8), hidden=16)
        backend = FPGANetworkBackend(net, rng=rng)
        # Conv1 FW matrix is (2*64=... ) for kernel 8: (2*64, 4) ->
        # padded to (128, 16): columns 4..15 are padding.
        before = backend.dram.region("Conv1.theta").copy()
        states = rng.standard_normal((2, 2, 20, 20)).astype(np.float32)
        for _ in range(2):
            backend.train_step(states, np.zeros(2, dtype=np.int64),
                               np.ones(2, dtype=np.float32))
        after = backend.dram.region("Conv1.theta")
        from repro.fpga.layouts import load_fw_from_dram
        rows, cols = 2 * 64, 4
        padded_before = load_fw_from_dram(before, rows, 16)[:, cols:]
        padded_after = load_fw_from_dram(after, rows, 16)[:, cols:]
        np.testing.assert_array_equal(padded_before, 0.0)
        np.testing.assert_array_equal(padded_after, 0.0)

    def test_learning_rate_zero_freezes_theta(self):
        rng = np.random.default_rng(5)
        net = A3CNetwork(num_actions=4, input_shape=(2, 20, 20),
                         conv_channels=(4, 8), hidden=16)
        backend = FPGANetworkBackend(net, rng=rng)
        before = backend.parameters()
        states = rng.standard_normal((2, 2, 20, 20)).astype(np.float32)
        backend.train_step(states, np.zeros(2, dtype=np.int64),
                           np.ones(2, dtype=np.float32),
                           learning_rate=0.0)
        after = backend.parameters()
        assert after.allclose(before, rtol=0, atol=0)
