"""Tests for the lint framework itself: pragmas, config, reporters,
file collection, and the CLI exit-code contract."""

import json
import pathlib

import pytest

from repro.cli import main
from repro.lint import (
    LintConfig,
    LintRun,
    all_rules,
    lint_paths,
    lint_source,
    load_config,
)
from repro.lint.config import (
    _parse_mini_toml,
    config_from_table,
    path_matches,
)
from repro.lint.engine import build_rules
from repro.lint.pragmas import PragmaIndex
from repro.lint.report import render_json, render_text

REPO_ROOT = pathlib.Path(__file__).parent.parent
SEEDED = REPO_ROOT / "tests" / "data" / "lint_seeded_violation.py"

VIOLATING = (
    "import numpy as np\n"
    "\n"
    "NOISE = np.random.rand(3)\n"
)


class TestPragmas:
    def test_trailing_line_pragma(self):
        source = VIOLATING.replace(
            "np.random.rand(3)",
            "np.random.rand(3)  # repro-lint: ok[determinism] fixture")
        result = lint_source(source, "x.py", LintConfig())
        assert not result.findings
        assert result.suppressed == 1

    def test_comment_line_pragma_targets_next_line(self):
        source = VIOLATING.replace(
            "NOISE",
            "# repro-lint: ok[determinism] fixture seed\nNOISE")
        result = lint_source(source, "x.py", LintConfig())
        assert not result.findings
        assert result.suppressed == 1

    def test_wrong_rule_does_not_suppress(self):
        source = VIOLATING.replace(
            "np.random.rand(3)",
            "np.random.rand(3)  # repro-lint: ok[hot-path]")
        result = lint_source(source, "x.py", LintConfig())
        assert len(result.findings) == 1

    def test_star_suppresses_all_rules(self):
        source = VIOLATING.replace(
            "np.random.rand(3)",
            "np.random.rand(3)  # repro-lint: ok[*]")
        result = lint_source(source, "x.py", LintConfig())
        assert not result.findings

    def test_file_ok(self):
        source = "# repro-lint: file-ok[determinism]\n" + VIOLATING
        result = lint_source(source, "x.py", LintConfig())
        assert not result.findings
        assert result.suppressed == 1

    def test_skip_file(self):
        source = "# repro-lint: skip-file\n" + "this is not python {"
        result = lint_source(source, "x.py", LintConfig())
        assert result.skipped
        assert result.error is None

    def test_multi_line_span_suppressed_by_any_line(self):
        index = PragmaIndex("a\nb  # repro-lint: ok[seqlock]\nc\n")
        assert index.suppresses("seqlock", 1, end_line=3)
        assert not index.suppresses("seqlock", 3, end_line=5)

    def test_multiple_rules_in_one_bracket(self):
        index = PragmaIndex("x = 1  # repro-lint: ok[seqlock, hot-path]\n")
        assert index.suppresses("seqlock", 1)
        assert index.suppresses("hot-path", 1)
        assert not index.suppresses("determinism", 1)


class TestPragmaEdgeCases:
    def test_crlf_line_endings(self):
        source = VIOLATING.replace(
            "np.random.rand(3)",
            "np.random.rand(3)  # repro-lint: ok[determinism] fixture")
        source = source.replace("\n", "\r\n")
        result = lint_source(source, "x.py", LintConfig())
        assert result.error is None
        assert not result.findings
        assert result.suppressed == 1

    def test_one_bracket_suppresses_two_rules_on_one_line(self):
        source = (
            "import numpy as np\n"
            "from repro.perf.hotpath import hot_path\n"
            "\n"
            "\n"
            "@hot_path\n"
            "def leaf(n):\n"
            "    x = 0.0\n"
            "    for _ in range(n):\n"
            "        x += np.zeros(3)[0] + np.random.rand()"
            "  # repro-lint: ok[hot-path, determinism] fixture\n"
            "    return x\n")
        result = lint_source(source, "x.py", LintConfig())
        assert not result.findings
        assert result.suppressed == 2
        assert result.suppressed_by_rule == {"determinism": 1,
                                             "hot-path": 1}

    def test_pragma_on_decorator_line_reaches_the_def(self):
        source = (
            "import functools\n"
            "\n"
            "\n"
            "@functools.lru_cache()"
            "  # repro-lint: ok[seed-flow] fixture contract\n"
            "def fork(seed, worker_id):\n"
            "    return seed * 31 + worker_id\n")
        result = lint_source(source, "x.py", LintConfig())
        assert not result.findings
        assert result.suppressed == 1

    def test_unknown_rule_pragma_warns(self):
        source = "x = 1  # repro-lint: ok[hot-pth] typo\n"
        result = lint_source(source, "x.py", LintConfig())
        assert not result.findings
        assert len(result.warnings) == 1
        assert "hot-pth" in result.warnings[0]
        assert "line 1" in result.warnings[0]
        run = LintRun(files=[result])
        assert run.warnings == [("x.py", result.warnings[0])]
        assert "warning: pragma names unknown rule 'hot-pth'" \
            in render_text(run)
        assert not run.findings        # warnings never become findings

    def test_known_rule_pragma_does_not_warn(self):
        source = ("import numpy as np\n"
                  "NOISE = np.random.rand(3)"
                  "  # repro-lint: ok[determinism] fixture\n")
        result = lint_source(source, "x.py", LintConfig())
        assert result.warnings == []


class TestConfig:
    def test_repo_pyproject_loads(self):
        config = load_config(str(REPO_ROOT / "pyproject.toml"))
        assert config.paths == ["src"]
        assert set(config.select) == set(all_rules())
        assert "modules" in config.options("fp32-order")

    def test_mini_toml_matches_tomllib(self):
        tomllib = pytest.importorskip("tomllib")
        text = (REPO_ROOT / "pyproject.toml").read_text(encoding="utf-8")
        full = tomllib.loads(text)["tool"]["repro-lint"]
        mini = _parse_mini_toml(text)["tool"]["repro-lint"]
        assert mini == full

    def test_mini_toml_subset_values(self):
        document = _parse_mini_toml(
            '[tool."repro-lint"]\n'
            'paths = ["src", "tools"]  # trailing comment\n'
            "strict = true\n"
            "depth = 3\n"
            '[tool."repro-lint".hot-path]\n'
            'functions = ["a.b",\n'
            '             "c.d"]\n')
        table = document["tool"]["repro-lint"]
        assert table["paths"] == ["src", "tools"]
        assert table["strict"] is True
        assert table["depth"] == 3
        assert table["hot-path"]["functions"] == ["a.b", "c.d"]

    def test_config_from_table_collects_rule_options(self):
        config = config_from_table({
            "select": ["seqlock"],
            "seqlock": {"store-modules": ["x.py"]},
        })
        assert config.select == ["seqlock"]
        assert config.options("seqlock") == {"store-modules": ["x.py"]}
        assert config.options("unknown") == {}

    def test_path_matching_is_segment_based(self):
        assert path_matches("src/repro/fpga/pe.py", "repro/fpga")
        assert path_matches("src/repro/fpga/pe.py", "repro/fpga/pe.py")
        assert path_matches("/abs/src/repro/nn/ops.py", "repro/nn")
        assert not path_matches("src/repro/fpga_ext/pe.py", "repro/fpga")
        assert not path_matches("src/repro/fpga/pe.py", "fpga/pe")

    def test_unknown_rule_select_raises_with_known_list(self):
        with pytest.raises(KeyError) as excinfo:
            build_rules(LintConfig(), select=["no-such-rule"])
        assert "determinism" in excinfo.value.args[0]


class TestReporters:
    def run_on_violating(self):
        import repro.lint as lint
        result = lint_source(VIOLATING, "x.py", LintConfig())
        run = lint.LintRun(files=[result])
        return run

    def test_text_report_lists_location_rule_and_summary(self):
        text = render_text(self.run_on_violating())
        assert "x.py:3:" in text
        assert "[determinism]" in text
        assert "1 finding(s) (determinism=1) in 1 file(s)" in text

    def test_text_report_clean(self):
        run = __import__("repro.lint", fromlist=["LintRun"]).LintRun(
            files=[lint_source("x = 1\n", "x.py", LintConfig())])
        assert render_text(run).startswith("ok: 0 findings")

    def test_json_report_schema(self):
        document = json.loads(render_json(self.run_on_violating()))
        assert document["version"] == 2
        assert document["files_checked"] == 1
        assert document["counts"] == {"determinism": 1}
        finding = document["findings"][0]
        assert finding["rule"] == "determinism"
        assert finding["path"] == "x.py"
        assert finding["line"] == 3
        assert "message" in finding and "col" in finding
        assert "id" in finding                     # stable --why handle
        # v2 additions: per-rule suppression counts and rule timings.
        assert document["suppressed_by_rule"] == {}
        assert isinstance(document["timing_ms"], dict)
        assert all(isinstance(v, (int, float))
                   for v in document["timing_ms"].values())
        assert document["warnings"] == []

    def test_syntax_error_reported_not_raised(self):
        result = lint_source("def broken(:\n", "x.py", LintConfig())
        assert result.error and "syntax error" in result.error


class TestCollection:
    def test_exclude_prunes_directory_walk(self, tmp_path):
        (tmp_path / "keep.py").write_text(VIOLATING)
        skipdir = tmp_path / "vendored"
        skipdir.mkdir()
        (skipdir / "drop.py").write_text(VIOLATING)
        config = LintConfig(exclude=["vendored"])
        run = lint_paths([str(tmp_path)], config)
        assert [pathlib.Path(r.path).name for r in run.files] == ["keep.py"]

    def test_explicit_file_beats_exclude(self, tmp_path):
        target = tmp_path / "excluded.py"
        target.write_text(VIOLATING)
        config = LintConfig(exclude=["excluded.py"])
        run = lint_paths([str(target)], config)
        assert run.files_checked == 1
        assert len(run.findings) == 1


class TestCLI:
    def lint_args(self, *extra):
        return ["lint", "--config",
                str(REPO_ROOT / "pyproject.toml"), *extra]

    def test_strict_on_clean_source_exits_zero(self, capsys):
        code = main(self.lint_args(str(REPO_ROOT / "src"), "--strict"))
        out = capsys.readouterr().out
        assert code == 0, out
        assert "ok: 0 findings" in out

    def test_strict_on_seeded_violation_exits_nonzero(self, capsys):
        code = main(self.lint_args(str(SEEDED), "--strict"))
        out = capsys.readouterr().out
        assert code == 1
        assert "[determinism]" in out and "[hot-path]" in out

    def test_non_strict_reports_but_exits_zero(self, capsys):
        code = main(self.lint_args(str(SEEDED)))
        assert code == 0
        assert "finding(s)" in capsys.readouterr().out

    def test_select_restricts_rules(self, capsys):
        code = main(self.lint_args(str(SEEDED), "--strict",
                                   "--select", "seqlock"))
        assert code == 0, capsys.readouterr().out

    def test_unknown_rule_exits_two(self, capsys):
        code = main(self.lint_args(str(SEEDED), "--select", "bogus"))
        assert code == 2
        assert "bogus" in capsys.readouterr().out

    def test_json_format(self, capsys):
        code = main(self.lint_args(str(SEEDED), "--format", "json"))
        assert code == 0
        document = json.loads(capsys.readouterr().out)
        assert document["version"] == 2
        assert document["counts"]["determinism"] >= 1
        assert "suppressed_by_rule" in document
        assert "timing_ms" in document
