"""The repro.obs.prof cycle-attribution profiler.

Covers the cardinal invariant — cause buckets partition the recorded
total, bit-exactly, for every Table 1 network / config combination on
both the FPGA simulator and the GPU models — plus the per-stage
decomposition rules, the analytic ``stage_attribution`` counterpart, the
folded-stack (flamegraph) exporter against a committed golden file, and
the roofline-gap join.
"""

import pathlib

import pytest

from repro import obs
from repro.analysis.roofline import (
    operational_intensity,
    roofline_time,
    stage_flops,
)
from repro.fpga.platform import FA3CPlatform
from repro.gpu.platform import (
    A3CcuDNNPlatform,
    A3CTFCPUPlatform,
    GA3CTFPlatform,
)
from repro.nn.network import A3CNetwork
from repro.obs.prof import (
    AttributionError,
    AttributionReport,
    FPGA_BUCKETS,
    GPU_BUCKETS,
    folded_lines,
    fpga_stage_buckets,
    read_folded,
    split_stage_name,
    write_folded,
)
from repro.obs.prof.buckets import (
    BUFFER_STALL,
    CONTROL,
    DRAM_WAIT,
    GLOBAL_LAYER,
    PE_COMPUTE,
    RMSPROP,
    TLU_LAYOUT,
)
from repro.obs.prof.roofline_gap import fpga_roofline_gap_rows
from repro.platforms import measure_ips

DATA_DIR = pathlib.Path(__file__).parent / "data"


@pytest.fixture(scope="module")
def topology():
    return A3CNetwork(num_actions=6).topology()


@pytest.fixture(scope="module")
def small_topology():
    # A second Table-1-shaped network: narrower convs, smaller hidden.
    return A3CNetwork(num_actions=4, conv_channels=(8, 16),
                      hidden=128).topology()


def _measured_report(platform, num_agents=4, routines=10):
    with obs.enabled_scope(reset=True):
        measure_ips(platform, num_agents, t_max=5,
                    routines_per_agent=routines)
        return AttributionReport.from_registry(obs.metrics())


FPGA_CONFIGS = {
    "fa3c": lambda t: FA3CPlatform.fa3c(t),
    "alt1": lambda t: FA3CPlatform.alt1(t),
    "alt2": lambda t: FA3CPlatform.alt2(t),
    "single_cu": lambda t: FA3CPlatform.single_cu(t),
    "nodb": lambda t: FA3CPlatform.fa3c(t, double_buffering=False),
}


class TestInvariant:
    """sum(buckets) == total, exactly, on every instrumented platform."""

    @pytest.mark.parametrize("config", sorted(FPGA_CONFIGS))
    def test_fpga_buckets_sum_to_total_exactly(self, topology, config):
        report = _measured_report(FPGA_CONFIGS[config](topology))
        assert report.has_fpga
        report.validate()
        by_cu = {}
        for (cu, _task, _stage, _layer, _bucket), v in report.fpga.items():
            by_cu[cu] = by_cu.get(cu, 0.0) + v
        assert by_cu.keys() == report.fpga_totals.keys()
        for cu, total in report.fpga_totals.items():
            assert by_cu[cu] == total    # exact, not approx

    def test_fpga_invariant_holds_on_second_topology(self,
                                                     small_topology):
        _measured_report(FA3CPlatform.fa3c(small_topology)).validate()

    @pytest.mark.parametrize("platform_cls", [
        A3CcuDNNPlatform, A3CTFCPUPlatform, GA3CTFPlatform])
    def test_gpu_buckets_sum_to_total_exactly(self, topology,
                                              platform_cls):
        report = _measured_report(platform_cls(topology))
        assert report.has_gpu and not report.has_fpga
        report.validate()
        by_task = {}
        for (platform, task, _bucket), v in report.gpu.items():
            key = (platform, task)
            by_task[key] = by_task.get(key, 0.0) + v
        assert by_task == report.gpu_totals

    def test_recorded_cycles_are_integers(self, topology):
        report = _measured_report(FA3CPlatform.fa3c(topology))
        for value in list(report.fpga.values()) \
                + list(report.fpga_totals.values()):
            assert value == int(value)

    def test_validate_raises_on_corrupted_total(self, topology):
        report = _measured_report(FA3CPlatform.fa3c(topology))
        cu = next(iter(report.fpga_totals))
        report.fpga_totals[cu] += 1
        with pytest.raises(AttributionError):
            report.validate()

    def test_buckets_are_canonical_names(self, topology):
        report = _measured_report(FA3CPlatform.fa3c(topology))
        for (_cu, _task, _stage, _layer, bucket) in report.fpga:
            assert bucket in FPGA_BUCKETS
        gpu = _measured_report(A3CcuDNNPlatform(topology))
        for (_platform, _task, bucket) in gpu.gpu:
            assert bucket in GPU_BUCKETS


class TestStageDecomposition:
    def test_split_stage_name(self):
        assert split_stage_name("FW:Conv1") == ("FW", "Conv1")
        assert split_stage_name("RMSProp") == ("RMSProp", GLOBAL_LAYER)

    @pytest.mark.parametrize("config", sorted(FPGA_CONFIGS))
    @pytest.mark.parametrize("batch", [1, 5, 20])
    def test_stage_buckets_partition_total(self, topology, config, batch):
        platform = FPGA_CONFIGS[config](topology)
        stages = (platform.timing.inference_task(1)
                  + platform.timing.training_task(batch)
                  + platform.timing.sync_task())
        for stage in stages:
            total = stage.compute_cycles + 1000
            buckets = fpga_stage_buckets(
                stage, total, platform.config.double_buffering)
            assert sum(buckets.values()) == total
            assert set(buckets) <= set(FPGA_BUCKETS)

    def test_total_below_compute_floor_raises(self, topology):
        platform = FA3CPlatform.fa3c(topology)
        stage = platform.timing.inference_task(1)[0]
        with pytest.raises(ValueError):
            fpga_stage_buckets(stage, stage.compute_cycles - 1)

    def test_no_double_buffering_residual_is_buffer_stall(self, topology):
        platform = FA3CPlatform.fa3c(topology, double_buffering=False)
        stage = platform.timing.inference_task(1)[0]
        buckets = fpga_stage_buckets(stage, stage.compute_cycles + 500,
                                     double_buffering=False)
        assert buckets[BUFFER_STALL] == 500
        assert DRAM_WAIT not in buckets and TLU_LAYOUT not in buckets

    def test_pure_dma_stage_never_buffer_stalls(self, topology):
        # ParamSync engages no PEs, so even the no-double-buffering
        # ablation classifies its time as DMA, not a refill stall.
        platform = FA3CPlatform.fa3c(topology, double_buffering=False)
        dma_only = [s for s in platform.timing.sync_task()
                    if not s.compute_cycles]
        assert dma_only
        for stage in dma_only:
            buckets = fpga_stage_buckets(stage, 500,
                                         double_buffering=False)
            assert BUFFER_STALL not in buckets
            assert sum(buckets.values()) == 500

    def test_fa3c_bw_residual_carries_tlu_layout(self, topology):
        platform = FA3CPlatform.fa3c(topology)
        bw = [s for s in platform.timing.training_task(5)
              if s.name.startswith("BW:")]
        assert bw and all(s.transform_words > 0 for s in bw)
        buckets = fpga_stage_buckets(bw[0], bw[0].compute_cycles + 10000)
        assert buckets.get(TLU_LAYOUT, 0) > 0

    def test_alt1_bw_has_no_transform_words(self, topology):
        platform = FA3CPlatform.alt1(topology)
        bw = [s for s in platform.timing.training_task(5)
              if s.name.startswith("BW:")]
        assert bw and all(s.transform_words == 0 for s in bw)

    def test_rmsprop_compute_lands_in_rmsprop_bucket(self, topology):
        platform = FA3CPlatform.fa3c(topology)
        stage = platform.timing.rmsprop_stage()
        buckets = platform.stage_attribution(stage)
        assert buckets.get(RMSPROP, 0) > 0
        assert PE_COMPUTE not in buckets

    def test_task_overhead_lands_in_control(self, topology):
        platform = FA3CPlatform.fa3c(topology)
        stage = platform.timing.inference_task(1)[0]
        buckets = platform.stage_attribution(stage)
        assert buckets.get(CONTROL, 0) >= \
            platform.timing.TASK_OVERHEAD_CYCLES


class TestAnalyticAttribution:
    @pytest.mark.parametrize("config", sorted(FPGA_CONFIGS))
    def test_stage_attribution_matches_stage_seconds(self, topology,
                                                     config):
        platform = FPGA_CONFIGS[config](topology)
        clock = platform.config.clock_hz
        stages = (platform.timing.inference_task(1)
                  + platform.timing.training_task(5))
        for stage in stages:
            buckets = platform.stage_attribution(stage)
            expect = max(platform.stage_seconds(stage) * clock,
                         float(stage.compute_cycles))
            assert sum(buckets.values()) == pytest.approx(expect)

    def test_task_attribution_sums_stages(self, topology):
        platform = FA3CPlatform.fa3c(topology)
        stages = platform.timing.training_task(5)
        total = platform.task_attribution(stages)
        assert sum(total.values()) == pytest.approx(
            platform.task_seconds(stages) * platform.config.clock_hz,
            rel=1e-9, abs=float(platform.timing.TASK_OVERHEAD_CYCLES))


class TestFoldedExport:
    def _report(self):
        # A small fixed metrics snapshot, independent of the simulator,
        # so the golden file only changes when the *format* changes.
        rows = [
            {"name": "fpga.cycles", "labels": {
                "cu": "cu0.infer", "task": "inference", "stage": "FW",
                "layer": "Conv1", "bucket": "pe_compute"}, "value": 1200},
            {"name": "fpga.cycles", "labels": {
                "cu": "cu0.infer", "task": "inference", "stage": "FW",
                "layer": "Conv1", "bucket": "dram_wait"}, "value": 300},
            {"name": "fpga.cycles", "labels": {
                "cu": "cu0.train", "task": "train", "stage": "RMSProp",
                "layer": "global", "bucket": "rmsprop"}, "value": 77},
            {"name": "fpga.cycles", "labels": {
                "cu": "cu0.train", "task": "train", "stage": "BW",
                "layer": "odd name;semi", "bucket": "tlu_layout"},
             "value": 5},
            {"name": "fpga.cycles", "labels": {
                "cu": "cu0.train", "task": "train", "stage": "BW",
                "layer": "zeroed", "bucket": "dram_wait"}, "value": 0},
            {"name": "gpu.time_ns", "labels": {
                "platform": "gpu_cudnn", "task": "inference",
                "bucket": "launch"}, "value": 45000},
            {"name": "gpu.time_ns", "labels": {
                "platform": "gpu_cudnn", "task": "inference",
                "bucket": "kernel"}, "value": 60000},
        ]
        return AttributionReport(rows)

    def test_matches_golden_file(self, tmp_path):
        out = tmp_path / "profile.folded"
        count = write_folded(self._report(), out)
        golden = (DATA_DIR / "profile.folded").read_text()
        assert out.read_text() == golden
        assert count == len(golden.splitlines())

    def test_round_trips(self, tmp_path):
        out = tmp_path / "profile.folded"
        write_folded(self._report(), out)
        stacks = read_folded(out)
        assert (["fpga", "cu0.infer", "inference", "FW:Conv1",
                 "pe_compute"], 1200) in stacks

    def test_zero_weights_dropped_and_frames_sanitised(self):
        lines = folded_lines(self._report())
        text = "\n".join(lines)
        assert "zeroed" not in text
        assert "odd_name,semi" in text
        # One frame separator count per line: 4 levels fpga, 3 gpu.
        for line in lines:
            stack, _, weight = line.rpartition(" ")
            assert int(weight) > 0
            assert stack.count(";") in (3, 4)

    def test_real_run_exports_cleanly(self, topology, tmp_path):
        report = _measured_report(FA3CPlatform.fa3c(topology),
                                  num_agents=2, routines=5)
        out = tmp_path / "run.folded"
        count = write_folded(report, out)
        assert count > 0
        total = sum(weight for _stack, weight in read_folded(out))
        assert total == report.fpga_total_cycles()


class TestRooflineGap:
    def test_gap_rows_cover_conv_and_fc_stages(self, topology):
        platform = FA3CPlatform.fa3c(topology)
        report = _measured_report(platform)
        rows = fpga_roofline_gap_rows(report, platform)
        assert rows
        seen = {(r["layer"], r["stage"]) for r in rows}
        assert ("Conv1", "FW") in seen and ("FC3", "BW") in seen
        for row in rows:
            assert row["bound"] in ("compute", "memory")
            assert row["measured_us"] > 0 and row["roofline_us"] > 0
            # The roofline assumes one DDR channel; the platform stripes
            # global traffic over two, so memory-bound stages can land
            # somewhat below it — but never implausibly far.
            assert row["gap"] >= 0.5
            assert row["top_bucket"] in FPGA_BUCKETS
        # Contention and control overhead push at least some stages
        # above their uncontended roofline bound.
        assert max(row["gap"] for row in rows) >= 1.0


class TestRooflineDispatch:
    """Satellite: unknown stages raise instead of silently falling through."""

    def test_stage_flops_unknown_stage_raises(self, topology):
        spec = topology.layers[0]
        with pytest.raises(ValueError, match="unknown stage"):
            stage_flops(spec, 1, "sideways")

    def test_roofline_time_unknown_stage_raises(self, topology):
        spec = topology.layers[0]
        with pytest.raises(ValueError, match="unknown stage"):
            roofline_time(spec, 1, 1e12, 1e10, stage="sideways")

    def test_operational_intensity_unknown_stage_raises(self, topology):
        with pytest.raises(ValueError, match="unknown stage"):
            operational_intensity(topology.layers[0], 1, stage="nope")

    def test_known_stages_still_dispatch(self, topology):
        spec = topology.layers[0]
        for stage in ("fw", "bw", "gc"):
            assert stage_flops(spec, 1, stage) > 0
            assert roofline_time(spec, 1, 1e12, 1e10, stage=stage) > 0
