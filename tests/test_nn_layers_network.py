"""Tests for the layer objects and the Table 1 network topology."""

import numpy as np
import pytest

from repro.nn import (
    A3CNetwork,
    Conv2D,
    Dense,
    Flatten,
    ParameterSet,
    ReLU,
    Sequential,
)
from repro.nn.gradcheck import check_param_gradients
from repro.nn.network import MLPPolicyNetwork


class TestLayerContracts:
    def test_conv_param_shapes(self):
        conv = Conv2D("c", 4, 16, kernel=8, stride=4)
        shapes = conv.param_shapes()
        assert shapes["weight"] == (16, 4, 8, 8)
        assert shapes["bias"] == (16,)
        assert conv.num_params() == 4112

    def test_conv_output_shape_validates_channels(self):
        conv = Conv2D("c", 4, 16, kernel=8, stride=4)
        with pytest.raises(ValueError):
            conv.output_shape((3, 84, 84))

    def test_backward_before_forward_raises(self):
        conv = Conv2D("c", 1, 1, kernel=2, stride=1)
        params = ParameterSet()
        conv.init_params(params)
        with pytest.raises(RuntimeError):
            conv.backward_input(np.zeros((1, 1, 2, 2), dtype=np.float32),
                                params)

    def test_dense_shape_validation(self):
        dense = Dense("d", 10, 5)
        with pytest.raises(ValueError):
            dense.output_shape((9,))
        assert dense.output_shape((10,)) == (5,)

    def test_relu_and_flatten_have_no_params(self):
        assert ReLU("r").param_shapes() == {}
        assert Flatten("f").param_shapes() == {}

    def test_flatten_round_trip(self):
        flat = Flatten("f")
        params = ParameterSet()
        x = np.arange(24, dtype=np.float32).reshape(2, 3, 2, 2)
        y = flat.forward(x, params)
        assert y.shape == (2, 12)
        back = flat.backward_input(y, params)
        np.testing.assert_array_equal(back, x)

    def test_init_params_uses_layer_names(self):
        dense = Dense("FC9", 4, 3)
        params = ParameterSet()
        dense.init_params(params, np.random.default_rng(0))
        assert "FC9.weight" in params
        assert "FC9.bias" in params


class TestSequential:
    def test_shape_validation_at_construction(self):
        with pytest.raises(ValueError):
            Sequential([Dense("d", 10, 5)], input_shape=(9,))

    def test_gradcheck_small_stack(self):
        rng = np.random.default_rng(0)
        model = Sequential([
            Conv2D("c1", 2, 3, kernel=3, stride=2),
            ReLU("r1"),
            Flatten("f"),
            Dense("d1", 3 * 3 * 3, 4),
        ], input_shape=(2, 7, 7))
        params = model.init_params(rng)
        x = rng.standard_normal((2, 2, 7, 7)).astype(np.float64)
        target = rng.standard_normal((2, 4))

        def loss():
            y = model.forward(x.astype(np.float32), params)
            return float((y * target).sum())

        loss()  # populate caches
        _, grads = model.backward_and_grads(
            target.astype(np.float32), params)
        for name in params:
            params[name] = params[name].astype(np.float64)
        check_param_gradients(loss, params, grads, eps=1e-4)


class TestA3CNetworkTable1:
    """The exact Table 1 numbers."""

    @pytest.fixture(scope="class")
    def topology(self):
        return A3CNetwork(num_actions=6).topology()

    def test_input_features(self, topology):
        assert topology.input_features == 28224  # "28K"

    def test_conv1_row(self, topology):
        conv1 = topology.layers[0]
        assert conv1.num_params == 4112          # "4K"
        assert conv1.num_outputs == 6400         # "6K"
        assert (conv1.kernel, conv1.stride) == (8, 4)

    def test_conv2_row(self, topology):
        conv2 = topology.layers[1]
        assert conv2.num_params == 8224          # "8K"
        assert conv2.num_outputs == 2592         # "3K"
        assert (conv2.kernel, conv2.stride) == (4, 2)

    def test_fc3_row(self, topology):
        fc3 = topology.layers[2]
        assert fc3.num_params == 663808          # "664K"
        assert fc3.num_outputs == 256

    def test_fc4_row(self, topology):
        fc4 = topology.layers[3]
        assert fc4.num_params == 8224            # "8K"
        assert fc4.num_outputs == 32

    def test_total_parameters(self, topology):
        assert topology.num_params == 684368
        # ~2.6 MB of fp32, the paper's "2,592KB" parameter set
        assert topology.param_bytes == 684368 * 4

    def test_table1_rows_render(self, topology):
        rows = topology.table1_rows()
        assert rows[0]["layer"] == "Input"
        assert rows[1]["params"] == 4112
        assert len(rows) == 5


class TestA3CNetworkBehaviour:
    def test_forward_shapes(self):
        net = A3CNetwork(num_actions=6)
        params = net.init_params(np.random.default_rng(0))
        x = np.zeros((3, 4, 84, 84), dtype=np.float32)
        logits, values = net.forward(x, params)
        assert logits.shape == (3, 6)
        assert values.shape == (3,)

    def test_fc4_width_must_fit_heads(self):
        with pytest.raises(ValueError):
            A3CNetwork(num_actions=32, fc4_width=32)

    def test_padded_outputs_receive_no_gradient(self):
        net = A3CNetwork(num_actions=6)
        params = net.init_params(np.random.default_rng(0))
        x = np.random.default_rng(1).standard_normal(
            (2, 4, 84, 84)).astype(np.float32)
        net.forward(x, params)
        grads = net.backward_and_grads(
            np.ones((2, 6), dtype=np.float32),
            np.ones(2, dtype=np.float32), params)
        fc4_grad = grads["FC4.weight"]
        np.testing.assert_array_equal(fc4_grad[7:], 0.0)
        assert np.abs(fc4_grad[:7]).max() > 0

    def test_deterministic_init(self):
        net = A3CNetwork(num_actions=4)
        a = net.init_params(np.random.default_rng(5))
        b = net.init_params(np.random.default_rng(5))
        assert a.allclose(b)


class TestMLPPolicyNetwork:
    def test_forward_and_backward(self):
        net = MLPPolicyNetwork(num_actions=3, input_shape=(7, 7))
        params = net.init_params(np.random.default_rng(0))
        x = np.zeros((2, 7, 7), dtype=np.float32)
        logits, values = net.forward(x, params)
        assert logits.shape == (2, 3)
        grads = net.backward_and_grads(np.ones_like(logits),
                                       np.ones(2, dtype=np.float32),
                                       params)
        assert "FC2.weight" in grads
