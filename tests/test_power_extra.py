"""Extra power-model coverage: the dummy-platform methodology details."""

import pytest

from repro.fpga.platform import FA3CPlatform
from repro.nn.network import A3CNetwork
from repro.platforms import HostModel, measure_ips
from repro.power import PowerEnvelope, PowerModel


@pytest.fixture(scope="module")
def topology():
    return A3CNetwork(num_actions=6).topology()


class TestDummyPlatformMethodology:
    def test_custom_envelopes_override_defaults(self, topology):
        result = measure_ips(FA3CPlatform.fa3c(topology), 4,
                             routines_per_agent=10)
        custom = PowerModel({"FA3C": PowerEnvelope(idle_delta=1.0,
                                                   active=2.0)})
        report = custom.report(result)
        assert 1.0 <= report.watts <= 2.0

    def test_power_scales_with_load(self, topology):
        """The Section 5.3 methodology: the measured delta grows with
        utilisation, so a lightly-loaded platform draws less."""
        platform = FA3CPlatform.fa3c(topology)
        light = measure_ips(platform, 1, routines_per_agent=10)
        heavy = measure_ips(FA3CPlatform.fa3c(topology), 16,
                            routines_per_agent=10)
        model = PowerModel()
        assert model.report(light).watts < model.report(heavy).watts

    def test_efficiency_peaks_at_saturation(self, topology):
        """IPS/W improves with load: throughput grows faster than the
        dynamic power term."""
        model = PowerModel()
        reports = []
        for n in (1, 4, 16):
            result = measure_ips(FA3CPlatform.fa3c(topology), n,
                                 routines_per_agent=10)
            reports.append(model.report(result).inferences_per_watt)
        assert reports[0] < reports[1] < reports[2]

    def test_dummy_host_has_no_accelerator_work(self):
        """The dummy platform runs agents with random actions and no DNN
        tasks — modelled as host time only."""
        dummy = HostModel.dummy()
        assert dummy.train_prep_time == 0.0
        assert dummy.step_time > 0
