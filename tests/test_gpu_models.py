"""Tests for the GPU/CPU cost models and the layout experiment."""

import pytest

from repro.gpu import (
    A3CTFCPUPlatform,
    A3CTFGPUPlatform,
    A3CcuDNNPlatform,
    CuDNNModel,
    GA3CTFPlatform,
    GPUCalibration,
    GPULayoutExperiment,
    KernelCall,
    KernelCostModel,
    P100,
    XEON_E5_2630_PAIR,
)
from repro.nn.network import A3CNetwork


@pytest.fixture(scope="module")
def topology():
    return A3CNetwork(num_actions=6).topology()


class TestKernelCostModel:
    def test_utilisation_grows_with_outputs(self):
        model = KernelCostModel(P100)
        assert model.utilisation(100) < model.utilisation(10_000)
        assert model.utilisation(10 ** 9) == 1.0

    def test_utilisation_floor(self):
        model = KernelCostModel(P100)
        assert model.utilisation(1) >= model.cal.min_utilisation

    def test_kernel_time_includes_launch(self):
        model = KernelCostModel(P100)
        call = KernelCall("k", flops=1e6, bytes=1e5, outputs=1000)
        with_launch = model.kernel_seconds(call)
        without = model.kernel_seconds(call, include_launch=False)
        assert with_launch - without == pytest.approx(
            model.cal.launch_overhead)

    def test_memory_bound_kernel(self):
        model = KernelCostModel(P100)
        call = KernelCall("k", flops=1.0, bytes=1e9, outputs=10 ** 7)
        expected = 1e9 / (P100.mem_bandwidth * model.cal.memory_efficiency)
        assert model.compute_seconds(call) == pytest.approx(expected)

    def test_pcie_seconds(self):
        model = KernelCostModel(P100)
        assert model.pcie_seconds(0) == pytest.approx(
            model.cal.pcie_latency)

    def test_batching_amortises_time_per_sample(self, topology):
        """Section 3.2: larger batches raise efficiency — which A3C
        cannot exploit."""
        cudnn = CuDNNModel(topology)
        model = KernelCostModel(P100)
        t1 = model.sequence_seconds(cudnn.inference_kernels(1))
        t32 = model.sequence_seconds(cudnn.inference_kernels(32))
        assert t32 / 32 < t1 / 4


class TestCuDNNModel:
    def test_inference_kernel_count(self, topology):
        """Per layer: conv/GEMM + bias/activation kernels."""
        cudnn = CuDNNModel(topology)
        assert len(cudnn.inference_kernels()) == 8

    def test_backward_skips_first_layer(self, topology):
        cudnn = CuDNNModel(topology)
        names = [c.name for c in cudnn.backward_kernels(5)]
        assert "bw:Conv1" not in names
        assert "bw:FC3" in names

    def test_training_includes_update(self, topology):
        names = [c.name for c in CuDNNModel(topology).training_kernels(5)]
        assert "rmsprop:g" in names and "rmsprop:theta" in names

    def test_input_bytes_matches_paper_110kb(self, topology):
        cudnn = CuDNNModel(topology)
        assert cudnn.input_bytes(1) == pytest.approx(110.25 * 1024,
                                                     rel=0.001)


class TestPlatformLatencies:
    def test_launch_fraction_exceeds_38_percent(self, topology):
        """The Section 3.4 measurement: launch overhead > 38 % of GPU
        kernel execution time in A3C."""
        assert A3CcuDNNPlatform(topology).launch_fraction() > 0.38

    def test_tf_platform_slower_than_cudnn(self, topology):
        cudnn = A3CcuDNNPlatform(topology)
        tf = A3CTFGPUPlatform(topology)
        assert tf.inference_seconds() > cudnn.inference_seconds()
        assert tf.training_seconds(5) > cudnn.training_seconds(5)

    def test_cpu_platform_slowest_per_routine(self, topology):
        """Over a full routine (6 inferences + training) the CPU
        platform is the slowest — training compute dominates."""
        def routine(platform):
            return 6 * platform.inference_seconds() \
                + platform.training_seconds(5) + platform.sync_seconds()
        assert routine(A3CTFCPUPlatform(topology)) > \
            routine(A3CTFGPUPlatform(topology))

    def test_cudnn_inference_latency_plausible(self, topology):
        """Batch-1 inference of the Table 1 net on a P100 sits in the
        hundreds of microseconds."""
        latency = A3CcuDNNPlatform(topology).inference_seconds()
        assert 100e-6 < latency < 600e-6

    def test_host_spec(self):
        assert XEON_E5_2630_PAIR.total_cores == 20
        assert XEON_E5_2630_PAIR.peak_flops > 1e12


class TestGA3CPlatform:
    def test_flags(self, topology):
        platform = GA3CTFPlatform(topology)
        assert platform.needs_sync is False
        assert platform.needs_bootstrap is False

    def test_batched_inference_cheaper_per_sample(self, topology):
        platform = GA3CTFPlatform(topology)
        single = platform.inference_seconds(1)
        batched = platform.inference_seconds(32) / 32
        assert batched < single / 4


class TestLayoutExperiment:
    def test_bw_layout_slows_inference_41_7_percent(self, topology):
        """The Figure 11 anchor: inference on the FC layers is 41.7 %
        slower under the mismatched BW layout."""
        experiment = GPULayoutExperiment(topology)
        slowdown = experiment.inference_slowdown_with_bw_layout()
        assert slowdown == pytest.approx(0.417, abs=0.12)

    def test_three_policies_reported(self, topology):
        results = GPULayoutExperiment(topology).run()
        assert len(results) == 3
        assert results[2].transform_seconds > 0
        assert results[0].transform_seconds == 0

    def test_matched_layouts_have_fastest_compute(self, topology):
        fw_both, bw_both, matched = GPULayoutExperiment(topology).run()
        matched_compute = matched.inference_seconds \
            + matched.training_seconds
        assert matched_compute < fw_both.inference_seconds \
            + fw_both.training_seconds
        assert matched_compute < bw_both.inference_seconds \
            + bw_both.training_seconds

    def test_transform_kernel_offsets_gain(self, topology):
        """The paper: the extra transformation kernel 'may offset the
        obtained performance gain' — totals end up comparable."""
        fw_both, _, matched = GPULayoutExperiment(topology).run()
        assert matched.total_seconds > 0.75 * fw_both.total_seconds

    def test_opencl_within_12_percent_of_cudnn(self, topology):
        assert GPUCalibration().opencl_slowdown <= 1.12
