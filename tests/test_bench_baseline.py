"""The perf-baseline subsystem: snapshots, tolerance checks, CLI gate.

``repro bench --baseline`` / ``--check`` back the CI ``perf-gate`` job;
the acceptance criterion is that an injected 20 % IPS regression makes
``--check`` exit non-zero.
"""

import json
import pathlib

import pytest

from repro.cli import main
from repro.obs.prof import baseline as bench

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
COMMITTED = REPO_ROOT / "BENCH_fa3c.json"


def _snapshot(scenarios, ips_rtol=0.05, share_atol=0.02):
    return {
        "version": bench.SNAPSHOT_VERSION,
        "tolerances": {"ips_rtol": ips_rtol, "share_atol": share_atol},
        "scenarios": scenarios,
    }


def _entry(ips, **buckets):
    return {"ips": ips, "buckets": buckets}


class TestSnapshotIO:
    def test_round_trip(self, tmp_path):
        doc = _snapshot({"s": _entry(100.0, pe_compute=0.6,
                                     dram_wait=0.4)})
        path = tmp_path / "b.json"
        bench.write_snapshot(doc, path)
        assert bench.load_snapshot(path) == doc
        # Committed-diff friendliness: stable key order, one trailing
        # newline.
        text = path.read_text()
        assert text.endswith("\n") and not text.endswith("\n\n")
        assert text == json.dumps(doc, indent=2, sort_keys=True) + "\n"

    def test_version_mismatch_raises(self, tmp_path):
        path = tmp_path / "b.json"
        path.write_text('{"version": 99, "scenarios": {}}')
        with pytest.raises(ValueError, match="version"):
            bench.load_snapshot(path)

    def test_unknown_scenario_raises_with_known_names(self):
        with pytest.raises(ValueError, match="fa3c-n8"):
            bench.run_scenario("no-such-scenario")

    def test_committed_baseline_is_loadable_and_complete(self):
        doc = bench.load_snapshot(COMMITTED)
        assert set(doc["scenarios"]) == set(bench.scenario_names())
        for name, entry in doc["scenarios"].items():
            assert entry["ips"] > 0, name
            shares = entry["buckets"]
            assert sum(shares.values()) == pytest.approx(1.0, abs=0.01)


class TestCheckSnapshot:
    BASE = _snapshot({"s": _entry(1000.0, pe_compute=0.60,
                                  dram_wait=0.40)})

    def test_identical_passes(self):
        assert bench.check_snapshot(self.BASE, self.BASE) == []

    def test_small_drift_within_tolerance_passes(self):
        cur = _snapshot({"s": _entry(970.0, pe_compute=0.61,
                                     dram_wait=0.39)})
        assert bench.check_snapshot(self.BASE, cur) == []

    def test_ips_regression_fails(self):
        cur = _snapshot({"s": _entry(800.0, pe_compute=0.60,
                                     dram_wait=0.40)})
        failures = bench.check_snapshot(self.BASE, cur)
        assert len(failures) == 1 and "ips regressed" in failures[0]

    def test_ips_improvement_passes(self):
        cur = _snapshot({"s": _entry(1500.0, pe_compute=0.60,
                                     dram_wait=0.40)})
        assert bench.check_snapshot(self.BASE, cur) == []

    @pytest.mark.parametrize("pe,dram", [(0.65, 0.35), (0.55, 0.45)])
    def test_share_drift_fails_in_either_direction(self, pe, dram):
        cur = _snapshot({"s": _entry(1000.0, pe_compute=pe,
                                     dram_wait=dram)})
        failures = bench.check_snapshot(self.BASE, cur)
        assert failures and all("share moved" in f for f in failures)

    def test_new_bucket_appearing_fails(self):
        cur = _snapshot({"s": _entry(1000.0, pe_compute=0.57,
                                     dram_wait=0.40,
                                     buffer_stall=0.03)})
        failures = bench.check_snapshot(self.BASE, cur)
        assert any("buffer_stall" in f for f in failures)

    def test_missing_scenario_fails(self):
        cur = _snapshot({})
        failures = bench.check_snapshot(self.BASE, cur)
        assert failures == ["s: scenario missing from current run"]

    def test_tolerances_read_from_baseline_doc(self):
        base = _snapshot({"s": _entry(1000.0, pe_compute=1.0)},
                         ips_rtol=0.30)
        cur = _snapshot({"s": _entry(800.0, pe_compute=1.0)})
        assert bench.check_snapshot(base, cur) == []

    def test_explicit_tolerance_overrides_baseline_doc(self):
        base = _snapshot({"s": _entry(1000.0, pe_compute=1.0)},
                         ips_rtol=0.30)
        cur = _snapshot({"s": _entry(800.0, pe_compute=1.0)})
        assert bench.check_snapshot(base, cur, ips_rtol=0.05)


class TestBenchCLI:
    """End-to-end through ``repro bench`` (one real scenario per run)."""

    def test_check_passes_against_committed_baseline(self, capsys):
        rc = main(["bench", "--check", "--file", str(COMMITTED),
                   "--scenarios", "fa3c-n8"])
        out = capsys.readouterr().out
        assert rc == 0, out
        assert "perf gate OK" in out

    def test_injected_ips_regression_trips_the_gate(self, tmp_path,
                                                    capsys):
        # Inflate the baseline so the (unchanged) current run looks
        # 20 % slower than expected.
        doc = bench.load_snapshot(COMMITTED)
        doc["scenarios"]["fa3c-n8"]["ips"] = round(
            doc["scenarios"]["fa3c-n8"]["ips"] * 1.25, 3)
        inflated = tmp_path / "BENCH_inflated.json"
        bench.write_snapshot(doc, inflated)
        rc = main(["bench", "--check", "--file", str(inflated),
                   "--scenarios", "fa3c-n8"])
        out = capsys.readouterr().out
        assert rc == 1, out
        assert "PERF GATE FAILED" in out and "ips regressed" in out

    def test_share_drift_trips_the_gate(self, tmp_path, capsys):
        doc = bench.load_snapshot(COMMITTED)
        buckets = doc["scenarios"]["fa3c-n8"]["buckets"]
        buckets["pe_compute"] = round(buckets["pe_compute"] + 0.10, 4)
        drifted = tmp_path / "BENCH_drifted.json"
        bench.write_snapshot(doc, drifted)
        rc = main(["bench", "--check", "--file", str(drifted),
                   "--scenarios", "fa3c-n8"])
        out = capsys.readouterr().out
        assert rc == 1, out
        assert "share moved" in out

    def test_requested_scenario_missing_from_baseline_fails(
            self, tmp_path, capsys):
        doc = bench.load_snapshot(COMMITTED)
        del doc["scenarios"]["fa3c-n8"]
        partial = tmp_path / "BENCH_partial.json"
        bench.write_snapshot(doc, partial)
        rc = main(["bench", "--check", "--file", str(partial),
                   "--scenarios", "fa3c-n8"])
        assert rc == 1
        assert "not in baseline" in capsys.readouterr().out

    def test_missing_baseline_file_is_a_usage_error(self, tmp_path,
                                                    capsys):
        rc = main(["bench", "--check", "--file",
                   str(tmp_path / "nope.json")])
        assert rc == 2
        assert "cannot load baseline" in capsys.readouterr().out

    def test_baseline_writes_report_dir_artifacts(self, tmp_path):
        out_file = tmp_path / "b.json"
        report_dir = tmp_path / "report"
        rc = main(["bench", "--baseline", "--file", str(out_file),
                   "--scenarios", "fa3c-n8",
                   "--report-dir", str(report_dir)])
        assert rc == 0
        doc = bench.load_snapshot(out_file)
        assert set(doc["scenarios"]) == {"fa3c-n8"}
        assert (report_dir / "fa3c-n8.folded").stat().st_size > 0
        assert "cycle attribution" in \
            (report_dir / "fa3c-n8.txt").read_text()


class TestScenarioDeterminism:
    def test_back_to_back_runs_are_bit_identical(self):
        first, _ = bench.run_scenario("fa3c-n8")
        second, _ = bench.run_scenario("fa3c-n8")
        assert first == second


WALLCLOCK = REPO_ROOT / "BENCH_wallclock.json"


def _wallclock(scenarios, rtol=0.5):
    return {
        "version": bench.WALLCLOCK_VERSION,
        "tolerances": {"wallclock_rtol": rtol},
        "total_wall_seconds": sum(float(e["wall_seconds"])
                                  for e in scenarios.values()),
        "scenarios": scenarios,
    }


def _wc_entry(rps):
    return {"wall_seconds": round(1.0 / rps, 4),
            "routines_per_second": rps}


class TestWallclock:
    def test_committed_wallclock_baseline_is_loadable(self):
        doc = bench.load_wallclock(WALLCLOCK)
        assert set(doc["scenarios"]) == set(bench.scenario_names())
        for name, entry in doc["scenarios"].items():
            assert entry["routines_per_second"] > 0, name
            assert entry["wall_seconds"] > 0, name

    def test_version_mismatch_raises(self, tmp_path):
        path = tmp_path / "w.json"
        path.write_text('{"version": 99, "scenarios": {}}')
        with pytest.raises(ValueError, match="version"):
            bench.load_wallclock(path)

    def test_unknown_scenario_raises(self):
        with pytest.raises(ValueError, match="fa3c-n8"):
            bench.run_wallclock_scenario("no-such-scenario")

    def test_identical_passes(self):
        doc = _wallclock({"s": _wc_entry(1000.0)})
        assert bench.check_wallclock(doc, doc) == []

    def test_slowdown_beyond_tolerance_fails(self):
        base = _wallclock({"s": _wc_entry(1000.0)})
        cur = _wallclock({"s": _wc_entry(400.0)})
        failures = bench.check_wallclock(base, cur)
        assert failures and "regressed" in failures[0]

    def test_speedup_passes(self):
        base = _wallclock({"s": _wc_entry(1000.0)})
        cur = _wallclock({"s": _wc_entry(5000.0)})
        assert bench.check_wallclock(base, cur) == []

    def test_slowdown_within_loose_tolerance_passes(self):
        base = _wallclock({"s": _wc_entry(1000.0)})
        cur = _wallclock({"s": _wc_entry(700.0)})
        assert bench.check_wallclock(base, cur) == []

    def test_missing_scenario_fails(self):
        base = _wallclock({"s": _wc_entry(1000.0)})
        cur = _wallclock({})
        assert "missing" in bench.check_wallclock(base, cur)[0]

    def test_cli_wallclock_baseline_and_check(self, tmp_path, capsys):
        out = tmp_path / "w.json"
        rc = main(["bench", "--wallclock", "--baseline",
                   "--file", str(out), "--repeats", "1",
                   "--scenarios", "ga3c-tf-n8"])
        assert rc == 0
        doc = bench.load_wallclock(out)
        assert set(doc["scenarios"]) == {"ga3c-tf-n8"}
        rc = main(["bench", "--wallclock", "--check",
                   "--file", str(out), "--repeats", "1"])
        assert rc == 0
        assert "wall-clock smoke OK" in capsys.readouterr().out

    def test_cli_wallclock_check_subset_and_missing(self, tmp_path,
                                                    capsys):
        out = tmp_path / "w.json"
        main(["bench", "--wallclock", "--baseline", "--file", str(out),
              "--repeats", "1", "--scenarios", "ga3c-tf-n8"])
        capsys.readouterr()
        rc = main(["bench", "--wallclock", "--check", "--file",
                   str(out), "--repeats", "1",
                   "--scenarios", "ga3c-tf-n8", "gpu-cudnn-n8"])
        assert rc == 1
        assert "not in baseline" in capsys.readouterr().out

    def test_cli_wallclock_missing_baseline_is_usage_error(
            self, tmp_path, capsys):
        rc = main(["bench", "--wallclock", "--check",
                   "--file", str(tmp_path / "nope.json")])
        assert rc == 2
        assert "cannot load wall-clock baseline" in \
            capsys.readouterr().out
