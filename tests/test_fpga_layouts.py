"""Tests for the FW/BW parameter layouts and the DRAM patch image."""

import hypothesis
import hypothesis.strategies as st
import numpy as np
import pytest

from repro.fpga.layouts import (
    PATCH,
    bw_layout,
    dram_image_from_fw,
    fw_layout,
    fw_layout_to_weight,
    image_words,
    load_bw_from_dram,
    load_fw_from_dram,
    pad_to_patches,
)

conv_shapes = st.tuples(st.integers(1, 20), st.integers(1, 6),
                        st.sampled_from([1, 2, 3, 4, 8]))
dense_shapes = st.tuples(st.integers(1, 70), st.integers(1, 70))


class TestFWLayout:
    def test_dense_fw_layout_is_transpose(self):
        w = np.arange(6, dtype=np.float32).reshape(2, 3)
        np.testing.assert_array_equal(fw_layout(w), w.T)

    def test_conv_fw_layout_rows_are_reduction_sequence(self):
        """Row r of the FW matrix holds, for every output channel, the
        parameter consumed at reduction step r (Figure 7a)."""
        o, i, k = 3, 2, 2
        w = np.arange(o * i * k * k, dtype=np.float32).reshape(o, i, k, k)
        fw = fw_layout(w)
        assert fw.shape == (i * k * k, o)
        for out_channel in range(o):
            np.testing.assert_array_equal(fw[:, out_channel],
                                          w[out_channel].reshape(-1))

    def test_bw_layout_is_fw_transposed(self):
        w = np.random.default_rng(0).standard_normal(
            (4, 3, 2, 2)).astype(np.float32)
        np.testing.assert_array_equal(bw_layout(w), fw_layout(w).T)

    def test_unsupported_shape_rejected(self):
        with pytest.raises(ValueError):
            fw_layout(np.zeros((2, 2, 2)))

    @hypothesis.given(conv_shapes, st.integers(0, 2 ** 31 - 1))
    @hypothesis.settings(max_examples=30, deadline=None)
    def test_fw_layout_round_trip_conv(self, dims, seed):
        o, i, k = dims
        w = np.random.default_rng(seed).standard_normal(
            (o, i, k, k)).astype(np.float32)
        np.testing.assert_array_equal(
            fw_layout_to_weight(fw_layout(w), w.shape), w)

    @hypothesis.given(dense_shapes, st.integers(0, 2 ** 31 - 1))
    @hypothesis.settings(max_examples=30, deadline=None)
    def test_fw_layout_round_trip_dense(self, dims, seed):
        w = np.random.default_rng(seed).standard_normal(
            dims).astype(np.float32)
        np.testing.assert_array_equal(
            fw_layout_to_weight(fw_layout(w), w.shape), w)


class TestDRAMImage:
    def test_padding_to_patch_multiples(self):
        padded = pad_to_patches(np.ones((17, 5), dtype=np.float32))
        assert padded.shape == (32, 16)
        assert padded[:17, :5].sum() == 17 * 5
        assert padded[17:, :].sum() == 0

    def test_image_words_accounts_padding(self):
        assert image_words(16, 16) == 256
        assert image_words(17, 5) == 32 * 16
        assert image_words(2592, 256) == 2592 * 256  # already aligned

    def test_single_copy_serves_both_layouts(self):
        """The same DRAM image yields both on-chip layouts — the paper's
        single-copy-in-DRAM invariant (Section 4.4.3)."""
        w = np.random.default_rng(1).standard_normal(
            (16, 4, 8, 8)).astype(np.float32)
        fw = fw_layout(w)
        image = dram_image_from_fw(fw)
        np.testing.assert_array_equal(
            load_fw_from_dram(image, *fw.shape), fw)
        np.testing.assert_array_equal(
            load_bw_from_dram(image, *fw.shape), fw.T)

    def test_patches_are_contiguous_16x16(self):
        """The first 256 image words are exactly the top-left patch,
        row-serialised (Figure 7c)."""
        matrix = np.arange(32 * 32, dtype=np.float32).reshape(32, 32)
        image = dram_image_from_fw(matrix)
        np.testing.assert_array_equal(
            image[:PATCH * PATCH].reshape(PATCH, PATCH),
            matrix[:PATCH, :PATCH])

    @hypothesis.given(st.integers(1, 80), st.integers(1, 80),
                      st.integers(0, 2 ** 31 - 1))
    @hypothesis.settings(max_examples=40, deadline=None)
    def test_image_round_trip_property(self, rows, cols, seed):
        matrix = np.random.default_rng(seed).standard_normal(
            (rows, cols)).astype(np.float32)
        image = dram_image_from_fw(matrix)
        assert image.size == image_words(rows, cols)
        np.testing.assert_array_equal(
            load_fw_from_dram(image, rows, cols), matrix)
        np.testing.assert_array_equal(
            load_bw_from_dram(image, rows, cols), matrix.T)

    def test_a3c_fc3_dimensions(self):
        """FC3 is the dominant layer: 2592x256 words, already
        patch-aligned, 2,592 KB: the paper's quoted parameter-set size."""
        assert image_words(2592, 256) * 4 == 2592 * 1024
