"""Precision vocabulary and quantized-datapath numerics.

Covers the contract in three layers: the :mod:`repro.precision`
vocabulary (derived widths, closed set, suggestion on typos), the
:mod:`repro.nn.quant` emulation numerics (round-trip bounds, fp32
accumulation, calibration determinism), and the straight-through
gradients the quantization-aware forward exposes to
``nn/gradcheck.py``.
"""

import numpy as np
import pytest

from repro.nn import Dense, ParameterSet, Sequential
from repro.nn.gradcheck import check_param_gradients
from repro.nn.quant import (
    INT8_LEVELS,
    Fp16Policy,
    Int8Policy,
    dequantize_int8,
    fake_quant_int8,
    fp16_storage,
    int8_scale,
    policy_for,
    quantize_int8,
)
from repro.precision import (
    FP16,
    FP32,
    INT8,
    PRECISIONS,
    Precision,
    resolve_precision,
)


class TestPrecisionVocabulary:
    def test_derived_widths(self):
        assert (FP32.words_per_beat, FP16.words_per_beat,
                INT8.words_per_beat) == (16, 32, 64)
        assert (FP32.pe_scale, FP16.pe_scale, INT8.pe_scale) == (1, 2, 4)
        assert (FP32.storage_bytes, FP16.storage_bytes,
                INT8.storage_bytes) == (4, 2, 1)
        assert all(p.accumulate_bits == 32 for p in PRECISIONS.values())

    def test_fp32_scaling_factors_are_exactly_one(self):
        """The bit-identity argument: at fp32 every multiplier is 1."""
        assert FP32.pe_scale == 1
        assert FP32.words_per_beat == 16
        assert FP32.storage_bytes == 4

    def test_resolve_accepts_names_and_instances(self):
        assert resolve_precision("int8") is INT8
        assert resolve_precision(FP16) is FP16

    def test_unknown_name_suggests_nearest(self):
        with pytest.raises(ValueError, match="did you mean 'fp16'"):
            resolve_precision("fp61")
        with pytest.raises(ValueError, match="supported: fp16, fp32, int8"):
            resolve_precision("bfloat16")

    def test_non_beat_divisible_width_rejected(self):
        with pytest.raises(ValueError, match="512-bit"):
            Precision("odd", storage_bits=24)


class TestInt8Numerics:
    def test_round_trip_bound(self):
        """|x - fake_quant(x)| <= scale/2 inside the representable range."""
        rng = np.random.default_rng(3)
        x = rng.standard_normal(4096).astype(np.float32) * 3.0
        scale = int8_scale(x)
        err = np.abs(x - fake_quant_int8(x, scale))
        assert float(err.max()) <= scale / 2 + 1e-7

    def test_saturation_outside_representable_range(self):
        scale = 0.1
        hot = np.array([100.0, -100.0], dtype=np.float32)
        codes = quantize_int8(hot, scale)
        assert codes.tolist() == [INT8_LEVELS, -INT8_LEVELS]
        np.testing.assert_allclose(dequantize_int8(codes, scale),
                                   [12.7, -12.7], rtol=1e-6)

    def test_symmetry_no_negative_128_code(self):
        """quantize(x) == -quantize(-x) exactly (the -128 code is unused)."""
        rng = np.random.default_rng(5)
        x = rng.standard_normal(512).astype(np.float32)
        scale = int8_scale(x)
        np.testing.assert_array_equal(quantize_int8(x, scale),
                                      -quantize_int8(-x, scale))

    def test_all_zero_tensor_uses_unit_scale(self):
        zeros = np.zeros(8, dtype=np.float32)
        assert int8_scale(zeros) == 1.0
        np.testing.assert_array_equal(fake_quant_int8(zeros), zeros)

    def test_non_positive_scale_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            quantize_int8(np.ones(2, dtype=np.float32), 0.0)

    def test_round_half_to_even(self):
        codes = quantize_int8(
            np.array([0.5, 1.5, 2.5, -0.5], dtype=np.float32), 1.0)
        assert codes.tolist() == [0, 2, 2, 0]


class TestFp16Numerics:
    def test_storage_round_trip_is_float32(self):
        x = np.array([1.0, 1.0 / 3.0, 65504.0], dtype=np.float32)
        y = fp16_storage(x)
        assert y.dtype == np.float32
        assert y[0] == 1.0
        assert abs(y[1] - 1.0 / 3.0) < 1e-3

    def test_accumulate_stays_fp32(self):
        """The guard the datapath contract depends on: storage rounds to
        fp16, but summing the stored values in fp32 keeps terms a pure
        fp16 accumulator would absorb.  4096 ones plus 0.25: fp16
        accumulation saturates at 2048 increments of 0.25... actually
        simpler — adding 1.0 to 4096.0 in fp16 is lossy (ulp=4), in
        fp32 it is exact."""
        base = np.float32(4096.0)
        increment = fp16_storage(np.array([1.0], dtype=np.float32))[0]
        fp32_accumulated = base + np.float32(increment)
        fp16_accumulated = np.float32(
            np.float16(base) + np.float16(increment))
        assert fp32_accumulated == np.float32(4097.0)
        assert fp16_accumulated != np.float32(4097.0)

    def test_policy_is_stateless_rounding(self):
        policy = Fp16Policy()
        x = np.array([1.0 / 3.0], dtype=np.float32)
        np.testing.assert_array_equal(policy(x, "a"), policy(x, "b"))
        np.testing.assert_array_equal(policy(x), fp16_storage(x))


class TestInt8Calibration:
    def test_observe_freeze_reuse(self):
        policy = Int8Policy()
        rng = np.random.default_rng(0)
        batch = rng.standard_normal(256).astype(np.float32)
        policy.observe("w", batch)
        policy.freeze()
        # Frozen: a small probe reuses the calibrated scale, not its own.
        probe = np.array([0.01], dtype=np.float32)
        assert policy.scale_for("w", probe) == pytest.approx(
            float(np.max(np.abs(batch))) / INT8_LEVELS)
        # Unknown keys still fall back to dynamic scaling.
        assert policy.scale_for("unseen", probe) == int8_scale(probe)

    def test_observe_after_freeze_rejected(self):
        policy = Int8Policy()
        policy.freeze()
        with pytest.raises(RuntimeError, match="frozen"):
            policy.observe("w", np.ones(2, dtype=np.float32))

    def test_calibration_is_deterministic(self):
        """Same seeded batches -> identical frozen scales dict."""
        def calibrate():
            policy = Int8Policy()
            rng = np.random.default_rng(42)
            for _ in range(5):
                batch = rng.standard_normal((8, 16)).astype(np.float32)
                policy.observe("conv1.act", batch)
                policy.observe("fc1.act", batch * 0.5)
            policy.freeze()
            return policy.scales()

        first, second = calibrate(), calibrate()
        assert first == second
        assert sorted(first) == ["conv1.act", "fc1.act"]
        assert all(scale > 0.0 for scale in first.values())

    def test_policy_for_dispatch(self):
        assert policy_for("fp32") is None
        assert isinstance(policy_for("fp16"), Fp16Policy)
        assert isinstance(policy_for("int8"), Int8Policy)
        assert isinstance(policy_for(INT8), Int8Policy)


def _quantized_model(policy):
    """A tiny dense stack with the policy installed on every layer."""
    rng = np.random.default_rng(7)
    model = Sequential([Dense("d1", 6, 5), Dense("d2", 5, 3)],
                       input_shape=(6,))
    params = model.init_params(rng)
    model.set_policy(policy)
    x = rng.standard_normal((4, 6)).astype(np.float64) * 0.5
    target = rng.standard_normal((4, 3))
    return model, params, x, target


class TestQuantizedGradcheck:
    """Straight-through gradients against central differences.

    The quantization-aware forward is piecewise constant at the rounding
    grain, so the probe ``eps`` must be large relative to the rounding
    step (int8 scale / fp16 ulp) for the central difference to see the
    underlying slope, and the tolerance correspondingly loose.
    """

    def test_fp16_forward_gradcheck(self):
        model, params, x, target = _quantized_model(Fp16Policy())

        def loss():
            y = model.forward(x.astype(np.float32), params)
            return float((y * target).sum())

        loss()
        _, grads = model.backward_and_grads(target.astype(np.float32),
                                            params)
        for name in params:
            params[name] = params[name].astype(np.float64)
        check_param_gradients(loss, params, grads,
                              eps=2e-2, rtol=0.2, atol=2e-2)

    def test_int8_frozen_scales_gradcheck(self):
        policy = Int8Policy()
        model, params, x, target = _quantized_model(policy)
        # Calibrate weights and activations with 1.5x headroom so the
        # eps-sized probe never saturates against the frozen clip range,
        # then freeze so the fake-quant grid stays fixed while gradcheck
        # perturbs parameters.  Zero-initialised biases are deliberately
        # NOT observed: they fall back to dynamic per-tensor scaling,
        # which adapts to the probe instead of rounding it away on a
        # degenerate amax=0 range.
        x32 = x.astype(np.float32)
        hidden = model.layers[0].forward(x32, params)
        policy.observe("d1.act", x32 * 1.5)
        policy.observe("d2.act", hidden * 1.5)
        for name in ("d1.weight", "d2.weight"):
            policy.observe(name, params[name] * 1.5)
        policy.freeze()

        def loss():
            y = model.forward(x.astype(np.float32), params)
            return float((y * target).sum())

        loss()
        _, grads = model.backward_and_grads(target.astype(np.float32),
                                            params)
        for name in params:
            params[name] = params[name].astype(np.float64)
        check_param_gradients(loss, params, grads,
                              eps=0.05, rtol=0.35, atol=0.05)
