"""Stage-plan cache: keying, invalidation, and fast/legacy equivalence."""

import numpy as np
import pytest

from repro.fpga.platform import FA3CPlatform
from repro.nn.network import A3CNetwork
from repro.perf import runtime as fast
from repro.perf.stageplan import CACHE, PlanCache, config_key
from repro.platforms import measure_ips


@pytest.fixture
def topology():
    return A3CNetwork(num_actions=6).topology()


@pytest.fixture
def other_topology():
    # The A3C-LSTM variant: a genuinely different layer stack (the CNN
    # topology is action-count independent — the head is padded).
    from repro.nn.network_lstm import lstm_a3c_network
    return lstm_a3c_network(6).topology()


class TestPlanCacheKeying:
    def test_repeat_lookup_hits_and_returns_same_plan(self, topology):
        cache = PlanCache()
        platform = FA3CPlatform.fa3c(topology)
        first = cache.task_plan(platform, "inference", 1)
        second = cache.task_plan(platform, "inference", 1)
        assert second is first
        assert cache.misses == 1 and cache.hits == 1

    def test_batch_change_misses(self, topology):
        cache = PlanCache()
        platform = FA3CPlatform.fa3c(topology)
        one = cache.task_plan(platform, "train", 5)
        other = cache.task_plan(platform, "train", 4)
        assert cache.misses == 2 and cache.hits == 0
        assert other is not one

    def test_double_buffering_change_misses(self, topology):
        cache = PlanCache()
        db = FA3CPlatform.fa3c(topology)
        nodb = FA3CPlatform.fa3c(topology, double_buffering=False)
        plan_db = cache.task_plan(db, "inference", 1)
        plan_nodb = cache.task_plan(nodb, "inference", 1)
        assert cache.misses == 2 and cache.hits == 0
        assert plan_db.stages[0].double_buffering
        assert not plan_nodb.stages[0].double_buffering

    def test_cu_count_change_misses(self, topology):
        cache = PlanCache()
        cache.task_plan(FA3CPlatform.fa3c(topology), "sync", 0)
        cache.task_plan(FA3CPlatform.fa3c(topology, cu_pairs=1),
                        "sync", 0)
        assert cache.misses == 2 and cache.hits == 0

    def test_topology_change_misses(self, topology, other_topology):
        cache = PlanCache()
        cache.task_plan(FA3CPlatform.fa3c(topology), "inference", 1)
        cache.task_plan(FA3CPlatform.fa3c(other_topology),
                        "inference", 1)
        assert cache.misses == 2 and cache.hits == 0

    def test_in_place_config_mutation_misses(self, topology):
        """The key is recomputed per lookup, so live mutation is safe."""
        cache = PlanCache()
        platform = FA3CPlatform.fa3c(topology)
        cache.task_plan(platform, "inference", 1)
        platform.config.double_buffering = False
        cache.task_plan(platform, "inference", 1)
        assert cache.misses == 2 and cache.hits == 0

    def test_config_key_covers_distinct_configs(self, topology):
        keys = {
            config_key(FA3CPlatform.fa3c(topology).config),
            config_key(FA3CPlatform.fa3c(topology,
                                         double_buffering=False).config),
            config_key(FA3CPlatform.fa3c(topology, cu_pairs=1).config),
            config_key(FA3CPlatform.alt2(topology).config),
            config_key(FA3CPlatform.single_cu(topology).config),
        }
        assert len(keys) == 5

    def test_global_cache_is_warm_after_use(self, topology):
        platform = FA3CPlatform.fa3c(topology)
        before = CACHE.hits
        measure_ips(platform, 2, routines_per_agent=2)
        measure_ips(platform, 2, routines_per_agent=2)
        assert CACHE.hits > before


class TestFastLegacyEquivalence:
    """Replayed plans must reproduce the derivation path's numbers
    exactly — simulated seconds, IPS, and per-request latencies."""

    VARIANTS = {
        "fa3c": lambda t: FA3CPlatform.fa3c(t),
        "nodb": lambda t: FA3CPlatform.fa3c(t, double_buffering=False),
        "single-cu": lambda t: FA3CPlatform.single_cu(t),
        "alt2": lambda t: FA3CPlatform.alt2(t),
        "one-pair": lambda t: FA3CPlatform.fa3c(t, cu_pairs=1),
    }

    def _measure(self, build, topology, fastpath: bool):
        if fastpath:
            fast.enable()
        else:
            fast.disable()
        try:
            return measure_ips(build(topology), 6, t_max=5,
                               routines_per_agent=8)
        finally:
            fast.enable()

    @pytest.mark.parametrize("variant", sorted(VARIANTS))
    def test_modelled_numbers_bit_exact(self, variant, topology):
        build = self.VARIANTS[variant]
        legacy = self._measure(build, topology, fastpath=False)
        replay = self._measure(build, topology, fastpath=True)
        assert replay.ips == legacy.ips
        assert replay.sim_seconds == legacy.sim_seconds
        assert replay.utilisation == legacy.utilisation
        np.testing.assert_array_equal(
            np.asarray(replay.inference_latencies),
            np.asarray(legacy.inference_latencies))

    def test_cache_miss_after_invalidation_matches_legacy(self, topology):
        """A post-invalidation (cold) replay still equals the legacy
        derivation: correctness does not depend on cache warmth."""
        build = self.VARIANTS["fa3c"]
        legacy = self._measure(build, topology, fastpath=False)
        CACHE.clear()
        cold = self._measure(build, topology, fastpath=True)
        assert cold.ips == legacy.ips
        assert cold.sim_seconds == legacy.sim_seconds
