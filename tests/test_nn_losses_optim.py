"""Tests for the A3C objective, its head gradients, and the optimizers."""

import hypothesis
import hypothesis.strategies as st
import numpy as np
import pytest

from repro.nn import (
    ParameterSet,
    RMSProp,
    SGD,
    Adam,
    a3c_loss_and_head_gradients,
    entropy,
    log_softmax,
    softmax,
)
from repro.nn.gradcheck import numerical_gradient

finite_logits = st.lists(
    st.floats(min_value=-20, max_value=20), min_size=2, max_size=8)


class TestSoftmax:
    @hypothesis.given(finite_logits)
    def test_softmax_is_distribution(self, raw):
        probs = softmax(np.array(raw, dtype=np.float32))
        assert probs.sum() == pytest.approx(1.0, abs=1e-5)
        assert (probs >= 0).all()

    @hypothesis.given(finite_logits, st.floats(-100, 100))
    def test_shift_invariance(self, raw, shift):
        logits = np.array(raw, dtype=np.float64)
        np.testing.assert_allclose(softmax(logits),
                                   softmax(logits + shift), atol=1e-10)

    @hypothesis.given(finite_logits)
    def test_log_softmax_consistent(self, raw):
        logits = np.array(raw, dtype=np.float64)
        np.testing.assert_allclose(log_softmax(logits),
                                   np.log(softmax(logits)), atol=1e-9)

    @hypothesis.given(finite_logits)
    def test_entropy_bounds(self, raw):
        probs = softmax(np.array(raw, dtype=np.float64))
        h = float(entropy(probs))
        assert -1e-9 <= h <= np.log(len(raw)) + 1e-9

    def test_uniform_maximises_entropy(self):
        assert float(entropy(np.full(4, 0.25))) == \
            pytest.approx(np.log(4), abs=1e-6)


class TestA3CLoss:
    def _batch(self, seed=0, n=5, actions_count=4):
        rng = np.random.default_rng(seed)
        logits = rng.standard_normal((n, actions_count)).astype(np.float32)
        values = rng.standard_normal(n).astype(np.float32)
        actions = rng.integers(0, actions_count, n)
        returns = rng.standard_normal(n).astype(np.float32)
        return logits, values, actions, returns

    def test_shape_validation(self):
        logits, values, actions, returns = self._batch()
        with pytest.raises(ValueError):
            a3c_loss_and_head_gradients(logits, values[:-1], actions,
                                        returns)

    def test_action_range_validation(self):
        logits, values, actions, returns = self._batch()
        actions = actions.copy()
        actions[0] = 99
        with pytest.raises(ValueError):
            a3c_loss_and_head_gradients(logits, values, actions, returns)

    def test_value_gradient_is_value_minus_return(self):
        logits, values, actions, returns = self._batch()
        result = a3c_loss_and_head_gradients(logits, values, actions,
                                             returns)
        np.testing.assert_allclose(result.dvalues, values - returns,
                                   rtol=1e-6)

    def test_logit_gradient_matches_numerical(self):
        logits, values, actions, returns = self._batch()
        logits64 = logits.astype(np.float64)

        def loss():
            r = a3c_loss_and_head_gradients(
                logits64, values, actions, returns, entropy_beta=0.01)
            return r.policy_loss

        result = a3c_loss_and_head_gradients(logits, values, actions,
                                             returns, entropy_beta=0.01)
        numeric = numerical_gradient(loss, logits64, eps=1e-4)
        np.testing.assert_allclose(result.dlogits, numeric, rtol=2e-2,
                                   atol=2e-4)

    def test_value_loss_is_half_squared_advantage(self):
        logits, values, actions, returns = self._batch()
        result = a3c_loss_and_head_gradients(logits, values, actions,
                                             returns)
        expected = 0.5 * float(((returns - values) ** 2).sum())
        assert result.value_loss == pytest.approx(expected, rel=1e-5)

    def test_positive_advantage_reinforces_action(self):
        """With R > V, gradient descent should raise the chosen logit."""
        logits = np.zeros((1, 3), dtype=np.float32)
        values = np.zeros(1, dtype=np.float32)
        result = a3c_loss_and_head_gradients(
            logits, values, np.array([1]),
            np.array([1.0], dtype=np.float32), entropy_beta=0.0)
        assert result.dlogits[0, 1] < 0      # descent raises logit 1
        assert result.dlogits[0, 0] > 0

    def test_entropy_term_pushes_toward_uniform(self):
        logits = np.array([[5.0, 0.0, 0.0]], dtype=np.float32)
        values = np.zeros(1, dtype=np.float32)
        result = a3c_loss_and_head_gradients(
            logits, values, np.array([0]),
            np.array([0.0], dtype=np.float32), entropy_beta=1.0)
        # advantage is 0, so only the entropy term acts: descent should
        # lower the dominant logit.
        assert result.dlogits[0, 0] > 0


class TestOptimizers:
    def _params(self):
        params = ParameterSet({"w": np.array([1.0, 2.0],
                                             dtype=np.float32)})
        grads = ParameterSet({"w": np.array([0.5, -0.5],
                                            dtype=np.float32)})
        return params, grads

    def test_sgd_step(self):
        params, grads = self._params()
        SGD(learning_rate=0.1).step(params, grads)
        np.testing.assert_allclose(params["w"], [0.95, 2.05], rtol=1e-6)

    def test_rmsprop_matches_manual_recurrence(self):
        params, grads = self._params()
        opt = RMSProp(learning_rate=0.01, rho=0.9, eps=0.1)
        theta = params["w"].copy()
        g = np.zeros_like(theta)
        for _ in range(5):
            opt.step(params, grads)
            grad = grads["w"]
            g = 0.9 * g + 0.1 * grad * grad
            theta = theta - 0.01 * grad / np.sqrt(g + 0.1)
        np.testing.assert_allclose(params["w"], theta, rtol=1e-5)

    def test_rmsprop_learning_rate_override(self):
        params, grads = self._params()
        opt = RMSProp(learning_rate=0.01)
        before = params["w"].copy()
        opt.step(params, grads, learning_rate=0.0)
        np.testing.assert_array_equal(params["w"], before)

    def test_rmsprop_statistics_shared_and_exposed(self):
        params, grads = self._params()
        opt = RMSProp()
        assert opt.statistics is None
        opt.step(params, grads)
        assert opt.statistics is not None
        assert (opt.statistics["w"] > 0).all()

    def test_adam_converges_on_quadratic(self):
        params = ParameterSet({"x": np.array([5.0], dtype=np.float32)})
        opt = Adam(learning_rate=0.2)
        for _ in range(200):
            grads = ParameterSet({"x": 2.0 * params["x"]})
            opt.step(params, grads)
        assert abs(float(params["x"][0])) < 0.05

    def test_rmsprop_descends_quadratic(self):
        params = ParameterSet({"x": np.array([5.0], dtype=np.float32)})
        opt = RMSProp(learning_rate=0.1)
        start_loss = float(params["x"][0] ** 2)
        for _ in range(100):
            grads = ParameterSet({"x": 2.0 * params["x"]})
            opt.step(params, grads)
        assert float(params["x"][0] ** 2) < start_loss * 0.01
