"""Tests for the command-line interface."""

import os

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_train_defaults(self):
        args = build_parser().parse_args(["train"])
        assert args.game == "breakout"
        assert args.t_max == 5
        assert args.learning_rate == pytest.approx(7e-4)
        assert not args.lstm

    def test_unknown_game_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train", "--game", "pitfall"])

    def test_sweep_rates_parsing(self):
        args = build_parser().parse_args(
            ["sweep", "--rates", "1e-4", "7e-4"])
        assert args.rates == [1e-4, 7e-4]

    def test_max_steps_is_an_alias_for_steps(self):
        args = build_parser().parse_args(["train", "--max-steps", "200"])
        assert args.steps == 200

    def test_obs_flags_default_off(self):
        args = build_parser().parse_args(["train"])
        assert args.trace is None and args.metrics is None


class TestCommands:
    def test_tables_prints_all_four(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        for title in ["Table 1", "Table 2", "Table 3", "Table 4"]:
            assert title in out
        assert "663808" in out or "663,808" in out

    def test_train_tiny_run(self, capsys, tmp_path):
        checkpoint = os.path.join(tmp_path, "ckpt.npz")
        code = main(["train", "--game", "pong", "--steps", "60",
                     "--agents", "1", "--episode-cap", "50",
                     "--serial", "--checkpoint", checkpoint])
        assert code == 0
        out = capsys.readouterr().out
        assert "Training A3C on pong" in out
        assert os.path.exists(checkpoint)
        from repro.nn.checkpoint import load_checkpoint
        params, stats, metadata = load_checkpoint(checkpoint)
        assert metadata["game"] == "pong"
        assert "Conv1.weight" in params
        assert stats is not None

    def test_train_lstm_tiny_run(self, capsys):
        code = main(["train", "--game", "pong", "--steps", "30",
                     "--agents", "1", "--episode-cap", "50", "--serial",
                     "--lstm"])
        assert code == 0
        assert "A3C-LSTM" in capsys.readouterr().out

    def test_train_with_trace_and_metrics(self, capsys, tmp_path):
        import json

        from repro import obs
        trace = os.path.join(tmp_path, "t.json")
        metrics = os.path.join(tmp_path, "m.jsonl")
        code = main(["train", "--game", "pong", "--max-steps", "60",
                     "--agents", "2", "--episode-cap", "50", "--serial",
                     "--trace", trace, "--metrics", metrics])
        obs.disable()
        obs.metrics().reset()
        assert code == 0
        doc = json.loads(open(trace).read())
        complete = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert complete and all("ts" in e and "dur" in e
                                for e in complete)
        rows = [json.loads(line) for line in open(metrics)]
        names = {row["name"] for row in rows}
        assert {"fpga.cu.utilisation", "fpga.dram.bytes",
                "trainer.step_rate"} <= names
        out = capsys.readouterr().out
        assert "Compute-unit utilisation" in out
        assert "DRAM traffic by channel" in out
        # The report renders again from the files alone.
        assert main(["obs-report", "--metrics", metrics,
                     "--trace", trace]) == 0
        assert "Trace lanes" in capsys.readouterr().out

    def test_obs_report_requires_an_input(self, capsys):
        assert main(["obs-report"]) == 2
        assert "needs" in capsys.readouterr().out

    def test_card_prints_checks(self, capsys):
        assert main(["card"]) == 0
        out = capsys.readouterr().out
        assert "Calibration model card" in out
        assert "OFF" not in out

    def test_ablate_small_sweep(self, capsys):
        code = main(["ablate", "--agents-sweep", "1", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "FA3C-Alt1" in out and "FA3C-SingleCU" in out


class TestRunLogCLI:
    def test_backend_alias_warns_deprecation(self, capsys):
        with pytest.warns(DeprecationWarning, match="--backend"):
            code = main(["train", "--game", "pong", "--steps", "30",
                         "--agents", "1", "--episode-cap", "50",
                         "--backend", "serial"])
        assert code == 0

    def test_train_opens_a_run_directory(self, capsys):
        from repro.obs import runlog

        code = main(["train", "--game", "pong", "--steps", "30",
                     "--agents", "1", "--episode-cap", "50", "--serial"])
        assert code == 0
        assert "run log:" in capsys.readouterr().out
        runs = runlog.list_runs()
        assert len(runs) == 1
        assert runs[0]["command"] == "train"
        assert runs[0]["outcome"] == "ok"
        manifest = runlog.load_manifest(
            runlog.resolve_run(runs[0]["run_id"]))
        assert manifest["config"]["game"] == "pong"
        assert manifest["topology"]["variant"]

    def test_no_runlog_skips_the_run_directory(self, capsys):
        from repro.obs import runlog

        code = main(["train", "--game", "pong", "--steps", "30",
                     "--agents", "1", "--episode-cap", "50", "--serial",
                     "--no-runlog"])
        assert code == 0
        assert "run log:" not in capsys.readouterr().out
        assert runlog.list_runs() == []

    def test_runs_list_and_diff_between_benches(self, capsys):
        from repro.obs import runlog

        assert main(["bench", "--scenarios", "fa3c-n8"]) == 0
        assert main(["bench", "--scenarios", "fa3c-n8"]) == 0
        assert main(["runs", "list"]) == 0
        out = capsys.readouterr().out
        assert "Recorded runs" in out
        ids = [row["run_id"] for row in runlog.list_runs()]
        assert len(ids) == 2
        assert main(["runs", "diff", ids[0], ids[1]]) == 0
        out = capsys.readouterr().out
        assert "Scenario deltas" in out
        assert "fa3c-n8" in out

    def test_runs_diff_unknown_run_fails(self, capsys):
        assert main(["runs", "diff", "nope-a", "nope-b"]) == 2
        assert "runs diff:" in capsys.readouterr().out

    def test_obs_report_run_renders_merged_run(self, capsys, tmp_path):
        from repro import obs
        from repro.obs import runlog

        metrics = os.path.join(str(tmp_path), "m.jsonl")
        code = main(["train", "--game", "pong", "--steps", "60",
                     "--agents", "2", "--episode-cap", "50",
                     "--actors", "procs", "--workers", "2",
                     "--metrics", metrics])
        obs.disable()
        obs.metrics().reset()
        assert code == 0
        run_id = runlog.list_runs()[0]["run_id"]
        capsys.readouterr()
        assert main(["obs-report", "--run", run_id]) == 0
        out = capsys.readouterr().out
        assert "Per-worker breakdown" in out
        assert "worker-0" in out and "worker-1" in out
        health_path = os.path.join(runlog.resolve_run(run_id),
                                   runlog.HEALTH_NAME)
        assert os.path.exists(health_path)
