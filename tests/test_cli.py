"""Tests for the command-line interface."""

import os

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_train_defaults(self):
        args = build_parser().parse_args(["train"])
        assert args.game == "breakout"
        assert args.t_max == 5
        assert args.learning_rate == pytest.approx(7e-4)
        assert not args.lstm

    def test_unknown_game_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train", "--game", "pitfall"])

    def test_sweep_rates_parsing(self):
        args = build_parser().parse_args(
            ["sweep", "--rates", "1e-4", "7e-4"])
        assert args.rates == [1e-4, 7e-4]

    def test_max_steps_is_an_alias_for_steps(self):
        args = build_parser().parse_args(["train", "--max-steps", "200"])
        assert args.steps == 200

    def test_obs_flags_default_off(self):
        args = build_parser().parse_args(["train"])
        assert args.trace is None and args.metrics is None


class TestCommands:
    def test_tables_prints_all_four(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        for title in ["Table 1", "Table 2", "Table 3", "Table 4"]:
            assert title in out
        assert "663808" in out or "663,808" in out

    def test_train_tiny_run(self, capsys, tmp_path):
        checkpoint = os.path.join(tmp_path, "ckpt.npz")
        code = main(["train", "--game", "pong", "--steps", "60",
                     "--agents", "1", "--episode-cap", "50",
                     "--serial", "--checkpoint", checkpoint])
        assert code == 0
        out = capsys.readouterr().out
        assert "Training A3C on pong" in out
        assert os.path.exists(checkpoint)
        from repro.nn.checkpoint import load_checkpoint
        params, stats, metadata = load_checkpoint(checkpoint)
        assert metadata["game"] == "pong"
        assert "Conv1.weight" in params
        assert stats is not None

    def test_train_lstm_tiny_run(self, capsys):
        code = main(["train", "--game", "pong", "--steps", "30",
                     "--agents", "1", "--episode-cap", "50", "--serial",
                     "--lstm"])
        assert code == 0
        assert "A3C-LSTM" in capsys.readouterr().out

    def test_train_with_trace_and_metrics(self, capsys, tmp_path):
        import json

        from repro import obs
        trace = os.path.join(tmp_path, "t.json")
        metrics = os.path.join(tmp_path, "m.jsonl")
        code = main(["train", "--game", "pong", "--max-steps", "60",
                     "--agents", "2", "--episode-cap", "50", "--serial",
                     "--trace", trace, "--metrics", metrics])
        obs.disable()
        obs.metrics().reset()
        assert code == 0
        doc = json.loads(open(trace).read())
        complete = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert complete and all("ts" in e and "dur" in e
                                for e in complete)
        rows = [json.loads(line) for line in open(metrics)]
        names = {row["name"] for row in rows}
        assert {"fpga.cu.utilisation", "fpga.dram.bytes",
                "trainer.step_rate"} <= names
        out = capsys.readouterr().out
        assert "Compute-unit utilisation" in out
        assert "DRAM traffic by channel" in out
        # The report renders again from the files alone.
        assert main(["obs-report", "--metrics", metrics,
                     "--trace", trace]) == 0
        assert "Trace lanes" in capsys.readouterr().out

    def test_obs_report_requires_an_input(self, capsys):
        assert main(["obs-report"]) == 2
        assert "needs" in capsys.readouterr().out

    def test_card_prints_checks(self, capsys):
        assert main(["card"]) == 0
        out = capsys.readouterr().out
        assert "Calibration model card" in out
        assert "OFF" not in out

    def test_ablate_small_sweep(self, capsys):
        code = main(["ablate", "--agents-sweep", "1", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "FA3C-Alt1" in out and "FA3C-SingleCU" in out
