"""Tests for the worker-health monitor over merged runs."""

import json
import os

import pytest

from repro.obs import health, runlog


@pytest.fixture
def runs_root(tmp_path):
    return str(tmp_path / "runs")


def make_run(runs_root):
    return runlog.RunLog.open("train", root=runs_root)


def write_shard(run_dir, pid, worker, routines, opened, beat,
                final=True, rows=()):
    records = [{"kind": "open", "pid": pid, "worker": worker,
                "time": opened, "interval": 2.0},
               {"kind": "heartbeat", "seq": 1, "time": beat,
                "stats": {"routines": routines}}]
    records.extend({"kind": "metric", "seq": 1, "row": row}
                   for row in rows)
    if final:
        records.append({"kind": "final", "seq": 1, "time": beat,
                        "stats": {"routines": routines}})
    path = os.path.join(
        run_dir, f"{runlog.SHARD_PREFIX}{pid}{runlog.SHARD_SUFFIX}")
    with open(path, "a", encoding="utf-8") as fh:
        for record in records:
            fh.write(json.dumps(record) + "\n")


class TestHealthEvents:
    def test_clean_run_has_no_events(self, runs_root):
        log = make_run(runs_root)
        write_shard(log.path, 9001, "worker-0", 100, 100.0, 110.0)
        write_shard(log.path, 9002, "worker-1", 90, 100.0, 110.0)
        log.finish()
        log.update(end_time=111.0)
        merged = runlog.merge_run(log.path)
        assert health.health_events(merged) == []

    def test_killed_worker_is_a_straggler(self, runs_root):
        log = make_run(runs_root)
        write_shard(log.path, 9001, "worker-0", 100, 100.0, 110.0)
        write_shard(log.path, 9002, "worker-1", 10, 100.0, 101.0,
                    final=False)
        log.finish()
        log.update(end_time=111.0)
        merged = runlog.merge_run(log.path)
        events = health.health_events(merged)
        assert len(events) == 1
        event = events[0]
        assert event["kind"] == "health"
        assert event["event"] == "straggler"
        assert event["worker"] == "worker-1"
        assert "killed or hung" in event["reason"]

    def test_slow_worker_below_median_ratio(self, runs_root):
        log = make_run(runs_root)
        # 10 routines/s, 10 routines/s, and a 1 routine/s laggard.
        write_shard(log.path, 9001, "worker-0", 100, 100.0, 110.0)
        write_shard(log.path, 9002, "worker-1", 100, 100.0, 110.0)
        write_shard(log.path, 9003, "worker-2", 10, 100.0, 110.0)
        log.finish()
        log.update(end_time=111.0)
        merged = runlog.merge_run(log.path)
        events = health.health_events(merged)
        assert [e["worker"] for e in events] == ["worker-2"]
        assert events[0]["event"] == "straggler"
        assert events[0]["routines_per_s"] == pytest.approx(1.0)

    def test_stale_heartbeat_is_a_stall(self, runs_root):
        log = make_run(runs_root)
        write_shard(log.path, 9001, "worker-0", 100, 100.0, 110.0)
        log.finish()
        # Rewrite end_time far beyond the worker's last heartbeat.
        log.update(end_time=float(110.0 + 60.0))
        merged = runlog.merge_run(log.path)
        events = health.health_events(merged, stall_seconds=10.0)
        assert [e["event"] for e in events] == ["stall"]

    def test_solo_worker_is_never_its_own_baseline(self, runs_root):
        log = make_run(runs_root)
        write_shard(log.path, 9001, "worker-0", 1, 100.0, 110.0)
        log.finish()
        log.update(end_time=111.0)
        merged = runlog.merge_run(log.path)
        assert health.health_events(merged) == []

    def test_parent_shard_is_excluded(self, runs_root):
        log = make_run(runs_root)
        # Parent coordinates, so it reports no routines — must not be
        # judged against the workers.
        write_shard(log.path, os.getpid(), "main", 0, 100.0, 110.0)
        write_shard(log.path, 9001, "worker-0", 100, 100.0, 110.0)
        write_shard(log.path, 9002, "worker-1", 90, 100.0, 110.0)
        log.finish()
        log.update(end_time=111.0)
        merged = runlog.merge_run(log.path)
        assert health.health_events(merged) == []


class TestWorkerRows:
    def test_rows_carry_counters_and_status(self, runs_root):
        log = make_run(runs_root)
        write_shard(
            log.path, 9001, "worker-0", 100, 100.0, 110.0,
            rows=[{"name": "ps.updates", "type": "counter",
                   "labels": {}, "value": 42.0},
                  {"name": "ps.lock_wait_seconds", "type": "histogram",
                   "labels": {"op": "apply"}, "count": 5, "sum": 2.5,
                   "min": 0.1, "max": 1.0}])
        write_shard(log.path, 9002, "worker-1", 10, 100.0, 101.0,
                    final=False)
        log.finish()
        log.update(end_time=111.0)
        merged = runlog.merge_run(log.path)
        events = health.health_events(merged)
        rows = health.worker_rows(merged, events)
        assert [r["worker"] for r in rows] == ["worker-0", "worker-1"]
        first = rows[0]
        assert first["updates"] == 42
        assert first["lock_wait_s"] == pytest.approx(2.5)
        assert first["lock_wait_share"] == pytest.approx(0.25)
        assert first["final"] == "yes" and first["status"] == "ok"
        second = rows[1]
        assert second["final"] == "no"
        assert second["status"] == "straggler"
