"""Tests for the analysis tables (Table 2/3, roofline) and the harness."""

import numpy as np
import pytest

from repro.analysis import (
    accumulation_frequency_table,
    line_buffer_table,
    operational_intensity,
    roofline_time,
    traffic_table,
)
from repro.analysis.linebuffers import layer_line_buffers, stitching_rows
from repro.harness import (
    EXPERIMENTS,
    format_curve,
    format_series,
    format_table,
    get_experiment,
)
from repro.nn.network import A3CNetwork


@pytest.fixture(scope="module")
def topology():
    return A3CNetwork(num_actions=6).topology()


class TestTrafficTable:
    def test_structure_matches_table2(self, topology):
        report = traffic_table(topology, t_max=5)
        tasks = [(item.task, item.data) for item in report.items]
        assert ("Parameter sync", "Global theta") in tasks
        assert ("Inference task", "Local theta") in tasks
        assert ("Training task", "RMS g") in tasks

    def test_totals_in_paper_ballpark(self, topology):
        """Paper Table 2 totals: 24,538 KB load / 7,776 KB store per
        routine (with its ~2,592 KB parameter-set estimate; ours is the
        exact 2,673 KB, so totals land proportionally higher)."""
        report = traffic_table(topology, t_max=5)
        assert report.total_load_bytes / 1024 == pytest.approx(
            27_946, rel=0.01)
        assert report.total_store_bytes / 1024 == pytest.approx(
            8_020, rel=0.01)
        # store = exactly three parameter-set writes (sync local,
        # training global theta, RMS g), as in the paper
        assert report.total_store_bytes == 3 * 2_737_472

    def test_inference_counts_tmax_plus_bootstrap(self, topology):
        report = traffic_table(topology, t_max=5)
        inference_theta = [item for item in report.items
                           if item.task == "Inference task"
                           and item.data == "Local theta"][0]
        assert inference_theta.count == 6

    def test_feature_map_extension_is_small(self, topology):
        """The Section 4.3 feature-map traffic Table 2 omits stays under
        a few percent of the total."""
        base = traffic_table(topology, t_max=5)
        extended = traffic_table(topology, t_max=5,
                                 include_feature_maps=True)
        extra = (extended.total_load_bytes + extended.total_store_bytes
                 - base.total_load_bytes - base.total_store_bytes)
        assert extra / (base.total_load_bytes
                        + base.total_store_bytes) < 0.12

    def test_rows_render(self, topology):
        rows = traffic_table(topology).rows()
        assert rows[-1]["task"] == "Total"


class TestLineBufferTable:
    def test_every_layer_has_nine_plans(self, topology):
        table = line_buffer_table(topology)
        assert set(table) == {"Conv1", "Conv2", "FC3", "FC4"}
        assert all(len(plans) == 9 for plans in table.values())

    def test_conv1_gc_uses_k_input_lines(self, topology):
        """Table 3: GC loads K input-feature lines (K=8 for Conv1)."""
        plans = layer_line_buffers(topology.layers[0], n_pe=64)
        gc_input = [p for p in plans
                    if p.stage == "GC" and p.port == "Input 0"][0]
        assert gc_input.count == 8

    def test_conv1_gc_output_gradient_lines(self, topology):
        """M_GC = floor(N_PE / K^2) = floor(64/64) = 1 for Conv1."""
        plans = layer_line_buffers(topology.layers[0], n_pe=64)
        gc_grad = [p for p in plans
                   if p.stage == "GC" and p.port == "Input 1"][0]
        assert gc_grad.count == 1

    def test_conv2_gc_output_gradient_lines(self, topology):
        """M_GC = floor(64/16) = 4 for Conv2."""
        plans = layer_line_buffers(topology.layers[1], n_pe=64)
        gc_grad = [p for p in plans
                   if p.stage == "GC" and p.port == "Input 1"][0]
        assert gc_grad.count == 4

    def test_parameter_ports_need_no_line_buffer(self, topology):
        for spec in topology.layers:
            for plan in layer_line_buffers(spec):
                if "Parameter" in plan.buffer:
                    assert plan.count == 0

    def test_parameter_width_is_min_npe_o(self, topology):
        conv1 = layer_line_buffers(topology.layers[0], n_pe=64)
        fw_param = [p for p in conv1
                    if p.stage == "FW" and p.port == "Input 1"][0]
        assert fw_param.width == 16   # min(64, O=16)

    def test_stitching_row_count(self):
        """An 84-word feature row needs ceil(84/16) = 6 buffer rows."""
        assert stitching_rows(84) == 6
        assert stitching_rows(16) == 1


class TestRoofline:
    def test_intensity_grows_with_batch(self, topology):
        fc3 = topology.layers[2]
        assert operational_intensity(fc3, 1) < \
            operational_intensity(fc3, 32)

    def test_conv_intensity_exceeds_fc_at_batch_1(self, topology):
        """Section 2.2/3.3: convolutions have higher operational
        intensity than fully-connected layers."""
        conv1, _, fc3, _ = topology.layers
        assert operational_intensity(conv1, 1) > \
            20 * operational_intensity(fc3, 1)

    def test_fc3_memory_bound_on_p100(self, topology):
        """On P100 numbers, batch-1 FC3 is bandwidth-limited."""
        fc3 = topology.layers[2]
        time_mem_only = roofline_time(fc3, 1, peak_flops=1e30,
                                      mem_bandwidth=732e9)
        actual = roofline_time(fc3, 1, peak_flops=9.3e12,
                               mem_bandwidth=732e9)
        assert actual == pytest.approx(time_mem_only)

    def test_unknown_stage_rejected(self, topology):
        with pytest.raises(ValueError):
            operational_intensity(topology.layers[0], 1, stage="xx")

    def test_accumulation_frequencies_vary_widely(self, topology):
        """Section 4.2.1: accumulation frequency spans orders of
        magnitude across layers/stages — the case for generic PEs."""
        rows = accumulation_frequency_table(topology, batch=5)
        values = [row["fw"] for row in rows] + [row["gc"] for row in rows]
        assert max(values) / min(values) > 100
        fc3 = [row for row in rows if row["layer"] == "FC3"][0]
        assert fc3["gc"] == 5   # GC accumulation = batch size for dense


class TestHarness:
    def test_all_experiments_registered(self):
        assert len(EXPERIMENTS) == 12
        for exp_id in ["table1", "table2", "table3", "table4", "fig8",
                       "fig9", "fig10", "fig11", "fig12", "s32", "s33",
                       "s34"]:
            assert exp_id in EXPERIMENTS

    def test_get_experiment(self):
        exp = get_experiment("fig8")
        assert "IPS" in exp.title or "Performance" in exp.title
        with pytest.raises(KeyError):
            get_experiment("fig99")

    def test_every_experiment_names_a_bench(self):
        for exp in EXPERIMENTS.values():
            assert exp.bench.startswith("benchmarks/")
            assert exp.modules

    def test_format_table_alignment(self):
        text = format_table([{"a": 1, "b": "x"}, {"a": 22, "b": "yy"}],
                            title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert len({len(line) for line in lines[1:]}) <= 2

    def test_format_table_empty(self):
        assert "(empty)" in format_table([])

    def test_format_series(self):
        text = format_series([1, 2], {"FA3C": [10.0, 20.0]})
        assert "FA3C" in text and "20" in text

    def test_format_curve(self):
        steps = np.arange(100)
        scores = np.linspace(0, 10, 100)
        text = format_curve(steps, scores, "breakout")
        assert "breakout" in text
        assert "max=" in text and "first=" in text

    def test_format_curve_empty(self):
        assert "no episodes" in format_curve(np.array([]), np.array([]),
                                             "x")
