"""Whole-program lint machinery: the index, the on-disk cache, the
incremental (``--changed``) mode, ``--why``, and the cross-module
seeded self-check fixture.

The incremental tests are the acceptance gate for the cache design: a
warm run must re-analyse *only* dirty files plus their reverse-
dependency cone, and must say so in the cache-stats line.
"""

import ast
import json
import pathlib

import pytest

from repro.cli import main
from repro.lint import LintConfig, lint_paths
from repro.lint.astutil import FileContext
from repro.lint.cache import DEFAULT_CACHE_PATH
from repro.lint.program import (
    ModuleSummary,
    ProgramIndex,
    extract_summary,
    file_digest,
)

REPO_ROOT = pathlib.Path(__file__).parent.parent
XMODULE = REPO_ROOT / "tests" / "data" / "lint_seeded_xmodule"
XMODULE_FILES = [
    str(XMODULE / "hot.py"),
    str(XMODULE / "helpers.py"),
    str(XMODULE / "laya" / "__init__.py"),
    str(XMODULE / "layb" / "__init__.py"),
]


def summarize(relpath, source, hot_functions=()):
    ctx = FileContext(ast.parse(source), relpath, hot_functions)
    return extract_summary(ctx, file_digest(source.encode()),
                           LintConfig())


def build_index(files):
    return ProgramIndex([summarize(path, src)
                         for path, src in files.items()])


class TestProgramIndex:
    def test_resolve_bare_name_same_module(self):
        program = build_index({
            "repro/pkg/a.py": "def helper():\n    return 1\n"})
        assert program.resolve_name("repro.pkg.a", "helper") == \
            "repro.pkg.a.helper"

    def test_resolve_through_import_binding(self):
        program = build_index({
            "repro/pkg/a.py": "def helper():\n    return 1\n",
            "repro/pkg/b.py": "from repro.pkg.a import helper\n",
        })
        assert program.resolve_name("repro.pkg.b", "helper") == \
            "repro.pkg.a.helper"

    def test_resolve_module_alias_attribute(self):
        program = build_index({
            "repro/pkg/a.py": "def helper():\n    return 1\n",
            "repro/pkg/b.py": "from repro.pkg import a as util\n",
        })
        assert program.resolve_name("repro.pkg.b", "util.helper") == \
            "repro.pkg.a.helper"

    def test_resolve_through_package_reexport(self):
        program = build_index({
            "repro/pkg/__init__.py":
                "from repro.pkg.impl import helper\n",
            "repro/pkg/impl.py": "def helper():\n    return 1\n",
            "repro/use.py": "from repro.pkg import helper\n",
        })
        assert program.resolve_name("repro.use", "helper") == \
            "repro.pkg.impl.helper"

    def test_resolve_class_method(self):
        program = build_index({
            "repro/pkg/a.py": ("class Engine:\n"
                               "    def run(self):\n"
                               "        return 1\n")})
        assert program.resolve_name("repro.pkg.a", "Engine.run") == \
            "repro.pkg.a.Engine.run"

    def test_reverse_cone_follows_importers(self):
        program = build_index({
            "repro/pkg/a.py": "def helper():\n    return 1\n",
            "repro/pkg/b.py": "from repro.pkg.a import helper\n",
            "repro/pkg/c.py": "from repro.pkg.b import helper\n",
            "repro/pkg/d.py": "x = 1\n",
        })
        cone = program.reverse_cone(["repro/pkg/a.py"])
        assert "repro/pkg/b.py" in cone
        assert "repro/pkg/c.py" in cone
        assert "repro/pkg/d.py" not in cone

    def test_cross_package_cycle_detected_intra_package_ignored(self):
        program = build_index({
            "repro/one/__init__.py": "import repro.two\n",
            "repro/two/__init__.py": "import repro.one\n",
            # an __init__ re-export knot inside one package is fine
            "repro/pkg/__init__.py": "from repro.pkg.sub import x\n",
            "repro/pkg/sub.py": "import repro.pkg\nx = 1\n",
        })
        cycles = program.import_cycles()
        assert any("repro.one" in cycle for cycle in cycles)
        assert not any("repro.pkg" in cycle for cycle in cycles)

    def test_summary_round_trips_through_dict(self):
        summary = summarize("repro/pkg/a.py",
                            ("import time\n"
                             "from repro.perf.hotpath import hot_path\n"
                             "@hot_path\n"
                             "def leaf(values, lat=None):\n"
                             "    for v in values:\n"
                             "        time.perf_counter()\n"))
        clone = ModuleSummary.from_dict(summary.to_dict())
        assert clone.to_dict() == summary.to_dict()
        func = clone.functions["leaf"]
        assert func.hot
        assert any(h.kind == "wallclock" and h.in_loop
                   for h in func.hazards)


HELPER = ("import numpy as np\n"
          "from repro.obs import runtime as _obs\n"
          "\n"
          "\n"
          "def emit(count):\n"
          "    _obs.metrics().counter('x').inc(count)\n")

HOT = ("from repro.perf.hotpath import hot_path\n"
       "\n"
       "from repro.helper import emit\n"
       "\n"
       "\n"
       "@hot_path\n"
       "def drain(n):\n"
       "    emit(n)\n"
       "    return n\n")

LONER = "VALUE = 1\n"


def write_tree(tmp_path, files):
    """Lay files out under ``tmp_path/repro`` so their derived module
    names (``repro.*``) line up with the dotted imports they use."""
    pkg = tmp_path / "repro"
    pkg.mkdir(exist_ok=True)
    for name, source in files.items():
        (pkg / name).write_text(source)
    return pkg


class TestIncremental:
    def setup_tree(self, tmp_path):
        write_tree(tmp_path, {"helper.py": HELPER, "hot.py": HOT,
                              "loner.py": LONER})
        return str(tmp_path / "repro"), str(tmp_path / "cache.json")

    def run(self, root, cache):
        return lint_paths([root], LintConfig(), changed_only=True,
                          cache_path=cache)

    def test_cold_warm_and_cone(self, tmp_path):
        root, cache = self.setup_tree(tmp_path)

        cold = self.run(root, cache)
        assert cold.cache_stats.analysed == 3
        assert cold.cache_stats.reused == 0
        assert {f.rule for f in cold.findings} == {"hot-path-transitive"}

        warm = self.run(root, cache)
        assert warm.cache_stats.analysed == 0
        assert warm.cache_stats.dirty == 0
        assert warm.cache_stats.reused == 3
        # findings replay from the cache, identical to the cold run
        assert [f.message for f in warm.findings] == \
            [f.message for f in cold.findings]

        # dirty the helper: itself + its importer re-run, loner reused
        (tmp_path / "repro" / "helper.py").write_text(
            HELPER + "\n# touched\n")
        cone = self.run(root, cache)
        assert cone.cache_stats.dirty == 1
        assert cone.cache_stats.cone == 1
        assert cone.cache_stats.analysed == 2
        assert cone.cache_stats.reused == 1
        assert {f.rule for f in cone.findings} == {"hot-path-transitive"}
        assert "1 dirty + 1 dependents" in cone.cache_stats.line()

    def test_dirty_dependent_picks_up_new_hazard(self, tmp_path):
        root, cache = self.setup_tree(tmp_path)
        self.run(root, cache)
        # the helper grows a second hazard; the hot caller's findings
        # must refresh even though hot.py itself did not change
        (tmp_path / "repro" / "helper.py").write_text(
            HELPER + "\n\ndef stamp():\n    import time\n"
                     "    return time.time()\n")
        (tmp_path / "repro" / "hot.py").write_text(
            HOT.replace("from repro.helper import emit\n",
                        "from repro.helper import emit, stamp\n")
               .replace("    emit(n)\n",
                        "    emit(n)\n    stamp()\n"))
        run = self.run(root, cache)
        assert run.cache_stats.dirty == 2
        messages = " ".join(f.message for f in run.findings)
        assert "emit()" in messages and "stamp()" in messages

    def test_fixing_the_helper_clears_cached_findings(self, tmp_path):
        root, cache = self.setup_tree(tmp_path)
        assert self.run(root, cache).findings
        (tmp_path / "repro" / "helper.py").write_text(
            HELPER.replace(
                "    _obs.metrics().counter('x').inc(count)\n",
                "    if _obs.enabled():\n"
                "        _obs.metrics().counter('x').inc(count)\n"))
        run = self.run(root, cache)
        assert run.cache_stats.analysed == 2
        assert not run.findings

    def test_config_change_invalidates_cache(self, tmp_path):
        root, cache = self.setup_tree(tmp_path)
        self.run(root, cache)
        narrowed = lint_paths([root], LintConfig(),
                              select=["determinism"],
                              changed_only=True, cache_path=cache)
        # different rule selection -> different cache key -> cold run
        assert narrowed.cache_stats.analysed == 3
        assert narrowed.cache_stats.reused == 0

    def test_cache_file_shape(self, tmp_path):
        root, cache = self.setup_tree(tmp_path)
        self.run(root, cache)
        document = json.loads(pathlib.Path(cache).read_text())
        assert set(document) == {"version", "config_key", "files"}
        assert len(document["files"]) == 3
        for entry in document["files"].values():
            assert "digest" in entry and "findings" in entry

    def test_deleted_file_pruned_from_cache(self, tmp_path):
        root, cache = self.setup_tree(tmp_path)
        self.run(root, cache)
        (tmp_path / "repro" / "loner.py").unlink()
        run = self.run(root, cache)
        assert run.cache_stats.total == 2
        document = json.loads(pathlib.Path(cache).read_text())
        assert len(document["files"]) == 2

    def test_plain_run_ignores_cache(self, tmp_path):
        root, _ = self.setup_tree(tmp_path)
        run = lint_paths([root], LintConfig())
        assert run.cache_stats is None
        assert not (tmp_path / DEFAULT_CACHE_PATH).exists()


class TestCLIIncrementalAndWhy:
    def lint_args(self, *extra):
        return ["lint", "--config", str(REPO_ROOT / "pyproject.toml"),
                *extra]

    def test_changed_prints_cache_stats_line(self, tmp_path, capsys):
        (tmp_path / "mod.py").write_text(LONER)
        cache = str(tmp_path / "cache.json")
        code = main(self.lint_args(str(tmp_path), "--changed",
                                   "--cache", cache))
        assert code == 0
        assert "cache: 1 analysed (1 dirty + 0 dependents)" \
            in capsys.readouterr().out
        code = main(self.lint_args(str(tmp_path), "--changed",
                                   "--cache", cache))
        assert code == 0
        assert "cache: 0 analysed (0 dirty + 0 dependents), 1 reused" \
            in capsys.readouterr().out

    def test_no_cache_wins_over_changed(self, tmp_path, capsys):
        (tmp_path / "mod.py").write_text(LONER)
        code = main(self.lint_args(str(tmp_path), "--changed",
                                   "--no-cache"))
        assert code == 0
        assert "cache:" not in capsys.readouterr().out
        assert not (tmp_path / DEFAULT_CACHE_PATH).exists()

    def test_why_explains_a_finding_by_id_prefix(self, tmp_path, capsys):
        write_tree(tmp_path, {"helper.py": HELPER, "hot.py": HOT})
        run = lint_paths([str(tmp_path)], LintConfig())
        finding = run.findings[0]
        fid = finding.finding_id()
        code = main(self.lint_args(str(tmp_path), "--why", fid[:10]))
        out = capsys.readouterr().out
        assert code == 0
        assert f"finding {fid}" in out
        assert "[hot-path-transitive]" in out
        assert "drain() calls emit()" in out

    def test_why_unknown_id_exits_two(self, tmp_path, capsys):
        (tmp_path / "mod.py").write_text(LONER)
        code = main(self.lint_args(str(tmp_path), "--why", "deadbeef"))
        assert code == 2
        assert "no finding" in capsys.readouterr().out


class TestSeededXModule:
    """The CI self-check fixture must fire every program rule across a
    module boundary."""

    def run(self):
        return lint_paths(XMODULE_FILES, LintConfig())

    def test_all_three_program_rules_fire(self):
        rules = {f.rule for f in self.run().findings}
        assert {"hot-path-transitive", "seed-flow", "layering"} <= rules

    def test_findings_cross_the_module_boundary(self):
        transitive = [f for f in self.run().findings
                      if f.rule == "hot-path-transitive"]
        assert transitive
        for finding in transitive:
            assert finding.path.endswith("hot.py")
            assert "helpers.py" in finding.message

    def test_chains_are_complete(self):
        for finding in self.run().findings:
            assert finding.chain, finding.message
            # every hop names a file:line location
            for hop in finding.chain:
                assert ":" in hop

    def test_cli_exits_nonzero_with_rule_names(self, capsys):
        code = main(["lint", "--config",
                     str(REPO_ROOT / "pyproject.toml"),
                     *XMODULE_FILES, "--strict"])
        out = capsys.readouterr().out
        assert code == 1
        for rule in ("hot-path-transitive", "seed-flow", "layering"):
            assert f"[{rule}]" in out


class TestTransitiveChainRendering:
    def test_message_carries_the_full_call_path(self, tmp_path):
        write_tree(tmp_path, {
            "a.py": ("import time\n\n\ndef stamp():\n"
                     "    return time.perf_counter()\n\n\n"
                     "def relay():\n    return stamp()\n"),
            "b.py": ("from repro.perf.hotpath import hot_path\n\n"
                     "from repro.a import relay\n\n\n"
                     "@hot_path\ndef leaf():\n    return relay()\n"),
        })
        run = lint_paths([str(tmp_path)], LintConfig())
        finding = next(f for f in run.findings
                       if f.rule == "hot-path-transitive")
        assert "via leaf() -> relay() -> stamp()" in finding.message
        assert "(depth 2)" in finding.message
        assert len(finding.chain) == 3
