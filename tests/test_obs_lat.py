"""Tests for repro.obs.lat: HDR histograms, segment decomposition,
critical-path extraction, the latency report tables, and the latency
bench gate."""

import math

import numpy as np
import pytest

from repro import obs
from repro.core import A3CConfig, A3CTrainer, GA3CTrainer, PAACTrainer
from repro.envs.base import Env
from repro.envs.spaces import Box, Discrete
from repro.nn.network import MLPPolicyNetwork
from repro.obs import lat, report
from repro.obs.registry import (
    HDR_SUBBUCKETS,
    MetricsRegistry,
    hdr_bucket_bounds,
    hdr_bucket_index,
    hdr_percentile,
)
from repro.obs.tracer import ObsSpan


class Bandit(Env):
    """One-step episodes: action 0 pays +1, action 1 pays -1."""

    def __init__(self):
        super().__init__()
        self.observation_space = Box(0, 1, (2,))
        self.action_space = Discrete(2)

    def reset(self):
        return np.ones(2, dtype=np.float32)

    def step(self, action):
        reward = 1.0 if int(action) == 0 else -1.0
        return np.ones(2, dtype=np.float32), reward, True, {}


def bandit_net():
    return MLPPolicyNetwork(num_actions=2, input_shape=(2,), hidden=8)


class TestHdrBuckets:
    def test_bounds_contain_their_values(self):
        for value in (2e-9, 1e-6, 3.7e-4, 0.001, 0.9, 1.0, 12.5, 1e3):
            lo, hi = hdr_bucket_bounds(hdr_bucket_index(value))
            assert lo <= value < hi, value

    def test_indices_are_monotonic(self):
        values = [1e-8 * (1.17 ** i) for i in range(120)]
        indices = [hdr_bucket_index(v) for v in values]
        assert indices == sorted(indices)

    def test_underflow_lands_in_bucket_zero(self):
        assert hdr_bucket_index(0.0) == 0
        assert hdr_bucket_index(1e-12) == 0
        assert hdr_bucket_index(-1.0) == 0

    def test_midpoint_error_is_within_bucket_resolution(self):
        rel = 1.0 / (2 * HDR_SUBBUCKETS) + 1e-9
        for value in (1e-6, 0.00042, 0.0031, 0.25, 7.0):
            estimate = hdr_percentile(
                {hdr_bucket_index(value): 1}, 50.0)
            assert estimate == pytest.approx(value, rel=2 * rel)

    def test_percentile_accepts_string_keys(self):
        index = hdr_bucket_index(0.5)
        exact = hdr_percentile({index: 3}, 99.0)
        assert hdr_percentile({str(index): 3}, 99.0) == exact

    def test_percentile_empty_is_nan_and_range_checked(self):
        assert math.isnan(hdr_percentile({}, 50.0))
        with pytest.raises(ValueError):
            hdr_percentile({3: 1}, 150.0)


class TestHdrFoldExactness:
    def test_sharded_fold_is_bit_identical_to_single_process(self):
        values = [0.0001 * (1.3 ** i) for i in range(40)]
        single = MetricsRegistry()
        for value in values:
            single.histogram("h").observe(value)
        merged = MetricsRegistry()
        for shard_index in range(4):
            shard = MetricsRegistry()
            for value in values[shard_index::4]:
                shard.histogram("h").observe(value)
            merged.absorb_rows(shard.snapshot())
        row_single = single.snapshot()[0]
        row_merged = merged.snapshot()[0]
        assert row_merged["hdr"] == row_single["hdr"]
        assert row_merged["count"] == row_single["count"]
        for q in (50.0, 90.0, 99.0):
            assert hdr_percentile(row_merged["hdr"], q) == \
                hdr_percentile(row_single["hdr"], q)

    def test_merged_percentiles_render_real_values(self):
        merged = MetricsRegistry()
        for worker, value in (("w0", 0.001), ("w1", 0.004)):
            shard = MetricsRegistry()
            shard.histogram("h").observe(value)
            merged.absorb_rows(shard.snapshot(), worker=worker)
        rows = merged.snapshot()
        for row in rows:
            assert row["p50"] is not None
            assert row["p99"] is not None


class TestRoutineLatency:
    def test_segments_total_and_other_remainder(self):
        with obs.enabled_scope():
            recorder = lat.RoutineLatency("t", start_ns=1000)
            recorder.add_ns("infer", 300)
            recorder.add_ns("train", 200)
            total = recorder.finish(end_ns=2000)
            assert total == 1000
            registry = obs.metrics()
            seg = registry.counter(lat.SEGMENT_NS)
            assert seg.value(trainer="t", segment="infer") == 300
            assert seg.value(trainer="t", segment="train") == 200
            assert seg.value(trainer="t", segment="other") == 500
            assert registry.counter(lat.TOTAL_NS).value(trainer="t") \
                == 1000

    def test_platform_label_is_attached(self):
        with obs.enabled_scope():
            lat.RoutineLatency("t", platform="fa3c-fpga",
                               start_ns=0).finish(end_ns=10)
            value = obs.metrics().counter(lat.TOTAL_NS).value(
                trainer="t", platform="fa3c-fpga")
            assert value == 10

    def test_overlapping_segments_raise(self):
        with obs.enabled_scope():
            recorder = lat.RoutineLatency("t", start_ns=0)
            recorder.add_ns("infer", 600)
            recorder.add_ns("train", 600)
            with pytest.raises(lat.LatencyError):
                recorder.finish(end_ns=1000)

    def test_measure_context_manager_accumulates(self):
        with obs.enabled_scope():
            recorder = lat.RoutineLatency("t")
            with recorder.measure("infer"):
                pass
            with recorder.measure("infer"):
                pass
            assert recorder._segments["infer"] >= 0
            recorder.finish()
            assert obs.metrics().counter(lat.SEGMENT_NS).value(
                trainer="t", segment="infer") >= 0


class TestValidateRows:
    def _rows(self):
        with obs.enabled_scope():
            recorder = lat.RoutineLatency("t", start_ns=0)
            recorder.add_ns("infer", 40)
            recorder.finish(end_ns=100)
            return obs.metrics().snapshot()

    def test_valid_rows_pass(self):
        assert lat.validate_rows(self._rows()) == 1

    def test_tampered_total_fails(self):
        rows = self._rows()
        for row in rows:
            if row["name"] == lat.TOTAL_NS:
                row["value"] = 999.0
        with pytest.raises(lat.LatencyError):
            lat.validate_rows(rows)

    def test_orphan_total_fails(self):
        rows = [{"name": lat.TOTAL_NS, "type": "counter",
                 "labels": {"trainer": "t"}, "value": 10.0}]
        with pytest.raises(lat.LatencyError):
            lat.validate_rows(rows)

    def test_survives_cross_process_fold(self):
        merged = MetricsRegistry()
        for worker in ("w0", "w1"):
            with obs.enabled_scope():
                recorder = lat.RoutineLatency("t", start_ns=0)
                recorder.add_ns("infer", 40)
                recorder.finish(end_ns=100)
                merged.absorb_rows(obs.metrics().snapshot(),
                                   worker=worker)
        assert lat.validate_rows(merged.snapshot()) == 2


class TestTrainerInvariant:
    """Every trainer's recorded segments sum to its recorded totals."""

    def _config(self, **kwargs):
        defaults = dict(num_agents=2, t_max=3, max_steps=60,
                        learning_rate=1e-2, anneal_steps=10 ** 9, seed=1)
        defaults.update(kwargs)
        return A3CConfig(**defaults)

    def _validate_live(self):
        rows = obs.metrics().snapshot()
        assert lat.validate_rows(rows) >= 1
        return rows

    def test_a3c_serial_records_exact_segments(self):
        with obs.enabled_scope():
            A3CTrainer(lambda i: Bandit(), bandit_net,
                       self._config()).train(threads=False)
            rows = self._validate_live()
        segments = {r["labels"]["segment"] for r in rows
                    if r["name"] == lat.SEGMENT_NS}
        assert {"param_sync", "infer", "batch_form",
                "train"} <= segments

    def test_a3c_threads_record_exact_segments(self):
        with obs.enabled_scope():
            A3CTrainer(lambda i: Bandit(), bandit_net,
                       self._config()).train(threads=True)
            self._validate_live()

    def test_ga3c_records_queue_wait(self):
        with obs.enabled_scope():
            GA3CTrainer(lambda i: Bandit(), bandit_net,
                        self._config(max_steps=120),
                        training_batch_rollouts=2).train()
            rows = self._validate_live()
        segments = {(r["labels"]["trainer"], r["labels"]["segment"])
                    for r in rows if r["name"] == lat.SEGMENT_NS}
        assert ("ga3c", "queue_wait") in segments
        assert ("ga3c-predict", "infer") in segments

    def test_paac_records_exact_segments(self):
        with obs.enabled_scope():
            PAACTrainer(lambda i: Bandit(), bandit_net,
                        self._config()).train()
            rows = self._validate_live()
        segments = {r["labels"]["segment"] for r in rows
                    if r["name"] == lat.SEGMENT_NS}
        assert {"infer", "batch_form", "train"} <= segments

    @pytest.mark.slow
    def test_procs_backend_invariant_after_absorb(self):
        with obs.enabled_scope():
            trainer = A3CTrainer(lambda i: Bandit(), bandit_net,
                                 self._config(max_steps=400))
            trainer.train(actors="procs", workers=2)
            rows = obs.metrics().snapshot()
        lat_rows = [r for r in rows
                    if r["name"] in (lat.SEGMENT_NS, lat.TOTAL_NS)]
        assert lat_rows, "workers shipped no latency rows"
        workers = {r["labels"].get("worker") for r in lat_rows}
        assert len(workers) >= 1
        assert lat.validate_rows(rows) >= 1


class TestCriticalPath:
    def _spans(self):
        return [
            ObsSpan(lane="agent-0", label="routine", start=0.0,
                    end=10.0, clock="wall", depth=0),
            ObsSpan(lane="agent-0", label="update", start=1.0, end=9.0,
                    clock="wall", depth=1),
            ObsSpan(lane="agent-0", label="grads", start=2.0, end=8.0,
                    clock="wall", depth=2),
            ObsSpan(lane="agent-0", label="small", start=0.0, end=0.5,
                    clock="wall", depth=1),
            ObsSpan(lane="cu0", label="FW", start=0.0, end=100.0,
                    clock="sim", depth=0),
        ]

    def test_longest_chain_per_lane(self):
        rows = lat.critical_path_rows(self._spans())
        by_lane = {row["lane"]: row for row in rows}
        assert by_lane["agent-0"]["chain"] == "routine > update > grads"
        assert by_lane["agent-0"]["duration"] == pytest.approx(10.0)
        assert by_lane["agent-0"]["depth"] == 3
        # Sim spans keep their own clock units (cycles) and sort first.
        assert rows[0]["lane"] == "cu0"
        assert rows[0]["duration"] == pytest.approx(100.0)

    def test_accepts_span_dicts_and_honours_top(self):
        spans = [s.as_dict() for s in self._spans()]
        rows = lat.critical_path_rows(spans, top=1)
        assert len(rows) == 1
        assert rows[0]["lane"] == "cu0"

    def test_deterministic_tie_break(self):
        spans = [
            ObsSpan(lane="l", label="b", start=0.0, end=1.0,
                    clock="wall", depth=0),
            ObsSpan(lane="l", label="a", start=0.0, end=1.0,
                    clock="wall", depth=0),
        ]
        first = lat.critical_path_rows(spans)
        second = lat.critical_path_rows(list(reversed(spans)))
        assert first == second


class TestLatencyReport:
    def _rows(self):
        with obs.enabled_scope():
            recorder = lat.RoutineLatency("a3c", start_ns=0)
            recorder.add_ns("infer", 600_000)
            recorder.add_ns("train", 300_000)
            recorder.finish(end_ns=1_000_000)
            return obs.metrics().snapshot()

    def test_latency_rows_have_percentiles_and_share(self):
        rows = report.latency_rows(self._rows())
        by_segment = {row["segment"]: row for row in rows}
        infer = by_segment["infer"]
        assert infer["count"] == 1
        assert infer["p50_ms"] == pytest.approx(0.6, rel=0.07)
        assert float(infer["share"]) == pytest.approx(0.6)
        assert float(by_segment["other"]["share"]) == pytest.approx(0.1)

    def test_routine_rows_render_end_to_end(self):
        rows = report.latency_routine_rows(self._rows())
        assert rows[0]["trainer"] == "a3c"
        assert rows[0]["p50_ms"] == pytest.approx(1.0, rel=0.07)

    def test_obs_report_gates_latency_tables(self):
        rows = self._rows()
        assert "Latency by segment" not in report.obs_report(rows)
        text = report.obs_report(rows, latency=True)
        assert "Latency by segment" in text
        assert "End-to-end routine latency" in text


class TestBenchLatency:
    def _scenario(self):
        from repro.obs.prof import baseline
        return baseline, baseline.scenario_names()[0]

    def test_run_latency_scenario_is_deterministic(self):
        baseline, name = self._scenario()
        first = baseline.run_latency_scenario(name)
        second = baseline.run_latency_scenario(name)
        assert first == second
        assert first["requests"] > 0
        assert first["p99_us"] >= first["p50_us"] > 0
        assert sum(first["hdr"].values()) == first["requests"]

    def test_check_latency_passes_and_flags_growth(self):
        baseline, name = self._scenario()
        current = baseline.collect_latency([name])
        assert baseline.check_latency(current, current) == []
        slower = {
            "version": baseline.LATENCY_VERSION,
            "tolerances": dict(current["tolerances"]),
            "scenarios": {name: dict(current["scenarios"][name])},
        }
        entry = slower["scenarios"][name]
        entry["p99_us"] = entry["p99_us"] * 2.0
        # Faster than baseline passes; slower than baseline fails.
        assert baseline.check_latency(slower, current) == []
        failures = baseline.check_latency(current, slower)
        assert failures and "p99" in failures[0]

    def test_check_latency_flags_workload_drift_and_missing(self):
        baseline, name = self._scenario()
        current = baseline.collect_latency([name])
        drifted = {
            "version": baseline.LATENCY_VERSION,
            "tolerances": dict(current["tolerances"]),
            "scenarios": {name: dict(current["scenarios"][name])},
        }
        drifted["scenarios"][name]["requests"] += 1
        assert any("request count" in failure for failure in
                   baseline.check_latency(current, drifted))
        failures = baseline.check_latency(
            current, {"version": baseline.LATENCY_VERSION,
                      "scenarios": {}})
        assert any("missing" in failure for failure in failures)

    def test_load_latency_rejects_wrong_version(self, tmp_path):
        from repro.obs.prof import baseline
        path = tmp_path / "BENCH_latency.json"
        path.write_text('{"version": 99, "scenarios": {}}',
                        encoding="utf-8")
        with pytest.raises(ValueError):
            baseline.load_latency(str(path))

    def test_committed_baseline_matches_current_model(self):
        """The committed BENCH_latency.json gates against the live
        model: re-collecting its scenarios must pass its own check."""
        import os

        from repro.obs.prof import baseline
        path = os.path.join(os.path.dirname(__file__), os.pardir,
                            baseline.DEFAULT_LATENCY_BASELINE)
        base = baseline.load_latency(path)
        names = sorted(base["scenarios"])
        current = baseline.collect_latency(names)
        assert baseline.check_latency(base, current) == []
