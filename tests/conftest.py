"""Shared fixtures: keep run directories out of the repository root.

``train``/``sweep``/``bench`` CLI invocations open a run directory by
default (:mod:`repro.obs.runlog`); pointing ``REPRO_RUNS_DIR`` at a
per-test temporary directory keeps the repo clean and the tests
isolated from each other's runs.
"""

import pytest


@pytest.fixture(autouse=True)
def _runs_dir_in_tmp(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_RUNS_DIR", str(tmp_path / "runs"))
