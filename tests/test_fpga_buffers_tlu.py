"""Tests for on-chip buffers, line buffers, the BCU, and the TLU."""

import hypothesis
import hypothesis.strategies as st
import numpy as np
import pytest

from repro.fpga.buffers import BufferControlUnit, LineBuffer, OnChipBuffer
from repro.fpga.layouts import PATCH
from repro.fpga.tlu import TransposeLoadUnit


class TestOnChipBuffer:
    def test_dimension_validation(self):
        with pytest.raises(ValueError):
            OnChipBuffer("b", rows=0)

    def test_write_read_row(self):
        buffer = OnChipBuffer("b", rows=4)
        buffer.write_row(1, np.arange(16, dtype=np.float32))
        np.testing.assert_array_equal(buffer.read_row(1),
                                      np.arange(16, dtype=np.float32))

    def test_row_overflow_rejected(self):
        buffer = OnChipBuffer("b", rows=4)
        with pytest.raises(ValueError):
            buffer.write_row(0, np.zeros(17, dtype=np.float32))

    def test_offset_write(self):
        buffer = OnChipBuffer("b", rows=2)
        buffer.write_row(0, np.ones(4, dtype=np.float32), offset=12)
        assert buffer.read_row(0)[12:].sum() == 4.0

    def test_load_matrix_wide_rows_span_buffer_rows(self):
        """A 40-word matrix row occupies three 16-word buffer rows
        (Section 4.3 alignment)."""
        buffer = OnChipBuffer("b", rows=8)
        matrix = np.arange(2 * 40, dtype=np.float32).reshape(2, 40)
        used = buffer.load_matrix(matrix)
        assert used == 6
        np.testing.assert_array_equal(buffer.read_line(0, 40), matrix[0])
        np.testing.assert_array_equal(buffer.read_line(1, 40), matrix[1])

    def test_load_matrix_capacity_check(self):
        buffer = OnChipBuffer("b", rows=2)
        with pytest.raises(ValueError):
            buffer.load_matrix(np.zeros((3, 16), dtype=np.float32))

    def test_words_capacity(self):
        assert OnChipBuffer("b", rows=256).words == 4096


class TestLineBuffer:
    def test_width_validation(self):
        with pytest.raises(ValueError):
            LineBuffer(0)

    def test_load_and_peek(self):
        line = LineBuffer(4)
        line.load(np.array([1, 2, 3, 4], dtype=np.float32))
        assert line.peek(0) == 1.0
        assert line.peek(3) == 4.0

    def test_load_size_validation(self):
        with pytest.raises(ValueError):
            LineBuffer(4).load(np.zeros(3, dtype=np.float32))

    def test_shift_semantics(self):
        line = LineBuffer(4)
        line.load(np.array([1, 2, 3, 4], dtype=np.float32))
        out = line.shift(1)
        np.testing.assert_array_equal(out, [1.0])
        np.testing.assert_array_equal(line.registers, [2, 3, 4, 0])

    def test_register_count(self):
        assert LineBuffer(10).register_count == 320

    @hypothesis.given(st.integers(1, 30), st.integers(0, 40))
    @hypothesis.settings(max_examples=30, deadline=None)
    def test_repeated_shift_drains(self, width, shifts):
        line = LineBuffer(width)
        line.load(np.arange(1, width + 1, dtype=np.float32))
        for _ in range(shifts):
            line.shift(1)
        expected_zeroes = min(shifts, width)
        assert (line.registers[width - expected_zeroes:] == 0).all()


class TestBufferControlUnit:
    def test_stitching_combines_rows(self):
        """Stitching restores a feature-map row wider than 16 words
        (Section 4.5)."""
        buffer = OnChipBuffer("fmap", rows=6)
        row = np.arange(84, dtype=np.float32)
        for part in range(6):
            chunk = row[part * 16:(part + 1) * 16]
            buffer.write_row(part, chunk)
        bcu = BufferControlUnit()
        line = bcu.stitch(buffer, range(6), width=84)
        np.testing.assert_array_equal(line.registers, row)
        assert bcu.stitch_ops == 1

    def test_stitch_width_check(self):
        buffer = OnChipBuffer("b", rows=2)
        with pytest.raises(ValueError):
            BufferControlUnit().stitch(buffer, [0], width=20)

    def test_shift_window_emits_convolution_windows(self):
        """Shifting exposes each K-word window once per cycle — the FW
        input access pattern."""
        bcu = BufferControlUnit()
        line = LineBuffer(6)
        line.load(np.arange(6, dtype=np.float32))
        windows = list(bcu.shift_window(line, window=3))
        assert len(windows) == 4
        np.testing.assert_array_equal(windows[0], [0, 1, 2])
        np.testing.assert_array_equal(windows[-1], [3, 4, 5])
        assert bcu.shift_ops == 4

    def test_scatter_distributes_to_rows(self):
        """Scattering sends PE outputs to per-channel buffer rows
        (Section 4.5)."""
        buffer = OnChipBuffer("out", rows=4)
        line = LineBuffer(3)
        line.load(np.array([7, 8, 9], dtype=np.float32))
        bcu = BufferControlUnit()
        bcu.scatter(line, buffer, [(0, 0), (1, 5), (3, 15)])
        assert buffer.read_row(0)[0] == 7.0
        assert buffer.read_row(1)[5] == 8.0
        assert buffer.read_row(3)[15] == 9.0

    def test_scatter_placement_count_check(self):
        buffer = OnChipBuffer("out", rows=1)
        line = LineBuffer(1)
        with pytest.raises(ValueError):
            BufferControlUnit().scatter(line, buffer, [(0, 0), (0, 1)])


class TestTransposeLoadUnit:
    def test_register_transpose_matches_numpy(self):
        tlu = TransposeLoadUnit(emulate=True)
        patch = np.arange(256, dtype=np.float32)
        tlu.stage(patch)
        np.testing.assert_array_equal(
            tlu.transpose_next(), patch.reshape(16, 16).T)

    @hypothesis.given(st.integers(0, 2 ** 31 - 1))
    @hypothesis.settings(max_examples=25, deadline=None)
    def test_fast_path_matches_register_emulation(self, seed):
        patch = np.random.default_rng(seed).standard_normal(
            256).astype(np.float32)
        fast, slow = TransposeLoadUnit(), TransposeLoadUnit(emulate=True)
        fast.stage(patch)
        slow.stage(patch)
        np.testing.assert_array_equal(fast.transpose_next(),
                                      slow.transpose_next())
        assert fast.transpose_cycles() == slow.transpose_cycles()
        assert fast.words_loaded == slow.words_loaded

    @hypothesis.given(st.integers(0, 2 ** 31 - 1))
    @hypothesis.settings(max_examples=25, deadline=None)
    def test_transpose_property(self, seed):
        tlu = TransposeLoadUnit()
        patch = np.random.default_rng(seed).standard_normal(
            256).astype(np.float32)
        tlu.stage(patch)
        np.testing.assert_array_equal(
            tlu.transpose_next(), patch.reshape(PATCH, PATCH).T)

    def test_fifo_depth_backpressure(self):
        tlu = TransposeLoadUnit(fifo_depth=2)
        tlu.stage(np.zeros(256, dtype=np.float32))
        tlu.stage(np.zeros(256, dtype=np.float32))
        with pytest.raises(RuntimeError, match="FIFO full"):
            tlu.stage(np.zeros(256, dtype=np.float32))

    def test_transpose_without_staged_patch(self):
        with pytest.raises(RuntimeError):
            TransposeLoadUnit().transpose_next()

    def test_wrong_patch_size_rejected(self):
        with pytest.raises(ValueError):
            TransposeLoadUnit().stage(np.zeros(100, dtype=np.float32))

    def test_cycle_count_is_one_beat_per_row(self):
        assert TransposeLoadUnit().transpose_cycles() == 16

    def test_stream_counters(self):
        tlu = TransposeLoadUnit()
        patches = [np.random.default_rng(i).standard_normal(
            256).astype(np.float32) for i in range(3)]
        out = tlu.load_transposed(patches)
        assert len(out) == 3
        assert tlu.patches_transposed == 3
        assert tlu.words_loaded == 3 * 256
