"""Tests for checkpointing and the learning-rate sweep utility."""

import os

import numpy as np
import pytest

from repro.core import A3CConfig
from repro.core.sweep import sweep_learning_rates
from repro.envs.base import Env
from repro.envs.spaces import Box, Discrete
from repro.nn import ParameterSet, RMSProp
from repro.nn.checkpoint import (
    load_checkpoint,
    restore_optimizer,
    save_checkpoint,
)
from repro.nn.network import MLPPolicyNetwork


class _Bandit(Env):
    def __init__(self):
        super().__init__()
        self.observation_space = Box(0, 1, (2,))
        self.action_space = Discrete(2)

    def reset(self):
        return np.ones(2, dtype=np.float32)

    def step(self, action):
        return (np.ones(2, dtype=np.float32),
                1.0 if int(action) == 0 else -1.0, True, {})


class TestCheckpoint:
    def _params(self, seed=0):
        net = MLPPolicyNetwork(2, (2,), hidden=4)
        return net, net.init_params(np.random.default_rng(seed))

    def test_round_trip_params_and_metadata(self, tmp_path):
        _, params = self._params()
        path = os.path.join(tmp_path, "ckpt.npz")
        save_checkpoint(path, params,
                        metadata={"global_step": 12345, "game": "pong"})
        loaded, stats, metadata = load_checkpoint(path)
        assert loaded.allclose(params, rtol=0, atol=0)
        assert stats is None
        assert metadata == {"global_step": 12345, "game": "pong"}

    def test_round_trip_optimizer_statistics(self, tmp_path):
        _, params = self._params()
        optimizer = RMSProp(learning_rate=1e-3)
        grads = params.zeros_like()
        grads["FC1.weight"] += 0.5
        optimizer.step(params, grads)
        path = os.path.join(tmp_path, "ckpt.npz")
        save_checkpoint(path, params, optimizer=optimizer)
        loaded, stats, _ = load_checkpoint(path)
        assert stats is not None
        assert stats.allclose(optimizer.statistics, rtol=0, atol=0)

    def test_resume_continues_identically(self, tmp_path):
        """Save, restore into fresh objects, take one more step each —
        trajectories match exactly."""
        _, params_a = self._params(seed=1)
        optimizer_a = RMSProp(learning_rate=1e-3)
        grads = params_a.zeros_like()
        grads["FC1.weight"] += 1.0
        optimizer_a.step(params_a, grads)
        path = os.path.join(tmp_path, "ckpt.npz")
        save_checkpoint(path, params_a, optimizer=optimizer_a)

        params_b, stats, _ = load_checkpoint(path)
        optimizer_b = RMSProp(learning_rate=1e-3)
        restore_optimizer(optimizer_b, stats)

        optimizer_a.step(params_a, grads)
        optimizer_b.step(params_b, grads)
        assert params_b.allclose(params_a, rtol=0, atol=0)

    def test_empty_metadata_default(self, tmp_path):
        _, params = self._params()
        path = os.path.join(tmp_path, "ckpt.npz")
        save_checkpoint(path, params)
        _, _, metadata = load_checkpoint(path)
        assert metadata == {}


class TestSweep:
    def _run(self, rates, seeds=(0,)):
        config = A3CConfig(num_agents=2, t_max=5, max_steps=2500,
                           anneal_steps=10 ** 9, seed=0)
        return sweep_learning_rates(
            lambda i: _Bandit(),
            lambda: MLPPolicyNetwork(2, (2,), hidden=8),
            config, learning_rates=rates, seeds=seeds,
            score_window=100)

    def test_grid_coverage(self):
        result = self._run([1e-4, 1e-2], seeds=(0, 1))
        assert len(result.entries) == 4
        assert set(result.by_learning_rate()) == {1e-4, 1e-2}

    def test_best_picks_learnable_rate(self):
        """1e-2 solves the bandit within budget; 1e-6 cannot."""
        result = self._run([1e-6, 1e-2])
        assert result.best.learning_rate == 1e-2
        assert result.best.final_score > 0.5

    def test_rows_summarise_per_rate(self):
        result = self._run([1e-3], seeds=(0, 1))
        rows = result.rows()
        assert len(rows) == 1
        assert rows[0]["runs"] == 2

    def test_base_config_not_mutated(self):
        config = A3CConfig(num_agents=1, t_max=5, max_steps=500,
                           learning_rate=7e-4, seed=9)
        sweep_learning_rates(lambda i: _Bandit(),
                             lambda: MLPPolicyNetwork(2, (2,), hidden=4),
                             config, learning_rates=[1e-3])
        assert config.learning_rate == 7e-4
        assert config.seed == 9

    def test_best_requires_scores(self):
        from repro.core.sweep import SweepResult
        with pytest.raises(ValueError):
            SweepResult(entries=[]).best
