"""Unit tests for the discrete-event primitives."""

import pytest

from repro.sim import Engine


class TestEvent:
    def test_new_event_is_untriggered(self):
        engine = Engine()
        event = engine.event()
        assert not event.triggered
        assert not event.processed

    def test_value_unavailable_before_trigger(self):
        engine = Engine()
        with pytest.raises(RuntimeError):
            _ = engine.event().value

    def test_succeed_carries_value(self):
        engine = Engine()
        event = engine.event()
        event.succeed(42)
        assert event.triggered
        assert event.ok
        assert event.value == 42

    def test_double_succeed_rejected(self):
        engine = Engine()
        event = engine.event().succeed()
        with pytest.raises(RuntimeError):
            event.succeed()

    def test_fail_requires_exception(self):
        engine = Engine()
        with pytest.raises(TypeError):
            engine.event().fail("not an exception")

    def test_fail_marks_not_ok(self):
        engine = Engine()
        event = engine.event()
        event.fail(ValueError("boom"))
        assert event.triggered
        assert not event.ok

    def test_callbacks_run_on_engine_step(self):
        engine = Engine()
        event = engine.event()
        seen = []
        event.callbacks.append(lambda e: seen.append(e.value))
        event.succeed("payload")
        assert seen == []          # not yet processed
        engine.run()
        assert seen == ["payload"]


class TestTimeout:
    def test_fires_at_delay(self):
        engine = Engine()
        timeout = engine.timeout(2.5)
        engine.run()
        assert timeout.processed
        assert engine.now == 2.5

    def test_negative_delay_rejected(self):
        engine = Engine()
        with pytest.raises(ValueError):
            engine.timeout(-1.0)

    def test_timeout_value(self):
        engine = Engine()
        timeout = engine.timeout(1.0, value="done")
        engine.run()
        assert timeout.value == "done"

    def test_zero_delay_allowed(self):
        engine = Engine()
        timeout = engine.timeout(0.0)
        engine.run()
        assert timeout.processed
        assert engine.now == 0.0


class TestAllOf:
    def test_waits_for_all(self):
        engine = Engine()
        a = engine.timeout(1.0, "a")
        b = engine.timeout(3.0, "b")
        both = engine.all_of([a, b])
        engine.run(both)
        assert engine.now == 3.0
        assert both.value == ["a", "b"]

    def test_empty_fires_immediately(self):
        engine = Engine()
        empty = engine.all_of([])
        assert empty.triggered
        assert empty.value == []

    def test_failure_propagates(self):
        engine = Engine()
        good = engine.timeout(1.0)
        bad = engine.event()
        bad.fail(RuntimeError("child failed"))
        combined = engine.all_of([good, bad])
        with pytest.raises(RuntimeError, match="child failed"):
            engine.run(combined)

    def test_value_order_matches_input_order(self):
        engine = Engine()
        slow = engine.timeout(5.0, "slow")
        fast = engine.timeout(1.0, "fast")
        both = engine.all_of([slow, fast])
        engine.run(both)
        assert both.value == ["slow", "fast"]


class TestAnyOf:
    def test_first_wins(self):
        engine = Engine()
        slow = engine.timeout(5.0, "slow")
        fast = engine.timeout(1.0, "fast")
        first = engine.any_of([slow, fast])
        engine.run(first)
        assert engine.now == 1.0
        assert first.value == "fast"

    def test_empty_rejected(self):
        engine = Engine()
        with pytest.raises(ValueError):
            engine.any_of([])
