"""Tests for the throughput experiment, IPS metric, and the power model."""

import pytest

from repro.fpga.platform import FA3CPlatform
from repro.gpu.platform import A3CcuDNNPlatform, GA3CTFPlatform
from repro.nn.network import A3CNetwork
from repro.platforms import (
    HostModel,
    IPSMeter,
    ips_definition_check,
    measure_ips,
    sweep_agents,
)
from repro.power import PLATFORM_POWER, PowerEnvelope, PowerModel


@pytest.fixture(scope="module")
def topology():
    return A3CNetwork(num_actions=6).topology()


class TestIPSMeter:
    def test_empty_meter_is_zero(self):
        assert IPSMeter().ips() == 0.0

    def test_steady_state_rate(self):
        meter = IPSMeter(t_max=5)
        for i in range(1, 21):
            meter.record_routine(sim_time=i * 0.01, steps=5)
        # 5 steps per 10 ms -> 500 IPS
        assert meter.ips() == pytest.approx(500.0, rel=0.01)

    def test_warmup_discard(self):
        meter = IPSMeter(t_max=5)
        meter.record_routine(0.0, 5)       # slow start
        for i in range(1, 11):
            meter.record_routine(1.0 + i * 0.01, 5)
        assert meter.ips(discard_fraction=0.5) == pytest.approx(
            500.0, rel=0.05)

    def test_paper_worked_example(self):
        """IPS 500 at t_max 5 -> 100 bootstrap inferences and 100
        training tasks per second (Section 5.2)."""
        breakdown = ips_definition_check(500.0, t_max=5)
        assert breakdown.routines_per_second == pytest.approx(100.0)
        assert breakdown.bootstrap_inferences_per_second == \
            pytest.approx(100.0)
        assert breakdown.training_tasks_per_second == pytest.approx(100.0)


class TestMeasureIPS:
    def test_result_fields(self, topology):
        result = measure_ips(FA3CPlatform.fa3c(topology), 2,
                             routines_per_agent=5)
        assert result.platform == "FA3C"
        assert result.num_agents == 2
        assert result.ips > 0
        assert result.routines == 10
        assert 0 < result.utilisation <= 1.0

    def test_throughput_grows_then_saturates(self, topology):
        results = sweep_agents(FA3CPlatform.fa3c(topology), [1, 4, 16],
                               routines_per_agent=10)
        ips = [r.ips for r in results]
        assert ips[1] > ips[0] * 2          # still scaling at n=4
        assert ips[2] < ips[1] * 4          # saturated well before 4x

    def test_dummy_host_model(self):
        host = HostModel.dummy()
        assert host.train_prep_time == 0.0
        assert host.step_time > 0

    def test_batched_host_model(self):
        """The SoA-engine host amortises frame_skip frames over the
        frozen calibration frame rate — the occupancy-curve input."""
        from repro.gpu.calibration import GPUCalibration
        host = HostModel.batched()
        assert host.step_time == \
            4 / GPUCalibration.batched_env_fps
        assert host.step_time < HostModel().step_time
        assert HostModel.batched(frames_per_second=8000.0,
                                 frame_skip=2).step_time == 2 / 8000.0
        with pytest.raises(ValueError):
            HostModel.batched(frames_per_second=0.0)
        with pytest.raises(ValueError):
            HostModel.batched(frame_skip=0)

    def test_batched_host_raises_modelled_throughput(self, topology):
        """A cheaper host step lets the same agent count extract more
        IPS from the accelerator (closer to the contention limit)."""
        batched = measure_ips(GA3CTFPlatform(topology), 8,
                              routines_per_agent=10,
                              host=HostModel.batched())
        scalar = measure_ips(GA3CTFPlatform(topology), 8,
                             routines_per_agent=10)
        assert batched.ips > scalar.ips

    def test_ga3c_agents_do_not_block_on_training(self, topology):
        """GA3C training is queued, not awaited: more routines finish
        per simulated second than the device could serve synchronously."""
        result = measure_ips(GA3CTFPlatform(topology), 8,
                             routines_per_agent=10)
        assert result.ips > 0

    def test_deterministic(self, topology):
        platform = A3CcuDNNPlatform(topology)
        a = measure_ips(platform, 4, routines_per_agent=8)
        b = measure_ips(A3CcuDNNPlatform(topology), 4,
                        routines_per_agent=8)
        assert a.ips == pytest.approx(b.ips)


class TestPowerModel:
    def test_envelope_interpolates(self):
        envelope = PowerEnvelope(idle_delta=5.0, active=20.0)
        assert envelope.watts(0.0) == 5.0
        assert envelope.watts(1.0) == 20.0
        assert envelope.watts(0.5) == pytest.approx(12.5)
        assert envelope.watts(2.0) == 20.0   # clamped

    def test_all_platforms_have_envelopes(self):
        for name in ["FA3C", "FA3C-SingleCU", "FA3C-Alt1", "FA3C-Alt2",
                     "A3C-cuDNN", "A3C-TF-GPU", "GA3C-TF", "A3C-TF-CPU"]:
            assert name in PLATFORM_POWER

    def test_unknown_platform_rejected(self, topology):
        result = measure_ips(FA3CPlatform.fa3c(topology), 1,
                             routines_per_agent=3)
        result.platform = "mystery"
        with pytest.raises(KeyError):
            PowerModel().report(result)

    def test_figure9_anchors(self, topology):
        """FA3C ~18 W, ~30 % below A3C-cuDNN, ~1.6x its efficiency
        (Section 5.3)."""
        results = [
            measure_ips(FA3CPlatform.fa3c(topology), 16,
                        routines_per_agent=20),
            measure_ips(A3CcuDNNPlatform(topology), 16,
                        routines_per_agent=20),
        ]
        rows = {row["platform"]: row
                for row in PowerModel().figure9(results)}
        fa3c = rows["FA3C"]
        assert fa3c["watts"] == pytest.approx(18.0, abs=1.5)
        assert fa3c["relative_power"] == pytest.approx(0.70, abs=0.08)
        assert fa3c["ips_per_watt"] > 125
        assert fa3c["relative_efficiency"] > 1.5

    def test_figure9_requires_baseline(self, topology):
        result = measure_ips(FA3CPlatform.fa3c(topology), 1,
                             routines_per_agent=3)
        with pytest.raises(ValueError):
            PowerModel().figure9([result])
