"""Smoke tests: the example scripts run and produce their headline
output.  The slower examples (full training sweeps) are exercised by the
benchmarks instead."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def _run(script, args=(), timeout=240):
    return subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True, text=True, timeout=timeout, check=False)


class TestExamples:
    def test_all_examples_exist(self):
        names = {path.name for path in EXAMPLES.glob("*.py")}
        assert {"quickstart.py", "atari_breakout.py",
                "platform_comparison.py", "fpga_backend_demo.py",
                "ablation_study.py", "lstm_memory.py",
                "watch_games.py", "trace_dual_cu.py",
                "paac_batched.py"} <= names

    def test_watch_games(self):
        result = _run("watch_games.py", ["pong"])
        assert result.returncode == 0, result.stderr
        assert "pong" in result.stdout
        assert "@" in result.stdout       # something bright was drawn

    def test_fpga_backend_demo(self):
        result = _run("fpga_backend_demo.py")
        assert result.returncode == 0, result.stderr
        assert "matches numpy transpose" in result.stdout
        assert "max |theta_hw - theta_sw|" in result.stdout
        # equivalence within fp32 noise
        line = [l for l in result.stdout.splitlines()
                if "max |theta_hw" in l][0]
        assert float(line.split(":")[1]) < 1e-5

    def test_atari_breakout_tiny(self):
        result = _run("atari_breakout.py", ["400"])
        assert result.returncode == 0, result.stderr
        assert "Training A3C on simulated breakout" in result.stdout

    def test_paac_batched_tiny(self):
        result = _run("paac_batched.py", ["400"])
        assert result.returncode == 0, result.stderr
        assert "Training PAAC on batched breakout" in result.stdout
        assert "update rounds" in result.stdout

    def test_trace_dual_cu(self, tmp_path):
        import json
        result = _run("trace_dual_cu.py", [str(tmp_path)])
        assert result.returncode == 0, result.stderr
        assert "dual-CU speedup over single-CU" in result.stdout
        for name in ("trace_dual_cu.json", "trace_single_cu.json"):
            doc = json.loads((tmp_path / name).read_text())
            assert doc["traceEvents"], name
        # The dual-CU trace shows icu/tcu lanes; single-CU only cu0.
        dual = (tmp_path / "trace_dual_cu.json").read_text()
        single = (tmp_path / "trace_single_cu.json").read_text()
        assert "icu0" in dual and "tcu0" in dual
        assert "icu0" not in single and '"cu0"' in single

    @pytest.mark.slow
    def test_quickstart(self):
        result = _run("quickstart.py")
        assert result.returncode == 0, result.stderr
        assert "Final mean score" in result.stdout
