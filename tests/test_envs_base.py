"""Tests for spaces, the Env contract, TimeLimit, and preprocessing."""

import hypothesis
import hypothesis.strategies as st
import numpy as np
import pytest

from repro.envs import (
    Box,
    CartPole,
    Catch,
    Discrete,
    GridWorld,
    TimeLimit,
    bilinear_resize,
    rgb_to_grayscale,
)
from repro.envs.preprocessing import preprocess_frame


class TestDiscrete:
    def test_contains(self):
        space = Discrete(4)
        assert space.contains(0)
        assert space.contains(3)
        assert not space.contains(4)
        assert not space.contains(-1)
        assert not space.contains("x")

    def test_sample_in_range(self):
        space = Discrete(5)
        rng = np.random.default_rng(0)
        assert all(space.contains(space.sample(rng)) for _ in range(50))

    def test_requires_positive_n(self):
        with pytest.raises(ValueError):
            Discrete(0)

    def test_equality(self):
        assert Discrete(3) == Discrete(3)
        assert Discrete(3) != Discrete(4)


class TestBox:
    def test_contains_shape_and_bounds(self):
        space = Box(0.0, 1.0, (2, 2))
        assert space.contains(np.zeros((2, 2)))
        assert not space.contains(np.zeros((2, 3)))
        assert not space.contains(np.full((2, 2), 2.0))

    def test_sample_within_bounds(self):
        space = Box(-1.0, 1.0, (3,))
        sample = space.sample(np.random.default_rng(0))
        assert space.contains(sample)
        assert sample.dtype == np.float32


class TestTimeLimit:
    def test_truncates_and_flags(self):
        env = TimeLimit(GridWorld(size=50, max_steps=10_000), max_steps=3)
        env.reset()
        for _ in range(2):
            _, _, done, info = env.step(1)
            assert not done
        _, _, done, info = env.step(1)
        assert done
        assert info["truncated"]

    def test_counter_resets(self):
        env = TimeLimit(GridWorld(size=50, max_steps=10_000), max_steps=2)
        env.reset()
        env.step(1)
        env.reset()
        _, _, done, _ = env.step(1)
        assert not done

    def test_invalid_limit(self):
        with pytest.raises(ValueError):
            TimeLimit(Catch(), max_steps=0)


class TestClassicEnvs:
    def test_catch_episode_length_is_grid_size(self):
        env = Catch(size=7)
        env.seed(0)
        env.reset()
        steps = 0
        done = False
        while not done:
            _, reward, done, _ = env.step(1)
            steps += 1
        assert steps == 6  # size - 1 falls
        assert reward in (-1.0, 1.0)

    def test_catch_optimal_play_wins(self):
        env = Catch(size=7)
        env.seed(3)
        obs = env.reset()
        done = False
        reward = 0.0
        while not done:
            ball_col = int(np.argwhere(obs[:-1].any(axis=0))[0, 0])
            paddle_col = int(np.argmax(obs[-1]))
            action = 1 + int(np.sign(ball_col - paddle_col))
            obs, reward, done, _ = env.step(action)
        assert reward == 1.0

    def test_catch_step_after_done_raises(self):
        env = Catch()
        env.reset()
        done = False
        while not done:
            _, _, done, _ = env.step(1)
        with pytest.raises(RuntimeError):
            env.step(1)

    def test_gridworld_reaches_goal(self):
        env = GridWorld(size=3)
        env.reset()
        total = 0.0
        for action in [1, 1, 3, 3]:
            _, reward, done, _ = env.step(action)
            total += reward
        assert done
        assert total == pytest.approx(1.0 - 3 * 0.01)

    def test_gridworld_invalid_action(self):
        env = GridWorld()
        env.reset()
        with pytest.raises(ValueError):
            env.step(7)

    def test_cartpole_eventually_falls_without_control(self):
        env = CartPole()
        env.seed(0)
        env.reset()
        steps = 0
        done = False
        while not done and steps < 600:
            _, _, done, _ = env.step(0)
            steps += 1
        assert done
        assert steps < 500

    def test_cartpole_observation_shape(self):
        env = CartPole()
        env.seed(1)
        obs = env.reset()
        assert obs.shape == (4,)
        assert obs.dtype == np.float32

    def test_seeding_reproducible(self):
        def run(seed):
            env = Catch()
            env.seed(seed)
            env.reset()
            trace = []
            for _ in range(20):
                obs, r, done, _ = env.step(2)
                trace.append((r, done))
                if done:
                    env.reset()
            return trace
        assert run(7) == run(7)
        assert run(7) != run(8)


class TestPreprocessing:
    def test_grayscale_luma_weights(self):
        frame = np.zeros((2, 2, 3), dtype=np.uint8)
        frame[0, 0] = (255, 0, 0)
        gray = rgb_to_grayscale(frame)
        assert gray[0, 0] == pytest.approx(255 * 0.299, rel=1e-4)

    def test_grayscale_validates_shape(self):
        with pytest.raises(ValueError):
            rgb_to_grayscale(np.zeros((4, 4)))

    def test_resize_identity(self):
        image = np.random.default_rng(0).random((8, 8)).astype(np.float32)
        np.testing.assert_array_equal(bilinear_resize(image, 8, 8), image)

    def test_resize_constant_image_stays_constant(self):
        image = np.full((30, 17), 3.5, dtype=np.float32)
        out = bilinear_resize(image, 84, 84)
        np.testing.assert_allclose(out, 3.5, rtol=1e-6)

    def test_resize_downsample_shape(self):
        out = bilinear_resize(np.zeros((210, 160)), 84, 84)
        assert out.shape == (84, 84)

    @hypothesis.given(st.integers(0, 2 ** 31 - 1))
    @hypothesis.settings(max_examples=15, deadline=None)
    def test_resize_preserves_value_range(self, seed):
        rng = np.random.default_rng(seed)
        image = rng.random((21, 17)).astype(np.float32) * 255
        out = bilinear_resize(image, 9, 13)
        assert out.min() >= image.min() - 1e-3
        assert out.max() <= image.max() + 1e-3

    def test_resize_linear_gradient_exact(self):
        """Bilinear interpolation reproduces a linear ramp exactly."""
        image = np.tile(np.arange(16, dtype=np.float32), (4, 1))
        out = bilinear_resize(image, 4, 31)
        expected = np.clip((np.arange(31) + 0.5) * (16 / 31) - 0.5,
                           0.0, 15.0)
        np.testing.assert_allclose(out[0], expected, atol=1e-4)

    def test_preprocess_frame_scales_to_unit(self):
        frame = np.full((210, 160, 3), 255, dtype=np.uint8)
        out = preprocess_frame(frame)
        assert out.shape == (84, 84)
        np.testing.assert_allclose(out, 1.0, rtol=1e-4)
