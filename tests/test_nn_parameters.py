"""Tests for ParameterSet, including property-based round-trips."""

import hypothesis
import hypothesis.strategies as st
import numpy as np
import pytest

from repro.nn import ParameterSet

shapes = st.lists(
    st.tuples(st.integers(1, 5), st.integers(1, 5)),
    min_size=1, max_size=4)


def _make(shape_list, seed=0):
    rng = np.random.default_rng(seed)
    return ParameterSet({
        f"p{i}": rng.standard_normal(shape).astype(np.float32)
        for i, shape in enumerate(shape_list)})


class TestParameterSet:
    def test_arrays_coerced_to_float32(self):
        params = ParameterSet({"w": np.ones(3, dtype=np.float64)})
        assert params["w"].dtype == np.float32

    def test_num_values_and_bytes(self):
        params = _make([(2, 3), (4, 1)])
        assert params.num_values() == 10
        assert params.num_bytes() == 40

    def test_copy_is_independent(self):
        params = _make([(2, 2)])
        cloned = params.copy()
        cloned["p0"][0, 0] = 99.0
        assert params["p0"][0, 0] != 99.0

    def test_copy_from_requires_same_names(self):
        with pytest.raises(ValueError):
            _make([(2, 2)]).copy_from(ParameterSet({"other": np.ones(4)}))

    def test_copy_from_overwrites_in_place(self):
        a = _make([(2, 2)], seed=1)
        b = _make([(2, 2)], seed=2)
        view = a["p0"]
        a.copy_from(b)
        assert a.allclose(b)
        assert view is a["p0"]  # same storage, as sync requires

    def test_add_scaled(self):
        a = _make([(3,)], seed=1)
        b = _make([(3,)], seed=2)
        expected = a["p0"] + 0.5 * b["p0"]
        a.add_scaled(b, 0.5)
        np.testing.assert_allclose(a["p0"], expected, rtol=1e-6)

    def test_zeros_like(self):
        z = _make([(2, 3)]).zeros_like()
        np.testing.assert_array_equal(z["p0"], 0.0)

    @hypothesis.given(shapes, st.integers(0, 2 ** 31 - 1))
    @hypothesis.settings(max_examples=30, deadline=None)
    def test_flatten_load_round_trip(self, shape_list, seed):
        params = _make(shape_list, seed)
        flat = params.flatten()
        assert flat.size == params.num_values()
        restored = params.zeros_like()
        restored.load_flat(flat)
        assert restored.allclose(params, rtol=0, atol=0)

    def test_load_flat_size_validation(self):
        params = _make([(2, 2)])
        with pytest.raises(ValueError):
            params.load_flat(np.zeros(3, dtype=np.float32))

    def test_allclose_detects_differences(self):
        a = _make([(2, 2)], seed=1)
        b = a.copy()
        assert a.allclose(b)
        b["p0"][0, 0] += 1.0
        assert not a.allclose(b)

    def test_names_preserve_insertion_order(self):
        params = ParameterSet()
        for name in ["conv1.weight", "conv1.bias", "fc.weight"]:
            params[name] = np.zeros(1)
        assert params.names() == ["conv1.weight", "conv1.bias",
                                  "fc.weight"]
