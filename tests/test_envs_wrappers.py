"""Tests for the DeepMind preprocessing wrapper stack."""

import numpy as np
import pytest

from repro.ale import make_game
from repro.envs import (
    AtariPreprocessing,
    ClipReward,
    Env,
    FrameStack,
    MaxAndSkip,
    make_atari_env,
)
from repro.envs.spaces import Box, Discrete


class _FlickerEnv(Env):
    """Emits alternating frames so the max-pool behaviour is observable."""

    def __init__(self):
        super().__init__()
        self.observation_space = Box(0, 255, (4, 4, 3), dtype=np.uint8)
        self.action_space = Discrete(2)
        self.t = 0

    def reset(self):
        self.t = 0
        return self._frame()

    def _frame(self):
        frame = np.zeros((4, 4, 3), dtype=np.uint8)
        if self.t % 2 == 0:
            frame[0, 0] = 200        # sprite visible on even frames only
        frame[1, 1] = self.t         # frame counter pixel
        return frame

    def step(self, action):
        self.t += 1
        reward = float(action) * 2.5 - 1.0
        done = self.t >= 20
        return self._frame(), reward, done, {}


class TestMaxAndSkip:
    def test_skip_advances_underlying_frames(self):
        env = MaxAndSkip(_FlickerEnv(), skip=4)
        env.reset()
        obs, _, _, _ = env.step(0)
        assert obs[1, 1, 0] == 4     # four underlying frames advanced

    def test_max_pool_deflickers(self):
        env = MaxAndSkip(_FlickerEnv(), skip=4)
        env.reset()
        obs, _, _, _ = env.step(0)
        # frames 3 and 4: sprite drawn only on frame 4 (even), max keeps it
        assert obs[0, 0, 0] == 200

    def test_rewards_summed_over_skip(self):
        env = MaxAndSkip(_FlickerEnv(), skip=4)
        env.reset()
        _, reward, _, _ = env.step(1)
        assert reward == pytest.approx(4 * 1.5)

    def test_stops_at_done(self):
        env = MaxAndSkip(_FlickerEnv(), skip=4)
        env.reset()
        done = False
        for _ in range(5):
            _, _, done, _ = env.step(0)
        assert done

    def test_invalid_skip(self):
        with pytest.raises(ValueError):
            MaxAndSkip(_FlickerEnv(), skip=0)


class TestFrameStack:
    def test_reset_fills_stack_with_first_frame(self):
        env = FrameStack(_FlickerEnv(), count=4)
        obs = env.reset()
        assert obs.shape == (4, 4, 4, 3)
        for i in range(1, 4):
            np.testing.assert_array_equal(obs[0], obs[i])

    def test_stack_rolls(self):
        env = FrameStack(_FlickerEnv(), count=3)
        env.reset()
        obs, _, _, _ = env.step(0)
        assert obs[-1][1, 1, 0] == 1   # newest frame last
        assert obs[0][1, 1, 0] == 0

    def test_observation_space_shape(self):
        env = FrameStack(_FlickerEnv(), count=4)
        assert env.observation_space.shape == (4, 4, 4, 3)


class TestClipReward:
    def test_clips_to_sign(self):
        env = ClipReward(_FlickerEnv())
        env.reset()
        _, reward, _, info = env.step(1)
        assert reward == 1.0
        assert info["raw_reward"] == pytest.approx(1.5)
        _, reward, _, info = env.step(0)
        assert reward == -1.0


class TestFullAtariStack:
    def test_standard_observation_contract(self):
        env = make_atari_env(make_game("pong"))
        env.seed(0)
        obs = env.reset()
        assert obs.shape == (4, 84, 84)
        assert obs.dtype == np.float32
        assert 0.0 <= obs.min() and obs.max() <= 1.0

    def test_clipped_rewards_are_signs(self):
        env = make_atari_env(make_game("breakout"))
        env.seed(1)
        env.reset()
        rng = np.random.default_rng(0)
        for _ in range(200):
            _, reward, done, _ = env.step(env.action_space.sample(rng))
            assert reward in (-1.0, 0.0, 1.0)
            if done:
                env.reset()

    def test_episodic_life_shortens_episodes(self):
        env = make_atari_env(make_game("breakout"), episodic_life=True)
        env.seed(2)
        env.reset()
        rng = np.random.default_rng(2)
        saw_life_loss_done = False
        for _ in range(600):
            _, _, done, info = env.step(env.action_space.sample(rng))
            if done:
                if info.get("life_lost"):
                    saw_life_loss_done = True
                env.reset()
        assert saw_life_loss_done

    def test_time_limit_truncation(self):
        env = make_atari_env(make_game("seaquest"), max_episode_steps=5)
        env.seed(0)
        env.reset()
        done = False
        steps = 0
        while not done:
            _, _, done, info = env.step(0)
            steps += 1
        assert steps <= 5
