"""Figure 9 — Power consumption and energy efficiency.

Applies the paper's dummy-platform methodology over the modelled power
envelopes at the Figure 8 operating point (n = 16) and checks:

* FA3C draws ~18 W, about 30 % less than A3C-cuDNN (Figure 9a);
* FA3C delivers > ~140 inferences per Watt, roughly 1.6x A3C-cuDNN
  (Figure 9b; the paper quotes 1.62x, while its own 27.9 % / -30 %
  figures imply 1.83x — we land between).
"""

import pytest

from repro.fpga.platform import FA3CPlatform
from repro.gpu.platform import (
    A3CTFCPUPlatform,
    A3CTFGPUPlatform,
    A3CcuDNNPlatform,
    GA3CTFPlatform,
)
from repro.harness import format_table
from repro.platforms import measure_ips
from repro.power import PowerModel


def test_fig9_energy(benchmark, topology, show):
    platforms = [
        FA3CPlatform.fa3c(topology),
        A3CcuDNNPlatform(topology),
        GA3CTFPlatform(topology),
        A3CTFGPUPlatform(topology),
        A3CTFCPUPlatform(topology),
    ]

    def run():
        results = [measure_ips(p, 16, routines_per_agent=25)
                   for p in platforms]
        return PowerModel().figure9(results)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    show(format_table(
        rows, columns=["platform", "watts", "ips", "ips_per_watt",
                       "relative_power", "relative_efficiency"],
        title="Figure 9: power (a) and inferences/Watt (b), "
              "normalised to A3C-cuDNN"))

    by_name = {row["platform"]: row for row in rows}
    fa3c = by_name["FA3C"]
    # Figure 9a anchors.
    assert fa3c["watts"] == pytest.approx(18.0, abs=1.5)
    assert fa3c["relative_power"] == pytest.approx(0.70, abs=0.08)
    # Figure 9b anchors.
    assert fa3c["ips_per_watt"] > 135
    assert 1.5 < fa3c["relative_efficiency"] < 1.9
    # FA3C is the most efficient platform overall.
    assert fa3c["ips_per_watt"] == max(r["ips_per_watt"] for r in rows)
    # The CPU platform is the least efficient.
    assert by_name["A3C-TF-CPU"]["ips_per_watt"] == \
        min(r["ips_per_watt"] for r in rows)
