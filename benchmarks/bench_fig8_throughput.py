"""Figure 8 — Performance of A3C Deep RL platforms (IPS vs #agents).

Sweeps n = 1..64 agents over all five platforms through the
discrete-event contention simulation and checks the paper's shape:

* IPS grows with n and peaks for n >= 16;
* FA3C exceeds 2,550 IPS at n = 16;
* FA3C's best IPS is ~27.9 % above A3C-cuDNN's best;
* ordering FA3C > A3C-cuDNN > GA3C-TF > A3C-TF-GPU > A3C-TF-CPU at
  saturation.
"""

import pytest

from repro.fpga.platform import FA3CPlatform
from repro.gpu.platform import (
    A3CTFCPUPlatform,
    A3CTFGPUPlatform,
    A3CcuDNNPlatform,
    GA3CTFPlatform,
)
from repro.harness import format_series
from repro.platforms import sweep_agents

AGENTS = (1, 2, 4, 8, 16, 32, 64)


def _platforms(topology):
    return [
        FA3CPlatform.fa3c(topology),
        A3CcuDNNPlatform(topology),
        GA3CTFPlatform(topology),
        A3CTFGPUPlatform(topology),
        A3CTFCPUPlatform(topology),
    ]


def test_fig8_throughput(benchmark, topology, show):
    def run():
        series = {}
        for platform in _platforms(topology):
            results = sweep_agents(platform, AGENTS,
                                   routines_per_agent=30)
            series[results[0].platform] = [r.ips for r in results]
        return series

    series = benchmark.pedantic(run, rounds=1, iterations=1)
    show(format_series(AGENTS, series,
                       title="Figure 8: IPS vs number of agents"))

    fa3c = series["FA3C"]
    cudnn = series["A3C-cuDNN"]

    # Peak at n >= 16 (within a few percent of the best).
    n16_index = AGENTS.index(16)
    assert fa3c[n16_index] > 0.97 * max(fa3c)
    # FA3C > 2,550 IPS at n = 16.
    assert fa3c[n16_index] > 2550
    # 27.9 % over the best GPU configuration.
    assert max(fa3c) / max(cudnn) == pytest.approx(1.279, abs=0.10)
    # Saturation ordering.
    best = {name: max(values) for name, values in series.items()}
    assert best["FA3C"] > best["A3C-cuDNN"] > best["GA3C-TF"] \
        > best["A3C-TF-GPU"] > best["A3C-TF-CPU"]
    # Throughput rises with n for every platform before saturation.
    for values in series.values():
        assert values[1] > values[0]
