"""Ablation — generic PEs vs fixed-reduction units (Section 4.2.1).

The paper argues that adder trees and systolic arrays, being built for one
accumulation frequency, waste PEs when the frequency varies across layers
and stages.  This bench quantifies that: it schedules every FW/GC stage of
a training routine on (a) FA3C's generic PEs and (b) a hypothetical
fixed-frequency adder-tree unit sized for Conv1's FW reduction, where any
other reduction length must round up to the tree's width.
"""

from repro.fpga.pe import PEArray
from repro.harness import format_table


def _generic_cycles(topology, batch):
    pes = PEArray(64)
    for spec in topology.layers:
        pes.schedule_cycles(batch * spec.num_outputs,
                            spec.accumulation_frequency_fw)
        pes.schedule_cycles(spec.num_weights,
                            spec.accumulation_frequency_gc(batch))
    return pes.total_cycles, pes.utilisation()


def _adder_tree_cycles(topology, batch, tree_width):
    """A tree of width W consumes W operands per cycle to produce one
    partial sum; reductions shorter than W still burn a full pass, and a
    64-multiplier budget fits floor(64/W) trees side by side (at least
    one).  Returns (cycles, multiplier utilisation)."""
    cycles = 0
    useful_macs = 0
    lanes = max(1, 64 // tree_width)
    multipliers = lanes * tree_width
    for spec in topology.layers:
        for outputs, freq in (
                (batch * spec.num_outputs, spec.accumulation_frequency_fw),
                (spec.num_weights,
                 spec.accumulation_frequency_gc(batch))):
            passes = -(-freq // tree_width)
            rounds = -(-outputs // lanes)
            cycles += rounds * passes
            useful_macs += outputs * freq
    return cycles, useful_macs / (cycles * multipliers) if cycles else 0.0


def test_ablation_generic_pe_vs_adder_tree(benchmark, topology, show):
    def run():
        generic, generic_util = _generic_cycles(topology, 5)
        rows = [{"unit": "generic PE (FA3C)", "cycles": generic,
                 "relative": 1.0, "avg_operand_utilisation":
                 generic_util}]
        for width in (16, 64, 257):
            tree, tree_util = _adder_tree_cycles(topology, 5, width)
            rows.append({"unit": f"adder tree (width {width})",
                         "cycles": tree, "relative": tree / generic,
                         "avg_operand_utilisation": tree_util})
        return rows

    rows = benchmark(run)
    show(format_table(rows, title="Ablation: controllable accumulation "
                                  "frequency vs fixed reduction width"))
    generic = rows[0]
    # The generic PEs keep their multipliers essentially fully busy...
    assert generic["avg_operand_utilisation"] > 0.95
    # ...while every fixed tree width wastes multipliers on the stage
    # mix (short reductions burn full passes, wide trees idle lanes).
    for row in rows[1:]:
        assert row["avg_operand_utilisation"] <             generic["avg_operand_utilisation"]
    # A tree sized for Conv1's FW reduction (257) is badly utilised on
    # dense GC (accumulation = batch size 5): it pays in both cycles
    # and multiplier occupancy.
    tree257 = [r for r in rows if "257" in r["unit"]][0]
    assert tree257["cycles"] > 1.5 * generic["cycles"]
    assert tree257["avg_operand_utilisation"] < 0.25
