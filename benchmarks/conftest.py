"""Shared fixtures for the paper-reproduction benchmarks.

Every bench prints the same rows/series the paper reports (via
``repro.harness.report``) and asserts the *shape* anchors from DESIGN.md —
who wins, by roughly what factor, where crossovers fall.
"""

import os

import pytest

from repro.nn.network import A3CNetwork


@pytest.fixture(scope="session")
def topology():
    """The Table 1 network topology used throughout the evaluation."""
    return A3CNetwork(num_actions=6).topology()


@pytest.fixture(scope="session")
def fig12_steps():
    """Per-game training steps for the Figure 12 bench.

    The default keeps the full six-game sweep to a few minutes; set
    ``REPRO_FIG12_STEPS`` (e.g. 100000) for longer, smoother curves.
    """
    return int(os.environ.get("REPRO_FIG12_STEPS", "6000"))


@pytest.fixture
def show(capsys):
    """Print a report through the captured-output fence."""
    def _show(text):
        with capsys.disabled():
            print()
            print(text)
    return _show
