"""Shared fixtures for the paper-reproduction benchmarks.

Every bench prints the same rows/series the paper reports (via
``repro.harness.report``) and asserts the *shape* anchors from DESIGN.md —
who wins, by roughly what factor, where crossovers fall.
"""

import os
import re

import pytest

from repro.nn.network import A3CNetwork


@pytest.fixture(scope="session")
def topology():
    """The Table 1 network topology used throughout the evaluation."""
    return A3CNetwork(num_actions=6).topology()


@pytest.fixture(scope="session")
def fig12_steps():
    """Per-game training steps for the Figure 12 bench.

    The default keeps the full six-game sweep to a few minutes; set
    ``REPRO_FIG12_STEPS`` (e.g. 100000) for longer, smoother curves.
    """
    return int(os.environ.get("REPRO_FIG12_STEPS", "6000"))


@pytest.fixture
def show(capsys):
    """Print a report through the captured-output fence."""
    def _show(text):
        with capsys.disabled():
            print()
            print(text)
    return _show


@pytest.fixture(autouse=True)
def obs_snapshots(request):
    """Per-bench metric snapshots for run-to-run comparison.

    Set ``REPRO_OBS_DIR=/some/dir`` to enable :mod:`repro.obs` around
    every bench and write one ``<bench>.metrics.jsonl`` per test, so two
    bench runs can be diffed metric-by-metric (per-CU busy fractions,
    DRAM bytes, kernel launches) rather than only by headline IPS.
    """
    out_dir = os.environ.get("REPRO_OBS_DIR")
    if not out_dir:
        yield
        return
    from repro import obs
    os.makedirs(out_dir, exist_ok=True)
    obs.enable(reset=True)
    try:
        yield
    finally:
        slug = re.sub(r"[^A-Za-z0-9_.-]+", "_", request.node.nodeid)
        path = os.path.join(out_dir, f"{slug}.metrics.jsonl")
        obs.metrics().write_jsonl(path, meta={"bench": request.node.nodeid})
        obs.disable()
