"""Sections 3.2-3.3 — Operational intensity and the batch-size wall.

The paper's performance argument in numbers: A3C's batch sizes (1 for
inference, t_max = 5 for training) give the DNN tasks operational
intensities far below what a GPU needs, and the fully-connected layers —
which hold ~98 % of the parameters — are the worst.  This bench prints
the per-layer intensity across batch sizes and the roofline-implied task
times on the P100's numbers.
"""

from repro.analysis import operational_intensity, roofline_time
from repro.analysis.roofline import (
    accumulation_frequency_table,
    intensity_table,
)
from repro.gpu.specs import P100
from repro.harness import format_table


def test_s33_operational_intensity(benchmark, topology, show):
    rows = benchmark(intensity_table, topology, (1, 5, 32, 256))
    show(format_table(rows, title="Operational intensity (FLOPs/byte) "
                                  "vs batch size, FW stage"))

    conv1, conv2, fc3, fc4 = topology.layers
    # Convolutions are compute-rich even at batch 1...
    assert operational_intensity(conv1, 1) > 10
    # ...fully-connected layers are hopeless at A3C's batch sizes.
    assert operational_intensity(fc3, 1) < 1.0
    assert operational_intensity(fc3, 5) < 3.0
    # Only the large batches A3C cannot use would fix that.
    assert operational_intensity(fc3, 256) > \
        50 * operational_intensity(fc3, 1)
    # The P100 needs flops/byte ~ peak/bandwidth to be compute-bound.
    ridge = P100.peak_flops / P100.mem_bandwidth
    assert operational_intensity(fc3, 5) < ridge / 2


def test_s33_roofline_task_times(benchmark, topology, show):
    def run():
        rows = []
        for batch, label in ((1, "inference"), (5, "training FW")):
            for spec in topology.layers:
                rows.append({
                    "task": label, "layer": spec.name,
                    "roofline_us": roofline_time(
                        spec, batch, P100.peak_flops,
                        P100.mem_bandwidth) * 1e6,
                })
        return rows

    rows = benchmark(run)
    show(format_table(rows, title="Roofline-implied layer times on the "
                                  "P100 (no launch overhead)"))
    by_key = {(r["task"], r["layer"]): r["roofline_us"] for r in rows}
    # FC3 dominates the memory-bound side of every task.
    assert by_key[("inference", "FC3")] > \
        by_key[("inference", "Conv2")]
    # Even ideal roofline times are tiny: the real GPU cost is overhead,
    # which is Section 3.4's point.
    total_inference = sum(v for (task, _), v in by_key.items()
                          if task == "inference")
    assert total_inference < 50  # microseconds


def test_s33_accumulation_frequencies(benchmark, topology, show):
    rows = benchmark(accumulation_frequency_table, topology, 5)
    show(format_table(rows, title="Accumulation frequency per layer and "
                                  "stage (Section 4.2.1)"))
    values = [row["fw"] for row in rows] + [row["gc"] for row in rows]
    assert max(values) / min(values) > 100
