"""Ablation — inference latency under load, and energy-to-milestone.

Two claims of the paper quantified beyond its own figures:

* Section 3 lists "low execution latency even with frequent kernel
  launches" among the FPGA's advantages: because an A3C agent cannot act
  until its inference returns, per-request latency under full load is as
  important as throughput.  The discrete-event simulation exposes it
  directly (queueing + service per request at n = 16).
* Section 5.6 notes that "FA3C reaches a higher score earlier due to the
  better IPS"; combined with Figure 9's power numbers this becomes an
  energy-to-milestone metric: joules to process the same number of
  training steps.
"""

import pytest

from repro.fpga.platform import FA3CPlatform
from repro.gpu.platform import A3CcuDNNPlatform
from repro.harness import format_table
from repro.platforms import measure_ips
from repro.power import PowerModel


def test_ablation_inference_latency_under_load(benchmark, topology,
                                               show):
    def run():
        rows = []
        for platform in (FA3CPlatform.fa3c(topology),
                         A3CcuDNNPlatform(topology)):
            result = measure_ips(platform, 16, routines_per_agent=25)
            rows.append({
                "platform": result.platform,
                "ips": result.ips,
                "latency_p50_ms": result.latency_percentile(50) * 1e3,
                "latency_p99_ms": result.latency_percentile(99) * 1e3,
            })
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    show(format_table(rows, title="Inference latency under full load "
                                  "(n = 16 agents)"))
    fa3c, cudnn = rows
    # The FPGA serves inferences with far lower latency under load —
    # dedicated inference CUs vs one GPU shared with training kernels.
    assert fa3c["latency_p50_ms"] < 0.6 * cudnn["latency_p50_ms"]
    assert fa3c["latency_p99_ms"] < cudnn["latency_p99_ms"]
    # Tail behaviour stays bounded on both (no runaway queueing).
    assert fa3c["latency_p99_ms"] < 5 * fa3c["latency_p50_ms"]


def test_ablation_energy_to_milestone(benchmark, topology, show):
    """Joules to process 1M training steps at the n = 16 operating
    point: throughput and power folded into one number."""
    def run():
        rows = []
        power = PowerModel()
        for platform in (FA3CPlatform.fa3c(topology),
                         A3CcuDNNPlatform(topology)):
            result = measure_ips(platform, 16, routines_per_agent=25)
            report = power.report(result)
            seconds = 1_000_000 / result.ips
            rows.append({
                "platform": result.platform,
                "watts": report.watts,
                "hours_per_1M_steps": seconds / 3600,
                "kJ_per_1M_steps": report.watts * seconds / 1000,
            })
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    show(format_table(rows, title="Energy to process 1M training steps "
                                  "(accelerator delta power)"))
    fa3c, cudnn = rows
    # FA3C is faster AND lower power: the energy advantage compounds to
    # roughly the Figure 9b efficiency ratio.
    energy_ratio = cudnn["kJ_per_1M_steps"] / fa3c["kJ_per_1M_steps"]
    assert energy_ratio == pytest.approx(1.7, abs=0.25)
    assert fa3c["hours_per_1M_steps"] < cudnn["hours_per_1M_steps"]
