"""Environment-step microbenchmark: scalar wrapper chains vs the SoA batch.

PAAC/GA3C spend their host time stepping N environments in lockstep.
The scalar path pays N Python wrapper chains per vector step; the
structure-of-arrays engine (:mod:`repro.ale.vec` behind
:class:`~repro.envs.BatchedVectorEnv`) advances all N slots with batched
NumPy.  This bench measures both at several batch widths and asserts the
batched engine's scaling advantage where it matters for the rollout
loops (B = 64).

Set ``REPRO_ENV_STEP_JSON=/some/file.json`` to also write the measured
rows as a machine-readable artifact (CI uploads this from the
wallclock-smoke job).
"""

import json
import os
import time

import numpy as np

from repro.ale import make_game
from repro.envs import BatchedVectorEnv, SyncVectorEnv, make_atari_env
from repro.harness import format_table

GAME = "breakout"
SEED = 11
BATCHES = (1, 8, 64, 256)
FRAME_SKIP = 4


def _steps_for(batch):
    """Keep per-width wall time roughly constant across the sweep."""
    return max(8, 256 // batch)


def _measure(env, batch, steps):
    """Best-of-3 frames/second over ``steps`` lockstep vector steps."""
    rng = np.random.default_rng(SEED)
    n = env.action_space.n
    actions = rng.integers(0, n, size=(steps, batch))
    env.reset()
    best = float("inf")
    for _ in range(3):
        started = time.perf_counter()
        for row in actions:
            env.step(row)
        best = min(best, time.perf_counter() - started)
    return steps * batch * FRAME_SKIP / best


def _sweep():
    rows = []
    for batch in BATCHES:
        steps = _steps_for(batch)
        scalar = SyncVectorEnv(
            [lambda: make_atari_env(make_game(GAME))
             for _ in range(batch)], seed=SEED)
        scalar_fps = _measure(scalar, batch, steps)
        scalar.close()
        batched = BatchedVectorEnv(GAME, num_envs=batch, seed=SEED)
        batched_fps = _measure(batched, batch, steps)
        batched.close()
        rows.append({
            "batch": batch,
            "steps": steps,
            "scalar_fps": round(scalar_fps, 1),
            "batched_fps": round(batched_fps, 1),
            "speedup": round(batched_fps / scalar_fps, 2),
        })
    return rows


def test_env_step_scaling(show):
    rows = _sweep()
    show(format_table(
        rows, title=f"Env-step microbench ({GAME}, frame_skip="
                    f"{FRAME_SKIP}, de-flickered frames/s, best of 3)"))
    artifact = os.environ.get("REPRO_ENV_STEP_JSON")
    if artifact:
        with open(artifact, "w") as fh:
            json.dump({"game": GAME, "frame_skip": FRAME_SKIP,
                       "rows": rows}, fh, indent=2)
            fh.write("\n")
    by_batch = {row["batch"]: row for row in rows}
    # The SoA engine must clearly win at rollout-loop widths; at B = 1
    # it may lose (batch bookkeeping with nothing to amortise it).
    assert by_batch[64]["speedup"] >= 2.0, by_batch[64]
    assert by_batch[256]["speedup"] >= 2.0, by_batch[256]


if __name__ == "__main__":
    print(format_table(_sweep(), title="Env-step microbench"))
