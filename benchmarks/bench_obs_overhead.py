"""Telemetry-overhead audit for the wall-clock fast path.

The fast path hoists the ``REPRO_OBS`` gate out of the simulator's inner
loops: each task binds to either a bare replay body or an observing one
*once*, so with telemetry disabled the hot loops neither branch on the
gate per stage nor touch any :mod:`repro.obs` object.  Two checks keep
that property from regressing:

* a tracemalloc audit that runs a warmed FA3C measurement with telemetry
  off and asserts **zero** allocations attributed to ``repro/obs`` code;
* a timing comparison of the same scenario with telemetry off vs on —
  recording cycle attribution is expected to cost real time, which is
  exactly why the disabled path must stay free of it.
"""

import os
import tracemalloc

from repro import obs
from repro.fpga.platform import FA3CPlatform
from repro.platforms import ThroughputSetup


def _fa3c_setup(topology):
    return ThroughputSetup(FA3CPlatform.fa3c(topology))


def test_disabled_obs_path_allocates_nothing(topology, show):
    """With telemetry off, the sim hot path never allocates in repro.obs."""
    if os.environ.get("REPRO_OBS_DIR"):
        # The autouse snapshot fixture enables telemetry; this audit is
        # specifically about the disabled path.
        import pytest
        pytest.skip("REPRO_OBS_DIR forces telemetry on")
    assert not obs.enabled()
    setup = _fa3c_setup(topology)
    setup.measure(8, routines_per_agent=10)      # warm the plan caches
    obs_filter = tracemalloc.Filter(
        True, os.path.join("*", "repro", "obs", "*"))
    tracemalloc.start(1)
    try:
        tracemalloc.clear_traces()
        setup.measure(8, routines_per_agent=10)
        snapshot = tracemalloc.take_snapshot()
    finally:
        tracemalloc.stop()
    stats = snapshot.filter_traces([obs_filter]).statistics("filename")
    leaked = sum(stat.size for stat in stats)
    show(f"allocations attributed to repro.obs with telemetry off: "
         f"{leaked} bytes across {len(stats)} site(s)")
    assert leaked == 0, [str(stat) for stat in stats]


def test_obs_gate_hoisted_out_of_hot_loop(benchmark, topology, show):
    """Telemetry-off runs are markedly faster than telemetry-on runs.

    The margin is what the hoisted gate buys: attribution recording
    (counter cells, spans) happens only on the observing task bodies.
    """
    setup = _fa3c_setup(topology)
    setup.measure(8, routines_per_agent=10)      # warm the plan caches

    disabled = benchmark(lambda: setup.measure(8, routines_per_agent=10))
    del disabled

    import time
    with obs.enabled_scope(reset=True):
        setup.measure(8, routines_per_agent=10)  # warm observing bodies
        started = time.perf_counter()
        setup.measure(8, routines_per_agent=10)
        enabled_seconds = time.perf_counter() - started
    disabled_seconds = benchmark.stats.stats.min
    ratio = enabled_seconds / disabled_seconds
    show(f"fa3c-n8 (10 routines/agent): telemetry off "
         f"{disabled_seconds * 1e3:.1f} ms, on {enabled_seconds * 1e3:.1f}"
         f" ms -> {ratio:.2f}x overhead when observing")
    # If the disabled path regressed to paying attribution costs the two
    # times converge; the observing path costs well over this bound.
    assert ratio > 1.2
