"""Table 1 — DNN layers used in A3C for Atari 2600 games.

Regenerates the layer/parameter/output-feature table from the implemented
network and checks it against the paper's rounded figures (4K/6K, 8K/3K,
664K/256, 8K/32; 28K input features).
"""

from repro.harness import format_table


def test_table1_network(benchmark, topology, show):
    rows = benchmark(topology.table1_rows)
    show(format_table(rows, title="Table 1: A3C DNN layers"))

    by_layer = {row["layer"].split(" ")[0]: row for row in rows}
    assert by_layer["Input"]["outputs"] == 28224            # 28K
    assert by_layer["Conv1"]["params"] == 4112              # 4K
    assert by_layer["Conv1"]["outputs"] == 6400             # 6K
    assert by_layer["Conv2"]["params"] == 8224              # 8K
    assert by_layer["Conv2"]["outputs"] == 2592             # 3K
    assert by_layer["FC3"]["params"] == 663808              # 664K
    assert by_layer["FC3"]["outputs"] == 256
    assert by_layer["FC4"]["params"] == 8224                # 8K
    assert by_layer["FC4"]["outputs"] == 32
    assert topology.num_params == 684368
