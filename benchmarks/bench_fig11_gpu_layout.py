"""Figure 11 — GPU computation time under different parameter layouts.

Reproduces the Section 5.5 OpenCL experiment on the FC layers only:
one A3C routine's FC compute time under (a) the FW layout for both tasks,
(b) the BW layout for both tasks, (c) matching layouts plus the extra
transformation kernel.  Anchors: inference with the mismatched BW layout
is 41.7 % slower, and the transform kernel offsets most of the matched
policy's gain.
"""

import pytest

from repro.gpu import GPULayoutExperiment
from repro.harness import format_table


def test_fig11_gpu_layouts(benchmark, topology, show):
    experiment = GPULayoutExperiment(topology)
    results = benchmark(experiment.run, 5)

    rows = [{
        "policy": r.policy,
        "inference_us": r.inference_seconds * 1e6,
        "training_us": r.training_seconds * 1e6,
        "transform_us": r.transform_seconds * 1e6,
        "total_us": r.total_seconds * 1e6,
    } for r in results]
    show(format_table(rows, title="Figure 11: GPU FC-layer time per "
                                  "routine under layout policies"))

    fw_both, bw_both, matched = results
    # Inference under the BW layout: 41.7 % slower (paper's figure).
    slowdown = experiment.inference_slowdown_with_bw_layout()
    assert slowdown == pytest.approx(0.417, abs=0.10)
    # Training suffers symmetrically under the FW-only policy.
    assert fw_both.training_seconds > matched.training_seconds
    assert bw_both.inference_seconds > matched.inference_seconds
    # Matched layouts give the fastest compute...
    compute = [r.inference_seconds + r.training_seconds for r in results]
    assert compute[2] == min(compute)
    # ...but the transformation kernel offsets much of the gain.
    assert matched.total_seconds > 0.8 * min(fw_both.total_seconds,
                                             bw_both.total_seconds)


def test_fig11_opencl_calibration(benchmark, topology, show):
    """Section 5.5: the custom OpenCL A3C is within 12 % of cuDNN."""
    experiment = GPULayoutExperiment(topology)
    factor = benchmark(lambda: experiment.opencl_factor)
    show(f"OpenCL/cuDNN calibration factor: {factor:.2f} "
         f"(paper: within 12%)")
    assert factor <= 1.12
