"""Ablation — FA3C running the A3C-LSTM variant.

The paper's generic-PE argument (Section 4.2.1) is that one datapath
serves *any* layer mix; the original A3C's LSTM variant is the natural
stress test.  The LSTM step is a 1024x512 dense matvec per inference —
~79 % more parameter traffic than the feed-forward net — so the same
platform model predicts how much throughput the recurrent agent costs,
with no hardware change.
"""

import pytest

from repro.fpga.platform import FA3CPlatform
from repro.gpu.platform import A3CcuDNNPlatform
from repro.harness import format_table
from repro.nn.network import A3CNetwork
from repro.nn.network_lstm import lstm_a3c_network
from repro.platforms import measure_ips


def test_ablation_lstm_on_fa3c(benchmark, show):
    feedforward = A3CNetwork(num_actions=6).topology()
    recurrent = lstm_a3c_network(num_actions=6).topology()

    def run():
        rows = []
        for label, topology in (("A3C (Table 1)", feedforward),
                                ("A3C-LSTM", recurrent)):
            fa3c = FA3CPlatform.fa3c(topology)
            cudnn = A3CcuDNNPlatform(topology)
            rows.append({
                "network": label,
                "params": topology.num_params,
                "fa3c_inference_us": fa3c.inference_latency() * 1e6,
                "fa3c_ips_n16": measure_ips(fa3c, 16,
                                            routines_per_agent=20).ips,
                "cudnn_ips_n16": measure_ips(cudnn, 16,
                                             routines_per_agent=20).ips,
            })
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    show(format_table(rows, title="Ablation: FA3C running the A3C-LSTM "
                                  "variant (n = 16 agents)"))

    ff, lstm = rows
    # The LSTM adds 4H x (I+H) + 4H = 525,312 parameters.
    assert lstm["params"] - ff["params"] == 525_312
    # Both platforms slow down, the DRAM-bound FPGA more than the
    # HBM2-backed GPU: the bigger the dense parameter traffic, the more
    # the P100's 5x bandwidth advantage matters.  FA3C's Table 1 margin
    # narrows to roughly parity on the LSTM variant — an honest model
    # prediction consistent with the paper's framing that the FPGA's win
    # comes from small-batch efficiency and launch overhead, both of
    # which amortise as the network grows.
    assert lstm["fa3c_ips_n16"] < ff["fa3c_ips_n16"]
    assert lstm["cudnn_ips_n16"] < ff["cudnn_ips_n16"]
    assert lstm["fa3c_ips_n16"] == pytest.approx(
        lstm["cudnn_ips_n16"], rel=0.15)
    # FPGA throughput scales roughly with parameter traffic (the FC
    # layers dominate both nets).
    ratio = lstm["fa3c_ips_n16"] / ff["fa3c_ips_n16"]
    traffic_ratio = ff["params"] / lstm["params"]
    assert ratio == pytest.approx(traffic_ratio, abs=0.15)
