"""Ablation — DRAM channel placement of global vs local parameters.

Section 4.1: "If there exist multiple off-chip DRAM channels, FA3C locates
global parameters and local parameters in different memory channels."
This bench compares striping the global theta/RMS-g traffic across one vs
two channels, and also sweeps the achieved DRAM burst efficiency — the
two memory-system levers the paper's design controls.
"""

import pytest

from repro.fpga.platform import FA3CPlatform
from repro.harness import format_table
from repro.platforms import measure_ips


def test_ablation_global_channel_striping(benchmark, topology, show):
    def run():
        rows = []
        for channels in (1, 2):
            platform = FA3CPlatform.fa3c(topology,
                                         global_channels=channels)
            result = measure_ips(platform, 16, routines_per_agent=20)
            rows.append({"global_channels": channels,
                         "ips_at_16_agents": result.ips})
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    show(format_table(rows, title="Ablation: global-parameter channel "
                                  "striping"))
    one, two = rows[0]["ips_at_16_agents"], rows[1]["ips_at_16_agents"]
    # Separating/striping global traffic is worth a solid margin at
    # saturation (the RMSProp and gradient traffic stop contending).
    assert two > one * 1.10


def test_ablation_dram_efficiency(benchmark, topology, show):
    def run():
        rows = []
        for efficiency in (0.4, 0.55, 0.70, 0.85, 1.0):
            platform = FA3CPlatform.fa3c(topology,
                                         dram_efficiency=efficiency)
            result = measure_ips(platform, 16, routines_per_agent=15)
            rows.append({"dram_efficiency": efficiency,
                         "ips_at_16_agents": result.ips})
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    show(format_table(rows, title="Ablation: DRAM burst efficiency"))
    ips = [row["ips_at_16_agents"] for row in rows]
    # Monotone: the platform is bandwidth-sensitive...
    assert all(b >= a * 0.999 for a, b in zip(ips, ips[1:]))
    # ...but not bandwidth-proportional (compute bound eventually).
    assert ips[-1] / ips[0] < 1.0 / 0.4
    assert ips[-1] > ips[0] * 1.2


def test_ablation_pcie_latency(benchmark, topology, show):
    """Host-link latency matters little at saturation (DMA overlaps
    compute across agents) but shows at n = 1."""
    def run():
        rows = []
        for latency in (2e-6, 8e-6, 50e-6):
            platform = FA3CPlatform.fa3c(topology, pcie_latency=latency)
            n1 = measure_ips(platform, 1, routines_per_agent=15).ips
            n16 = measure_ips(platform, 16, routines_per_agent=15).ips
            rows.append({"pcie_latency_us": latency * 1e6,
                         "ips_n1": n1, "ips_n16": n16})
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    show(format_table(rows, title="Ablation: PCIe DMA latency"))
    assert rows[0]["ips_n1"] > rows[-1]["ips_n1"]
    drop_n1 = rows[-1]["ips_n1"] / rows[0]["ips_n1"]
    drop_n16 = rows[-1]["ips_n16"] / rows[0]["ips_n16"]
    assert drop_n16 > drop_n1   # saturation hides the latency
