"""Ablation — the per-game learning-rate tuning protocol.

The paper reports "the result from best-performing configuration
parameters of each implementation" and notes the original A3C scores come
from the best run per learning rate per game (Sections 5.1 and 5.6).
This bench runs that protocol end-to-end on a fast environment: sweep
three learning rates, pick the winner by final mean score, and verify
the protocol discriminates (a far-too-small rate loses).
"""

from repro.core import A3CConfig
from repro.core.sweep import sweep_learning_rates
from repro.envs import Catch
from repro.harness import format_table
from repro.nn.network import MLPPolicyNetwork


def test_ablation_learning_rate_protocol(benchmark, show):
    config = A3CConfig(num_agents=4, t_max=5, max_steps=25_000,
                       anneal_steps=10 ** 9, entropy_beta=0.02, seed=1)

    def run():
        return sweep_learning_rates(
            lambda i: Catch(size=5),
            lambda: MLPPolicyNetwork(3, (5, 5), hidden=32),
            config,
            learning_rates=[1e-5, 1e-3, 1e-2],
            seeds=(0,), score_window=300)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    show(format_table(result.rows(),
                      title="Learning-rate sweep protocol on Catch "
                            "(25k steps per run)"))
    best = result.best
    show(f"selected: lr={best.learning_rate} "
         f"(final score {best.final_score:+.3f})")

    # The protocol discriminates: the vanishing rate cannot win.
    assert best.learning_rate != 1e-5
    assert best.final_score > 0.3
    by_rate = {rows["learning_rate"]: rows for rows in result.rows()}
    assert by_rate[1e-5]["best_final_score"] < best.final_score
