"""Table 4 — FPGA resource usage breakdown on the VU9P.

Regenerates the per-component resource estimate for the paper's build
(2 CU pairs x 64 PEs) and checks the utilisation totals: 57.3 % logic,
37.0 % registers, 40.6 % memory blocks, 34.3 % DSPs.
"""

import pytest

from repro.fpga.resources import ResourceModel, resource_table
from repro.harness import format_table


def test_table4_resources(benchmark, show):
    model = ResourceModel(num_cus=4, n_pe=64)
    rows = benchmark(resource_table, model)
    show(format_table(rows, title="Table 4: VU9P resource breakdown"))

    util = model.utilisation()
    assert util["logic_luts"] == pytest.approx(0.573, abs=0.06)
    assert util["registers"] == pytest.approx(0.370, abs=0.06)
    assert util["memory_blocks"] == pytest.approx(0.406, abs=0.08)
    assert util["dsp_blocks"] == pytest.approx(0.343, abs=0.05)
    assert model.fits()

    components = {row["component"]: row for row in rows}
    assert components["PEs"]["dsp_blocks"] == 2048   # the Table 4 anchor


def test_table4_headroom_for_more_cu_pairs(benchmark, show):
    """The paper notes more CU pairs fit 'when FPGA resource allows':
    a third pair still fits the VU9P, a fourth runs out of DSPs."""
    def sweep():
        return {pairs: ResourceModel(num_cus=2 * pairs, n_pe=64).fits()
                for pairs in (1, 2, 3, 4, 5)}
    fits = benchmark(sweep)
    show(format_table([{"cu_pairs": k, "fits_vu9p": v}
                       for k, v in fits.items()],
                      title="CU-pair scaling headroom"))
    assert fits[2] and fits[3]
    assert not fits[5]
