"""Section 3.4 — Kernel launch overhead.

The paper measures launch overhead by comparing A3C kernels against dummy
kernels with no computation: on the GPU, launches account for **more than
38 %** of overall kernel execution time; on the FPGA the task-start
overhead is **less than 0.02 %**.
"""

from repro.fpga.platform import FA3CPlatform
from repro.gpu.platform import A3CcuDNNPlatform
from repro.harness import format_table


def test_s34_gpu_launch_overhead(benchmark, topology, show):
    platform = A3CcuDNNPlatform(topology)
    fraction = benchmark(platform.launch_fraction)

    # The dummy-kernel decomposition per routine.
    calls = []
    for _ in range(6):
        calls.extend(platform.model.inference_kernels(1))
    calls.extend(platform.model.training_kernels(5))
    total = platform.kernels.sequence_seconds(calls)
    launches = len(calls) * platform.cal.launch_overhead
    show(format_table([{
        "kernels_per_routine": len(calls),
        "launch_us_per_kernel": platform.cal.launch_overhead * 1e6,
        "total_kernel_ms": total * 1e3,
        "launch_ms": launches * 1e3,
        "launch_fraction": fraction,
    }], title="Section 3.4: GPU kernel-launch overhead (dummy-kernel "
              "comparison)"))
    assert fraction > 0.38      # "more than 38%"
    assert fraction < 0.55      # still dominated by real work


def test_s34_fpga_task_overhead(benchmark, topology, show):
    platform = FA3CPlatform.fa3c(topology)

    def fraction():
        routine = 6 * platform.inference_latency() \
            + platform.training_latency(5) + platform.sync_latency()
        overhead = 8 * platform.task_launch_overhead()
        return overhead / routine

    value = benchmark(fraction)
    show(f"FPGA task-start overhead per routine: {value * 100:.4f}% "
         f"(paper: < 0.02%)")
    assert value < 0.0002     # the paper's bound
