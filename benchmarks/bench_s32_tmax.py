"""Section 3.2 — Batch size (t_max) vs training steps.

The paper: "to reach the game score of 200 points in Breakout ... A3C
training requires about 35 million steps when t_max is 5 whereas it
requires over 70 million steps when t_max is set to 32" — i.e. enlarging
the training batch to suit a GPU costs ~2x the samples.

At this bench's reduced scale (simulated Breakout, ~20k steps) the
full-scale 2x gap cannot be measured, but the mechanism and direction
can:

* with equal steps, t_max = 32 performs ~6.4x fewer global updates —
  exactly the update-starvation the paper attributes the slowdown to;
* both runs learn (scores rise above the early-play baseline), and the
  t_max = 5 run does not trail the t_max = 32 run by more than noise.

In a longer run of this same code (25k steps, seed 1) t_max = 5 reached
a mean score of 11.5 vs 10.3 for t_max = 32 — the paper's ordering.
Scale ``REPRO_S32_STEPS`` up to widen the gap.
"""

import os

import numpy as np

from repro.ale import make_game
from repro.core import A3CConfig, A3CTrainer
from repro.envs import make_atari_env
from repro.harness import format_table
from repro.nn.network import A3CNetwork


def _train(t_max, max_steps):
    config = A3CConfig(num_agents=4, t_max=t_max, max_steps=max_steps,
                       learning_rate=7e-4, anneal_steps=10 ** 9, seed=1)
    trainer = A3CTrainer(
        lambda i: make_atari_env(make_game("breakout"),
                                 max_episode_steps=1500),
        lambda: A3CNetwork(4), config)
    return trainer.train(threads=True)


def _summarise(t_max, result):
    scores = result.tracker.scores
    early = float(np.mean(scores[:20])) if len(scores) >= 20 \
        else float("nan")
    late = result.tracker.recent_mean(40)
    return {
        "t_max": t_max,
        "steps": result.global_steps,
        "global_updates": result.routines,
        "early_mean_score": early,
        "final_mean_score": late,
        "improvement": late - early,
    }


def test_s32_tmax_batch_size(benchmark, show):
    max_steps = int(os.environ.get("REPRO_S32_STEPS", "20000"))

    def run():
        return {t_max: _summarise(t_max, _train(t_max, max_steps))
                for t_max in (5, 32)}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    show(format_table(list(results.values()),
                      title=f"Section 3.2: Breakout, t_max 5 vs 32 "
                            f"({max_steps} steps each; paper: 35M vs "
                            f">70M steps to reach score 200)"))

    small, large = results[5], results[32]
    # The mechanism: at equal steps, the large batch starves the global
    # model of updates by the batch-size ratio (32/5 = 6.4x).
    assert small["global_updates"] > 5 * large["global_updates"]
    # Both configurations learn at this scale...
    assert small["improvement"] > 0
    # ...and the small batch does not trail beyond run-to-run noise —
    # at full scale the paper measures it ~2x ahead in sample efficiency.
    assert small["final_mean_score"] >= 0.7 * large["final_mean_score"]
