"""Figure 10 — Performance of different FA3C configurations.

The paper runs this ablation on a Stratix V with a *single* CU pair and
normalises to FA3C at n = 16.  Shape anchors:

* FA3C-Alt1 (FW layout everywhere) loses ~33 % at n = 16 — idle PEs in
  the fully-connected backward pass;
* FA3C-Alt2 (both layouts materialised in DRAM) is only slightly slower —
  extra parameter-store traffic per RMSProp update;
* FA3C-SingleCU (one CU with 2N PEs) wins for small n, loses from n ~ 4
  where the dual CUs' bandwidth sharing takes over.
"""

import pytest

from repro.fpga.platform import FA3CPlatform
from repro.harness import format_series
from repro.platforms import sweep_agents

AGENTS = (1, 2, 4, 8, 16)


def test_fig10_configurations(benchmark, topology, show):
    def run():
        variants = {
            "FA3C": FA3CPlatform.fa3c(topology, cu_pairs=1),
            "FA3C-Alt1": FA3CPlatform.alt1(topology, cu_pairs=1),
            "FA3C-Alt2": FA3CPlatform.alt2(topology, cu_pairs=1),
            "FA3C-SingleCU": FA3CPlatform.single_cu(topology,
                                                    cu_pairs=1),
        }
        series = {}
        for name, platform in variants.items():
            results = sweep_agents(platform, AGENTS,
                                   routines_per_agent=25)
            series[name] = [r.ips for r in results]
        return series

    series = benchmark.pedantic(run, rounds=1, iterations=1)
    base16 = series["FA3C"][-1]
    normalised = {name: [v / base16 for v in values]
                  for name, values in series.items()}
    show(format_series(AGENTS, normalised,
                       title="Figure 10: relative performance "
                             "(normalised to FA3C at n = 16, 1 CU pair)"))

    # Alt1: ~33 % lower at n = 16.
    assert normalised["FA3C-Alt1"][-1] == pytest.approx(0.67, abs=0.12)
    # Alt2: slightly lower, within ~10 %.
    assert 0.88 < normalised["FA3C-Alt2"][-1] < 1.01
    # SingleCU: better at n = 1, worse at n >= 4.
    assert normalised["FA3C-SingleCU"][0] > normalised["FA3C"][0]
    for index, n in enumerate(AGENTS):
        if n >= 4:
            assert normalised["FA3C-SingleCU"][index] < \
                normalised["FA3C"][index]
