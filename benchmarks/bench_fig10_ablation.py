"""Figure 10 — Performance of different FA3C configurations.

The paper runs this ablation on a Stratix V with a *single* CU pair and
normalises to FA3C at n = 16.  Shape anchors:

* FA3C-Alt1 (FW layout everywhere) loses ~33 % at n = 16 — idle PEs in
  the fully-connected backward pass;
* FA3C-Alt2 (both layouts materialised in DRAM) is only slightly slower —
  extra parameter-store traffic per RMSProp update;
* FA3C-SingleCU (one CU with 2N PEs) wins for small n, loses from n ~ 4
  where the dual CUs' bandwidth sharing takes over.
"""

import pytest

from repro import obs
from repro.fpga.platform import FA3CPlatform
from repro.harness import format_series, format_table
from repro.obs.prof import AttributionReport
from repro.platforms import measure_ips, sweep_agents

AGENTS = (1, 2, 4, 8, 16)


def _variants(topology):
    return {
        "FA3C": FA3CPlatform.fa3c(topology, cu_pairs=1),
        "FA3C-Alt1": FA3CPlatform.alt1(topology, cu_pairs=1),
        "FA3C-Alt2": FA3CPlatform.alt2(topology, cu_pairs=1),
        "FA3C-SingleCU": FA3CPlatform.single_cu(topology, cu_pairs=1),
        "FA3C-NoDB": FA3CPlatform.fa3c(topology, cu_pairs=1,
                                       double_buffering=False),
    }


def _stall_breakdown(topology, num_agents=16):
    """Per-variant cycle-attribution shares at one agent count.

    The profiler's explanation of Figure 10: which cause bucket each
    configuration's lost cycles land in (stall = everything that is not
    PE/RMSProp work).
    """
    rows = []
    for name, platform in _variants(topology).items():
        with obs.enabled_scope(reset=True):
            measure_ips(platform, num_agents, routines_per_agent=25)
            report = AttributionReport.from_registry(
                obs.metrics()).validate()
        shares = report.fpga_bucket_shares()
        stall = (shares.get("dram_wait", 0.0)
                 + shares.get("buffer_stall", 0.0)
                 + shares.get("tlu_layout", 0.0))
        rows.append({
            "config": name,
            "stall": f"{100.0 * stall:.1f}%",
            "dram_wait": f"{100.0 * shares.get('dram_wait', 0.0):.1f}%",
            "buffer_stall":
                f"{100.0 * shares.get('buffer_stall', 0.0):.1f}%",
            "tlu_layout":
                f"{100.0 * shares.get('tlu_layout', 0.0):.1f}%",
            "pe_compute":
                f"{100.0 * shares.get('pe_compute', 0.0):.1f}%",
        })
    return rows


def test_fig10_configurations(benchmark, topology, show):
    def run():
        series = {}
        for name, platform in _variants(topology).items():
            if name == "FA3C-NoDB":
                continue    # profiled below, not part of Figure 10
            results = sweep_agents(platform, AGENTS,
                                   routines_per_agent=25)
            series[name] = [r.ips for r in results]
        return series

    series = benchmark.pedantic(run, rounds=1, iterations=1)
    base16 = series["FA3C"][-1]
    normalised = {name: [v / base16 for v in values]
                  for name, values in series.items()}
    show(format_series(AGENTS, normalised,
                       title="Figure 10: relative performance "
                             "(normalised to FA3C at n = 16, 1 CU pair)"))
    show(format_table(_stall_breakdown(topology),
                      title="Stall breakdown at n = 16 (share of all "
                            "simulated CU cycles)"))

    # Alt1: ~33 % lower at n = 16.
    assert normalised["FA3C-Alt1"][-1] == pytest.approx(0.67, abs=0.12)
    # Alt2: slightly lower, within ~10 %.
    assert 0.88 < normalised["FA3C-Alt2"][-1] < 1.01
    # SingleCU: better at n = 1, worse at n >= 4.
    assert normalised["FA3C-SingleCU"][0] > normalised["FA3C"][0]
    for index, n in enumerate(AGENTS):
        if n >= 4:
            assert normalised["FA3C-SingleCU"][index] < \
                normalised["FA3C"][index]
