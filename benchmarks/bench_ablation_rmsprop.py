"""Ablation — RMSProp-unit count vs DRAM interface width (Section 4.2.3).

The paper sizes the RMSProp module at four RUs per 16-word channel (each
RU consumes/produces four words per cycle).  This bench sweeps the RU
count and shows the update time saturating exactly where the RUs match
the memory interface: fewer RUs leave the module compute-bound, more RUs
buy nothing.
"""

import pytest

from repro.fpga.dram import DRAMChannel
from repro.fpga.rmsprop_module import RMSPropModule
from repro.fpga.timing import TimingModel
from repro.harness import format_table


def test_ablation_ru_count(benchmark, topology, show):
    words = TimingModel(topology).total_param_words()

    def run():
        import numpy as np
        rows = []
        for num_rus in (1, 2, 4, 8, 16):
            module = RMSPropModule(num_rus=num_rus)
            channel = DRAMChannel("g", efficiency=1.0)
            theta = np.zeros(words, dtype=np.float32)
            g = np.zeros_like(theta)
            grad = np.ones_like(theta)
            stats = module.update_with_stats(theta, g, grad,
                                             channel=channel)
            rows.append({
                "rus": num_rus,
                "compute_cycles": stats.compute_cycles,
                "memory_cycles": stats.memory_cycles,
                "update_cycles": stats.pipelined_cycles,
                "bound": "compute" if stats.compute_cycles >
                stats.memory_cycles else "memory",
            })
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    show(format_table(rows, title="Ablation: RMSProp RUs vs one 16-word "
                                  "DRAM channel"))

    by_rus = {row["rus"]: row for row in rows}
    # Four RUs balance a 16-word interface (the paper's sizing): compute
    # and memory cycles agree to within a few percent.
    four = by_rus[4]
    assert four["compute_cycles"] == pytest.approx(
        four["memory_cycles"], rel=0.05)
    # Fewer RUs leave the module compute-bound; more are memory-bound.
    assert by_rus[2]["bound"] == "compute"
    assert by_rus[8]["bound"] == "memory"
    # Beyond saturation, more RUs buy almost nothing.
    assert by_rus[8]["update_cycles"] > 0.95 * four["update_cycles"]
    # One RU is ~4x slower than the balanced design.
    assert by_rus[1]["update_cycles"] > 3 * four["update_cycles"]
