"""Table 2 — Off-chip data traffic in A3C training.

Regenerates the per-routine traffic itemisation (t_max = 5).  The paper's
totals (24,538 KB load / 7,776 KB store) use a ~2,592 KB estimate of the
parameter set; with the exact Table 1 parameter set (2,673 KB incl. patch
padding) the same itemisation gives 27,946 KB / 8,020 KB.  The *structure*
— ten parameter-set loads, three parameter-set stores, eleven input
transfers — matches row for row.
"""

import pytest

from repro.analysis import traffic_table
from repro.harness import format_table


def test_table2_traffic(benchmark, topology, show):
    report = benchmark(traffic_table, topology, 5)
    show(format_table(report.rows(),
                      title="Table 2: off-chip traffic per A3C routine"))

    theta_bytes = 2_737_472      # exact Table 1 parameter set + padding
    # Store side: sync local + training global theta + RMS g.
    assert report.total_store_bytes == 3 * theta_bytes
    # Load side: 10 parameter-set reads + 11 input frames.
    input_bytes = int(110.25 * 1024)
    assert report.total_load_bytes == pytest.approx(
        10 * theta_bytes + 11 * input_bytes, rel=0.001)
    # Same order of magnitude as the paper's totals.
    assert 20_000 < report.total_load_bytes / 1024 < 32_000
    assert 6_000 < report.total_store_bytes / 1024 < 10_000


def test_table2_feature_map_extension(benchmark, topology, show):
    """The Section 4.3 feature-map save/reload traffic, which Table 2
    omits, stays a small fraction of the routine total."""
    report = benchmark(traffic_table, topology, 5, True)
    show(format_table(report.rows(),
                      title="Table 2 (extended with feature-map traffic)"))
    base = traffic_table(topology, 5)
    extra_fraction = (report.total_load_bytes + report.total_store_bytes) \
        / (base.total_load_bytes + base.total_store_bytes) - 1.0
    assert extra_fraction < 0.12
