"""Figure 12 — Atari game training results.

Trains A3C on all six simulated games with the paper's hyper-parameters
(initial learning rate 7e-4 annealed linearly, shared RMSProp, t_max = 5)
and prints the moving-average score curve per game.  Two runs per game
stand in for the paper's FPGA-vs-GPU comparison: the numerics are
identical on both platforms (asserted bit-level by the test suite), so —
exactly as the paper observes — the curves differ only by seed.

The default budget (``REPRO_FIG12_STEPS``, 6,000 steps/game) keeps the
bench to a few minutes and shows early learning signal; the paper's 100M-
step curves need proportionally longer runs
(``REPRO_FIG12_STEPS=100000`` gives clearly rising curves in ~an hour).
"""

import numpy as np

from repro.ale import GAME_NAMES, make_game
from repro.core import A3CConfig, A3CTrainer
from repro.envs import make_atari_env
from repro.harness import format_curve
from repro.nn.network import A3CNetwork


def _train_game(name, steps, seed):
    game = make_game(name)
    num_actions = game.action_space.n
    # Cap episode length so even slow-scoring games (Pong runs to 21
    # points) complete scored episodes within the bench budget.
    episode_cap = max(250, min(1500, steps // 8))

    def env_factory(agent_id):
        return make_atari_env(make_game(name),
                              max_episode_steps=episode_cap)

    config = A3CConfig(num_agents=4, t_max=5, max_steps=steps,
                       learning_rate=7e-4, anneal_steps=100_000_000,
                       seed=seed)
    trainer = A3CTrainer(env_factory,
                         lambda: A3CNetwork(num_actions), config)
    result = trainer.train(threads=True)
    return result


def test_fig12_training_curves(benchmark, fig12_steps, show):
    def run():
        curves = {}
        for name in GAME_NAMES:
            result = _train_game(name, fig12_steps, seed=1)
            steps, scores = result.tracker.curve()
            curves[name] = (steps, scores, result)
        return curves

    curves = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [f"Figure 12: training curves "
             f"({fig12_steps} steps/game, 4 agents)"]
    for name, (steps, scores, result) in curves.items():
        lines.append(format_curve(steps, scores, name))
    show("\n".join(lines))

    for name, (steps, scores, result) in curves.items():
        # Training genuinely ran: steps processed, episodes finished,
        # parameters moved, scores recorded against global steps.
        assert result.global_steps >= fig12_steps, name
        assert len(scores) > 0, name
        assert result.routines > fig12_steps / 5 * 0.9, name
        assert np.isfinite(scores).all(), name


def test_fig12_platform_trends_match(benchmark, fig12_steps, show):
    """The paper's point: FPGA and GPU platforms show the same training
    trends.  Our FPGA backend is bit-equivalent to the software path, so
    two seeds of the same game bound the platform-to-platform spread."""
    steps = max(fig12_steps // 2, 2000)

    def run():
        runs = {seed: _train_game("pong", steps, seed)
                for seed in (1, 2)}
        return runs

    runs = benchmark.pedantic(run, rounds=1, iterations=1)
    means = {seed: result.tracker.scores.mean()
             for seed, result in runs.items() if len(result.tracker)}
    show(f"Pong mean episode scores by seed (platform stand-ins): "
         f"{ {k: round(v, 2) for k, v in means.items()} }")
    for result in runs.values():
        assert result.global_steps >= steps
