"""Ablation — throughput vs t_max: who needs big batches?

The paper's central tension (Sections 3.2 and 5.2): GPUs want large
batches for efficiency, but A3C's quality degrades beyond small t_max
(Breakout needs ~2x the samples at t_max = 32).  Sweeping t_max through
the throughput simulation shows both platforms amortising their fixed
per-update costs with batch size, but at the quality-preserving
t_max = 5 the FPGA is ahead — the GPU only reaches FA3C's t_max = 5
throughput by at least doubling the batch, i.e. by paying the sample-
efficiency price the paper quantifies.
"""

from repro.fpga.platform import FA3CPlatform
from repro.gpu.platform import A3CcuDNNPlatform
from repro.harness import format_series
from repro.platforms import measure_ips

T_MAX_VALUES = (1, 2, 5, 10, 20, 32)


def test_ablation_tmax_vs_throughput(benchmark, topology, show):
    def run():
        series = {"FA3C": [], "A3C-cuDNN": []}
        for t_max in T_MAX_VALUES:
            fa3c = measure_ips(FA3CPlatform.fa3c(topology), 16,
                               t_max=t_max, routines_per_agent=20)
            cudnn = measure_ips(A3CcuDNNPlatform(topology), 16,
                                t_max=t_max, routines_per_agent=20)
            series["FA3C"].append(fa3c.ips)
            series["A3C-cuDNN"].append(cudnn.ips)
        return series

    series = benchmark.pedantic(run, rounds=1, iterations=1)
    show(format_series(T_MAX_VALUES, series, x_label="t_max",
                       title="Ablation: saturated IPS vs t_max "
                             "(n = 16 agents)"))

    fa3c = series["FA3C"]
    cudnn = series["A3C-cuDNN"]
    paper_index = T_MAX_VALUES.index(5)

    # Throughput rises with t_max on both platforms (fixed per-update
    # costs amortise)...
    assert fa3c[-1] > fa3c[0] and cudnn[-1] > cudnn[0]
    # ...but at the quality-preserving t_max = 5 the FPGA wins...
    assert fa3c[paper_index] > cudnn[paper_index] * 1.1
    # ...and the GPU only reaches FA3C's t_max = 5 throughput by at
    # least doubling the batch — the 2x-samples price of Section 3.2.
    catch_up = next((t for t, ips in zip(T_MAX_VALUES, cudnn)
                     if ips >= fa3c[paper_index]), None)
    assert catch_up is None or catch_up >= 10
