"""Table 3 — Sizes of line buffers.

Instantiates the stage/port line-buffer plan for every Table 1 layer with
N_PE = 64 and checks the closed-form counts the paper gives:
FW uses one C_in-wide input line; GC uses K input lines plus
M_GC = floor(N_PE/K^2) gradient lines; BW uses
M_BW = floor(N_PE/(M_w*C_in)) gradient lines.
"""

from repro.analysis import line_buffer_table
from repro.harness import format_table


def test_table3_line_buffers(benchmark, topology, show):
    table = benchmark(line_buffer_table, topology, 64)

    rows = []
    for layer, plans in table.items():
        for plan in plans:
            rows.append({"layer": layer, "stage": plan.stage,
                         "port": plan.port, "buffer": plan.buffer,
                         "width": plan.width, "count": plan.count})
    show(format_table(rows, title="Table 3: line buffers (N_PE = 64)"))

    def plan(layer, stage, port):
        return [p for p in table[layer]
                if p.stage == stage and p.port == port][0]

    # FW input line buffer width = C_in, one instance.
    assert plan("Conv1", "FW", "Input 0").width == 84
    assert plan("Conv1", "FW", "Input 0").count == 1
    # GC: K input lines; M_GC gradient lines.
    assert plan("Conv1", "GC", "Input 0").count == 8
    assert plan("Conv1", "GC", "Input 1").count == 64 // 64
    assert plan("Conv2", "GC", "Input 1").count == 64 // 16
    assert plan("FC3", "GC", "Input 1").count == 64          # K = 1
    # Parameter ports are fed straight from the on-chip buffer.
    assert plan("Conv2", "FW", "Input 1").count == 0
    assert plan("FC3", "BW", "Input 0").count == 0
    # Output line buffers are N_PE wide.
    assert plan("Conv1", "FW", "Output").width == 64
