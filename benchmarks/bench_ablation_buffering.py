"""Ablation — double buffering and prefetch (Sections 4.2.3 / 4.4.3).

FA3C double-buffers everywhere: parameter buffers, the TLU pair, and the
RMSProp module's theta/g staging all overlap off-chip transfers with
computation.  This bench turns the overlap off (stage time = DMA +
compute instead of max(DMA, compute)) and measures the cost at the
Figure 8 operating point.
"""

from repro.fpga.platform import FA3CPlatform
from repro.harness import format_table
from repro.platforms import measure_ips


def test_ablation_double_buffering(benchmark, topology, show):
    def run():
        rows = []
        for enabled in (True, False):
            platform = FA3CPlatform.fa3c(topology,
                                         double_buffering=enabled)
            result = measure_ips(platform, 16, routines_per_agent=20)
            rows.append({
                "double_buffering": enabled,
                "inference_us": platform.inference_latency() * 1e6,
                "training_us": platform.training_latency(5) * 1e6,
                "ips_at_16_agents": result.ips,
            })
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    show(format_table(rows, title="Ablation: DMA/compute overlap "
                                  "(double buffering)"))
    on, off = rows
    # Overlap helps every metric...
    assert on["inference_us"] < off["inference_us"]
    assert on["training_us"] < off["training_us"]
    assert on["ips_at_16_agents"] > off["ips_at_16_agents"] * 1.05
    # ...but less than 2x: stages are rarely perfectly balanced.
    assert off["ips_at_16_agents"] > on["ips_at_16_agents"] * 0.5


def test_ablation_tlu_prefetch_depth(benchmark, show):
    """The TLU stages patches in a FIFO ahead of PE consumption
    (Section 4.4.3).  Functionally the depth only bounds back-pressure;
    this bench verifies a depth-2 FIFO sustains the alternating
    double-buffered TLU pair without overflow on a full FC3 load."""
    import numpy as np
    from repro.fpga.layouts import PATCH, dram_image_from_fw, fw_layout
    from repro.fpga.tlu import TransposeLoadUnit

    weight = np.random.default_rng(0).standard_normal(
        (256, 2592)).astype(np.float32)
    image = dram_image_from_fw(fw_layout(weight))
    patches = image.reshape(-1, PATCH * PATCH)

    def run():
        tlus = (TransposeLoadUnit(fifo_depth=2),
                TransposeLoadUnit(fifo_depth=2))
        for index in range(0, len(patches), 8):  # sample the stream
            tlu = tlus[(index // 8) % 2]
            tlu.stage(patches[index])
            tlu.transpose_next()
        return sum(t.patches_transposed for t in tlus)

    transposed = benchmark(run)
    show(f"TLU pair transposed {transposed} sampled 16x16 patches of the "
         f"FC3 image without FIFO overflow")
    assert transposed > 0
