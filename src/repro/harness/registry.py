"""The registry of every table and figure the paper reports.

Each entry records what the paper shows, the quantitative anchors our
reproduction should match in *shape*, and which bench regenerates it —
the machine-readable version of the DESIGN.md per-experiment index.
"""

from __future__ import annotations

import dataclasses
import typing


@dataclasses.dataclass(frozen=True)
class Experiment:
    """One paper table/figure and its reproduction metadata."""

    exp_id: str                 # e.g. "table1", "fig8"
    title: str
    paper_anchors: typing.Tuple[str, ...]
    modules: typing.Tuple[str, ...]
    bench: str
    backends: typing.Tuple[str, ...] = ()
    """Compute backends (``repro.backends`` registry names) the
    experiment exercises; empty for purely analytic tables."""


EXPERIMENTS: typing.Dict[str, Experiment] = {
    e.exp_id: e for e in [
        Experiment(
            "table1", "DNN layers used in A3C for Atari 2600 games",
            ("Conv1 4K params / 6K outputs", "Conv2 8K / 3K",
             "FC3 664K / 256", "FC4 8K / 32", "input 28K features"),
            ("repro.nn.network",),
            "benchmarks/bench_table1_network.py"),
        Experiment(
            "table2", "Off-chip data traffic in A3C training",
            ("total load ~24.5 MB / store ~7.8 MB per routine",
             "parameter set ~2.6 MB"),
            ("repro.analysis.traffic", "repro.fpga.timing"),
            "benchmarks/bench_table2_traffic.py",
            backends=("fa3c-fpga",)),
        Experiment(
            "table3", "Sizes of line buffers",
            ("FW input line buffer width C_in",
             "GC uses K + floor(N_PE/K^2) line buffers",
             "BW uses floor(N_PE/(M_w*C_in)) line buffers"),
            ("repro.analysis.linebuffers", "repro.fpga.buffers"),
            "benchmarks/bench_table3_linebuffers.py",
            backends=("fa3c-fpga",)),
        Experiment(
            "table4", "FPGA resource usage breakdown on VU9P",
            ("~57% logic, ~37% registers, ~41% memory blocks, ~34% DSPs",
             "2048 DSPs in PEs"),
            ("repro.fpga.resources",),
            "benchmarks/bench_table4_resources.py",
            backends=("fa3c-fpga",)),
        Experiment(
            "fig8", "Performance of A3C Deep RL platforms (IPS vs agents)",
            ("FA3C > 2550 IPS at n=16", "FA3C 27.9% over A3C-cuDNN",
             "ordering FA3C > cuDNN > GA3C-TF > TF-GPU > TF-CPU",
             "peak at n >= 16"),
            ("repro.platforms.throughput", "repro.backends"),
            "benchmarks/bench_fig8_throughput.py",
            backends=("fa3c-fpga", "a3c-cudnn", "ga3c-tf",
                      "a3c-tf-gpu", "a3c-tf-cpu")),
        Experiment(
            "fig9", "Power and energy efficiency",
            ("FA3C ~18 W (-30% vs cuDNN)", ">142 inferences/Watt",
             "~1.6x efficiency vs A3C-cuDNN"),
            ("repro.power.model",),
            "benchmarks/bench_fig9_energy.py",
            backends=("fa3c-fpga", "a3c-cudnn", "ga3c-tf",
                      "a3c-tf-gpu", "a3c-tf-cpu")),
        Experiment(
            "fig10", "Performance of FA3C configurations",
            ("Alt1 ~33% lower at n=16", "Alt2 slightly lower",
             "SingleCU better for n < 4, worse for n >= 4"),
            ("repro.fpga.platform", "repro.fpga.timing"),
            "benchmarks/bench_fig10_ablation.py",
            backends=("fa3c-fpga", "fa3c-alt1", "fa3c-alt2",
                      "fa3c-single-cu")),
        Experiment(
            "fig11", "GPU computation time under parameter layouts",
            ("inference with BW layout 41.7% slower (FC layers)",
             "matched layouts fastest but need a transform kernel",
             "OpenCL within 12% of cuDNN"),
            ("repro.gpu.layout_experiment",),
            "benchmarks/bench_fig11_gpu_layout.py",
            backends=("a3c-cudnn", "a3c-tf-gpu")),
        Experiment(
            "fig12", "Atari game training results",
            ("six games trained with 16 agents, lr 7e-4 annealed",
             "FPGA and GPU numerics show the same training trends",
             "moving average over game scores rises with steps"),
            ("repro.core.trainer", "repro.ale", "repro.fpga.cu"),
            "benchmarks/bench_fig12_training.py",
            backends=("fa3c-fpga",)),
        Experiment(
            "s32", "t_max vs training steps (Section 3.2)",
            ("t_max 32 needs ~2x the steps of t_max 5 to reach a "
             "score threshold on Breakout",),
            ("repro.core.trainer", "repro.ale.games.breakout"),
            "benchmarks/bench_s32_tmax.py"),
        Experiment(
            "s33", "Operational intensity / batch-size wall "
                   "(Sections 3.2-3.3)",
            ("conv layers compute-rich at batch 1, FC layers "
             "bandwidth-bound", "FC3 intensity < 1 FLOP/byte at batch 1",
             "accumulation frequencies span orders of magnitude"),
            ("repro.analysis.roofline",),
            "benchmarks/bench_s33_roofline.py"),
        Experiment(
            "s34", "Kernel launch overhead (Section 3.4)",
            ("GPU launch overhead > 38% of kernel execution time",
             "FPGA task overhead < 0.02%"),
            ("repro.gpu.kernel", "repro.fpga.timing"),
            "benchmarks/bench_s34_launch_overhead.py",
            backends=("fa3c-fpga", "a3c-cudnn")),
    ]
}


def get_experiment(exp_id: str) -> Experiment:
    """Look up an experiment by id (raises ``KeyError`` with choices)."""
    if exp_id not in EXPERIMENTS:
        raise KeyError(f"unknown experiment {exp_id!r}; "
                       f"available: {sorted(EXPERIMENTS)}")
    return EXPERIMENTS[exp_id]
