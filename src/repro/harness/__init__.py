"""Experiment harness: the registry of paper experiments and the
plain-text table/figure renderers shared by ``benchmarks/`` and
``examples/``."""

from repro.harness.registry import EXPERIMENTS, Experiment, get_experiment
from repro.harness.report import format_curve, format_series, format_table

__all__ = [
    "EXPERIMENTS",
    "Experiment",
    "format_curve",
    "format_series",
    "format_table",
    "get_experiment",
]
