"""Plain-text rendering of tables, series, and training curves.

The benches print the same rows/series the paper reports; these helpers
keep the formatting consistent and dependency-free.
"""

from __future__ import annotations

import typing

import numpy as np


def format_table(rows: typing.Sequence[typing.Mapping[str, object]],
                 columns: typing.Optional[typing.Sequence[str]] = None,
                 title: str = "") -> str:
    """Render dict rows as an aligned ASCII table."""
    if not rows:
        return title + "\n(empty)" if title else "(empty)"
    columns = list(columns or rows[0].keys())
    cells = [[_fmt(row.get(col, "")) for col in columns] for row in rows]
    widths = [max(len(col), *(len(r[i]) for r in cells))
              for i, col in enumerate(columns)]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(col.ljust(widths[i])
                       for i, col in enumerate(columns))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(cell.ljust(widths[i])
                               for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(x: typing.Sequence, series:
                  typing.Mapping[str, typing.Sequence[float]],
                  x_label: str = "n", title: str = "") -> str:
    """Render named series over a common x axis (Figure 8/10 style)."""
    rows = []
    for name, values in series.items():
        row: typing.Dict[str, object] = {x_label + "\\series": name}
        for xi, value in zip(x, values):
            row[str(xi)] = value
        rows.append(row)
    return format_table(rows, title=title)


def format_curve(steps: np.ndarray, scores: np.ndarray, label: str,
                 bins: int = 12, width: int = 48) -> str:
    """A coarse ASCII sparkline of a training curve (Figure 12 style)."""
    if len(steps) == 0:
        return f"{label}: (no episodes)"
    edges = np.linspace(steps.min(), steps.max(), bins + 1)
    means = []
    for i in range(bins):
        mask = (steps >= edges[i]) & (steps <= edges[i + 1])
        means.append(float(np.mean(scores[mask])) if mask.any()
                     else float("nan"))
    finite = [m for m in means if not np.isnan(m)]
    lo, hi = (min(finite), max(finite)) if finite else (0.0, 1.0)
    span = hi - lo or 1.0
    blocks = " .:-=+*#%@"
    bar = "".join(
        blocks[int((m - lo) / span * (len(blocks) - 1))]
        if not np.isnan(m) else " " for m in means)
    return (f"{label:24s} |{bar}|  first={means[0]:.1f} "
            f"last={finite[-1] if finite else float('nan'):.1f} "
            f"max={hi:.1f}")


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0 or 0.01 <= abs(value) < 1e7:
            return f"{value:,.2f}".rstrip("0").rstrip(".")
        return f"{value:.3e}"
    return str(value)
