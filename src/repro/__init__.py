"""repro — a full Python reproduction of *FA3C: FPGA-Accelerated Deep
Reinforcement Learning* (Cho, Oh, Park, Jung & Lee, ASPLOS 2019).

Subpackages:

* :mod:`repro.nn` — from-scratch NumPy DNN library with explicit
  FW / BW / GC stages and shared RMSProp.
* :mod:`repro.core` — the A3C algorithm plus the GA3C and PAAC baselines.
* :mod:`repro.envs` / :mod:`repro.ale` — environment substrate and six
  simulated Atari 2600 games behind an ALE-style interface.
* :mod:`repro.fpga` — functional + cycle-level simulator of the FA3C
  microarchitecture (PEs, CUs, buffers, layouts, TLU, RMSProp module,
  DRAM, resources, platform variants).
* :mod:`repro.gpu` — calibrated cost models of the GPU/CPU baselines.
* :mod:`repro.platforms` — the multi-agent throughput experiment.
* :mod:`repro.power` — the dummy-platform power methodology.
* :mod:`repro.analysis` — Table 2/3 accounting and roofline analysis.
* :mod:`repro.sim` — the discrete-event simulation engine.
* :mod:`repro.obs` — unified metrics/tracing with Chrome-trace export.
* :mod:`repro.harness` — experiment registry and report rendering.
"""

__version__ = "1.0.0"

__all__ = [
    "ale",
    "analysis",
    "core",
    "envs",
    "fpga",
    "gpu",
    "harness",
    "nn",
    "obs",
    "platforms",
    "power",
    "sim",
]
