"""A3C hyper-parameters.

Defaults follow the paper's evaluation setup (Section 5.6): 16 agents,
t_max = 5, initial learning rate 7e-4 annealed linearly to zero over the
full run, discount 0.99, entropy regularisation 0.01, shared RMSProp with
decay 0.99.
"""

from __future__ import annotations

import dataclasses
import typing


@dataclasses.dataclass
class A3CConfig:
    """Hyper-parameters for A3C training."""

    num_agents: int = 16
    t_max: int = 5                       # rollout length per training task
    gamma: float = 0.99                  # reward discount
    entropy_beta: float = 0.01           # entropy regularisation weight
    learning_rate: float = 7e-4          # initial learning rate
    anneal_steps: typing.Optional[int] = None
    """Global steps over which the learning rate anneals linearly to zero.
    ``None`` means anneal over ``max_steps`` (the paper uses 100M)."""
    rmsprop_rho: float = 0.99
    rmsprop_eps: float = 0.1
    max_steps: int = 100_000_000         # total inference steps to train for
    grad_clip_norm: typing.Optional[float] = 40.0
    """Global gradient-norm clipping (the reference A3C implementation the
    paper benchmarks uses 40.0); ``None`` disables clipping."""
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_agents < 1:
            raise ValueError(f"num_agents must be >= 1: {self.num_agents}")
        if self.t_max < 1:
            raise ValueError(f"t_max must be >= 1: {self.t_max}")
        if not 0.0 < self.gamma <= 1.0:
            raise ValueError(f"gamma must be in (0, 1]: {self.gamma}")
        if self.max_steps < 1:
            raise ValueError(f"max_steps must be >= 1: {self.max_steps}")

    @property
    def effective_anneal_steps(self) -> int:
        """The annealing horizon, defaulting to ``max_steps``."""
        return self.anneal_steps if self.anneal_steps is not None \
            else self.max_steps

    def learning_rate_at(self, global_step: int) -> float:
        """Linearly annealed learning rate at a global step count."""
        remaining = max(0.0, 1.0 - global_step / self.effective_anneal_steps)
        return self.learning_rate * remaining
