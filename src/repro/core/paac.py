"""PAAC baseline (Clemente et al., 2017).

PAAC keeps a single parameter set like GA3C but makes everything
*synchronous*: all agents step in lockstep for t_max steps via a
vectorised environment, then one update is computed from the combined
batch and every agent waits for it (paper Section 6: "since all training
steps are synchronized, the performance may not scale to a larger number
of agents").
"""

from __future__ import annotations

import time
import typing

import numpy as np

from repro.core.config import A3CConfig
from repro.core.execution import (
    apply_rollout_update,
    derive_policy_seed,
    record_routine,
    resolve_backend,
)
from repro.core.scores import ScoreTracker
from repro.core.parameter_server import ParameterServer
from repro.core.trainer import TrainResult
from repro.envs.base import Env
from repro.envs.vector import SyncVectorEnv
from repro.nn.losses import softmax
from repro.nn.network import A3CNetwork
from repro.obs import lat as _lat
from repro.obs import runtime as _obs


class PAACTrainer:
    """Synchronous batched advantage actor-critic."""

    def __init__(self, env_factory: typing.Callable[[int], Env],
                 network_factory: typing.Callable[[], A3CNetwork],
                 config: A3CConfig,
                 tracker: typing.Optional[ScoreTracker] = None,
                 platform=None,
                 vector_env=None):
        self.config = config
        self.tracker = tracker or ScoreTracker()
        self._platform = platform
        self._lat_platform = platform if isinstance(platform, str) else None
        self._backend = None
        rng = np.random.default_rng(config.seed)
        self.network = network_factory()
        self.server = ParameterServer(self.network.init_params(rng), config)
        if vector_env is not None:
            # A prebuilt vectorised substrate — e.g. a
            # repro.envs.BatchedVectorEnv stepping all slots through the
            # structure-of-arrays engine in one call.  The caller is
            # responsible for seeding it with config.seed so the per-slot
            # contract (derive_agent_seed) holds.
            if vector_env.num_envs != config.num_agents:
                raise ValueError(
                    f"vector_env has {vector_env.num_envs} slots; "
                    f"config.num_agents is {config.num_agents}")
            self.vector_env = vector_env
        else:
            # SyncVectorEnv applies the repro-wide seeding contract
            # (repro.backends.protocol.derive_agent_seed) per slot.
            self.vector_env = SyncVectorEnv(
                [lambda i=i: env_factory(i)
                 for i in range(config.num_agents)],
                seed=config.seed)
        self.rngs = [np.random.default_rng(
                         derive_policy_seed(config.seed, agent_id))
                     for agent_id in range(config.num_agents)]
        self.vector_env.reset()
        self.episodes = 0
        self._routines = 0

    @property
    def backend(self):
        """The injected compute backend (resolved lazily, so numeric-only
        runs never build a platform model)."""
        if self._backend is None:
            self._backend = resolve_backend(self._platform)
        return self._backend

    def _rollout_phase(self, lat=None
                       ) -> typing.Tuple[np.ndarray, np.ndarray,
                                         np.ndarray, np.ndarray,
                                         np.ndarray]:
        """Step all agents t_max times in lockstep.

        Shapes: states ``(T, N, ...)``, actions/rewards/dones ``(T, N)``,
        final bootstrap values ``(N,)``.  ``lat``, when present,
        receives every batched forward pass as ``infer``.
        """
        timed = lat is not None
        n = self.config.num_agents
        all_states, all_actions, all_rewards, all_dones = [], [], [], []
        for _ in range(self.config.t_max):
            states = self.vector_env.observations
            phase_started = time.perf_counter_ns() if timed else 0
            logits, _values = self.network.forward(states,
                                                   self.server.params)
            if timed:
                lat.add_ns("infer",
                           time.perf_counter_ns() - phase_started)
            probs = softmax(logits)
            actions = np.array([
                self.rngs[i].choice(probs.shape[1], p=probs[i])
                for i in range(n)])
            all_states.append(states.copy())
            step = self.vector_env.step(actions)
            for _slot, score in step.finished_scores:
                self.tracker.record(self.server.global_step, score)
                self.episodes += 1
            all_actions.append(actions)
            all_rewards.append(step.rewards)
            all_dones.append(step.dones)
            self.server.add_steps(n)
        phase_started = time.perf_counter_ns() if timed else 0
        _, bootstrap = self.network.forward(self.vector_env.observations,
                                            self.server.params)
        if timed:
            lat.add_ns("infer", time.perf_counter_ns() - phase_started)
        return (np.stack(all_states), np.stack(all_actions),
                np.stack(all_rewards), np.stack(all_dones), bootstrap)

    def _returns(self, rewards: np.ndarray, dones: np.ndarray,
                 bootstrap: np.ndarray) -> np.ndarray:
        """Per-agent n-step returns with terminal masking; ``(T, N)``."""
        t_max, _ = rewards.shape
        returns = np.zeros_like(rewards)
        running = bootstrap.astype(np.float32).copy()
        for t in range(t_max - 1, -1, -1):
            running = np.where(dones[t], 0.0, running)
            running = rewards[t] + self.config.gamma * running
            returns[t] = running
        return returns

    def train(self, max_steps: typing.Optional[int] = None) -> TrainResult:
        """Run synchronous update rounds until ``max_steps``."""
        if max_steps is not None:
            self.config.max_steps = max_steps
        # perf_counter: monotonic, so rates survive NTP clock steps.
        start = time.perf_counter()
        while self.server.global_step < self.config.max_steps:
            round_started = time.perf_counter() if _obs.enabled() else 0.0
            lat = (_lat.RoutineLatency("paac",
                                       platform=self._lat_platform)
                   if _obs.enabled() else None)
            with _obs.span("paac", "rollout_phase"):
                states, actions, rewards, dones, bootstrap = \
                    self._rollout_phase(lat=lat)
            phase_started = (time.perf_counter_ns()
                             if lat is not None else 0)
            returns = self._returns(rewards, dones, bootstrap)
            if lat is not None:
                lat.add_ns("batch_form",
                           time.perf_counter_ns() - phase_started)
            # One synchronous update over the combined (T*N) batch,
            # through the shared rollout-to-update path.
            with _obs.span("paac", "update"):
                flat_states = states.reshape((-1,) + states.shape[2:])
                apply_rollout_update(
                    self.network, self.server.params, self.server,
                    flat_states, actions.reshape(-1).astype(np.int64),
                    returns.reshape(-1), self.config.entropy_beta,
                    lat=lat)
            self._routines += 1
            if _obs.enabled():
                # Rollout/update tracer spans are recorded above; the
                # per-routine span is skipped (lane=None).
                record_routine("paac", round_started,
                               self.config.t_max * self.config.num_agents,
                               lat=lat)
        elapsed = time.perf_counter() - start
        return TrainResult(global_steps=self.server.global_step,
                           routines=self._routines,
                           episodes=self.episodes,
                           wall_seconds=elapsed,
                           tracker=self.tracker,
                           params=self.server.snapshot())
