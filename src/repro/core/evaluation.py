"""Deprecated alias of :mod:`repro.core.scores`.

This module was renamed: ``evaluation`` (score *tracking*) was too
easily confused with :mod:`repro.core.evaluate` (policy *roll-outs*).
Import :class:`~repro.core.scores.ScoreTracker` and
:func:`~repro.core.scores.moving_average` from ``repro.core.scores``
instead; this shim re-exports them with a :class:`DeprecationWarning`
and will be removed in a future release.
"""

from __future__ import annotations

import warnings

from repro.core.scores import ScoreTracker, moving_average

__all__ = ["ScoreTracker", "moving_average"]

warnings.warn(
    "repro.core.evaluation has been renamed to repro.core.scores; "
    "update imports (the repro.core package re-exports ScoreTracker "
    "and moving_average directly)",
    DeprecationWarning,
    stacklevel=2,
)
