"""Rollout storage and n-step bootstrapped returns.

A rollout is the batch of up to ``t_max`` (state, action, reward) triples an
agent collects between training tasks; :func:`compute_returns` implements
the bootstrap estimate

    R_t = sum_{i=0}^{k-1} gamma^i r_{t+i} + gamma^k V(s_{t+k})

of paper Section 2.2 (the ``V(s_{t+k})`` term is dropped at terminal
states).
"""

from __future__ import annotations

import typing

import numpy as np


def compute_returns(rewards: typing.Sequence[float], bootstrap_value: float,
                    gamma: float) -> np.ndarray:
    """Discounted n-step returns, computed backwards from the bootstrap.

    ``bootstrap_value`` is ``V(s_{t+k})`` from the extra inference the agent
    performs before the training task (0 at terminal states).
    """
    returns = np.empty(len(rewards), dtype=np.float32)
    running = float(bootstrap_value)
    for index in range(len(rewards) - 1, -1, -1):
        running = rewards[index] + gamma * running
        returns[index] = running
    return returns


class Rollout:
    """Accumulates one training batch of experience."""

    def __init__(self):
        self.states: typing.List[np.ndarray] = []
        self.actions: typing.List[int] = []
        self.rewards: typing.List[float] = []
        self.values: typing.List[float] = []
        self.terminal = False

    def __len__(self) -> int:
        return len(self.states)

    def add(self, state: np.ndarray, action: int, reward: float,
            value: float) -> None:
        """Record one environment transition."""
        self.states.append(state)
        self.actions.append(int(action))
        self.rewards.append(float(reward))
        self.values.append(float(value))

    def clear(self) -> None:
        """Empty the rollout for the next batch."""
        self.states.clear()
        self.actions.clear()
        self.rewards.clear()
        self.values.clear()
        self.terminal = False

    def batch(self, bootstrap_value: float, gamma: float) -> typing.Tuple[
            np.ndarray, np.ndarray, np.ndarray]:
        """Stack into training arrays: (states, actions, returns)."""
        if not self.states:
            raise ValueError("empty rollout")
        states = np.stack(self.states).astype(np.float32)
        actions = np.asarray(self.actions, dtype=np.int64)
        returns = compute_returns(self.rewards, bootstrap_value, gamma)
        return states, actions, returns

    def advantages(self, bootstrap_value: float,
                   gamma: float) -> np.ndarray:
        """R_t - V(s_t) for each step (diagnostic use)."""
        returns = compute_returns(self.rewards, bootstrap_value, gamma)
        return returns - np.asarray(self.values, dtype=np.float32)
