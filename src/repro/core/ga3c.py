"""GA3C baseline (Babaeizadeh et al., ICLR 2017).

GA3C removes the per-agent local θ: *all* inference and training runs
against the single global model, which lets requests from many agents be
batched into large GPU-friendly kernels (paper Section 6).  The cost is
*policy lag*: by the time an agent's rollout trains, the model has moved on
from the one that generated it — which is why the paper notes GA3C "can
lead to unstable or slow learning".

This implementation reproduces the predictor/trainer queue structure
functionally: agents deposit prediction requests and finished rollouts into
queues that are served in batches.
"""

from __future__ import annotations

import collections
import dataclasses
import time
import typing

import numpy as np

from repro.core.config import A3CConfig
from repro.core.execution import (
    apply_rollout_update,
    derive_agent_seed,
    derive_policy_seed,
    record_routine,
    resolve_backend,
)
from repro.core.scores import ScoreTracker
from repro.core.parameter_server import ParameterServer
from repro.core.rollout import Rollout
from repro.core.trainer import TrainResult
from repro.envs.base import Env
from repro.obs import lat as _lat
from repro.obs import runtime as _obs
from repro.nn.losses import softmax
from repro.nn.network import A3CNetwork
from repro.perf.hotpath import hot_path


@dataclasses.dataclass
class _GA3CWorker:
    """Host-side state of one GA3C agent (no local parameters)."""

    env: typing.Optional[Env]
    rng: np.random.Generator
    state: np.ndarray
    rollout: Rollout
    episode_score: float = 0.0
    episodes: int = 0


class GA3CTrainer:
    """Batched single-model A3C (GA3C)."""

    def __init__(self, env_factory: typing.Callable[[int], Env],
                 network_factory: typing.Callable[[], A3CNetwork],
                 config: A3CConfig,
                 prediction_batch: typing.Optional[int] = None,
                 training_batch_rollouts: int = 4,
                 tracker: typing.Optional[ScoreTracker] = None,
                 platform=None,
                 batched_env=None):
        self.config = config
        self.tracker = tracker or ScoreTracker()
        self.prediction_batch = prediction_batch or config.num_agents
        self.training_batch_rollouts = training_batch_rollouts
        self._platform = platform if platform is not None else "ga3c-tf"
        self._lat_platform = (self._platform
                              if isinstance(self._platform, str) else None)
        self._backend = None
        rng = np.random.default_rng(config.seed)
        self.network = network_factory()
        self.server = ParameterServer(self.network.init_params(rng), config)
        self.batched_env = batched_env
        self.workers: typing.List[_GA3CWorker] = []
        if batched_env is not None:
            # All agents share one repro.envs.BatchedVectorEnv stepped as
            # a single batch; the caller seeds it with config.seed so the
            # per-slot contract (derive_agent_seed) holds.
            if batched_env.num_envs != config.num_agents:
                raise ValueError(
                    f"batched_env has {batched_env.num_envs} slots; "
                    f"config.num_agents is {config.num_agents}")
            observations = batched_env.reset()
            for agent_id in range(config.num_agents):
                self.workers.append(_GA3CWorker(
                    env=None,
                    rng=np.random.default_rng(
                        derive_policy_seed(config.seed, agent_id)),
                    state=observations[agent_id],
                    rollout=Rollout()))
        else:
            for agent_id in range(config.num_agents):
                env = env_factory(agent_id)
                env.seed(derive_agent_seed(config.seed, agent_id))
                self.workers.append(_GA3CWorker(
                    env=env,
                    rng=np.random.default_rng(
                        derive_policy_seed(config.seed, agent_id)),
                    state=env.reset(),
                    rollout=Rollout()))
        self._train_queue: collections.deque = collections.deque()
        self._routines = 0

    @property
    def backend(self):
        """The injected compute backend (default ``ga3c-tf``; resolved
        lazily so numeric-only runs never build a platform model)."""
        if self._backend is None:
            self._backend = resolve_backend(self._platform)
        return self._backend

    def _predict(self, workers: typing.Sequence[_GA3CWorker], lat=None
                 ) -> typing.Tuple[np.ndarray, np.ndarray]:
        """One batched inference over the *global* model.

        ``lat``, when present, receives the request-gathering time as
        ``batch_form`` and the forward pass as ``infer`` — the
        batching-vs-turnaround decomposition FA3C's latency argument
        hinges on.
        """
        phase_started = time.perf_counter_ns() if lat is not None else 0
        if self.batched_env is not None:
            # Already one (N, ...) float32 batch — no gather/copy needed.
            states = self.batched_env.observations
        else:
            states = np.stack([w.state for w in workers]).astype(np.float32)
        if lat is not None:
            lat.add_ns("batch_form",
                       time.perf_counter_ns() - phase_started)
            phase_started = time.perf_counter_ns()
        logits, values = self.network.forward(states, self.server.params)
        if lat is not None:
            lat.add_ns("infer", time.perf_counter_ns() - phase_started)
        return logits, values

    def _finish_rollout(self, worker: _GA3CWorker, terminal: bool) -> None:
        """Queue a finished rollout with its bootstrap value.

        The queue entry carries its enqueue timestamp (``perf_counter_ns``
        when observability is on, else 0) so the trainer side can
        attribute queue-wait latency.
        """
        bootstrap = 0.0
        if not terminal:
            _, values = self.network.forward(worker.state[None],
                                             self.server.params)
            bootstrap = float(values[0])
        states, actions, returns = worker.rollout.batch(
            bootstrap, self.config.gamma)
        enqueued = time.perf_counter_ns() if _obs.enabled() else 0
        self._train_queue.append((states, actions, returns, enqueued))
        worker.rollout = Rollout()

    @hot_path
    def _train_from_queue(self) -> None:
        """Drain queued rollouts into one combined training batch."""
        if len(self._train_queue) < self.training_batch_rollouts:
            return
        observing = _obs.enabled()
        started = time.perf_counter() if observing else 0.0
        batches = [self._train_queue.popleft()
                   for _ in range(self.training_batch_rollouts)]
        lat = None
        if observing:
            now = time.perf_counter_ns()
            # Rollouts enqueued before obs was enabled carry stamp 0;
            # queue wait is measured from the oldest stamped entry.
            stamps = [b[3] for b in batches if b[3]]
            start_ns = min(stamps) if stamps else now
            lat = _lat.RoutineLatency("ga3c",
                                      platform=self._lat_platform,
                                      start_ns=start_ns)
            if stamps:
                lat.add_ns("queue_wait", now - start_ns)
        phase_started = time.perf_counter_ns() if observing else 0
        states = np.concatenate([b[0] for b in batches])
        actions = np.concatenate([b[1] for b in batches])
        returns = np.concatenate([b[2] for b in batches])
        if lat is not None:
            lat.add_ns("batch_form",
                       time.perf_counter_ns() - phase_started)
        # GA3C trains against the single global parameter set (the
        # source of its policy lag) through the shared update path.
        apply_rollout_update(self.network, self.server.params,
                             self.server, states, actions, returns,
                             self.config.entropy_beta, lat=lat)
        self._routines += 1
        if observing:
            record_routine("ga3c", started, len(states),
                           lane="ga3c-trainer", span_name="train_batch",
                           span_labels={"samples": len(states)}, lat=lat)

    def _advance_scalar(self, logits: np.ndarray,
                        values: np.ndarray) -> None:
        """Sample and apply one action per worker on its own env."""
        for index, worker in enumerate(self.workers):
            probs = softmax(logits[index])
            action = int(worker.rng.choice(len(probs), p=probs))
            obs, reward, done, info = worker.env.step(action)
            worker.episode_score += info.get("raw_reward", reward)
            worker.rollout.add(worker.state, action, reward,
                               float(values[index]))
            worker.state = obs
            if done:
                if not info.get("life_lost"):
                    self.tracker.record(self.server.global_step,
                                        worker.episode_score)
                    worker.episode_score = 0.0
                    worker.episodes += 1
                worker.state = worker.env.reset()
                self._finish_rollout(worker, terminal=True)
            elif len(worker.rollout) >= self.config.t_max:
                self._finish_rollout(worker, terminal=False)

    @hot_path
    def _advance_batched(self, logits: np.ndarray,
                         values: np.ndarray) -> None:
        """Sample every worker's action, then advance all slots in one
        batched env step (finished slots auto-reset inside it)."""
        probs = softmax(logits)
        actions = np.array([
            int(worker.rng.choice(probs.shape[1], p=probs[index]))
            for index, worker in enumerate(self.workers)])
        step = self.batched_env.step(actions)
        for index, worker in enumerate(self.workers):
            info = step.infos[index]
            reward = float(step.rewards[index])
            worker.episode_score += info.get("raw_reward", reward)
            worker.rollout.add(worker.state, int(actions[index]), reward,
                               float(values[index]))
            # For finished slots this row is already the reset
            # observation, matching the scalar path's env.reset().
            worker.state = step.observations[index]
            if step.dones[index]:
                if not info.get("life_lost"):
                    self.tracker.record(self.server.global_step,
                                        worker.episode_score)
                    worker.episode_score = 0.0
                    worker.episodes += 1
                self._finish_rollout(worker, terminal=True)
            elif len(worker.rollout) >= self.config.t_max:
                self._finish_rollout(worker, terminal=False)

    def train(self, max_steps: typing.Optional[int] = None) -> TrainResult:
        """Run the predictor/trainer loop until ``max_steps``."""
        if max_steps is not None:
            self.config.max_steps = max_steps
        # perf_counter: monotonic, so rates survive NTP clock steps.
        start = time.perf_counter()
        while self.server.global_step < self.config.max_steps:
            # Predictor: one batched inference for every waiting agent.
            plat = (_lat.RoutineLatency("ga3c-predict",
                                        platform=self._lat_platform)
                    if _obs.enabled() else None)
            with _obs.span("ga3c-predictor", "predict_batch",
                           batch=len(self.workers)):
                logits, values = self._predict(self.workers, lat=plat)
            if plat is not None:
                plat.finish()
            if self.batched_env is not None:
                self._advance_batched(logits, values)
            else:
                self._advance_scalar(logits, values)
            self.server.add_steps(len(self.workers))
            # Trainer: combine queued rollouts into large batches.
            self._train_from_queue()
        elapsed = time.perf_counter() - start
        return TrainResult(global_steps=self.server.global_step,
                           routines=self._routines,
                           episodes=sum(w.episodes for w in self.workers),
                           wall_seconds=elapsed,
                           tracker=self.tracker,
                           params=self.server.snapshot())
