"""Shared-memory parameter storage for the multiprocessing actor backend.

The threaded trainer shares global θ through a lock-protected
:class:`~repro.core.parameter_server.ParameterServer`.  Worker *processes*
cannot share Python objects, so this module keeps θ and the shared RMSProp
statistics ``g`` as flat float32 vectors in anonymous shared memory
(:func:`multiprocessing.RawArray`) and layers the same server API on top:

* :class:`SharedParameterStore` — the raw shared state: two flat vectors,
  a writer lock, a global step counter, and a monotonically increasing
  *version* word used as a seqlock.  Writers hold the lock and bump the
  version to an odd value for the duration of the write; readers copy θ
  without taking the lock and retry if the version was odd or changed
  mid-copy.  Parameter sync (the hot read path, once per routine per
  agent) therefore never contends with other readers and never blocks a
  writer.
* :class:`SharedParameterServer` — a per-process facade with the
  :class:`~repro.core.parameter_server.ParameterServer` interface
  (``snapshot_into`` / ``apply_gradients`` / ``add_steps`` / ...) so
  :class:`~repro.core.agent.A3CAgent` runs unchanged inside a worker.

The store is created with the ``fork`` start method in mind: worker
processes inherit the shared mappings and the factory closures without
pickling.  NumPy views of the shared buffers are rebuilt per process (see
:meth:`SharedParameterStore.theta_flat`) so the store also survives being
sent through a pickling start method, should one ever be used.
"""

from __future__ import annotations

import time
import typing

import numpy as np

from repro.core.config import A3CConfig
from repro.core.parameter_server import clip_by_global_norm
from repro.nn.optim import SharedRMSProp
from repro.nn.parameters import ParameterSet
from repro.obs import runtime as _obs
from repro.perf.hotpath import hot_path


class SharedParameterStore:
    """Flat θ and RMSProp ``g`` in shared memory behind a seqlock version."""

    def __init__(self, ctx, template: ParameterSet):
        """``ctx`` is a :mod:`multiprocessing` context; ``template``
        provides the layer names/shapes and the initial θ values."""
        self._names: typing.List[str] = template.names()
        self._shapes = [template[name].shape for name in self._names]
        self._sizes = [int(template[name].size) for name in self._names]
        self._offsets = []
        offset = 0
        for size in self._sizes:
            self._offsets.append(offset)
            offset += size
        self.total_values = offset
        self._theta = ctx.RawArray("f", self.total_values)
        self._g = ctx.RawArray("f", self.total_values)
        # Seqlock word: even = stable, odd = a write is in progress.
        self._version = ctx.RawValue("Q", 0)
        self._step = ctx.RawValue("q", 0)
        self._updates = ctx.RawValue("q", 0)
        self.lock = ctx.Lock()
        # Store not shared yet: no reader can exist before __init__
        # returns, so the unlocked seed write races with nothing.
        # repro-lint: ok[seqlock]
        np.copyto(self.theta_flat(), template.flatten())

    # -- per-process views -------------------------------------------------

    def theta_flat(self) -> np.ndarray:
        """A float32 view of the shared θ vector (rebuild per process)."""
        return np.frombuffer(self._theta, dtype=np.float32)

    def g_flat(self) -> np.ndarray:
        """A float32 view of the shared RMSProp statistics vector."""
        return np.frombuffer(self._g, dtype=np.float32)

    def view_set(self, flat: np.ndarray) -> ParameterSet:
        """A :class:`ParameterSet` whose arrays alias ``flat`` in place."""
        arrays = {}
        for name, shape, offset, size in zip(self._names, self._shapes,
                                             self._offsets, self._sizes):
            arrays[name] = flat[offset:offset + size].reshape(shape)
        return ParameterSet(arrays)

    def empty_flat(self) -> np.ndarray:
        """A private scratch vector sized for one θ snapshot."""
        return np.empty(self.total_values, dtype=np.float32)

    # -- seqlock writer side (caller must hold ``self.lock``) --------------

    def begin_write(self) -> None:
        # odd: readers will retry
        # repro-lint: ok[seqlock] protocol primitive; caller holds lock
        self._version.value += 1

    def end_write(self) -> None:
        # even: snapshot is stable again
        # repro-lint: ok[seqlock] protocol primitive; caller holds lock
        self._version.value += 1

    # -- counters ----------------------------------------------------------

    @property
    def global_step(self) -> int:
        return self._step.value

    @property
    def updates_applied(self) -> int:
        return self._updates.value

    # -- whole-vector transfers --------------------------------------------

    def publish(self, params: ParameterSet,
                statistics: typing.Optional[ParameterSet] = None,
                global_step: typing.Optional[int] = None) -> None:
        """Seed the shared state from ordinary in-process sets."""
        with self.lock:
            self.begin_write()
            try:
                theta = self.view_set(self.theta_flat())
                theta.copy_from(params)
                if statistics is not None:
                    self.view_set(self.g_flat()).copy_from(statistics)
                if global_step is not None:
                    self._step.value = int(global_step)
            finally:
                self.end_write()

    @hot_path
    def snapshot_flat_into(self, dest: np.ndarray) -> None:
        """Seqlock read: copy shared θ into ``dest`` without locking.

        Retries until a copy completes with the version word even and
        unchanged, i.e. no writer overlapped the copy.
        """
        theta = self.theta_flat()
        version = self._version
        spins = 0
        while True:
            before = version.value
            if not before & 1:
                np.copyto(dest, theta)
                if version.value == before:
                    return
            spins += 1
            if spins % 64 == 0:
                time.sleep(0)             # yield the core to the writer

    def read_params_into(self, dest: ParameterSet) -> None:
        """Scatter a consistent θ snapshot into an ordinary set."""
        scratch = self.empty_flat()
        self.snapshot_flat_into(scratch)
        dest.load_flat(scratch)

    def read_statistics_into(self, dest: ParameterSet) -> None:
        """Copy the shared RMSProp statistics out (quiescent store only)."""
        with self.lock:
            dest.load_flat(self.g_flat().copy())


class SharedParameterServer:
    """Per-process parameter-server facade over a shared store.

    Mirrors the :class:`~repro.core.parameter_server.ParameterServer`
    interface used by agents.  Gradient application and step accounting
    serialise on the store's writer lock (observed under the same
    ``ps.lock_wait_seconds`` metric as the threaded server); parameter
    sync is a lock-free seqlock read.
    """

    def __init__(self, store: SharedParameterStore, config: A3CConfig):
        self.store = store
        self.config = config
        self.params = store.view_set(store.theta_flat())
        self._scratch = store.empty_flat()
        self.optimizer = SharedRMSProp(learning_rate=config.learning_rate,
                                       rho=config.rmsprop_rho,
                                       eps=config.rmsprop_eps)
        self.optimizer.adopt_statistics(store.view_set(store.g_flat()))
        self.updates_applied = 0          # this process's contribution

    @property
    def global_step(self) -> int:
        """Total inference steps processed across all workers."""
        return self.store._step.value

    def add_steps(self, count: int) -> int:
        """Atomically advance the global step counter; returns new value."""
        self._timed_acquire("steps")
        try:
            self.store._step.value += count
            return self.store._step.value
        finally:
            self.store.lock.release()

    def set_global_step(self, value: int) -> None:
        """Restore the step counter (checkpoint resume)."""
        with self.store.lock:
            self.store._step.value = int(value)

    @hot_path
    def _timed_acquire(self, op: str) -> None:
        """Take the writer lock, recording the wait when obs is on."""
        if not _obs.enabled():
            self.store.lock.acquire()
            return
        waited = time.perf_counter()
        self.store.lock.acquire()
        _obs.metrics().histogram("ps.lock_wait_seconds").observe(
            time.perf_counter() - waited, op=op)

    @hot_path
    def snapshot_into(self, local: ParameterSet) -> None:
        """Parameter sync: seqlock-read global θ into an agent's local θ.

        Lock-free on the reader side; the preallocated scratch vector is
        reused so the per-routine sync allocates nothing.
        """
        started = time.perf_counter() if _obs.enabled() else 0.0
        self.store.snapshot_flat_into(self._scratch)
        local.load_flat(self._scratch)
        if _obs.enabled():
            _obs.metrics().histogram("ps.sync_seconds").observe(
                time.perf_counter() - started)

    def snapshot(self) -> ParameterSet:
        """A fresh consistent copy of global θ."""
        out = ParameterSet({name: np.empty(shape, dtype=np.float32)
                            for name, shape in zip(self.store._names,
                                                   self.store._shapes)})
        self.store.snapshot_flat_into(self._scratch)
        out.load_flat(self._scratch)
        return out

    @hot_path
    def apply_gradients(self, grads: ParameterSet) -> float:
        """Apply one gradient batch with the annealed learning rate."""
        self._timed_acquire("apply")
        try:
            started = time.perf_counter() if _obs.enabled() else 0.0
            lr = self.config.learning_rate_at(self.store._step.value)
            if self.config.grad_clip_norm is not None:
                clip_by_global_norm(grads, self.config.grad_clip_norm)
            self.store.begin_write()
            try:
                self.optimizer.step(self.params, grads, learning_rate=lr)
            finally:
                self.store.end_write()
            self.store._updates.value += 1
            self.updates_applied += 1
            if _obs.enabled():
                metrics = _obs.metrics()
                metrics.counter("ps.updates").inc()
                metrics.histogram("ps.apply_seconds").observe(
                    time.perf_counter() - started)
            return lr
        finally:
            self.store.lock.release()

    @property
    def rmsprop_statistics(self) -> typing.Optional[ParameterSet]:
        """The shared second-moment estimates g (live shared-memory views)."""
        return self.optimizer.statistics
