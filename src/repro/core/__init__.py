"""The A3C algorithm (the paper's workload) and its baselines.

This package implements:

* :class:`~repro.core.trainer.A3CTrainer` — the asynchronous
  advantage actor-critic of Mnih et al. exactly as the paper describes it
  (Figure 2): per-agent local θ snapshots, t_max-step rollouts, a
  bootstrapping inference, host-side objective gradients, and shared-RMSProp
  updates to the global θ.
* :class:`~repro.core.ga3c.GA3CTrainer` — the GA3C baseline (single global
  parameter set, batched inference/training queues).
* :class:`~repro.core.paac.PAACTrainer` — the PAAC baseline (fully
  synchronous batched updates).
"""

from repro.core.agent import A3CAgent
from repro.core.config import A3CConfig
from repro.core.evaluate import (
    EvaluationResult,
    evaluate_policy,
    evaluate_recurrent_policy,
)
from repro.core.scores import ScoreTracker, moving_average
from repro.core.ga3c import GA3CTrainer
from repro.core.paac import PAACTrainer
from repro.core.parameter_server import ParameterServer
from repro.core.recurrent_agent import RecurrentA3CAgent
from repro.core.rollout import Rollout, compute_returns
from repro.core.shared_params import (
    SharedParameterServer,
    SharedParameterStore,
)
from repro.core.sweep import SweepResult, sweep_learning_rates
from repro.core.trainer import A3CTrainer, TrainResult

__all__ = [
    "A3CAgent",
    "A3CConfig",
    "A3CTrainer",
    "EvaluationResult",
    "GA3CTrainer",
    "PAACTrainer",
    "ParameterServer",
    "RecurrentA3CAgent",
    "Rollout",
    "ScoreTracker",
    "SharedParameterServer",
    "SharedParameterStore",
    "SweepResult",
    "TrainResult",
    "compute_returns",
    "evaluate_policy",
    "evaluate_recurrent_policy",
    "moving_average",
    "sweep_learning_rates",
]
