"""Score tracking and training-curve utilities.

The paper's Figure 12 plots the moving average over 1,000 game scores
against the number of processed inference steps; :class:`ScoreTracker`
records exactly that series.

(Previously ``repro.core.evaluation``; renamed to stop the confusion
with :mod:`repro.core.evaluate`, which rolls out a trained policy.
``repro.core.evaluation`` remains as a deprecation shim.)
"""

from __future__ import annotations

import threading
import typing

import numpy as np


def moving_average(values: typing.Sequence[float],
                   window: int) -> np.ndarray:
    """Trailing moving average with a growing window at the start."""
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        return values.astype(np.float32)
    cumulative = np.cumsum(values)
    out = np.empty_like(values)
    for index in range(values.size):
        start = max(0, index - window + 1)
        total = cumulative[index] - (cumulative[start - 1] if start else 0.0)
        out[index] = total / (index - start + 1)
    return out.astype(np.float32)


class ScoreTracker:
    """Thread-safe recorder of (global_step, episode_score) pairs."""

    def __init__(self, window: int = 1000):
        self.window = window
        self._lock = threading.Lock()
        self._steps: typing.List[int] = []
        self._scores: typing.List[float] = []

    def record(self, global_step: int, score: float) -> None:
        """Record one finished episode."""
        with self._lock:
            self._steps.append(int(global_step))
            self._scores.append(float(score))

    def __len__(self) -> int:
        return len(self._scores)

    @property
    def steps(self) -> np.ndarray:
        with self._lock:
            return np.asarray(self._steps, dtype=np.int64)

    @property
    def scores(self) -> np.ndarray:
        with self._lock:
            return np.asarray(self._scores, dtype=np.float64)

    def curve(self) -> typing.Tuple[np.ndarray, np.ndarray]:
        """(steps, moving-average scores) — the Figure 12 series."""
        with self._lock:
            steps = np.asarray(self._steps, dtype=np.int64)
            scores = list(self._scores)
        return steps, moving_average(scores, self.window)

    def recent_mean(self, count: typing.Optional[int] = None) -> float:
        """Mean of the last ``count`` scores (default: the window)."""
        count = count or self.window
        with self._lock:
            if not self._scores:
                return float("nan")
            return float(np.mean(self._scores[-count:]))

    def steps_to_reach(self, threshold: float,
                       window: int = 100) -> typing.Optional[int]:
        """First global step at which the windowed mean score reaches
        ``threshold`` (the Section 3.2 t_max study metric); ``None`` if
        never reached."""
        with self._lock:
            steps = self._steps
            scores = self._scores
            for index in range(len(scores)):
                start = max(0, index - window + 1)
                if np.mean(scores[start:index + 1]) >= threshold:
                    return steps[index]
        return None
