"""The execution path shared by the three trainers.

A3C, GA3C, and PAAC differ in *when* rollouts are collected and *whose*
parameters run inference, but the rollout-to-update pipeline itself —
batched forward, objective + head gradients, backward, shared-RMSProp
application — is one algorithm (paper Figure 2 step 4).  This module
holds that single copy, plus the per-routine telemetry block and the
trainer-side hooks into the :mod:`repro.backends` protocol (compute
backend resolution and the deterministic seeding contract), so the
trainers stay thin orchestration shells.
"""

from __future__ import annotations

import time
import typing

import numpy as np

# Protocol-level import only: the seeding contract is defined with the
# backend protocol, but pulling it in must not drag the platform
# adapters (and their sim stacks) into every trainer import.
from repro.backends.protocol import (
    derive_agent_seed,
    derive_eval_seed,
    derive_policy_seed,
)
from repro.nn.losses import A3CLossResult, a3c_loss_and_head_gradients
from repro.obs import runtime as _obs

__all__ = ["apply_rollout_update", "derive_agent_seed",
           "derive_eval_seed", "derive_policy_seed",
           "record_routine", "resolve_backend"]


def apply_rollout_update(network, params, server,
                         states: np.ndarray, actions: np.ndarray,
                         returns: np.ndarray,
                         entropy_beta: float,
                         lat=None) -> A3CLossResult:
    """One training task: the batched rollout through to the global θ.

    Runs the forward pass over ``params`` (the caller decides whether
    those are an agent's local snapshot or the single global set),
    computes the A3C objective and its head gradients host-side,
    backpropagates, and applies the gradients through ``server``'s
    shared RMSProp.  The operation order is fixed — it is the fp32
    accumulation order all three trainers were verified against.

    ``lat`` is an optional :class:`repro.obs.lat.RoutineLatency`; when
    present the whole update is attributed to its ``train`` segment.
    """
    train_started = time.perf_counter_ns() if lat is not None else 0
    logits, values = network.forward(states, params)
    loss = a3c_loss_and_head_gradients(
        logits, values, actions, returns, entropy_beta=entropy_beta)
    grads = network.backward_and_grads(loss.dlogits, loss.dvalues,
                                       params)
    server.apply_gradients(grads)
    if lat is not None:
        lat.add_ns("train", time.perf_counter_ns() - train_started)
    return loss


def record_routine(trainer: str, started: float, steps: int,
                   lane: typing.Optional[str] = None,
                   span_name: str = "routine",
                   span_labels: typing.Optional[
                       typing.Dict[str, typing.Any]] = None,
                   lat=None) -> None:
    """One finished routine into the metrics/trace sinks.

    Callers gate on :func:`repro.obs.runtime.enabled` (and capture
    ``started`` from ``time.perf_counter`` only then), so this never
    runs on the hot path with collection off.  ``lane=None`` skips the
    tracer span (PAAC records rollout/update spans separately).
    ``lat``, when present, is the routine's
    :class:`repro.obs.lat.RoutineLatency`, finished here so the
    end-to-end latency closes at the same boundary the routine metrics
    do.
    """
    ended = time.perf_counter()
    elapsed = ended - started
    metrics = _obs.metrics()
    metrics.counter("trainer.routines").inc(trainer=trainer)
    metrics.counter("trainer.steps").inc(steps, trainer=trainer)
    metrics.histogram("trainer.routine_seconds").observe(
        elapsed, trainer=trainer)
    if elapsed > 0:
        metrics.histogram("trainer.step_rate").observe(
            steps / elapsed, trainer=trainer)
    if lane is not None:
        _obs.tracer().record(lane, span_name, started, ended,
                             clock="wall", **(span_labels or {}))
    if lat is not None:
        lat.finish()


def resolve_backend(platform, topology=None):
    """The trainer's compute backend from a name/instance/``None``.

    Imports :mod:`repro.backends` lazily: trainers that never touch
    their backend handle (every numeric-only test) skip loading the
    platform adapters entirely.
    """
    from repro import backends
    return backends.resolve(platform, topology)
