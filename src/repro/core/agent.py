"""A single A3C agent.

Each agent owns an environment, a local θ snapshot, and its own network
object (layer activation caches are per-agent).  One *routine* (paper
Figure 2 and Table 2) is:

1. parameter sync — copy global θ to local θ;
2. up to ``t_max`` inference tasks, each choosing an action from π and
   stepping the environment;
3. a bootstrapping inference of V(s_{t+k}) (skipped at terminal states);
4. a training task: batched FW over the rollout, host-side objective
   gradients, BW + GC, and a shared-RMSProp update of global θ.
"""

from __future__ import annotations

import dataclasses
import time
import typing

import numpy as np

from repro.core.config import A3CConfig
from repro.core.execution import apply_rollout_update, derive_policy_seed
from repro.core.parameter_server import ParameterServer
from repro.core.rollout import Rollout
from repro.envs.base import Env
from repro.nn.losses import softmax
from repro.nn.network import A3CNetwork
from repro.nn.parameters import ParameterSet


@dataclasses.dataclass
class RoutineStats:
    """What happened during one agent routine."""

    steps: int                           # inference tasks performed
    bootstrap_inferences: int            # 0 or 1
    trained: bool
    policy_loss: float = 0.0
    value_loss: float = 0.0
    entropy: float = 0.0
    episode_scores: typing.Tuple[float, ...] = ()


class A3CAgent:
    """One asynchronous actor-critic worker."""

    def __init__(self, agent_id: int, env: Env, network: A3CNetwork,
                 server: ParameterServer, config: A3CConfig,
                 rng: typing.Optional[np.random.Generator] = None):
        self.agent_id = agent_id
        self.env = env
        self.network = network
        self.server = server
        self.config = config
        self.rng = rng or np.random.default_rng(
            derive_policy_seed(config.seed, agent_id))
        self.local_params: ParameterSet = server.snapshot()
        self.rollout = Rollout()
        self._state = env.reset()
        self._episode_score = 0.0
        self.episodes_finished = 0

    def _policy_step(self) -> typing.Tuple[int, float, np.ndarray]:
        """One inference task: sample an action from π(a|s; local θ)."""
        state = self._state
        logits, values = self.network.forward(state[None], self.local_params)
        probs = softmax(logits[0])
        action = int(self.rng.choice(len(probs), p=probs))
        return action, float(values[0]), state

    def run_routine(self, lat=None) -> RoutineStats:
        """Execute one full sync / rollout / train routine.

        ``lat`` is an optional :class:`repro.obs.lat.RoutineLatency`;
        when present the routine's phases are attributed to its
        ``param_sync`` / ``infer`` / ``batch_form`` / ``train``
        segments (environment stepping lands in ``other``).
        """
        timed = lat is not None
        phase_started = time.perf_counter_ns() if timed else 0
        self.server.snapshot_into(self.local_params)
        if timed:
            lat.add_ns("param_sync",
                       time.perf_counter_ns() - phase_started)
        self.rollout.clear()
        scores: typing.List[float] = []

        terminal = False
        for _ in range(self.config.t_max):
            if timed:
                phase_started = time.perf_counter_ns()
            action, value, state = self._policy_step()
            if timed:
                lat.add_ns("infer",
                           time.perf_counter_ns() - phase_started)
            obs, reward, done, info = self.env.step(action)
            self._episode_score += info.get("raw_reward", reward)
            self.rollout.add(state, action, reward, value)
            self._state = obs
            if done:
                terminal = True
                if not info.get("life_lost"):
                    # Real game over (or time limit): the full-game score is
                    # what the paper's training graphs track.  A life loss
                    # only ends the *training* episode; the game score keeps
                    # accumulating across the pseudo-reset.
                    scores.append(self._episode_score)
                    self.episodes_finished += 1
                    self._episode_score = 0.0
                self._state = self.env.reset()
                break

        steps = len(self.rollout)
        self.server.add_steps(steps)

        # Bootstrapping inference (an extra FW, paper Section 2.2).
        bootstrap_inferences = 0
        bootstrap_value = 0.0
        if not terminal:
            if timed:
                phase_started = time.perf_counter_ns()
            _, values = self.network.forward(self._state[None],
                                             self.local_params)
            if timed:
                lat.add_ns("infer",
                           time.perf_counter_ns() - phase_started)
            bootstrap_value = float(values[0])
            bootstrap_inferences = 1

        # Training task (the shared rollout-to-update path).
        if timed:
            phase_started = time.perf_counter_ns()
        states, actions, returns = self.rollout.batch(
            bootstrap_value, self.config.gamma)
        if timed:
            lat.add_ns("batch_form",
                       time.perf_counter_ns() - phase_started)
        loss = apply_rollout_update(self.network, self.local_params,
                                    self.server, states, actions,
                                    returns, self.config.entropy_beta,
                                    lat=lat)

        return RoutineStats(steps=steps,
                            bootstrap_inferences=bootstrap_inferences,
                            trained=True,
                            policy_loss=loss.policy_loss,
                            value_loss=loss.value_loss,
                            entropy=loss.entropy,
                            episode_scores=tuple(scores))
