"""Policy evaluation: score a trained agent without learning.

Paper Section 5.6 discusses the *human starts* evaluation metric of the
original A3C publication, which needs crafted initial conditions that
were never released; like the paper, we evaluate from natural starts with
per-episode random seeds instead.  ``epsilon`` adds the small random-
action floor DeepMind-style evaluations use so deterministic policies
cannot loop forever; ``sample=True`` draws from pi instead (matching how
training-time scores are produced).
"""

from __future__ import annotations

import dataclasses
import typing

import numpy as np

from repro.core.execution import derive_eval_seed
from repro.envs.base import Env
from repro.nn.losses import softmax
from repro.nn.parameters import ParameterSet


@dataclasses.dataclass
class EvaluationResult:
    """Scores of an evaluation run."""

    scores: typing.List[float]
    steps: int

    @property
    def mean(self) -> float:
        return float(np.mean(self.scores)) if self.scores \
            else float("nan")

    @property
    def best(self) -> float:
        return float(np.max(self.scores)) if self.scores \
            else float("nan")


def evaluate_policy(env: Env, network, params: ParameterSet,
                    episodes: int = 10, epsilon: float = 0.0,
                    sample: bool = True,
                    max_steps_per_episode: int = 20_000,
                    seed: int = 0) -> EvaluationResult:
    """Play ``episodes`` full episodes with frozen parameters.

    ``network`` is any object with ``forward(states, params) ->
    (logits, values)`` (the feed-forward interface); use
    :func:`evaluate_recurrent_policy` for LSTM agents.
    """
    rng = np.random.default_rng(seed)
    scores = []
    total_steps = 0
    for episode in range(episodes):
        env.seed(derive_eval_seed(seed, episode))
        obs = env.reset()
        score = 0.0
        for _ in range(max_steps_per_episode):
            logits, _ = network.forward(obs[None].astype(np.float32),
                                        params)
            action = _select_action(logits[0], rng, epsilon, sample)
            obs, reward, done, info = env.step(action)
            score += info.get("raw_reward", reward)
            total_steps += 1
            if done and not info.get("life_lost"):
                break
            if done:
                obs = env.reset()
        scores.append(score)
    return EvaluationResult(scores=scores, steps=total_steps)


def evaluate_recurrent_policy(env: Env, network, params: ParameterSet,
                              episodes: int = 10, epsilon: float = 0.0,
                              sample: bool = True,
                              max_steps_per_episode: int = 20_000,
                              seed: int = 0) -> EvaluationResult:
    """Like :func:`evaluate_policy` for recurrent networks
    (``forward_step`` interface with an LSTM carry)."""
    rng = np.random.default_rng(seed)
    scores = []
    total_steps = 0
    for episode in range(episodes):
        env.seed(derive_eval_seed(seed, episode))
        obs = env.reset()
        carry = network.initial_state()
        score = 0.0
        for _ in range(max_steps_per_episode):
            logits, _, carry = network.forward_step(
                obs[None].astype(np.float32), params, carry)
            action = _select_action(logits[0], rng, epsilon, sample)
            obs, reward, done, info = env.step(action)
            score += info.get("raw_reward", reward)
            total_steps += 1
            if done and not info.get("life_lost"):
                break
            if done:
                obs = env.reset()
                carry = network.initial_state()
        scores.append(score)
    return EvaluationResult(scores=scores, steps=total_steps)


def _select_action(logits: np.ndarray, rng: np.random.Generator,
                   epsilon: float, sample: bool) -> int:
    if epsilon > 0 and rng.random() < epsilon:
        return int(rng.integers(len(logits)))
    if sample:
        return int(rng.choice(len(logits), p=softmax(logits)))
    return int(np.argmax(logits))
