"""The recurrent (A3C-LSTM) agent.

Mirrors :class:`~repro.core.agent.A3CAgent` with the recurrent-state
bookkeeping the LSTM variant needs:

* the LSTM carry persists across steps and resets at episode boundaries;
* the carry at the *start* of each rollout is saved so the training pass
  can replay the rollout with truncated BPTT from the same state;
* the bootstrapping inference runs from the carry at the rollout's end.
"""

from __future__ import annotations

import time
import typing

import numpy as np

from repro.core.agent import RoutineStats
from repro.core.config import A3CConfig
from repro.core.execution import derive_policy_seed
from repro.core.parameter_server import ParameterServer
from repro.core.rollout import Rollout
from repro.envs.base import Env
from repro.nn.losses import a3c_loss_and_head_gradients, softmax
from repro.nn.network_lstm import RecurrentPolicyNetwork
from repro.nn.parameters import ParameterSet


class RecurrentA3CAgent:
    """One asynchronous actor-learner with LSTM state."""

    def __init__(self, agent_id: int, env: Env,
                 network: RecurrentPolicyNetwork,
                 server: ParameterServer, config: A3CConfig,
                 rng: typing.Optional[np.random.Generator] = None):
        self.agent_id = agent_id
        self.env = env
        self.network = network
        self.server = server
        self.config = config
        self.rng = rng or np.random.default_rng(
            derive_policy_seed(config.seed, agent_id))
        self.local_params: ParameterSet = server.snapshot()
        self.rollout = Rollout()
        self._state = env.reset()
        self._carry = network.initial_state()
        self._episode_score = 0.0
        self.episodes_finished = 0

    def run_routine(self, lat=None) -> RoutineStats:
        """One sync / rollout / BPTT-train routine.

        ``lat`` is an optional :class:`repro.obs.lat.RoutineLatency`,
        fed the same segment decomposition as the feed-forward agent.
        """
        timed = lat is not None
        phase_started = time.perf_counter_ns() if timed else 0
        self.server.snapshot_into(self.local_params)
        if timed:
            lat.add_ns("param_sync",
                       time.perf_counter_ns() - phase_started)
        self.rollout.clear()
        rollout_carry = self._carry.copy()   # BPTT starting point
        scores: typing.List[float] = []

        terminal = False
        for _ in range(self.config.t_max):
            if timed:
                phase_started = time.perf_counter_ns()
            logits, values, self._carry = self.network.forward_step(
                self._state[None], self.local_params, self._carry)
            if timed:
                lat.add_ns("infer",
                           time.perf_counter_ns() - phase_started)
            probs = softmax(logits[0])
            action = int(self.rng.choice(len(probs), p=probs))
            obs, reward, done, info = self.env.step(action)
            self._episode_score += info.get("raw_reward", reward)
            self.rollout.add(self._state, action, reward,
                             float(values[0]))
            self._state = obs
            if done:
                terminal = True
                if not info.get("life_lost"):
                    scores.append(self._episode_score)
                    self.episodes_finished += 1
                    self._episode_score = 0.0
                self._state = self.env.reset()
                self._carry = self.network.initial_state()
                break

        steps = len(self.rollout)
        self.server.add_steps(steps)

        bootstrap_inferences = 0
        bootstrap_value = 0.0
        if not terminal:
            if timed:
                phase_started = time.perf_counter_ns()
            _, values, _ = self.network.forward_step(
                self._state[None], self.local_params, self._carry)
            if timed:
                lat.add_ns("infer",
                           time.perf_counter_ns() - phase_started)
            bootstrap_value = float(values[0])
            bootstrap_inferences = 1

        if timed:
            phase_started = time.perf_counter_ns()
        states, actions, returns = self.rollout.batch(
            bootstrap_value, self.config.gamma)
        if timed:
            lat.add_ns("batch_form",
                       time.perf_counter_ns() - phase_started)
            phase_started = time.perf_counter_ns()
        logits, values, _ = self.network.forward_rollout(
            states, self.local_params, rollout_carry)
        loss = a3c_loss_and_head_gradients(
            logits, values, actions, returns,
            entropy_beta=self.config.entropy_beta)
        grads = self.network.backward_and_grads(
            loss.dlogits, loss.dvalues, self.local_params)
        self.server.apply_gradients(grads)
        if timed:
            lat.add_ns("train",
                       time.perf_counter_ns() - phase_started)

        return RoutineStats(steps=steps,
                            bootstrap_inferences=bootstrap_inferences,
                            trained=True,
                            policy_loss=loss.policy_loss,
                            value_loss=loss.value_loss,
                            entropy=loss.entropy,
                            episode_scores=tuple(scores))
