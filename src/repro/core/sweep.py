"""Learning-rate sweeps — the paper's tuning methodology.

Section 5.6: "The training results reported in the original A3C
publication show the average scores from the best training runs with
different learning rate per game", and Section 5.1: "We present the
result from best-performing configuration parameters of each
implementation."  This module makes that protocol a first-class utility:
run the same training recipe over a grid of learning rates (optionally
multiple seeds) and pick the best by final mean score.
"""

from __future__ import annotations

import dataclasses
import typing

import numpy as np

from repro.core.config import A3CConfig
from repro.core.trainer import A3CTrainer, TrainResult


@dataclasses.dataclass
class SweepEntry:
    """One (learning rate, seed) training run's outcome."""

    learning_rate: float
    seed: int
    final_score: float
    episodes: int
    result: TrainResult


@dataclasses.dataclass
class SweepResult:
    """All runs of a sweep plus the winner."""

    entries: typing.List[SweepEntry]

    @property
    def best(self) -> SweepEntry:
        finite = [e for e in self.entries if np.isfinite(e.final_score)]
        if not finite:
            raise ValueError("no run produced any scored episodes")
        return max(finite, key=lambda e: e.final_score)

    def by_learning_rate(self) -> typing.Dict[
            float, typing.List[SweepEntry]]:
        grouped: typing.Dict[float, typing.List[SweepEntry]] = {}
        for entry in self.entries:
            grouped.setdefault(entry.learning_rate, []).append(entry)
        return grouped

    def rows(self) -> typing.List[typing.Dict[str, object]]:
        """Printable summary, mean score per learning rate."""
        rows = []
        for lr, entries in sorted(self.by_learning_rate().items()):
            scores = [e.final_score for e in entries
                      if np.isfinite(e.final_score)]
            rows.append({
                "learning_rate": lr,
                "runs": len(entries),
                "mean_final_score":
                float(np.mean(scores)) if scores else float("nan"),
                "best_final_score":
                float(np.max(scores)) if scores else float("nan"),
            })
        return rows


def sweep_learning_rates(
        env_factory: typing.Callable[[int], object],
        network_factory: typing.Callable[[], object],
        base_config: A3CConfig,
        learning_rates: typing.Sequence[float],
        seeds: typing.Sequence[int] = (0,),
        score_window: int = 100,
        threads: bool = False,
        agent_class: typing.Optional[type] = None,
        platform=None) -> SweepResult:
    """Train once per (learning rate, seed); returns every outcome.

    Each run gets an independent config (same budget, different rate and
    seed), matching the paper's per-game tuning protocol.  ``platform``
    is a compute-backend registry name (or instance) handed to every
    trainer unchanged.
    """
    entries = []
    for learning_rate in learning_rates:
        for seed in seeds:
            config = dataclasses.replace(base_config,
                                         learning_rate=learning_rate,
                                         seed=seed)
            kwargs = {} if agent_class is None \
                else {"agent_class": agent_class}
            trainer = A3CTrainer(env_factory, network_factory, config,
                                 platform=platform, **kwargs)
            result = trainer.train(threads=threads)
            entries.append(SweepEntry(
                learning_rate=learning_rate, seed=seed,
                final_score=result.tracker.recent_mean(score_window),
                episodes=result.episodes,
                result=result))
    return SweepResult(entries=entries)
