"""The multi-agent asynchronous A3C trainer.

``A3CTrainer`` drives ``num_agents`` agents against a shared
:class:`~repro.core.parameter_server.ParameterServer`.  Two execution modes
are provided:

* ``threads=True`` — each agent runs in a host thread, exactly the paper's
  host-side structure (Figure 3/4: one thread per agent interacting with
  its own environment).  NumPy releases the GIL inside large kernels, so
  updates genuinely interleave (Hogwild-style, serialised only at the
  parameter server as in FA3C's RMSProp module).
* ``threads=False`` — agents are stepped round-robin on the calling thread.
  Deterministic given the seed; used by the test-suite and the shorter
  benches.
* ``actors="procs"`` — agents are partitioned over worker *processes*
  (``fork`` start method), sidestepping the GIL for the host-side NumPy
  work.  Global θ and the shared RMSProp statistics live in shared memory
  behind a seqlock-style versioned snapshot
  (:mod:`repro.core.shared_params`), so parameter sync stays lock-free
  while gradient application serialises on a writer lock, preserving the
  Hogwild update semantics of the threaded backend.
"""

from __future__ import annotations

import dataclasses
import os
import queue as queue_module
import threading
import time
import typing
import warnings

import numpy as np

from repro.core.agent import A3CAgent
from repro.core.config import A3CConfig
from repro.core.execution import (
    derive_agent_seed,
    record_routine,
    resolve_backend,
)
from repro.core.scores import ScoreTracker
from repro.core.parameter_server import ParameterServer
from repro.envs.base import Env
from repro.nn.network import A3CNetwork
from repro.nn.parameters import ParameterSet
from repro.obs import lat as _lat
from repro.obs import runtime as _obs
from repro.perf.hotpath import hot_path


@dataclasses.dataclass
class TrainResult:
    """Outcome of a training run."""

    global_steps: int
    routines: int
    episodes: int
    wall_seconds: float
    tracker: ScoreTracker
    params: ParameterSet

    @property
    def steps_per_second(self) -> float:
        if self.wall_seconds <= 0:
            return float("nan")
        return self.global_steps / self.wall_seconds


class A3CTrainer:
    """Owns the agents, the parameter server, and the training loop."""

    def __init__(self, env_factory: typing.Callable[[int], Env],
                 network_factory: typing.Callable[[], A3CNetwork],
                 config: A3CConfig,
                 tracker: typing.Optional[ScoreTracker] = None,
                 agent_class: type = A3CAgent,
                 platform=None):
        """``env_factory(agent_id)`` must build an independent environment
        per agent; ``network_factory()`` an A3C network (topologies must
        match across agents).  ``agent_class`` selects the worker type —
        pass :class:`~repro.core.recurrent_agent.RecurrentA3CAgent` with a
        recurrent network factory for the A3C-LSTM variant.

        ``platform`` is the compute backend the run is modelled against:
        a :mod:`repro.backends` registry name (``"fa3c-fpga"``,
        ``"a3c-cudnn"``, ...), a backend instance, or ``None`` for the
        default.  Resolution is lazy — see :attr:`backend`."""
        self.config = config
        self.env_factory = env_factory
        self.network_factory = network_factory
        self.agent_class = agent_class
        self.tracker = tracker or ScoreTracker()
        self._platform = platform
        self._lat_platform = platform if isinstance(platform, str) else None
        self._backend = None
        rng = np.random.default_rng(config.seed)
        template = network_factory()
        self.server = ParameterServer(template.init_params(rng), config)
        self.agents: typing.List[A3CAgent] = []
        for agent_id in range(config.num_agents):
            env = env_factory(agent_id)
            env.seed(derive_agent_seed(config.seed, agent_id))
            network = network_factory()
            self.agents.append(agent_class(agent_id, env, network,
                                           self.server, config))
        self._routines = 0
        self._routines_lock = threading.Lock()

    @property
    def backend(self):
        """The injected compute :class:`~repro.backends.protocol.Backend`
        (resolved on first access, so numeric-only runs never build a
        platform model)."""
        if self._backend is None:
            self._backend = resolve_backend(self._platform)
        return self._backend

    def save_checkpoint(self, path: str) -> None:
        """Write global theta, shared RMSProp statistics, and the step
        counter to a resumable archive."""
        from repro.nn.checkpoint import save_checkpoint
        save_checkpoint(path, self.server.snapshot(),
                        optimizer=self.server.optimizer,
                        metadata={
                            "global_step": self.server.global_step,
                            "config": dataclasses.asdict(self.config),
                        })

    def restore_checkpoint(self, path: str) -> dict:
        """Resume from :meth:`save_checkpoint`: restores theta, the
        optimizer statistics, the step counter (and hence the annealed
        learning rate), and re-syncs every agent's local parameters.
        Returns the checkpoint metadata."""
        from repro.nn.checkpoint import load_checkpoint, \
            restore_optimizer
        params, statistics, metadata = load_checkpoint(path)
        self.server.params.copy_from(params)
        if statistics is not None:
            restore_optimizer(self.server.optimizer, statistics)
        self.server.set_global_step(metadata.get("global_step", 0))
        for agent in self.agents:
            self.server.snapshot_into(agent.local_params)
        return metadata

    @hot_path
    def _agent_loop(self, agent: A3CAgent, stop: threading.Event) -> None:
        while not stop.is_set() and \
                self.server.global_step < self.config.max_steps:
            started = time.perf_counter() if _obs.enabled() else 0.0
            lat = (_lat.RoutineLatency("a3c",
                                       platform=self._lat_platform)
                   if _obs.enabled() else None)
            stats = agent.run_routine(lat=lat)
            if _obs.enabled():
                self._record_routine(f"agent-{agent.agent_id}",
                                     started, stats.steps, lat=lat)
            with self._routines_lock:
                self._routines += 1
            for score in stats.episode_scores:
                self.tracker.record(self.server.global_step, score)

    def _record_routine(self, lane: str, started: float,
                        steps: int, lat=None) -> None:
        """One finished routine into the metrics/trace sinks."""
        record_routine("a3c", started, steps, lane=lane,
                       span_labels={"steps": steps}, lat=lat)

    def train(self, max_steps: typing.Optional[int] = None,
              threads: bool = True,
              actors: typing.Optional[str] = None,
              workers: typing.Optional[int] = None,
              progress: typing.Optional[
                  typing.Callable[[int, ScoreTracker], None]] = None,
              progress_interval: int = 10_000,
              backend: typing.Optional[str] = None,
              runlog=None) -> TrainResult:
        """Run until ``max_steps`` global inference steps.

        ``actors`` selects the actor execution mode: ``"threads"`` (one
        host thread per agent), ``"procs"`` (agents partitioned over
        ``workers`` forked processes, default ``num_agents``), or
        ``"serial"`` (deterministic round-robin).  When ``actors`` is
        ``None`` the legacy ``threads`` flag picks between ``"threads"``
        and ``"serial"``.  ``backend`` is a deprecated alias of
        ``actors`` (the term now names the *compute* backend — see the
        constructor's ``platform`` argument).

        ``progress(global_step, tracker)`` is invoked roughly every
        ``progress_interval`` steps (only in round-robin mode is the exact
        cadence deterministic).

        ``runlog`` is an optional :class:`repro.obs.runlog.RunLog`; with
        ``actors="procs"`` each worker process then writes heartbeat and
        telemetry shards into the run directory.
        """
        if backend is not None:
            warnings.warn(
                "train(backend=...) is deprecated; the execution mode "
                "is now train(actors=...) — 'backend' names the "
                "compute platform (A3CTrainer(platform=...))",
                DeprecationWarning, stacklevel=2)
            if actors is None:
                actors = backend
        if max_steps is not None:
            self.config.max_steps = max_steps
        if actors is None:
            actors = "threads" if threads else "serial"
        # perf_counter: monotonic, so rates survive NTP clock steps.
        start = time.perf_counter()
        if actors == "threads":
            self._train_threaded(progress, progress_interval)
        elif actors == "procs":
            self._train_procs(workers, progress, progress_interval,
                              runlog=runlog)
        elif actors == "serial":
            self._train_round_robin(progress, progress_interval)
        else:
            raise ValueError(f"unknown actor backend {actors!r}; "
                             f"expected 'threads', 'procs', or 'serial'")
        elapsed = time.perf_counter() - start
        episodes = sum(agent.episodes_finished for agent in self.agents)
        return TrainResult(global_steps=self.server.global_step,
                           routines=self._routines,
                           episodes=episodes,
                           wall_seconds=elapsed,
                           tracker=self.tracker,
                           params=self.server.snapshot())

    def _train_threaded(self, progress, progress_interval: int) -> None:
        stop = threading.Event()
        workers = [threading.Thread(target=self._agent_loop,
                                    args=(agent, stop),
                                    name=f"a3c-agent-{agent.agent_id}",
                                    daemon=True)
                   for agent in self.agents]
        for worker in workers:
            worker.start()
        try:
            next_report = progress_interval
            while any(worker.is_alive() for worker in workers):
                time.sleep(0.05)
                if progress and self.server.global_step >= next_report:
                    progress(self.server.global_step, self.tracker)
                    next_report += progress_interval
        finally:
            stop.set()
            for worker in workers:
                worker.join()

    def _train_round_robin(self, progress, progress_interval: int) -> None:
        next_report = progress_interval
        while self.server.global_step < self.config.max_steps:
            for agent in self.agents:
                if self.server.global_step >= self.config.max_steps:
                    break
                started = time.perf_counter() if _obs.enabled() else 0.0
                lat = (_lat.RoutineLatency("a3c",
                                           platform=self._lat_platform)
                       if _obs.enabled() else None)
                stats = agent.run_routine(lat=lat)
                if _obs.enabled():
                    self._record_routine(f"agent-{agent.agent_id}",
                                         started, stats.steps, lat=lat)
                self._routines += 1
                for score in stats.episode_scores:
                    self.tracker.record(self.server.global_step, score)
            if progress and self.server.global_step >= next_report:
                progress(self.server.global_step, self.tracker)
                next_report += progress_interval

    # -- multiprocessing backend -------------------------------------------

    def _train_procs(self, workers: typing.Optional[int],
                     progress, progress_interval: int,
                     runlog=None) -> None:
        """Partition the agents over forked worker processes.

        θ and the RMSProp statistics move into a shared-memory
        :class:`~repro.core.shared_params.SharedParameterStore`; each
        worker wraps it in a
        :class:`~repro.core.shared_params.SharedParameterServer` and runs
        its share of the agents round-robin against it.  On completion the
        final θ/g/step state is read back into ``self.server`` so
        checkpointing and :class:`TrainResult` behave identically to the
        threaded backend.
        """
        import multiprocessing

        from repro.core.shared_params import SharedParameterStore

        if "fork" not in multiprocessing.get_all_start_methods():
            raise RuntimeError(
                "the 'procs' backend needs the fork start method (workers "
                "inherit env/network factories without pickling); use "
                "backend='threads' on this platform")
        ctx = multiprocessing.get_context("fork")
        num_workers = workers or self.config.num_agents
        num_workers = max(1, min(num_workers, self.config.num_agents))
        store = SharedParameterStore(ctx, self.server.params)
        statistics = self.server.rmsprop_statistics
        store.publish(self.server.params, statistics=statistics,
                      global_step=self.server.global_step)
        results: "multiprocessing.Queue" = ctx.Queue()
        procs = [ctx.Process(target=self._proc_worker,
                             args=(worker_id, num_workers, store,
                                   results, runlog),
                             name=f"a3c-worker-{worker_id}", daemon=True)
                 for worker_id in range(num_workers)]
        for proc in procs:
            proc.start()
        reports = []
        try:
            next_report = progress_interval
            # Drain the queue while polling: a worker blocked on a full
            # result queue can never be joined.
            while len(reports) < num_workers:
                try:
                    reports.append(results.get(timeout=0.05))
                    continue
                except queue_module.Empty:
                    pass
                if progress and store.global_step >= next_report:
                    progress(store.global_step, self.tracker)
                    next_report += progress_interval
                if not any(proc.is_alive() for proc in procs):
                    # Dead workers cannot report again; drain stragglers
                    # whose results are still in the queue's pipe buffer.
                    try:
                        while len(reports) < num_workers:
                            reports.append(results.get(timeout=0.5))
                    except queue_module.Empty:
                        break
        finally:
            for proc in procs:
                proc.join()
        for report in reports:
            self._routines += report["routines"]
            for agent_id, episodes in report["episodes"].items():
                self.agents[agent_id].episodes_finished = episodes
            for step, score in report["scores"]:
                self.tracker.record(step, score)
            # Fold the worker's final metric snapshot into the parent
            # registry so ps.* / trainer.* counters survive the process
            # boundary, attributable via the worker label.
            rows = report.get("metrics")
            if rows and _obs.enabled():
                # Priority (generation, pid) makes gauge folding
                # deterministic under worker queue-arrival order.
                _obs.metrics().absorb_rows(
                    rows,
                    priority=(float(report.get("generation", 0) or 0),
                              float(report.get("pid", 0) or 0)),
                    worker=f"worker-{report['worker']}")
        # Fold the shared state back into the in-process server.
        store.read_params_into(self.server.params)
        if statistics is not None:
            store.read_statistics_into(statistics)
        self.server.set_global_step(store.global_step)
        self.server.updates_applied += store.updates_applied

    def _proc_worker(self, worker_id: int, num_workers: int,
                     store, results, runlog=None) -> None:
        """Worker-process body: run this worker's agents to completion.

        Runs in a forked child, so ``self`` (agents, envs, networks) is an
        inherited copy; only the shared store is common state.  Results
        travel back through ``results`` as plain dicts — including, when
        observability is on, the worker's final metric snapshot (the
        parent's registry cannot see samples recorded after the fork).
        ``runlog`` additionally gives the worker a telemetry shard in the
        run directory, flushed at a heartbeat interval and on exit.
        """
        from repro.core.shared_params import SharedParameterServer

        if _obs.enabled():
            # The forked registry/tracer hold copies of the parent's
            # pre-fork samples, which the parent still owns; start clean
            # so the shipped snapshot is this worker's work only.
            _obs.metrics().reset()
            _obs.tracer().clear()
        shard = (runlog.shard(f"worker-{worker_id}")
                 if runlog is not None else None)
        server = SharedParameterServer(store, self.config)
        agents = [agent for agent in self.agents
                  if agent.agent_id % num_workers == worker_id]
        for agent in agents:
            agent.server = server
        routines = 0
        scores: typing.List[typing.Tuple[int, float]] = []
        while server.global_step < self.config.max_steps:
            for agent in agents:
                if server.global_step >= self.config.max_steps:
                    break
                started = time.perf_counter() if _obs.enabled() else 0.0
                lat = (_lat.RoutineLatency("a3c",
                                           platform=self._lat_platform)
                       if _obs.enabled() else None)
                stats = agent.run_routine(lat=lat)
                if _obs.enabled():
                    self._record_routine(f"agent-{agent.agent_id}",
                                         started, stats.steps, lat=lat)
                routines += 1
                for score in stats.episode_scores:
                    scores.append((server.global_step, score))
            if shard is not None:
                shard.maybe_heartbeat(routines=routines,
                                      global_step=server.global_step)
        if shard is not None:
            shard.flush(final=True, routines=routines,
                        global_step=server.global_step)
        results.put({"worker": worker_id,
                     "routines": routines,
                     "scores": scores,
                     "pid": os.getpid(),
                     "generation": shard.seq if shard is not None else 0,
                     "metrics": (_obs.metrics().snapshot()
                                 if _obs.enabled() else None),
                     "episodes": {agent.agent_id: agent.episodes_finished
                                  for agent in agents}})
