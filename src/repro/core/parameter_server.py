"""The global parameter set and its shared-RMSProp update path.

In FA3C the global θ lives in the FPGA's off-chip DRAM and gradients are
applied by the dedicated RMSProp module (paper Section 4.2.3); in the
software A3C it is a shared, lock-protected parameter set.  Either way the
update is serialised per gradient batch, which this class models with a
lock (Python threads deliver the same memory model as the paper's host
threads sharing a device queue).
"""

from __future__ import annotations

import threading
import time
import typing

import numpy as np

from repro.core.config import A3CConfig
from repro.nn.optim import SharedRMSProp
from repro.nn.parameters import ParameterSet
from repro.obs import runtime as _obs
from repro.perf.hotpath import hot_path


def clip_by_global_norm(grads: ParameterSet,
                        max_norm: float) -> float:
    """Scale all gradients so their joint L2 norm is at most ``max_norm``.

    Returns the pre-clipping norm.
    """
    total = 0.0
    for name in grads:
        g = grads[name]
        total += float(np.vdot(g, g))
    norm = float(np.sqrt(total))
    if norm > max_norm > 0:
        scale = max_norm / norm
        for name in grads:
            grads[name] *= scale
    return norm


class ParameterServer:
    """Thread-safe owner of global θ and the shared RMSProp statistics."""

    def __init__(self, params: ParameterSet, config: A3CConfig):
        self.params = params
        self.config = config
        self.optimizer = SharedRMSProp(learning_rate=config.learning_rate,
                                       rho=config.rmsprop_rho,
                                       eps=config.rmsprop_eps)
        self.optimizer.attach(params)
        self._lock = threading.Lock()
        self._global_step = 0
        self.updates_applied = 0

    @property
    def global_step(self) -> int:
        """Total inference steps processed across all agents."""
        return self._global_step

    def add_steps(self, count: int) -> int:
        """Atomically advance the global step counter; returns new value."""
        with self._lock:
            self._global_step += count
            return self._global_step

    def set_global_step(self, value: int) -> None:
        """Restore the step counter (checkpoint resume)."""
        with self._lock:
            self._global_step = int(value)

    @hot_path
    def _timed_acquire(self, op: str) -> None:
        """Take the lock, recording the wait when observability is on."""
        if not _obs.enabled():
            self._lock.acquire()
            return
        waited = time.perf_counter()
        self._lock.acquire()
        _obs.metrics().histogram("ps.lock_wait_seconds").observe(
            time.perf_counter() - waited, op=op)

    @hot_path
    def snapshot_into(self, local: ParameterSet) -> None:
        """Parameter sync: copy global θ into an agent's local θ.

        Runs once per agent routine.  The destination's preallocated
        arrays are reused (``copy_from`` is in-place and allocation
        free), and the telemetry gate is checked once up front so the
        disabled path is a bare lock/copy/unlock.
        """
        if not _obs.enabled():
            self._lock.acquire()
            try:
                local.copy_from(self.params)
            finally:
                self._lock.release()
            return
        self._timed_acquire("snapshot")
        try:
            started = time.perf_counter()
            local.copy_from(self.params)
            _obs.metrics().histogram("ps.sync_seconds").observe(
                time.perf_counter() - started)
        finally:
            self._lock.release()

    def snapshot(self) -> ParameterSet:
        """A fresh copy of global θ."""
        with self._lock:
            return self.params.copy()

    @hot_path
    def apply_gradients(self, grads: ParameterSet) -> float:
        """Apply one gradient batch with the annealed learning rate.

        Returns the learning rate used.
        """
        self._timed_acquire("apply")
        try:
            started = time.perf_counter() if _obs.enabled() else 0.0
            lr = self.config.learning_rate_at(self._global_step)
            if self.config.grad_clip_norm is not None:
                clip_by_global_norm(grads, self.config.grad_clip_norm)
            self.optimizer.step(self.params, grads, learning_rate=lr)
            self.updates_applied += 1
            if _obs.enabled():
                metrics = _obs.metrics()
                metrics.counter("ps.updates").inc()
                metrics.histogram("ps.apply_seconds").observe(
                    time.perf_counter() - started)
            return lr
        finally:
            self._lock.release()

    @property
    def rmsprop_statistics(self) -> typing.Optional[ParameterSet]:
        """The shared second-moment estimates g (for checkpoint/inspect)."""
        return self.optimizer.statistics
