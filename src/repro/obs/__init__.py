"""repro.obs — unified metrics and tracing for the reproduction.

The paper's claims are measurements; this package is how the repo
measures.  It provides:

* :class:`MetricsRegistry` — labelled counters / gauges / histograms with
  snapshot, reset, and JSON / JSONL emission (:mod:`repro.obs.registry`);
* :class:`SpanTracer` — one tracer for *sim-time* spans (drop-in where a
  :class:`repro.sim.trace.Tracer` is accepted) and *wall-clock* spans
  (``with obs.span(...)`` / ``@obs.traced(...)``, stamped with
  ``time.perf_counter``) (:mod:`repro.obs.tracer`);
* a Chrome trace-event exporter loadable in ``chrome://tracing`` and
  Perfetto (:mod:`repro.obs.chrome`);
* the process-wide switch: collection is off unless ``REPRO_OBS=1`` is
  set or :func:`enable` is called, and every instrumented hot path is
  gated on :func:`enabled` so disabled runs pay one boolean branch
  (:mod:`repro.obs.runtime`);
* report rendering for ``repro obs-report`` (:mod:`repro.obs.report`);
* run-scoped telemetry: run directories with manifests and per-process
  shards, shard merging with ``worker`` labels, and the worker-health
  monitor (:mod:`repro.obs.runlog`, :mod:`repro.obs.health` — loaded
  lazily);
* per-routine latency decomposition (``queue_wait`` / ``batch_form`` /
  ``infer`` / ``train`` / ``param_sync``) with a sum-to-total invariant
  and a critical-path extractor over recorded spans
  (:mod:`repro.obs.lat` — loaded lazily);
* cycle-attribution profiling, folded-stack export and the perf-baseline
  gate (:mod:`repro.obs.prof` — loaded lazily, because the platform
  models it analyses themselves import this package).
"""

from repro.obs.chrome import (
    chrome_trace_document,
    chrome_trace_events,
    load_chrome_trace,
    write_chrome_trace,
)
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    load_jsonl,
)
from repro.obs.report import obs_report, registry_report, run_report
from repro.obs.runtime import (
    disable,
    enable,
    enabled,
    enabled_scope,
    metrics,
    span,
    traced,
    tracer,
)
from repro.obs.tracer import SIM, WALL, ObsSpan, SpanTracer

__all__ = [
    "SIM",
    "WALL",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ObsSpan",
    "SpanTracer",
    "chrome_trace_document",
    "chrome_trace_events",
    "disable",
    "enable",
    "enabled",
    "enabled_scope",
    "health",
    "lat",
    "load_chrome_trace",
    "load_jsonl",
    "metrics",
    "obs_report",
    "registry_report",
    "run_report",
    "runlog",
    "span",
    "prof",
    "traced",
    "tracer",
    "write_chrome_trace",
]

_LAZY_SUBMODULES = ("prof", "runlog", "health", "lat")


def __getattr__(name):
    if name in _LAZY_SUBMODULES:
        import importlib
        return importlib.import_module(f"repro.obs.{name}")
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
