"""The process-wide observability switch and default sinks.

Instrumented hot paths are compiled in permanently but gated on
:func:`enabled` — a single module-level boolean read — so with
``REPRO_OBS`` unset the cost of instrumentation is one branch and no
allocation.  The canonical guard::

    from repro import obs
    ...
    if obs.enabled():
        obs.metrics().counter("fpga.dram.bytes").inc(
            words * 4, channel=self.name, dir="load")

Spans go through :func:`span`, which returns a shared no-op context
manager while disabled.  ``REPRO_OBS=1`` in the environment enables
collection at import; :func:`enable` / :func:`disable` switch it at
runtime (the CLI's ``--trace`` / ``--metrics`` flags call
:func:`enable`).
"""

from __future__ import annotations

import contextlib
import functools
import os
import typing

from repro.obs.registry import MetricsRegistry
from repro.obs.tracer import SpanTracer

_TRUTHY = {"1", "true", "yes", "on"}

_enabled: bool = os.environ.get("REPRO_OBS", "").strip().lower() in _TRUTHY
_registry = MetricsRegistry()
_tracer = SpanTracer()


def enabled() -> bool:
    """Is observability collection on?  (The hot-path guard.)"""
    return _enabled


def enable(reset: bool = False) -> None:
    """Turn collection on; optionally clear previously collected data."""
    global _enabled
    _enabled = True
    if reset:
        _registry.reset()
        _tracer.clear()


def disable() -> None:
    """Turn collection off (already-collected data is kept)."""
    global _enabled
    _enabled = False


def metrics() -> MetricsRegistry:
    """The process-wide registry (collects only while enabled — callers
    guard with :func:`enabled`)."""
    return _registry


def tracer() -> SpanTracer:
    """The process-wide span tracer."""
    return _tracer


class _NullContext:
    """Reusable no-op context manager for disabled-mode spans."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *exc):
        return False


_NULL_CONTEXT = _NullContext()


def span(lane: str, label: str, **args: object):
    """A wall-clock span on the global tracer, or a no-op when disabled."""
    if not _enabled:
        return _NULL_CONTEXT
    return _tracer.span(lane, label, **args)


def traced(lane: str, label: typing.Optional[str] = None):
    """Decorator: wall-clock span around each call while enabled."""
    def decorate(func):
        span_label = label or func.__qualname__

        @functools.wraps(func)
        def wrapper(*args, **kwargs):
            if not _enabled:
                return func(*args, **kwargs)
            with _tracer.span(lane, span_label):
                return func(*args, **kwargs)
        return wrapper
    return decorate


@contextlib.contextmanager
def enabled_scope(reset: bool = True):
    """Temporarily enable collection (tests and examples)."""
    global _enabled
    previous = _enabled
    enable(reset=reset)
    try:
        yield
    finally:
        _enabled = previous
