"""Utilisation / traffic summaries over collected (or reloaded) metrics.

Works from either a live :class:`~repro.obs.registry.MetricsRegistry`
snapshot or rows re-read from a JSONL file, so ``repro obs-report`` can
post-process any previous run.  The canonical metric names it understands
are listed in ``docs/observability.md``.
"""

from __future__ import annotations

import typing

from repro.harness.report import format_table
from repro.obs.prof.attribution import AttributionReport
from repro.obs.registry import MetricsRegistry

Rows = typing.Sequence[typing.Mapping[str, object]]


def _select(rows: Rows, name: str) -> typing.List[typing.Mapping]:
    return [row for row in rows if row.get("name") == name]


def _label(row: typing.Mapping, key: str, default: str = "-") -> str:
    labels = row.get("labels") or {}
    return str(labels.get(key, default))


def cu_utilisation_rows(rows: Rows) -> typing.List[typing.Dict[str, object]]:
    """Per-CU busy fraction (and busy sim-seconds when counted)."""
    busy = {_label(r, "cu"): r.get("value", 0.0)
            for r in _select(rows, "fpga.cu.busy_seconds")}
    out = []
    for row in _select(rows, "fpga.cu.utilisation"):
        cu = _label(row, "cu")
        out.append({
            "cu": cu,
            "platform": _label(row, "platform"),
            "busy_fraction": round(float(row.get("value", 0.0)), 4),
            "busy_seconds": round(float(busy.get(cu, 0.0)), 6),
        })
    return sorted(out, key=lambda r: (r["platform"], r["cu"]))


def dram_traffic_rows(rows: Rows) -> typing.List[typing.Dict[str, object]]:
    """Per-channel DRAM bytes split by direction, plus DMA bursts."""
    by_channel: typing.Dict[str, typing.Dict[str, float]] = {}
    for row in _select(rows, "fpga.dram.bytes"):
        entry = by_channel.setdefault(
            _label(row, "channel"), {"load": 0.0, "store": 0.0})
        entry[_label(row, "dir", "load")] = float(row.get("value", 0.0))
    bursts = {_label(r, "channel"): float(r.get("value", 0.0))
              for r in _select(rows, "fpga.dram.bursts")}
    out = []
    for channel in sorted(by_channel):
        entry = by_channel[channel]
        out.append({
            "channel": channel,
            "loaded_bytes": int(entry.get("load", 0.0)),
            "stored_bytes": int(entry.get("store", 0.0)),
            "total_bytes": int(entry.get("load", 0.0)
                               + entry.get("store", 0.0)),
            "bursts": int(bursts.get(channel, 0.0)),
        })
    return out


def trainer_rows(rows: Rows) -> typing.List[typing.Dict[str, object]]:
    """Per-trainer routine counts and step-rate distribution."""
    routines = {_label(r, "trainer"): float(r.get("value", 0.0))
                for r in _select(rows, "trainer.routines")}
    steps = {_label(r, "trainer"): float(r.get("value", 0.0))
             for r in _select(rows, "trainer.steps")}
    out = []
    for row in _select(rows, "trainer.step_rate"):
        trainer = _label(row, "trainer")
        out.append({
            "trainer": trainer,
            "routines": int(routines.get(trainer, 0.0)),
            "steps": int(steps.get(trainer, 0.0)),
            "step_rate_p50": _round(row.get("p50")),
            "step_rate_p90": _round(row.get("p90")),
            "step_rate_mean": _round(row.get("mean")),
        })
    return sorted(out, key=lambda r: r["trainer"])


def gpu_kernel_rows(rows: Rows) -> typing.List[typing.Dict[str, object]]:
    """Per-kernel launch counts plus the occupancy distribution."""
    out = []
    for row in _select(rows, "gpu.kernel.launches"):
        out.append({"kernel": _label(row, "kernel"),
                    "launches": int(row.get("value", 0.0))})
    out.sort(key=lambda r: (-r["launches"], r["kernel"]))
    for row in _select(rows, "gpu.kernel.occupancy"):
        out.append({"kernel": "(occupancy p50/p90)",
                    "launches": f"{_round(row.get('p50'))}/"
                                f"{_round(row.get('p90'))}"})
    return out


def ips_rows(rows: Rows) -> typing.List[typing.Dict[str, object]]:
    out = []
    for row in _select(rows, "platform.ips"):
        out.append({"platform": _label(row, "platform"),
                    "agents": _label(row, "agents"),
                    "ips": _round(row.get("value"))})
    return sorted(out, key=lambda r: (r["platform"], r["agents"]))


def _ms(value) -> object:
    """Seconds → milliseconds for the latency tables (``-`` when absent)."""
    if value is None:
        return "-"
    try:
        return round(float(value) * 1e3, 4)
    except (TypeError, ValueError):
        return value


def latency_rows(rows: Rows) -> typing.List[typing.Dict[str, object]]:
    """Per-segment latency percentiles (ms) with share of total time.

    Reads the ``lat.segment_seconds`` histograms — HDR-folded, so the
    percentiles are real values even when the rows were merged from
    worker shards — and the ``lat.segment_ns`` / ``lat.total_ns``
    counters for each segment's exact share of end-to-end time.
    """
    def group_key(row):
        labels = row.get("labels") or {}
        return tuple(sorted((k, v) for k, v in labels.items()
                            if k != "segment"))

    seg_ns = {(_metric_labels(r)): float(r.get("value", 0.0) or 0.0)
              for r in _select(rows, "lat.segment_ns")}
    total_ns = {(_metric_labels(r)): float(r.get("value", 0.0) or 0.0)
                for r in _select(rows, "lat.total_ns")}
    out = []
    for row in _select(rows, "lat.segment_seconds"):
        full = _metric_labels(row)
        group = tuple(item for item in full if item[0] != "segment")
        total = total_ns.get(group, 0.0)
        ns = seg_ns.get(full, 0.0)
        out.append({
            "trainer": _label(row, "trainer"),
            "platform": _label(row, "platform"),
            "worker": _label(row, "worker"),
            "segment": _label(row, "segment"),
            "count": int(typing.cast(int, row.get("count", 0)) or 0),
            "p50_ms": _ms(row.get("p50")),
            "p90_ms": _ms(row.get("p90")),
            "p99_ms": _ms(row.get("p99")),
            "p999_ms": _ms(row.get("p999")),
            "share": round(ns / total, 4) if total > 0 else "-",
        })
    return sorted(out, key=lambda r: (r["trainer"], r["platform"],
                                      r["worker"], r["segment"]))


def latency_routine_rows(rows: Rows
                         ) -> typing.List[typing.Dict[str, object]]:
    """End-to-end routine latency percentiles (ms) per trainer."""
    out = []
    for row in _select(rows, "lat.routine_seconds"):
        out.append({
            "trainer": _label(row, "trainer"),
            "platform": _label(row, "platform"),
            "worker": _label(row, "worker"),
            "count": int(typing.cast(int, row.get("count", 0)) or 0),
            "p50_ms": _ms(row.get("p50")),
            "p90_ms": _ms(row.get("p90")),
            "p99_ms": _ms(row.get("p99")),
            "p999_ms": _ms(row.get("p999")),
            "max_ms": _ms(row.get("max")),
        })
    return sorted(out, key=lambda r: (r["trainer"], r["platform"],
                                      r["worker"]))


def _metric_labels(row: typing.Mapping) -> typing.Tuple:
    labels = row.get("labels") or {}
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _round(value, digits: int = 3):
    if value is None:
        return "-"
    try:
        return round(float(value), digits)
    except (TypeError, ValueError):
        return value


def trace_lane_rows(doc: typing.Mapping[str, object]
                    ) -> typing.List[typing.Dict[str, object]]:
    """Per-lane busy time / span count from a Chrome trace document."""
    events = doc.get("traceEvents", [])
    names: typing.Dict[typing.Tuple[int, int], str] = {}
    for event in events:
        if event.get("ph") == "M" and event.get("name") == "thread_name":
            names[(event["pid"], event["tid"])] = \
                event.get("args", {}).get("name", "?")
    busy: typing.Dict[typing.Tuple[int, int], float] = {}
    counts: typing.Dict[typing.Tuple[int, int], int] = {}
    window: typing.Dict[int, typing.List[float]] = {}
    for event in events:
        if event.get("ph") != "X":
            continue
        key = (event["pid"], event["tid"])
        busy[key] = busy.get(key, 0.0) + float(event.get("dur", 0.0))
        counts[key] = counts.get(key, 0) + 1
        lo_hi = window.setdefault(event["pid"], [float("inf"), 0.0])
        lo_hi[0] = min(lo_hi[0], float(event["ts"]))
        lo_hi[1] = max(lo_hi[1], float(event["ts"])
                       + float(event.get("dur", 0.0)))
    rows = []
    for key in sorted(busy):
        pid = key[0]
        lo, hi = window.get(pid, [0.0, 0.0])
        total = hi - lo
        rows.append({
            "lane": names.get(key, f"pid{key[0]}/tid{key[1]}"),
            "clock": {1: "sim", 2: "wall"}.get(pid, str(pid)),
            "spans": counts[key],
            "busy_ms": round(busy[key] / 1000.0, 3),
            "busy_fraction": round(busy[key] / total, 4)
            if total > 0 else 0.0,
        })
    return rows


def obs_report(rows: Rows,
               trace_doc: typing.Optional[typing.Mapping] = None,
               latency: bool = False) -> str:
    """The full plain-text report ``repro obs-report`` prints.

    ``latency=True`` (the ``--latency`` flag) appends the per-segment
    and end-to-end latency percentile tables.
    """
    sections = []
    cu = cu_utilisation_rows(rows)
    if cu:
        sections.append(format_table(
            cu, title="Compute-unit utilisation"))
    dram = dram_traffic_rows(rows)
    if dram:
        sections.append(format_table(
            dram, title="DRAM traffic by channel"))
    trainers = trainer_rows(rows)
    if trainers:
        sections.append(format_table(
            trainers, title="Trainer step rates (steps/s per routine)"))
    kernels = gpu_kernel_rows(rows)
    if kernels:
        sections.append(format_table(kernels, title="GPU kernel launches"))
    ips = ips_rows(rows)
    if ips:
        sections.append(format_table(ips, title="Measured IPS"))
    attribution = AttributionReport(rows)
    if attribution.has_fpga:
        sections.append(format_table(
            attribution.layer_rows(),
            title="Cycle attribution by layer/stage (share of all CU "
                  "cycles, bucket % of the row)"))
        sections.append(format_table(
            attribution.cu_rows(), title="Cycle attribution by CU"))
    if attribution.has_gpu:
        sections.append(format_table(
            attribution.gpu_rows(),
            title="GPU time attribution by task (bucket % of the row)"))
    if latency:
        segments = latency_rows(rows)
        if segments:
            sections.append(format_table(
                segments, title="Latency by segment (queue vs compute; "
                                "share of lat.total_ns)"))
        routines = latency_routine_rows(rows)
        if routines:
            sections.append(format_table(
                routines, title="End-to-end routine latency"))
    if trace_doc is not None:
        lanes = trace_lane_rows(trace_doc)
        if lanes:
            sections.append(format_table(
                lanes, title="Trace lanes (busy over each clock's "
                             "span window)"))
    if not sections:
        return "(no recognised metrics — was REPRO_OBS/--metrics on?)"
    return "\n\n".join(sections)


def registry_report(registry: MetricsRegistry,
                    trace_doc: typing.Optional[typing.Mapping] = None,
                    latency: bool = False) -> str:
    """Report straight from a live registry."""
    return obs_report(registry.snapshot(), trace_doc, latency=latency)


def run_report(merged,
               events: typing.Optional[typing.Sequence[
                   typing.Mapping[str, object]]] = None,
               latency: bool = False) -> str:
    """The ``repro obs-report --run`` rendering for one merged run.

    Composes the manifest summary, the whole-run metric tables (worker
    label aggregated out), the per-worker breakdown, and the health
    events.  ``merged`` is a :class:`repro.obs.runlog.MergedRun`;
    ``events`` defaults to a fresh :func:`repro.obs.health.health_events`
    pass.  ``latency=True`` additionally renders the per-worker latency
    tables and the critical path through each lane's recorded spans.
    """
    from repro.obs import health as health_mod
    from repro.obs import lat as lat_mod
    from repro.obs import runlog as runlog_mod

    if events is None:
        events = health_mod.health_events(merged)
    manifest = merged.manifest
    head = [f"run {manifest.get('run_id', '?')}: "
            f"command={manifest.get('command', '?')} "
            f"outcome={manifest.get('outcome', '?')}"]
    details = []
    for key in ("platform", "seed", "start", "wall_seconds"):
        if manifest.get(key) is not None:
            details.append(f"{key}={_round(manifest[key])}"
                           if key == "wall_seconds"
                           else f"{key}={manifest[key]}")
    if details:
        head.append("  " + "  ".join(details))
    head.append(f"  shards={len(merged.shards)} "
                f"(workers={len(merged.worker_shards())})")
    sections = ["\n".join(head)]
    aggregate = runlog_mod.aggregate_rows(merged.rows)
    if aggregate:
        sections.append(obs_report(aggregate, latency=latency))
    if latency:
        per_worker = latency_rows(merged.rows)
        if per_worker:
            sections.append(format_table(
                per_worker,
                title="Latency by segment, per worker (unaggregated)"))
        chains = lat_mod.critical_path_rows(merged.spans)
        if chains:
            for chain in chains:
                chain["duration"] = _round(chain["duration"], 6)
            sections.append(format_table(
                chains, title="Critical path per lane (longest nested "
                              "span chain; duration in the lane's "
                              "clock units)"))
    workers = health_mod.worker_rows(merged, events)
    if workers:
        sections.append(format_table(
            workers, title="Per-worker breakdown (merged shards)"))
    if events:
        lines = [f"Health events ({len(events)}):"]
        for event in events:
            lines.append(f"  - [{event.get('event', '?')}] "
                         f"{event.get('worker', '?')}: "
                         f"{event.get('reason', '')}")
        sections.append("\n".join(lines))
    else:
        sections.append("Health: all workers finished cleanly.")
    return "\n\n".join(sections)
