"""Worker health over a merged run: stragglers, stalls, lock pressure.

Consumes a :class:`~repro.obs.runlog.MergedRun` and emits structured
``health`` events plus a per-worker breakdown table.  Thresholds:

* a worker whose shard has **no final record** was killed or hung —
  always a ``straggler`` event;
* a live worker whose last heartbeat is older than ``stall_seconds``
  relative to the run's end is a ``stall``;
* a worker whose routines/s falls below ``straggler_ratio`` × the median
  of cleanly-finished workers is a slow ``straggler`` (only judged when
  at least two workers finished, so a solo worker is never its own
  baseline).

The parent process's shard is excluded — it coordinates rather than
trains, so its rate is not comparable.
"""

from __future__ import annotations

import statistics
import time
import typing

from repro.obs.runlog import MergedRun, WorkerShard

#: A finished worker slower than this fraction of the median worker
#: rate is flagged as a straggler.
DEFAULT_STRAGGLER_RATIO = 0.5

#: A worker whose last heartbeat is older than this (at run end) is
#: flagged as stalled.
DEFAULT_STALL_SECONDS = 10.0


def _reference_time(merged: MergedRun) -> float:
    end = merged.manifest.get("end_time")
    if end is not None:
        return float(typing.cast(float, end))
    return time.time()


def _worker_rate(shard: WorkerShard) -> typing.Tuple[float, float]:
    """(routines, routines/s) from the newest heartbeat/final stats."""
    stats = shard.stats()
    routines = float(typing.cast(float, stats.get("routines", 0)) or 0)
    duration = max(shard.last_heartbeat_time - shard.opened_time, 1e-9)
    return routines, routines / duration


def health_events(merged: MergedRun,
                  straggler_ratio: float = DEFAULT_STRAGGLER_RATIO,
                  stall_seconds: float = DEFAULT_STALL_SECONDS
                  ) -> typing.List[typing.Dict[str, object]]:
    """Structured straggler/stall events over the run's worker shards."""
    reference = _reference_time(merged)
    workers = merged.worker_shards()
    events: typing.List[typing.Dict[str, object]] = []
    finished_rates: typing.Dict[str, float] = {}
    for shard in workers:
        routines, rate = _worker_rate(shard)
        age = max(0.0, reference - shard.last_heartbeat_time)
        if shard.final is None:
            events.append({
                "kind": "health", "event": "straggler",
                "worker": shard.worker, "pid": shard.pid,
                "reason": "no final snapshot; worker killed or hung",
                "heartbeat_age_s": round(age, 3),
                "routines": routines,
            })
            continue
        finished_rates[shard.worker] = rate
        if age > stall_seconds:
            events.append({
                "kind": "health", "event": "stall",
                "worker": shard.worker, "pid": shard.pid,
                "reason": f"last heartbeat {age:.1f}s before run end "
                          f"(threshold {stall_seconds:.1f}s)",
                "heartbeat_age_s": round(age, 3),
                "routines": routines,
            })
    if len(finished_rates) >= 2:
        median = statistics.median(finished_rates.values())
        floor = straggler_ratio * median
        for shard in workers:
            rate = finished_rates.get(shard.worker)
            if rate is None or median <= 0 or rate >= floor:
                continue
            events.append({
                "kind": "health", "event": "straggler",
                "worker": shard.worker, "pid": shard.pid,
                "reason": f"{rate:.2f} routines/s vs median "
                          f"{median:.2f} (floor {floor:.2f})",
                "routines_per_s": round(rate, 3),
                "median_routines_per_s": round(median, 3),
            })
    return events


def _worker_metric(merged: MergedRun, name: str, worker: str,
                   field: str = "value") -> float:
    total = 0.0
    for row in merged.rows:
        labels = typing.cast(typing.Mapping[str, str],
                             row.get("labels") or {})
        if row.get("name") == name and labels.get("worker") == worker:
            total += float(typing.cast(float, row.get(field, 0.0)) or 0.0)
    return total


def worker_rows(merged: MergedRun,
                events: typing.Optional[typing.Sequence[
                    typing.Mapping[str, object]]] = None
                ) -> typing.List[typing.Dict[str, object]]:
    """Per-worker breakdown rows for ``repro obs-report --run``.

    ``lock_wait_share`` is the seqlock wait (summed over the ``op``
    labels of ``ps.lock_wait_seconds``) as a fraction of the worker's
    observed lifetime — the paper-relevant contention signal.
    """
    flagged: typing.Dict[str, str] = {}
    for event in events or []:
        worker = str(event.get("worker"))
        if worker not in flagged:
            flagged[worker] = str(event.get("event", "?"))
    rows = []
    for shard in merged.worker_shards():
        routines, rate = _worker_rate(shard)
        lifetime = max(shard.last_heartbeat_time - shard.opened_time,
                       1e-9)
        lock_wait = _worker_metric(merged, "ps.lock_wait_seconds",
                                   shard.worker, field="sum")
        rows.append({
            "worker": shard.worker,
            "pid": shard.pid,
            "routines": int(routines),
            "routines_per_s": round(rate, 2),
            "updates": int(_worker_metric(merged, "ps.updates",
                                          shard.worker)),
            "lock_wait_s": round(lock_wait, 4),
            "lock_wait_share": round(lock_wait / lifetime, 4),
            "heartbeats": len(shard.heartbeats),
            "final": "yes" if shard.final is not None else "no",
            "status": flagged.get(shard.worker, "ok"),
        })
    rows.sort(key=lambda row: str(row["worker"]))
    return rows
