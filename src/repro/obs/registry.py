"""Labelled metrics: counters, gauges, and histograms.

A :class:`MetricsRegistry` owns named metrics; each metric holds one
sample per label combination (Prometheus-style, e.g. a single
``fpga.dram.bytes`` counter with a sample per ``channel``/``dir`` pair).
Snapshots are plain dict rows so they serialise directly to JSON, and
:meth:`MetricsRegistry.write_jsonl` appends one row per line so repeated
bench runs produce diffable, comparable files.
"""

from __future__ import annotations

import json
import math
import typing

LabelKey = typing.Tuple[typing.Tuple[str, str], ...]

#: Retained observations per histogram sample; beyond this the window
#: slides (percentiles then describe the most recent observations, while
#: count / sum / min / max stay exact over the full stream).
HISTOGRAM_WINDOW = 8192

#: HDR bucket geometry: each power of two above :data:`HDR_MIN` is split
#: into this many linear sub-buckets, so the worst-case relative error
#: of a bucket-derived percentile is ~1/(2*HDR_SUBBUCKETS) ≈ 6%.
HDR_SUBBUCKETS = 8
#: Values at or below this land in bucket 0 (1 ns when observations are
#: seconds — far below anything the trainers measure).
HDR_MIN = 1e-9


def hdr_bucket_index(value: float) -> int:
    """Deterministic log-spaced bucket index for a value.

    The mapping is pure IEEE-754 arithmetic (``math.frexp``), so every
    process assigns every observation to the same bucket — which is what
    makes cross-process folds exact: merging bucket *counts* loses
    nothing that a single-process run would have kept.
    """
    scaled = value / HDR_MIN
    if scaled <= 1.0:
        return 0
    mantissa, exponent = math.frexp(scaled)
    return (exponent - 1) * HDR_SUBBUCKETS + int(
        (mantissa - 0.5) * 2.0 * HDR_SUBBUCKETS)


def hdr_bucket_bounds(index: int) -> typing.Tuple[float, float]:
    """The ``[lo, hi)`` value range of one bucket."""
    octave, sub = divmod(int(index), HDR_SUBBUCKETS)
    base = HDR_MIN * (2.0 ** octave)
    return (base * (1.0 + sub / HDR_SUBBUCKETS),
            base * (1.0 + (sub + 1) / HDR_SUBBUCKETS))


def hdr_percentile(buckets: typing.Mapping[object, object],
                   q: float) -> float:
    """Percentile from folded bucket counts (bucket-midpoint estimate).

    ``buckets`` maps bucket index (int, or str after a JSON round trip)
    to observation count.  Quantised to the bucket resolution but
    deterministic and mergeable — unlike window percentiles, the answer
    is identical whether the counts came from one process or were
    folded from many shards.
    """
    counts = []
    total = 0
    for index, count in buckets.items():
        count = int(typing.cast(int, count))
        if count > 0:
            counts.append((int(typing.cast(int, index)), count))
            total += count
    if not total:
        return float("nan")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100]: {q}")
    counts.sort()
    rank = max(1, math.ceil((q / 100.0) * total))
    seen = 0
    for index, count in counts:
        seen += count
        if seen >= rank:
            break
    lo, hi = hdr_bucket_bounds(index)
    return (lo + hi) / 2.0


def _label_key(labels: typing.Mapping[str, str]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class _Metric:
    """Base: name + per-label-combination samples."""

    kind = "metric"

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._samples: typing.Dict[LabelKey, typing.Any] = {}

    def _sample(self, labels: typing.Mapping[str, str]):
        key = _label_key(labels)
        if key not in self._samples:
            self._samples[key] = self._new_sample()
        return self._samples[key]

    def _new_sample(self):  # pragma: no cover - overridden
        raise NotImplementedError

    def labels_seen(self) -> typing.List[typing.Dict[str, str]]:
        """Every label combination this metric has samples for."""
        return [dict(key) for key in self._samples]

    def clear(self) -> None:
        self._samples.clear()

    def rows(self) -> typing.List[typing.Dict[str, object]]:
        """One snapshot dict per label combination."""
        out = []
        for key, sample in self._samples.items():
            row: typing.Dict[str, object] = {
                "name": self.name,
                "type": self.kind,
                "labels": dict(key),
            }
            row.update(self._sample_fields(sample))
            out.append(row)
        return out

    def _sample_fields(self, sample) -> typing.Dict[str, object]:
        raise NotImplementedError


class CounterCell:
    """A pre-resolved (counter, label combination) incrementer.

    Hot paths that increment the same labelled sample many times (the
    FPGA simulator's per-stage attribution) resolve the sorted label key
    once via :meth:`Counter.cell` instead of paying it per
    :meth:`Counter.inc` call.  Cells stay valid across
    :meth:`MetricsRegistry.reset`: samples are cleared in place, the
    backing dict object is retained.
    """

    __slots__ = ("_samples", "_key")

    def __init__(self, samples: typing.Dict[LabelKey, float],
                 key: LabelKey):
        self._samples = samples
        self._key = key

    def inc(self, value: float = 1.0) -> None:
        samples = self._samples
        key = self._key
        samples[key] = samples.get(key, 0.0) + value


class Counter(_Metric):
    """A monotonically increasing sum per label combination."""

    kind = "counter"

    def _new_sample(self) -> float:
        return 0.0

    def inc(self, value: float = 1.0, **labels: str) -> None:
        if value < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        key = _label_key(labels)
        self._samples[key] = self._samples.get(key, 0.0) + value

    def cell(self, **labels: str) -> CounterCell:
        """A bound incrementer with the label key resolved once."""
        return CounterCell(self._samples, _label_key(labels))

    def value(self, **labels: str) -> float:
        return self._samples.get(_label_key(labels), 0.0)

    def total(self) -> float:
        """Sum over all label combinations."""
        return sum(self._samples.values())

    def _sample_fields(self, sample: float) -> typing.Dict[str, object]:
        return {"value": sample}


class Gauge(_Metric):
    """A last-write-wins value per label combination.

    Merges (:meth:`set_merged`) are deterministic instead: the value
    with the highest ``priority`` tuple wins regardless of arrival
    order, so folding worker snapshots from a queue yields the same
    gauge no matter which worker's report lands first.
    """

    kind = "gauge"

    def __init__(self, name: str, help: str = ""):
        super().__init__(name, help)
        self._priorities: typing.Dict[
            LabelKey, typing.Tuple[float, ...]] = {}

    def _new_sample(self) -> float:
        return 0.0

    def set(self, value: float, **labels: str) -> None:
        key = _label_key(labels)
        self._samples[key] = float(value)
        # A live set supersedes merged history: last-write-wins resumes.
        self._priorities.pop(key, None)

    def set_merged(self, value: float,
                   priority: typing.Tuple[float, ...],
                   **labels: str) -> None:
        """Set only if ``priority`` is >= the last merged priority."""
        key = _label_key(labels)
        recorded = self._priorities.get(key)
        if recorded is not None and priority < recorded:
            return
        self._samples[key] = float(value)
        self._priorities[key] = priority

    def add(self, delta: float, **labels: str) -> None:
        key = _label_key(labels)
        self._samples[key] = self._samples.get(key, 0.0) + delta

    def value(self, **labels: str) -> float:
        return self._samples.get(_label_key(labels), 0.0)

    def clear(self) -> None:
        super().clear()
        self._priorities.clear()

    def _sample_fields(self, sample: float) -> typing.Dict[str, object]:
        return {"value": sample}


class _HistogramSample:
    """Running count/sum/min/max, a sliding window, and HDR buckets.

    The window gives high-resolution local percentiles; the sparse HDR
    bucket counts survive :meth:`merge`, so percentiles stay available
    (at bucket resolution) after a cross-process fold.
    """

    __slots__ = ("count", "sum", "min", "max", "window", "buckets")

    def __init__(self):
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.window: typing.List[float] = []
        self.buckets: typing.Dict[int, int] = {}

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        index = hdr_bucket_index(value)
        self.buckets[index] = self.buckets.get(index, 0) + 1
        self.window.append(value)
        if len(self.window) > HISTOGRAM_WINDOW:
            del self.window[: len(self.window) - HISTOGRAM_WINDOW]

    def merge(self, count: int, sum_: float,
              min_: typing.Optional[float],
              max_: typing.Optional[float],
              buckets: typing.Optional[
                  typing.Mapping[object, object]] = None) -> None:
        """Fold another sample's exact moments and bucket counts in.

        Used when absorbing a snapshot from another process (see
        :meth:`MetricsRegistry.absorb_rows`): ``count``/``sum``/``min``/
        ``max`` stay exact, and ``buckets`` (an ``hdr`` snapshot field)
        folds elementwise, so merged percentiles are identical to a
        single-process run at bucket resolution.  The individual
        observations are not known, so the high-resolution window
        describes only locally observed values.
        """
        self.count += int(count)
        self.sum += float(sum_)
        if min_ is not None and float(min_) < self.min:
            self.min = float(min_)
        if max_ is not None and float(max_) > self.max:
            self.max = float(max_)
        if buckets:
            for index, bucket_count in buckets.items():
                index = int(typing.cast(int, index))
                self.buckets[index] = (self.buckets.get(index, 0)
                                       + int(typing.cast(int, bucket_count)))

    def percentile(self, q: float) -> float:
        """Window percentile (linear-interpolated) when local
        observations exist, else the HDR bucket estimate for merged-in
        samples, else NaN."""
        if not self.window:
            if self.buckets:
                return hdr_percentile(self.buckets, q)
            return float("nan")
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100]: {q}")
        ordered = sorted(self.window)
        if len(ordered) == 1:
            return ordered[0]
        rank = (q / 100.0) * (len(ordered) - 1)
        lo = int(math.floor(rank))
        hi = int(math.ceil(rank))
        if lo == hi:
            return ordered[lo]
        frac = rank - lo
        return ordered[lo] * (1.0 - frac) + ordered[hi] * frac

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else float("nan")


class Histogram(_Metric):
    """Distribution summary per label combination."""

    kind = "histogram"

    def _new_sample(self) -> _HistogramSample:
        return _HistogramSample()

    def observe(self, value: float, **labels: str) -> None:
        self._sample(labels).observe(float(value))

    def count(self, **labels: str) -> int:
        key = _label_key(labels)
        return self._samples[key].count if key in self._samples else 0

    def percentile(self, q: float, **labels: str) -> float:
        key = _label_key(labels)
        if key not in self._samples:
            return float("nan")
        return self._samples[key].percentile(q)

    def mean(self, **labels: str) -> float:
        key = _label_key(labels)
        if key not in self._samples:
            return float("nan")
        return self._samples[key].mean

    def absorb(self, fields: typing.Mapping[str, object],
               **labels: str) -> None:
        """Merge a snapshot row's moments into this histogram.

        ``fields`` is a dict shaped like one :meth:`rows` entry
        (``count`` / ``sum`` / ``min`` / ``max`` / ``hdr``).  The
        ``hdr`` bucket counts fold elementwise, so percentiles survive
        the merge exactly at bucket resolution; absorbed observations do
        not enter the high-resolution local window.
        """
        self._sample(labels).merge(
            int(fields.get("count", 0) or 0),
            float(fields.get("sum", 0.0) or 0.0),
            typing.cast(typing.Optional[float], fields.get("min")),
            typing.cast(typing.Optional[float], fields.get("max")),
            typing.cast(typing.Optional[typing.Mapping[object, object]],
                        fields.get("hdr")))

    @staticmethod
    def _percentile_field(sample: _HistogramSample, q: float
                          ) -> typing.Optional[float]:
        if sample.window or sample.buckets:
            return sample.percentile(q)
        return None

    def _sample_fields(self, sample: _HistogramSample
                       ) -> typing.Dict[str, object]:
        fields: typing.Dict[str, object] = {
            "count": sample.count,
            "sum": sample.sum,
            "min": sample.min if sample.count else None,
            "max": sample.max if sample.count else None,
            "mean": sample.mean if sample.count else None,
            "p50": self._percentile_field(sample, 50.0),
            "p90": self._percentile_field(sample, 90.0),
            "p99": self._percentile_field(sample, 99.0),
            "p999": self._percentile_field(sample, 99.9),
        }
        if sample.buckets:
            fields["hdr"] = {str(index): sample.buckets[index]
                             for index in sorted(sample.buckets)}
        return fields


class MetricsRegistry:
    """Owns named metrics; snapshot / reset / JSON + JSONL emission."""

    def __init__(self):
        self._metrics: typing.Dict[str, _Metric] = {}

    def _get(self, cls: type, name: str, help: str) -> _Metric:
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name, help)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise TypeError(f"metric {name!r} already registered as "
                            f"{metric.kind}, requested {cls.kind}")
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return typing.cast(Counter, self._get(Counter, name, help))

    def gauge(self, name: str, help: str = "") -> Gauge:
        return typing.cast(Gauge, self._get(Gauge, name, help))

    def histogram(self, name: str, help: str = "") -> Histogram:
        return typing.cast(Histogram, self._get(Histogram, name, help))

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def names(self) -> typing.List[str]:
        return sorted(self._metrics)

    def reset(self) -> None:
        """Drop every sample (metric objects stay registered)."""
        for metric in self._metrics.values():
            metric.clear()

    def absorb_rows(self, rows: typing.Iterable[
            typing.Mapping[str, object]],
            priority: typing.Optional[typing.Tuple[float, ...]] = None,
            **extra_labels: str) -> int:
        """Merge snapshot rows from another registry into this one.

        The cross-process merge API: a worker process snapshots its
        registry (:meth:`snapshot`), ships the rows over a queue or a
        run-log shard, and the parent folds them in here — counters sum,
        histograms fold exact moments plus HDR bucket counts
        (:meth:`Histogram.absorb`), and gauges resolve deterministically
        by ``priority``: the caller passes a per-source tuple (by
        convention ``(generation, pid)``), or rows carrying ``gen`` /
        ``pid`` fields supply their own, so the same gauge wins no
        matter which worker's report arrives first.  Without either,
        gauges fall back to last-write-wins.  ``extra_labels``
        (typically ``worker="worker-0"``) are added to every absorbed
        sample so merged metrics stay attributable per process.
        Returns the number of rows absorbed.
        """
        count = 0
        for row in rows:
            name = str(row.get("name", ""))
            if not name:
                continue
            labels = dict(typing.cast(typing.Mapping[str, str],
                                      row.get("labels") or {}))
            labels.update(extra_labels)
            kind = row.get("type")
            if kind == "counter":
                self.counter(name).inc(float(
                    typing.cast(float, row.get("value", 0.0)) or 0.0),
                    **labels)
            elif kind == "gauge":
                value = float(
                    typing.cast(float, row.get("value", 0.0)) or 0.0)
                row_priority = priority
                if row_priority is None and (
                        "gen" in row or "pid" in row):
                    row_priority = (
                        float(typing.cast(float, row.get("gen") or 0)),
                        float(typing.cast(float, row.get("pid") or 0)))
                if row_priority is not None:
                    self.gauge(name).set_merged(
                        value, row_priority, **labels)
                else:
                    self.gauge(name).set(value, **labels)
            elif kind == "histogram":
                self.histogram(name).absorb(row, **labels)
            else:
                continue
            count += 1
        return count

    def snapshot(self, meta: typing.Optional[
            typing.Mapping[str, object]] = None
            ) -> typing.List[typing.Dict[str, object]]:
        """All samples as JSON-ready rows, sorted by (name, labels)."""
        rows: typing.List[typing.Dict[str, object]] = []
        for name in sorted(self._metrics):
            rows.extend(self._metrics[name].rows())
        rows.sort(key=lambda r: (r["name"], sorted(r["labels"].items())))
        if meta:
            for row in rows:
                row.update(meta)
        return rows

    def to_json(self, meta: typing.Optional[
            typing.Mapping[str, object]] = None, indent: int = 2) -> str:
        return json.dumps(self.snapshot(meta), indent=indent)

    def write_jsonl(self, path: str, meta: typing.Optional[
            typing.Mapping[str, object]] = None,
            append: bool = False) -> int:
        """Emit one sample per line; returns the number of lines."""
        rows = self.snapshot(meta)
        mode = "a" if append else "w"
        with open(path, mode, encoding="utf-8") as fh:
            for row in rows:
                fh.write(json.dumps(row, sort_keys=True) + "\n")
        return len(rows)


def load_jsonl(path: str) -> typing.List[typing.Dict[str, object]]:
    """Read back rows written by :meth:`MetricsRegistry.write_jsonl`."""
    rows = []
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                rows.append(json.loads(line))
    return rows
