"""Labelled metrics: counters, gauges, and histograms.

A :class:`MetricsRegistry` owns named metrics; each metric holds one
sample per label combination (Prometheus-style, e.g. a single
``fpga.dram.bytes`` counter with a sample per ``channel``/``dir`` pair).
Snapshots are plain dict rows so they serialise directly to JSON, and
:meth:`MetricsRegistry.write_jsonl` appends one row per line so repeated
bench runs produce diffable, comparable files.
"""

from __future__ import annotations

import json
import math
import typing

LabelKey = typing.Tuple[typing.Tuple[str, str], ...]

#: Retained observations per histogram sample; beyond this the window
#: slides (percentiles then describe the most recent observations, while
#: count / sum / min / max stay exact over the full stream).
HISTOGRAM_WINDOW = 8192


def _label_key(labels: typing.Mapping[str, str]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class _Metric:
    """Base: name + per-label-combination samples."""

    kind = "metric"

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._samples: typing.Dict[LabelKey, typing.Any] = {}

    def _sample(self, labels: typing.Mapping[str, str]):
        key = _label_key(labels)
        if key not in self._samples:
            self._samples[key] = self._new_sample()
        return self._samples[key]

    def _new_sample(self):  # pragma: no cover - overridden
        raise NotImplementedError

    def labels_seen(self) -> typing.List[typing.Dict[str, str]]:
        """Every label combination this metric has samples for."""
        return [dict(key) for key in self._samples]

    def clear(self) -> None:
        self._samples.clear()

    def rows(self) -> typing.List[typing.Dict[str, object]]:
        """One snapshot dict per label combination."""
        out = []
        for key, sample in self._samples.items():
            row: typing.Dict[str, object] = {
                "name": self.name,
                "type": self.kind,
                "labels": dict(key),
            }
            row.update(self._sample_fields(sample))
            out.append(row)
        return out

    def _sample_fields(self, sample) -> typing.Dict[str, object]:
        raise NotImplementedError


class CounterCell:
    """A pre-resolved (counter, label combination) incrementer.

    Hot paths that increment the same labelled sample many times (the
    FPGA simulator's per-stage attribution) resolve the sorted label key
    once via :meth:`Counter.cell` instead of paying it per
    :meth:`Counter.inc` call.  Cells stay valid across
    :meth:`MetricsRegistry.reset`: samples are cleared in place, the
    backing dict object is retained.
    """

    __slots__ = ("_samples", "_key")

    def __init__(self, samples: typing.Dict[LabelKey, float],
                 key: LabelKey):
        self._samples = samples
        self._key = key

    def inc(self, value: float = 1.0) -> None:
        samples = self._samples
        key = self._key
        samples[key] = samples.get(key, 0.0) + value


class Counter(_Metric):
    """A monotonically increasing sum per label combination."""

    kind = "counter"

    def _new_sample(self) -> float:
        return 0.0

    def inc(self, value: float = 1.0, **labels: str) -> None:
        if value < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        key = _label_key(labels)
        self._samples[key] = self._samples.get(key, 0.0) + value

    def cell(self, **labels: str) -> CounterCell:
        """A bound incrementer with the label key resolved once."""
        return CounterCell(self._samples, _label_key(labels))

    def value(self, **labels: str) -> float:
        return self._samples.get(_label_key(labels), 0.0)

    def total(self) -> float:
        """Sum over all label combinations."""
        return sum(self._samples.values())

    def _sample_fields(self, sample: float) -> typing.Dict[str, object]:
        return {"value": sample}


class Gauge(_Metric):
    """A last-write-wins value per label combination."""

    kind = "gauge"

    def _new_sample(self) -> float:
        return 0.0

    def set(self, value: float, **labels: str) -> None:
        self._samples[_label_key(labels)] = float(value)

    def add(self, delta: float, **labels: str) -> None:
        key = _label_key(labels)
        self._samples[key] = self._samples.get(key, 0.0) + delta

    def value(self, **labels: str) -> float:
        return self._samples.get(_label_key(labels), 0.0)

    def _sample_fields(self, sample: float) -> typing.Dict[str, object]:
        return {"value": sample}


class _HistogramSample:
    """Running count/sum/min/max plus a sliding window for percentiles."""

    __slots__ = ("count", "sum", "min", "max", "window")

    def __init__(self):
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.window: typing.List[float] = []

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self.window.append(value)
        if len(self.window) > HISTOGRAM_WINDOW:
            del self.window[: len(self.window) - HISTOGRAM_WINDOW]

    def merge(self, count: int, sum_: float,
              min_: typing.Optional[float],
              max_: typing.Optional[float]) -> None:
        """Fold another sample's exact moments in.

        Used when absorbing a snapshot from another process (see
        :meth:`MetricsRegistry.absorb_rows`): ``count``/``sum``/``min``/
        ``max`` stay exact, but the individual observations are not
        known, so the percentile window describes only locally observed
        values.
        """
        self.count += int(count)
        self.sum += float(sum_)
        if min_ is not None and float(min_) < self.min:
            self.min = float(min_)
        if max_ is not None and float(max_) > self.max:
            self.max = float(max_)

    def percentile(self, q: float) -> float:
        """Linear-interpolated percentile over the retained window."""
        if not self.window:
            return float("nan")
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100]: {q}")
        ordered = sorted(self.window)
        if len(ordered) == 1:
            return ordered[0]
        rank = (q / 100.0) * (len(ordered) - 1)
        lo = int(math.floor(rank))
        hi = int(math.ceil(rank))
        if lo == hi:
            return ordered[lo]
        frac = rank - lo
        return ordered[lo] * (1.0 - frac) + ordered[hi] * frac

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else float("nan")


class Histogram(_Metric):
    """Distribution summary per label combination."""

    kind = "histogram"

    def _new_sample(self) -> _HistogramSample:
        return _HistogramSample()

    def observe(self, value: float, **labels: str) -> None:
        self._sample(labels).observe(float(value))

    def count(self, **labels: str) -> int:
        key = _label_key(labels)
        return self._samples[key].count if key in self._samples else 0

    def percentile(self, q: float, **labels: str) -> float:
        key = _label_key(labels)
        if key not in self._samples:
            return float("nan")
        return self._samples[key].percentile(q)

    def mean(self, **labels: str) -> float:
        key = _label_key(labels)
        if key not in self._samples:
            return float("nan")
        return self._samples[key].mean

    def absorb(self, fields: typing.Mapping[str, object],
               **labels: str) -> None:
        """Merge a snapshot row's moments into this histogram.

        ``fields`` is a dict shaped like one :meth:`rows` entry
        (``count`` / ``sum`` / ``min`` / ``max``).  Percentiles are not
        reconstructable from moments, so absorbed observations do not
        enter the percentile window.
        """
        self._sample(labels).merge(
            int(fields.get("count", 0) or 0),
            float(fields.get("sum", 0.0) or 0.0),
            typing.cast(typing.Optional[float], fields.get("min")),
            typing.cast(typing.Optional[float], fields.get("max")))

    def _sample_fields(self, sample: _HistogramSample
                       ) -> typing.Dict[str, object]:
        return {
            "count": sample.count,
            "sum": sample.sum,
            "min": sample.min if sample.count else None,
            "max": sample.max if sample.count else None,
            "mean": sample.mean if sample.count else None,
            "p50": sample.percentile(50.0) if sample.window else None,
            "p90": sample.percentile(90.0) if sample.window else None,
            "p99": sample.percentile(99.0) if sample.window else None,
        }


class MetricsRegistry:
    """Owns named metrics; snapshot / reset / JSON + JSONL emission."""

    def __init__(self):
        self._metrics: typing.Dict[str, _Metric] = {}

    def _get(self, cls: type, name: str, help: str) -> _Metric:
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name, help)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise TypeError(f"metric {name!r} already registered as "
                            f"{metric.kind}, requested {cls.kind}")
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return typing.cast(Counter, self._get(Counter, name, help))

    def gauge(self, name: str, help: str = "") -> Gauge:
        return typing.cast(Gauge, self._get(Gauge, name, help))

    def histogram(self, name: str, help: str = "") -> Histogram:
        return typing.cast(Histogram, self._get(Histogram, name, help))

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def names(self) -> typing.List[str]:
        return sorted(self._metrics)

    def reset(self) -> None:
        """Drop every sample (metric objects stay registered)."""
        for metric in self._metrics.values():
            metric.clear()

    def absorb_rows(self, rows: typing.Iterable[
            typing.Mapping[str, object]], **extra_labels: str) -> int:
        """Merge snapshot rows from another registry into this one.

        The cross-process merge API: a worker process snapshots its
        registry (:meth:`snapshot`), ships the rows over a queue or a
        run-log shard, and the parent folds them in here — counters sum,
        gauges take the shipped value, histograms fold exact moments
        (:meth:`Histogram.absorb`).  ``extra_labels`` (typically
        ``worker="worker-0"``) are added to every absorbed sample so
        merged metrics stay attributable per process.  Returns the
        number of rows absorbed.
        """
        count = 0
        for row in rows:
            name = str(row.get("name", ""))
            if not name:
                continue
            labels = dict(typing.cast(typing.Mapping[str, str],
                                      row.get("labels") or {}))
            labels.update(extra_labels)
            kind = row.get("type")
            if kind == "counter":
                self.counter(name).inc(float(
                    typing.cast(float, row.get("value", 0.0)) or 0.0),
                    **labels)
            elif kind == "gauge":
                self.gauge(name).set(float(
                    typing.cast(float, row.get("value", 0.0)) or 0.0),
                    **labels)
            elif kind == "histogram":
                self.histogram(name).absorb(row, **labels)
            else:
                continue
            count += 1
        return count

    def snapshot(self, meta: typing.Optional[
            typing.Mapping[str, object]] = None
            ) -> typing.List[typing.Dict[str, object]]:
        """All samples as JSON-ready rows, sorted by (name, labels)."""
        rows: typing.List[typing.Dict[str, object]] = []
        for name in sorted(self._metrics):
            rows.extend(self._metrics[name].rows())
        rows.sort(key=lambda r: (r["name"], sorted(r["labels"].items())))
        if meta:
            for row in rows:
                row.update(meta)
        return rows

    def to_json(self, meta: typing.Optional[
            typing.Mapping[str, object]] = None, indent: int = 2) -> str:
        return json.dumps(self.snapshot(meta), indent=indent)

    def write_jsonl(self, path: str, meta: typing.Optional[
            typing.Mapping[str, object]] = None,
            append: bool = False) -> int:
        """Emit one sample per line; returns the number of lines."""
        rows = self.snapshot(meta)
        mode = "a" if append else "w"
        with open(path, mode, encoding="utf-8") as fh:
            for row in rows:
                fh.write(json.dumps(row, sort_keys=True) + "\n")
        return len(rows)


def load_jsonl(path: str) -> typing.List[typing.Dict[str, object]]:
    """Read back rows written by :meth:`MetricsRegistry.write_jsonl`."""
    rows = []
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                rows.append(json.loads(line))
    return rows
