"""Run-scoped telemetry: run directories, manifests, and shards.

Every ``train`` / ``sweep`` / ``bench`` invocation opens a **run
directory** (``runs/<run-id>/``) holding

* ``manifest.json`` — what ran: command, argv, config, platform registry
  name, seed, topology, start/end timestamps, and the outcome;
* ``shard-<pid>.jsonl`` — one telemetry shard per participating process.
  Workers in the procs backend flush their
  :class:`~repro.obs.registry.MetricsRegistry` snapshot and
  :class:`~repro.obs.tracer.SpanTracer` spans at a heartbeat interval
  and on exit; the parent flushes its own shard at the end of the run;
* ``health.jsonl`` — structured straggler/stall events computed by
  :mod:`repro.obs.health` over the merged shards.

:func:`merge_run` folds the shards into one labelled timeline: metric
rows gain a ``worker`` label, spans gain the recording process's OS pid
(so :mod:`repro.obs.chrome` places each worker in its own Perfetto
process group), and :func:`aggregate_rows` collapses the worker label
back out for whole-run totals.  ``repro runs list`` / ``repro runs
diff`` / ``repro obs-report --run`` are the CLI surface.

Shards are append-only JSONL so a crashed worker's partial shard stays
readable: each flush appends the *full* cumulative snapshot tagged with
a monotonically increasing ``seq``, and the loader keeps only the
newest generation.
"""

from __future__ import annotations

import dataclasses
import itertools
import json
import os
import time
import typing

from repro.obs import runtime
from repro.obs.registry import MetricsRegistry
from repro.obs.tracer import SpanTracer

MANIFEST_NAME = "manifest.json"
HEALTH_NAME = "health.jsonl"
SHARD_PREFIX = "shard-"
SHARD_SUFFIX = ".jsonl"

#: Environment override for the run-directory root (default ``runs/``
#: under the current working directory).
ROOT_ENV = "REPRO_RUNS_DIR"
DEFAULT_ROOT = "runs"

SCHEMA_VERSION = 1

#: Seconds between worker heartbeat flushes (see
#: :meth:`ShardWriter.maybe_heartbeat`).
DEFAULT_HEARTBEAT_SECONDS = 2.0

_run_sequence = itertools.count()


def runs_root(root: typing.Optional[str] = None) -> str:
    """The directory run directories live under (not created here)."""
    return root or os.environ.get(ROOT_ENV) or DEFAULT_ROOT


def _iso(ts: float) -> str:
    return time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime(ts))


def new_run_id(command: str) -> str:
    """``<utc-stamp>-<command>-p<pid>-<seq>`` — sortable and unique.

    The pid + in-process sequence disambiguate runs opened within the
    same second (sweeps, tests).
    """
    stamp = time.strftime("%Y%m%d-%H%M%S", time.gmtime())
    return f"{stamp}-{command}-p{os.getpid()}-{next(_run_sequence)}"


class ShardWriter:
    """Appends one process's telemetry to ``shard-<pid>.jsonl``.

    Each :meth:`flush` appends the process's full metric snapshot and
    span list under a new ``seq`` generation; readers keep the newest.
    Telemetry rows are only gathered when the obs runtime is enabled —
    heartbeat records are written regardless, so worker liveness is
    observable even on metric-free runs.
    """

    def __init__(self, run_dir: str, worker: str,
                 interval: float = DEFAULT_HEARTBEAT_SECONDS):
        self.worker = worker
        self.interval = interval
        self.pid = os.getpid()
        self.path = os.path.join(
            run_dir, f"{SHARD_PREFIX}{self.pid}{SHARD_SUFFIX}")
        self._seq = 0
        self._last_flush = time.perf_counter()
        self._append([{"kind": "open", "pid": self.pid, "worker": worker,
                       "time": time.time(), "interval": interval}])

    @property
    def seq(self) -> int:
        """The newest flushed generation (0 before the first flush)."""
        return self._seq

    def _append(self, records: typing.Sequence[
            typing.Mapping[str, object]]) -> None:
        with open(self.path, "a", encoding="utf-8") as fh:
            for record in records:
                fh.write(json.dumps(record, sort_keys=True) + "\n")

    def flush(self, final: bool = False, **stats: object) -> int:
        """Append a heartbeat plus the current cumulative telemetry.

        ``stats`` (e.g. ``routines=...``, ``global_step=...``) ride on
        the heartbeat record and feed the health monitor's rate
        estimates.  ``final=True`` marks a clean exit — a shard without
        a final record is a killed or hung worker.  Returns the number
        of records appended.
        """
        now = time.time()
        self._seq += 1
        records: typing.List[typing.Dict[str, object]] = [
            {"kind": "heartbeat", "seq": self._seq, "time": now,
             "stats": dict(stats)}]
        if runtime.enabled():
            for row in runtime.metrics().snapshot():
                records.append({"kind": "metric", "seq": self._seq,
                                "row": row})
            for span in runtime.tracer().snapshot():
                records.append({"kind": "span", "seq": self._seq,
                                "row": span})
        if final:
            records.append({"kind": "final", "seq": self._seq,
                            "time": now, "stats": dict(stats)})
        self._append(records)
        self._last_flush = time.perf_counter()
        return len(records)

    def maybe_heartbeat(self, **stats: object) -> bool:
        """Flush if at least ``interval`` seconds passed since the last."""
        if time.perf_counter() - self._last_flush < self.interval:
            return False
        self.flush(**stats)
        return True


class RunLog:
    """One run directory: the manifest plus shard handles."""

    def __init__(self, path: str,
                 manifest: typing.Dict[str, object]):
        self.path = path
        self.manifest = manifest

    @classmethod
    def open(cls, command: str,
             argv: typing.Optional[typing.Sequence[str]] = None,
             config: typing.Optional[typing.Mapping[str, object]] = None,
             platform: typing.Optional[str] = None,
             seed: typing.Optional[int] = None,
             topology: typing.Optional[object] = None,
             root: typing.Optional[str] = None,
             **meta: object) -> "RunLog":
        """Create ``runs/<run-id>/`` and write the initial manifest."""
        run_id = new_run_id(command)
        path = os.path.join(runs_root(root), run_id)
        os.makedirs(path, exist_ok=True)
        started = time.time()
        manifest: typing.Dict[str, object] = {
            "schema": SCHEMA_VERSION,
            "run_id": run_id,
            "command": command,
            "argv": list(argv) if argv is not None else None,
            "pid": os.getpid(),
            "start_time": started,
            "start": _iso(started),
            "outcome": "running",
        }
        if config is not None:
            manifest["config"] = dict(config)
        if platform is not None:
            manifest["platform"] = platform
        if seed is not None:
            manifest["seed"] = seed
        if topology is not None:
            manifest["topology"] = topology
        manifest.update(meta)
        log = cls(path, manifest)
        log._write_manifest()
        return log

    @property
    def run_id(self) -> str:
        return str(self.manifest["run_id"])

    def _write_manifest(self) -> None:
        with open(os.path.join(self.path, MANIFEST_NAME), "w",
                  encoding="utf-8") as fh:
            json.dump(self.manifest, fh, indent=2, sort_keys=True,
                      default=str)
            fh.write("\n")

    def update(self, **fields: object) -> None:
        self.manifest.update(fields)
        self._write_manifest()

    def finish(self, outcome: str = "ok", **fields: object) -> None:
        """Stamp the end time and outcome (idempotent per call)."""
        ended = time.time()
        start = float(typing.cast(float, self.manifest["start_time"]))
        self.update(outcome=outcome, end_time=ended, end=_iso(ended),
                    wall_seconds=ended - start, **fields)

    def shard(self, worker: str,
              interval: float = DEFAULT_HEARTBEAT_SECONDS) -> ShardWriter:
        """A shard writer for the *calling* process (pid-named file)."""
        return ShardWriter(self.path, worker, interval=interval)


# -- reading runs back -----------------------------------------------------


@dataclasses.dataclass
class WorkerShard:
    """One process's shard, reduced to its newest telemetry generation."""

    path: str
    pid: int
    worker: str
    opened_time: float
    heartbeats: typing.List[typing.Dict[str, object]]
    final: typing.Optional[typing.Dict[str, object]]
    rows: typing.List[typing.Dict[str, object]]
    spans: typing.List[typing.Dict[str, object]]
    #: The ``seq`` of the retained telemetry generation — with ``pid``
    #: the deterministic gauge-merge priority (newest flush wins).
    generation: int = 0

    @property
    def last_heartbeat_time(self) -> float:
        if self.heartbeats:
            return float(typing.cast(
                float, self.heartbeats[-1].get("time", self.opened_time)))
        return self.opened_time

    def stats(self) -> typing.Dict[str, object]:
        """The most recent heartbeat/final stats payload."""
        record = self.final or (self.heartbeats[-1]
                                if self.heartbeats else None)
        if not record:
            return {}
        return dict(typing.cast(typing.Mapping[str, object],
                                record.get("stats") or {}))


def load_shard(path: str) -> WorkerShard:
    """Parse one shard file, keeping only the newest ``seq`` generation."""
    pid = 0
    worker = "?"
    opened = 0.0
    heartbeats: typing.List[typing.Dict[str, object]] = []
    final: typing.Optional[typing.Dict[str, object]] = None
    by_seq_rows: typing.Dict[int, typing.List[dict]] = {}
    by_seq_spans: typing.Dict[int, typing.List[dict]] = {}
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue  # torn tail write from a killed worker
            kind = record.get("kind")
            if kind == "open":
                pid = int(record.get("pid", 0))
                worker = str(record.get("worker", "?"))
                opened = float(record.get("time", 0.0))
            elif kind == "heartbeat":
                heartbeats.append(record)
            elif kind == "final":
                final = record
            elif kind == "metric":
                by_seq_rows.setdefault(
                    int(record.get("seq", 0)), []).append(record["row"])
            elif kind == "span":
                by_seq_spans.setdefault(
                    int(record.get("seq", 0)), []).append(record["row"])
    if not pid:
        stem = os.path.basename(path)
        digits = stem[len(SHARD_PREFIX):-len(SHARD_SUFFIX)]
        pid = int(digits) if digits.isdigit() else 0
    latest = max(by_seq_rows, default=0)
    latest_spans = max(by_seq_spans, default=0)
    return WorkerShard(path=path, pid=pid, worker=worker,
                       opened_time=opened, heartbeats=heartbeats,
                       final=final, rows=by_seq_rows.get(latest, []),
                       spans=by_seq_spans.get(latest_spans, []),
                       generation=latest)


def load_manifest(run_dir: str) -> typing.Dict[str, object]:
    with open(os.path.join(run_dir, MANIFEST_NAME),
              encoding="utf-8") as fh:
        return json.load(fh)


def _manifest_outcome(manifest: typing.Mapping[str, object]) -> str:
    """A run's outcome, rendering interrupted runs as ``crashed``.

    A manifest is only stamped with an ``end`` by :meth:`RunLog.finish`;
    one carrying neither an ``end`` nor a terminal ``outcome`` belongs
    to a process that died (or is still running — indistinguishable
    from the manifest alone, and ``crashed`` is the honest default for
    the historical listing).
    """
    outcome = manifest.get("outcome")
    if outcome in (None, "", "running") and manifest.get("end") is None:
        return "crashed"
    return str(outcome) if outcome not in (None, "") else "crashed"


def list_runs(root: typing.Optional[str] = None
              ) -> typing.List[typing.Dict[str, object]]:
    """Summary rows for every run directory under the root, oldest first.

    Crashed runs stay visible: a torn or unreadable manifest (the
    process died mid-write) renders as a ``crashed`` row rather than
    being skipped, as does a manifest never stamped with an end.
    """
    base = runs_root(root)
    if not os.path.isdir(base):
        return []
    out = []
    for name in sorted(os.listdir(base)):
        run_dir = os.path.join(base, name)
        if not os.path.isfile(os.path.join(run_dir, MANIFEST_NAME)):
            continue
        try:
            manifest = load_manifest(run_dir)
        except (OSError, ValueError):
            manifest = {"run_id": name, "outcome": "crashed"}
        shards = [f for f in os.listdir(run_dir)
                  if f.startswith(SHARD_PREFIX)
                  and f.endswith(SHARD_SUFFIX)]
        out.append({
            "run_id": manifest.get("run_id", name),
            "command": manifest.get("command", "?"),
            "platform": manifest.get("platform", "-"),
            "start": manifest.get("start", "-"),
            "wall_seconds": manifest.get("wall_seconds"),
            "shards": len(shards),
            "outcome": _manifest_outcome(manifest),
        })
    out.sort(key=lambda row: str(row["start"]))
    return out


def resolve_run(ref: str, root: typing.Optional[str] = None) -> str:
    """A run directory from an id, unique id fragment, or path."""
    if os.path.isfile(os.path.join(ref, MANIFEST_NAME)):
        return ref
    base = runs_root(root)
    candidate = os.path.join(base, ref)
    if os.path.isfile(os.path.join(candidate, MANIFEST_NAME)):
        return candidate
    if os.path.isdir(base):
        matches = [name for name in sorted(os.listdir(base))
                   if ref in name and os.path.isfile(
                       os.path.join(base, name, MANIFEST_NAME))]
        if len(matches) == 1:
            return os.path.join(base, matches[0])
        if matches:
            raise ValueError(f"run {ref!r} is ambiguous: "
                             + ", ".join(matches))
    raise ValueError(f"no run matching {ref!r} under {base}")


# -- merging ---------------------------------------------------------------


@dataclasses.dataclass
class MergedRun:
    """All shards of one run folded into a single labelled timeline."""

    run_dir: str
    manifest: typing.Dict[str, object]
    shards: typing.List[WorkerShard]
    #: Metric rows with a ``worker`` label naming the source process.
    rows: typing.List[typing.Dict[str, object]]
    #: Span dicts; worker spans carry the recording OS ``pid``.
    spans: typing.List[typing.Dict[str, object]]

    @property
    def parent_pid(self) -> typing.Optional[int]:
        pid = self.manifest.get("pid")
        return int(typing.cast(int, pid)) if pid is not None else None

    def worker_shards(self) -> typing.List[WorkerShard]:
        return [s for s in self.shards if s.pid != self.parent_pid]

    def registry(self) -> MetricsRegistry:
        """A live registry holding the merged, worker-labelled rows."""
        registry = MetricsRegistry()
        registry.absorb_rows(self.rows)
        return registry

    def tracer(self) -> SpanTracer:
        """A tracer holding every shard's spans (worker pids attached)."""
        tracer = SpanTracer()
        tracer.absorb_rows(self.spans)
        return tracer


def merge_run(run_dir: str) -> MergedRun:
    """Load the manifest and every shard; label rows/spans per worker.

    The parent's shard may contain rows it absorbed back from workers
    (they already carry a ``worker`` label); those are dropped here so
    each sample is counted exactly once — the worker's own shard is the
    authoritative copy.

    A torn manifest (crashed parent) degrades to a stub with outcome
    ``crashed`` — the shards are still merged, so ``obs-report --run``
    and ``runs diff`` keep working on interrupted runs.
    """
    try:
        manifest = load_manifest(run_dir)
    except (OSError, ValueError):
        manifest = {"run_id": os.path.basename(run_dir.rstrip(os.sep)),
                    "outcome": "crashed"}
    parent_pid = manifest.get("pid")
    shards = []
    for name in sorted(os.listdir(run_dir)):
        if name.startswith(SHARD_PREFIX) and name.endswith(SHARD_SUFFIX):
            shards.append(load_shard(os.path.join(run_dir, name)))
    rows: typing.List[typing.Dict[str, object]] = []
    spans: typing.List[typing.Dict[str, object]] = []
    for shard in shards:
        is_parent = (parent_pid is not None and shard.pid == parent_pid)
        for row in shard.rows:
            labels = dict(typing.cast(typing.Mapping[str, str],
                                      row.get("labels") or {}))
            if "worker" in labels:
                if is_parent:
                    continue
            else:
                labels["worker"] = shard.worker
            merged = dict(row)
            merged["labels"] = labels
            # Gauge-merge priority: newest generation, then pid, wins
            # deterministically regardless of shard file order.
            merged["gen"] = shard.generation
            merged["pid"] = shard.pid
            rows.append(merged)
        for span in shard.spans:
            merged_span = dict(span)
            if not is_parent:
                merged_span.setdefault("pid", shard.pid)
            spans.append(merged_span)
    return MergedRun(run_dir=run_dir, manifest=manifest, shards=shards,
                     rows=rows, spans=spans)


def aggregate_rows(rows: typing.Sequence[typing.Mapping[str, object]]
                   ) -> typing.List[typing.Dict[str, object]]:
    """Collapse the ``worker`` label back out: whole-run totals.

    Counters sum across workers, gauges keep the highest-priority write
    (``(gen, pid)`` when the rows carry them), histograms fold exact
    moments plus HDR bucket counts — so merged percentiles are real
    values, identical to a single-process run at bucket resolution.
    """
    registry = MetricsRegistry()
    stripped = []
    for row in rows:
        labels = dict(typing.cast(typing.Mapping[str, str],
                                  row.get("labels") or {}))
        labels.pop("worker", None)
        merged = dict(row)
        merged["labels"] = labels
        stripped.append(merged)
    registry.absorb_rows(stripped)
    return registry.snapshot()


# -- run diffing -----------------------------------------------------------


def _metric_key(row: typing.Mapping[str, object]
                ) -> typing.Tuple[str, typing.Tuple]:
    labels = typing.cast(typing.Mapping[str, str],
                         row.get("labels") or {})
    return (str(row.get("name")), tuple(sorted(labels.items())))


def _row_value(row: typing.Optional[typing.Mapping[str, object]]
               ) -> typing.Optional[float]:
    if row is None:
        return None
    if row.get("type") == "histogram":
        return float(typing.cast(float, row.get("sum", 0.0)) or 0.0)
    return float(typing.cast(float, row.get("value", 0.0)) or 0.0)


def diff_metric_rows(rows_a: typing.Sequence[typing.Mapping[str, object]],
                     rows_b: typing.Sequence[typing.Mapping[str, object]]
                     ) -> typing.List[typing.Dict[str, object]]:
    """Aggregate both row sets and report per-metric value deltas."""
    agg_a = {_metric_key(r): r for r in aggregate_rows(rows_a)}
    agg_b = {_metric_key(r): r for r in aggregate_rows(rows_b)}
    out = []
    for key in sorted(set(agg_a) | set(agg_b)):
        row_a, row_b = agg_a.get(key), agg_b.get(key)
        value_a, value_b = _row_value(row_a), _row_value(row_b)
        delta = ((value_b or 0.0) - (value_a or 0.0)
                 if (value_a is not None or value_b is not None) else 0.0)
        name, labels = key
        out.append({
            "metric": name,
            "labels": ",".join(f"{k}={v}" for k, v in labels) or "-",
            "a": value_a if value_a is not None else "-",
            "b": value_b if value_b is not None else "-",
            "delta": delta,
        })
    return out


def diff_latency_rows(rows_a: typing.Sequence[typing.Mapping[str, object]],
                      rows_b: typing.Sequence[typing.Mapping[str, object]]
                      ) -> typing.List[typing.Dict[str, object]]:
    """Per-segment latency percentile deltas (b minus a), in ms.

    Reads the aggregated ``lat.segment_seconds`` histograms — the HDR
    fold keeps p50/p99 real across workers, so the diff works on
    multi-process runs too.
    """
    def percentiles(rows):
        out = {}
        for row in aggregate_rows(rows):
            if row.get("name") != "lat.segment_seconds":
                continue
            labels = typing.cast(typing.Mapping[str, str],
                                 row.get("labels") or {})
            out[tuple(sorted(labels.items()))] = row
        return out

    agg_a = percentiles(rows_a)
    agg_b = percentiles(rows_b)
    out = []
    for key in sorted(set(agg_a) | set(agg_b)):
        row_a = agg_a.get(key) or {}
        row_b = agg_b.get(key) or {}
        for field in ("p50", "p99"):
            value_a = typing.cast(typing.Optional[float],
                                  row_a.get(field))
            value_b = typing.cast(typing.Optional[float],
                                  row_b.get(field))
            if value_a is None and value_b is None:
                continue
            ms_a = value_a * 1e3 if value_a is not None else None
            ms_b = value_b * 1e3 if value_b is not None else None
            out.append({
                "segment": ",".join(f"{k}={v}" for k, v in key) or "-",
                "field": f"{field}_ms",
                "a": ms_a if ms_a is not None else "-",
                "b": ms_b if ms_b is not None else "-",
                "delta": (ms_b or 0.0) - (ms_a or 0.0),
            })
    return out


def _scenario_diff(man_a: typing.Mapping[str, object],
                   man_b: typing.Mapping[str, object]
                   ) -> typing.List[typing.Dict[str, object]]:
    scen_a = typing.cast(typing.Mapping[str, typing.Mapping],
                         man_a.get("scenarios") or {})
    scen_b = typing.cast(typing.Mapping[str, typing.Mapping],
                         man_b.get("scenarios") or {})
    rows = []
    for name in sorted(set(scen_a) | set(scen_b)):
        entry_a = scen_a.get(name) or {}
        entry_b = scen_b.get(name) or {}
        fields = ["ips", "routines_per_second", "wall_seconds"]
        buckets = sorted(set(entry_a.get("buckets") or {})
                         | set(entry_b.get("buckets") or {}))
        fields.extend(f"bucket:{bucket}" for bucket in buckets)
        for field in fields:
            if field.startswith("bucket:"):
                bucket = field[len("bucket:"):]
                value_a = (entry_a.get("buckets") or {}).get(bucket)
                value_b = (entry_b.get("buckets") or {}).get(bucket)
            else:
                value_a = entry_a.get(field)
                value_b = entry_b.get(field)
            if value_a is None and value_b is None:
                continue
            rows.append({
                "scenario": name,
                "field": field,
                "a": value_a if value_a is not None else "-",
                "b": value_b if value_b is not None else "-",
                "delta": (float(value_b or 0.0) - float(value_a or 0.0)),
            })
    return rows


def diff_runs(ref_a: str, ref_b: str,
              root: typing.Optional[str] = None
              ) -> typing.Dict[str, object]:
    """Metric and scenario deltas between two runs (b minus a)."""
    merged_a = merge_run(resolve_run(ref_a, root))
    merged_b = merge_run(resolve_run(ref_b, root))
    return {
        "a": merged_a.manifest.get("run_id"),
        "b": merged_b.manifest.get("run_id"),
        "scenarios": _scenario_diff(merged_a.manifest,
                                    merged_b.manifest),
        "metrics": diff_metric_rows(merged_a.rows, merged_b.rows),
        "latency": diff_latency_rows(merged_a.rows, merged_b.rows),
    }


def write_health(run_dir: str,
                 events: typing.Sequence[typing.Mapping[str, object]]
                 ) -> int:
    """Persist health events next to the shards; returns the count."""
    path = os.path.join(run_dir, HEALTH_NAME)
    with open(path, "w", encoding="utf-8") as fh:
        for event in events:
            fh.write(json.dumps(event, sort_keys=True) + "\n")
    return len(events)
