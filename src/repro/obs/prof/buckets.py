"""Cycle-cause buckets and the per-stage decomposition rules.

The FA3C paper's performance arguments — the Figure 10 configuration
ablation, the Table 2 traffic budget, the Section 3.2 roofline — are all
statements about *where the cycles go*: PE compute vs. DRAM stalls vs.
layout transformation vs. fixed control overheads.  This module defines
the canonical cause buckets and the decomposition of one executed stage
into them.  It is shared by

* the discrete-event FPGA simulator (measured, contended durations in
  integer cycles — :meth:`repro.fpga.platform.FPGASim`), and
* the analytic platform model (uncontended durations in fractional
  cycles — :meth:`repro.fpga.platform.FA3CPlatform.stage_attribution`).

The cardinal rule is that **buckets partition the total**: every
decomposition returned here sums to exactly the cycles it was asked to
attribute (bit-exact on the integer path), so per-layer and per-CU
aggregations always reconcile with end-to-end simulated time.  The test
suite asserts this invariant for every Table 1 network / batch / stage
combination.
"""

from __future__ import annotations

import typing

# -- FPGA cause buckets ----------------------------------------------------

#: Cycles the PE array spends computing FW / BW / GC rounds.
PE_COMPUTE = "pe_compute"
#: Cycles a double-buffered stage waits for DMA that did not hide under
#: compute (channel occupancy + queueing behind other CUs).
DRAM_WAIT = "dram_wait"
#: Cycles the PEs stall for serialised buffer refills when double
#: buffering is disabled (Section 4.4.3 ablation).
BUFFER_STALL = "buffer_stall"
#: DMA-bound cycles attributable to layout transformation traffic: the
#: TLU-transposed BW parameter load (Section 4.4.3) or the Alt2 second
#: layout copy written per RMSProp update (Section 5.4).
TLU_LAYOUT = "tlu_layout"
#: Cycles of the RMSProp module's global parameter update (Section 4.2.3).
RMSPROP = "rmsprop"
#: Fixed control cycles: pipeline fill, buffer swap, task decode /
#: handshake (the FPGA analogue of a kernel launch, Section 3.4).
CONTROL = "control"

FPGA_BUCKETS: typing.Tuple[str, ...] = (
    PE_COMPUTE, DRAM_WAIT, BUFFER_STALL, TLU_LAYOUT, RMSPROP, CONTROL)

# -- GPU / host-software cause buckets ------------------------------------

#: Kernel body execution time (compute- or bandwidth-limited).
GPU_KERNEL = "kernel"
#: Kernel launch overhead — the Section 3.4 ">38 % of A3C kernel time".
GPU_LAUNCH = "launch"
#: Framework overhead: TF ``session.run`` dispatch, GA3C per-request
#: queue handling, CPU executor scheduling.
GPU_FRAMEWORK = "framework"
#: Host<->device PCIe DMA time.
GPU_MEMCPY = "memcpy"

GPU_BUCKETS: typing.Tuple[str, ...] = (
    GPU_KERNEL, GPU_LAUNCH, GPU_FRAMEWORK, GPU_MEMCPY)

#: Layer label for stages that span the whole parameter set rather than
#: one layer (RMSProp update, parameter sync).
GLOBAL_LAYER = "global"

#: Metric names the attribution flows through (see docs/observability.md).
FPGA_CYCLES_METRIC = "fpga.cycles"
FPGA_CYCLES_TOTAL_METRIC = "fpga.cycles.total"
GPU_TIME_METRIC = "gpu.time_ns"
GPU_TIME_TOTAL_METRIC = "gpu.time_ns.total"


def split_stage_name(name: str) -> typing.Tuple[str, str]:
    """``("FW", "conv1")`` from ``"FW:conv1"``.

    Whole-parameter-set stages (``RMSProp``, ``ParamSync``) carry no
    layer suffix and map to the :data:`GLOBAL_LAYER` pseudo-layer.
    """
    if ":" in name:
        kind, layer = name.split(":", 1)
        return kind, layer
    return name, GLOBAL_LAYER


def compute_bucket(kind: str) -> str:
    """The bucket a stage kind's compute cycles belong to."""
    return RMSPROP if kind == "RMSProp" else PE_COMPUTE


def fpga_stage_buckets(stage, total_cycles,
                       double_buffering: bool = True
                       ) -> typing.Dict[str, typing.Union[int, float]]:
    """Decompose one executed stage into cause buckets.

    ``stage`` is a :class:`repro.fpga.timing.StageTiming` (duck-typed:
    ``name``, ``compute_cycles``, ``overhead_cycles``,
    ``transform_words`` and the word totals are read).  ``total_cycles``
    is the stage's observed duration and must be at least
    ``stage.compute_cycles`` — in the discrete-event simulator it always
    is, because compute is one of the events the stage waits on.

    Returns ``{bucket: cycles}`` whose values **sum to exactly
    ``total_cycles``** (bit-exact when ``total_cycles`` is an int).
    """
    if total_cycles < stage.compute_cycles:
        raise ValueError(
            f"stage {stage.name!r}: total {total_cycles} is below its "
            f"compute floor {stage.compute_cycles}")
    kind, _layer = split_stage_name(stage.name)
    buckets: typing.Dict[str, typing.Union[int, float]] = {}
    overhead = min(getattr(stage, "overhead_cycles", 0),
                   stage.compute_cycles)
    work = stage.compute_cycles - overhead
    if work:
        buckets[compute_bucket(kind)] = work
    if overhead:
        buckets[CONTROL] = overhead
    residual = total_cycles - stage.compute_cycles
    if residual > 0:
        buckets.update(split_residual(stage, residual, double_buffering))
    return buckets


def split_residual(stage, residual, double_buffering: bool = True
                   ) -> typing.Dict[str, typing.Union[int, float]]:
    """Classify the non-compute share of a stage's duration.

    Without double buffering the PEs stall while each parameter / line
    buffer refills serially, so the whole residual is a *buffer refill
    stall*.  With double buffering the residual is DMA time that did not
    hide under compute; the share carried by layout-transformation
    traffic (``stage.transform_words`` — the TLU-loaded BW parameters or
    the Alt2 second layout copy) is attributed to :data:`TLU_LAYOUT`
    pro rata by word count, the rest to :data:`DRAM_WAIT`.

    The returned values sum to exactly ``residual`` on the integer path
    (the transform share uses floor division; the remainder goes to
    :data:`DRAM_WAIT`).
    """
    if residual <= 0:
        return {}
    if not double_buffering and stage.compute_cycles:
        # The PEs sat idle while each buffer refilled serially.  Pure-DMA
        # stages (ParamSync) never engage the PEs, so they fall through
        # to the DMA classification below instead.
        return {BUFFER_STALL: residual}
    out: typing.Dict[str, typing.Union[int, float]] = {}
    dma_words = stage.total_load_words + stage.total_store_words
    transform_words = min(getattr(stage, "transform_words", 0), dma_words)
    transform: typing.Union[int, float] = 0
    if transform_words and dma_words:
        if isinstance(residual, int):
            transform = residual * transform_words // dma_words
        else:
            transform = residual * (transform_words / dma_words)
    if transform:
        out[TLU_LAYOUT] = transform
    rest = residual - transform
    if rest:
        out[DRAM_WAIT] = rest
    return out
