"""Measured-vs-roofline gap report (attribution × Section 3.2 analysis).

Joins a measured :class:`~repro.obs.prof.attribution.AttributionReport`
with the analytic roofline of :mod:`repro.analysis.roofline`: for every
(layer, stage) the simulator executed, compare the measured per-task
cycles against the roofline bound of the FPGA configuration and name the
binding constraint (compute-bound vs. memory-bound) next to the measured
dominant cause bucket.  A gap ratio near 1.0 with matching constraint
names means the simulator agrees with the paper's Section 3.2 argument;
a large gap points at contention or fixed overheads the roofline cannot
see — which the bucket column then explains.
"""

from __future__ import annotations

import typing

from repro.analysis.roofline import stage_flops, stage_traffic_bytes
from repro.fpga.dram import WORD_BYTES, WORDS_PER_BEAT

#: Stage kinds the roofline models, with the task whose count normalises
#: the measured cycles and the batch each task runs at.
_STAGE_TASKS = (("FW", "inference"), ("GC", "train"), ("BW", "train"))


def fpga_peak_flops(config) -> float:
    """Peak FLOP/s of one CU: each PE does one MAC (2 FLOPs) per cycle."""
    return 2.0 * config.pe_per_cu * config.clock_hz


def fpga_mem_bandwidth(config) -> float:
    """Achieved bytes/s of one DDR4 channel at the modelled efficiency."""
    return (WORDS_PER_BEAT * WORD_BYTES * config.clock_hz
            * config.dram_efficiency)


def fpga_roofline_gap_rows(report, platform,
                           inference_batch: int = 1,
                           training_batch: int = 5
                           ) -> typing.List[typing.Dict[str, object]]:
    """Per-(layer, stage) gap table for one FPGA platform's run.

    ``report`` must come from a run of ``platform`` (same topology and
    batch sizes); measured cycles are averaged over the executed task
    count, so contention across agents shows up as gap, not as volume.
    """
    config = platform.config
    peak = fpga_peak_flops(config)
    bandwidth = fpga_mem_bandwidth(config)
    rows = []
    for spec in platform.topology.layers:
        for kind, task in _STAGE_TASKS:
            measured = report.fpga_layer_cycles(stage=kind,
                                                layer=spec.name)
            tasks = report.task_counts.get(task, 0.0)
            if not measured or not tasks:
                continue
            batch = inference_batch if kind == "FW" else training_batch
            flops = stage_flops(spec, batch, kind.lower())
            traffic = stage_traffic_bytes(spec, batch)
            compute_limit = flops / peak
            memory_limit = traffic / bandwidth
            roofline = max(compute_limit, memory_limit)
            measured_seconds = measured / tasks / config.clock_hz
            rows.append({
                "layer": spec.name,
                "stage": kind,
                "measured_us": round(measured_seconds * 1e6, 3),
                "roofline_us": round(roofline * 1e6, 3),
                "gap": round(measured_seconds / roofline, 2)
                if roofline else float("inf"),
                "bound": "compute" if compute_limit >= memory_limit
                else "memory",
                "top_bucket": report.fpga_top_bucket(kind, spec.name),
            })
    return rows
