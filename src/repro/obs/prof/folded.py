"""Folded-stack (flamegraph) export of attribution data.

One line per unique stack, semicolon-separated frames, space, integer
weight — the format consumed by Brendan Gregg's ``flamegraph.pl``,
`inferno <https://github.com/jonhoo/inferno>`_ and
`speedscope <https://speedscope.app>`_::

    fpga;cu0.infer;inference;FW:conv1;pe_compute 123456
    gpu;gpu_cudnn;train;launch 987654

FPGA stacks weigh simulated *cycles*; GPU stacks weigh modelled
*nanoseconds*.  The two never appear in the same file section with
mixed meaning — the frame root (``fpga`` / ``gpu``) names the unit, and
:func:`folded_lines` keeps each platform's lines contiguous so a viewer
can load either subtree on its own.
"""

from __future__ import annotations

import typing

FPGA_ROOT = "fpga"
GPU_ROOT = "gpu"


def _frame(text: str) -> str:
    """Sanitise one stack frame: the format reserves ';' and ' '."""
    return str(text).replace(";", ",").replace(" ", "_")


def folded_lines(report) -> typing.List[str]:
    """Render an :class:`~repro.obs.prof.attribution.AttributionReport`.

    Weights are rounded to integers (they already are integers on the
    instrumented paths); zero-weight stacks are dropped.  Lines are
    sorted for deterministic golden-file comparison.
    """
    lines = []
    for (cu, task, stage, layer, bucket), cycles in sorted(
            report.fpga.items()):
        weight = int(round(cycles))
        if weight <= 0:
            continue
        stack = ";".join(_frame(f) for f in
                         (FPGA_ROOT, cu, task, f"{stage}:{layer}", bucket))
        lines.append(f"{stack} {weight}")
    for (platform, task, bucket), ns in sorted(report.gpu.items()):
        weight = int(round(ns))
        if weight <= 0:
            continue
        stack = ";".join(_frame(f) for f in
                         (GPU_ROOT, platform, task, bucket))
        lines.append(f"{stack} {weight}")
    return lines


def write_folded(report, path) -> int:
    """Write the folded profile to ``path``; returns the line count."""
    lines = folded_lines(report)
    with open(path, "w", encoding="utf-8") as handle:
        for line in lines:
            handle.write(line + "\n")
    return len(lines)


def read_folded(path) -> typing.List[typing.Tuple[typing.List[str], int]]:
    """Parse a folded file back to ``([frame, ...], weight)`` pairs."""
    out = []
    with open(path, "r", encoding="utf-8") as handle:
        for raw in handle:
            raw = raw.strip()
            if not raw:
                continue
            stack, _, weight = raw.rpartition(" ")
            out.append((stack.split(";"), int(weight)))
    return out
