"""repro.obs.prof — cycle-attribution profiling over :mod:`repro.obs`.

Layered on the PR-1 metrics/tracer: the instrumented platforms tag every
simulated cycle (FPGA) or modelled nanosecond (GPU) with a *cause
bucket* (:mod:`~repro.obs.prof.buckets`); the attribution engine
aggregates per-CU / per-layer / per-stage with a hard buckets-sum-to-
total invariant (:mod:`~repro.obs.prof.attribution`); exports feed
flamegraph viewers (:mod:`~repro.obs.prof.folded`), the measured-vs-
roofline gap report (:mod:`~repro.obs.prof.roofline_gap`) and the
``repro bench`` perf-regression gate (:mod:`~repro.obs.prof.baseline`).

``baseline`` and ``roofline_gap`` import the platform models, which in
turn import :mod:`repro.obs` — so they are exposed lazily (PEP 562) to
keep this package importable from inside those platform modules.
"""

from repro.obs.prof.attribution import AttributionError, AttributionReport
from repro.obs.prof.buckets import (
    FPGA_BUCKETS,
    FPGA_CYCLES_METRIC,
    FPGA_CYCLES_TOTAL_METRIC,
    GPU_BUCKETS,
    GPU_TIME_METRIC,
    GPU_TIME_TOTAL_METRIC,
    fpga_stage_buckets,
    split_stage_name,
)
from repro.obs.prof.folded import folded_lines, read_folded, write_folded

_LAZY_MODULES = ("baseline", "roofline_gap")
_LAZY_NAMES = {
    "DEFAULT_BASELINE": "baseline",
    "SCENARIOS": "baseline",
    "check_snapshot": "baseline",
    "collect_snapshot": "baseline",
    "load_snapshot": "baseline",
    "run_scenario": "baseline",
    "scenario_names": "baseline",
    "write_snapshot": "baseline",
    "fpga_roofline_gap_rows": "roofline_gap",
}

__all__ = [
    "AttributionError",
    "AttributionReport",
    "FPGA_BUCKETS",
    "FPGA_CYCLES_METRIC",
    "FPGA_CYCLES_TOTAL_METRIC",
    "GPU_BUCKETS",
    "GPU_TIME_METRIC",
    "GPU_TIME_TOTAL_METRIC",
    "folded_lines",
    "fpga_stage_buckets",
    "read_folded",
    "split_stage_name",
    "write_folded",
] + sorted(set(_LAZY_NAMES) | set(_LAZY_MODULES))


def __getattr__(name):
    import importlib
    if name in _LAZY_MODULES:
        return importlib.import_module(f"repro.obs.prof.{name}")
    if name in _LAZY_NAMES:
        module = importlib.import_module(
            f"repro.obs.prof.{_LAZY_NAMES[name]}")
        return getattr(module, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
