"""The attribution engine: bucket counters -> per-CU/layer/stage reports.

Instrumented platforms record cause-bucketed durations through the
:mod:`repro.obs` metrics registry:

* ``fpga.cycles``  (labels ``cu``, ``task``, ``stage``, ``layer``,
  ``bucket``) — integer simulated cycles per cause, plus
  ``fpga.cycles.total`` (label ``cu``) incremented by the same integer
  amount per stage, so the bucket/total invariant is bit-exact;
* ``gpu.time_ns`` (labels ``platform``, ``task``, ``bucket``) — integer
  nanoseconds of modelled GPU/host time, plus ``gpu.time_ns.total``
  (labels ``platform``, ``task``).

:class:`AttributionReport` aggregates either a live registry snapshot or
rows reloaded from a ``--metrics`` JSONL file into per-CU, per-layer and
per-stage breakdowns, validates the sum-to-total invariant, and feeds the
folded-stack exporter and the roofline-gap report.
"""

from __future__ import annotations

import typing

from repro.obs.prof.buckets import (
    FPGA_BUCKETS,
    FPGA_CYCLES_METRIC,
    FPGA_CYCLES_TOTAL_METRIC,
    GPU_BUCKETS,
    GPU_TIME_METRIC,
    GPU_TIME_TOTAL_METRIC,
)

Rows = typing.Sequence[typing.Mapping[str, object]]

#: (cu, task, stage, layer, bucket) -> cycles
FPGAKey = typing.Tuple[str, str, str, str, str]
#: (platform, task, bucket) -> nanoseconds
GPUKey = typing.Tuple[str, str, str]


class AttributionError(ValueError):
    """The bucket/total invariant does not hold."""


class AttributionReport:
    """Aggregated cycle/time attribution over one run's metrics."""

    def __init__(self, rows: Rows):
        self.fpga: typing.Dict[FPGAKey, float] = {}
        self.fpga_totals: typing.Dict[str, float] = {}
        self.gpu: typing.Dict[GPUKey, float] = {}
        self.gpu_totals: typing.Dict[typing.Tuple[str, str], float] = {}
        self.task_counts: typing.Dict[str, float] = {}
        for row in rows:
            name = row.get("name")
            labels = row.get("labels") or {}
            value = float(row.get("value", 0.0) or 0.0)
            if name == FPGA_CYCLES_METRIC:
                key = (str(labels.get("cu", "?")),
                       str(labels.get("task", "?")),
                       str(labels.get("stage", "?")),
                       str(labels.get("layer", "?")),
                       str(labels.get("bucket", "?")))
                self.fpga[key] = self.fpga.get(key, 0.0) + value
            elif name == FPGA_CYCLES_TOTAL_METRIC:
                cu = str(labels.get("cu", "?"))
                self.fpga_totals[cu] = self.fpga_totals.get(cu, 0.0) \
                    + value
            elif name == GPU_TIME_METRIC:
                gkey = (str(labels.get("platform", "?")),
                        str(labels.get("task", "?")),
                        str(labels.get("bucket", "?")))
                self.gpu[gkey] = self.gpu.get(gkey, 0.0) + value
            elif name == GPU_TIME_TOTAL_METRIC:
                tkey = (str(labels.get("platform", "?")),
                        str(labels.get("task", "?")))
                self.gpu_totals[tkey] = self.gpu_totals.get(tkey, 0.0) \
                    + value
            elif name == "fpga.cu.tasks":
                task = str(labels.get("task", "?"))
                self.task_counts[task] = self.task_counts.get(task, 0.0) \
                    + value

    @classmethod
    def from_registry(cls, registry) -> "AttributionReport":
        """Build from a live :class:`~repro.obs.MetricsRegistry`."""
        return cls(registry.snapshot())

    # -- invariant ---------------------------------------------------------

    def validate(self) -> "AttributionReport":
        """Assert buckets sum exactly to the recorded totals.

        Both sides accumulate the *same* integer stage contributions
        (below 2**53, so float addition is exact); any difference means
        an instrumentation bug.  Raises :class:`AttributionError`.
        """
        by_cu: typing.Dict[str, float] = {}
        for (cu, _task, _stage, _layer, _bucket), v in self.fpga.items():
            by_cu[cu] = by_cu.get(cu, 0.0) + v
        for cu in sorted(set(by_cu) | set(self.fpga_totals)):
            if by_cu.get(cu, 0.0) != self.fpga_totals.get(cu, 0.0):
                raise AttributionError(
                    f"fpga.cycles buckets for cu={cu!r} sum to "
                    f"{by_cu.get(cu, 0.0)} but fpga.cycles.total is "
                    f"{self.fpga_totals.get(cu, 0.0)}")
        by_task: typing.Dict[typing.Tuple[str, str], float] = {}
        for (platform, task, _bucket), v in self.gpu.items():
            key = (platform, task)
            by_task[key] = by_task.get(key, 0.0) + v
        for key in sorted(set(by_task) | set(self.gpu_totals)):
            if by_task.get(key, 0.0) != self.gpu_totals.get(key, 0.0):
                raise AttributionError(
                    f"gpu.time_ns buckets for {key} sum to "
                    f"{by_task.get(key, 0.0)} but gpu.time_ns.total is "
                    f"{self.gpu_totals.get(key, 0.0)}")
        return self

    # -- aggregate queries -------------------------------------------------

    @property
    def has_fpga(self) -> bool:
        return bool(self.fpga)

    @property
    def has_gpu(self) -> bool:
        return bool(self.gpu)

    def fpga_total_cycles(self) -> float:
        return sum(self.fpga.values())

    def gpu_total_ns(self) -> float:
        return sum(self.gpu.values())

    def fpga_bucket_totals(self) -> typing.Dict[str, float]:
        """Cycles per cause bucket, across all CUs / tasks / layers."""
        out: typing.Dict[str, float] = {}
        for (_cu, _task, _stage, _layer, bucket), v in self.fpga.items():
            out[bucket] = out.get(bucket, 0.0) + v
        return out

    def fpga_bucket_shares(self) -> typing.Dict[str, float]:
        """Fraction of all simulated CU cycles per cause bucket."""
        totals = self.fpga_bucket_totals()
        grand = sum(totals.values())
        if grand <= 0:
            return {}
        return {bucket: v / grand for bucket, v in totals.items()}

    def gpu_bucket_totals(self) -> typing.Dict[str, float]:
        out: typing.Dict[str, float] = {}
        for (_platform, _task, bucket), v in self.gpu.items():
            out[bucket] = out.get(bucket, 0.0) + v
        return out

    def gpu_bucket_shares(self) -> typing.Dict[str, float]:
        totals = self.gpu_bucket_totals()
        grand = sum(totals.values())
        if grand <= 0:
            return {}
        return {bucket: v / grand for bucket, v in totals.items()}

    def bucket_shares(self) -> typing.Dict[str, float]:
        """FPGA shares when present, else GPU shares (bench snapshots)."""
        return self.fpga_bucket_shares() if self.has_fpga \
            else self.gpu_bucket_shares()

    def fpga_layer_cycles(self, stage: typing.Optional[str] = None,
                          layer: typing.Optional[str] = None) -> float:
        """Cycles matching a stage kind and/or layer, across CUs."""
        total = 0.0
        for (_cu, _task, skind, slayer, _bucket), v in self.fpga.items():
            if stage is not None and skind != stage:
                continue
            if layer is not None and slayer != layer:
                continue
            total += v
        return total

    def fpga_layer_buckets(self, stage: str, layer: str
                           ) -> typing.Dict[str, float]:
        out: typing.Dict[str, float] = {}
        for (_cu, _task, skind, slayer, bucket), v in self.fpga.items():
            if skind == stage and slayer == layer:
                out[bucket] = out.get(bucket, 0.0) + v
        return out

    def fpga_top_bucket(self, stage: str, layer: str) -> str:
        buckets = self.fpga_layer_buckets(stage, layer)
        if not buckets:
            return "-"
        return max(sorted(buckets), key=lambda b: buckets[b])

    # -- table rows (rendered through repro.harness.report) ----------------

    def layer_rows(self) -> typing.List[typing.Dict[str, object]]:
        """Per-(layer, stage) attribution: absolute cycles + bucket %.

        Only buckets that appear anywhere in the run become columns, so
        tables stay narrow (e.g. no ``buffer_stall`` column on a
        double-buffered run).
        """
        grand = self.fpga_total_cycles()
        present = [b for b in FPGA_BUCKETS
                   if self.fpga_bucket_totals().get(b, 0.0) > 0]
        groups: typing.Dict[typing.Tuple[str, str],
                            typing.Dict[str, float]] = {}
        for (_cu, _task, stage, layer, bucket), v in self.fpga.items():
            entry = groups.setdefault((stage, layer), {})
            entry[bucket] = entry.get(bucket, 0.0) + v
        rows = []
        for (stage, layer) in sorted(groups):
            entry = groups[(stage, layer)]
            total = sum(entry.values())
            row: typing.Dict[str, object] = {
                "layer": layer,
                "stage": stage,
                "cycles": int(total),
                "share": f"{100.0 * total / grand:.1f}%"
                if grand else "-",
            }
            for bucket in present:
                row[bucket] = f"{100.0 * entry.get(bucket, 0.0) / total:.1f}%" \
                    if total else "-"
            rows.append(row)
        return rows

    def cu_rows(self) -> typing.List[typing.Dict[str, object]]:
        """Per-CU bucket breakdown (absolute cycles + percent)."""
        groups: typing.Dict[str, typing.Dict[str, float]] = {}
        for (cu, _task, _stage, _layer, bucket), v in self.fpga.items():
            entry = groups.setdefault(cu, {})
            entry[bucket] = entry.get(bucket, 0.0) + v
        present = [b for b in FPGA_BUCKETS
                   if any(b in e for e in groups.values())]
        rows = []
        for cu in sorted(groups):
            entry = groups[cu]
            total = sum(entry.values())
            row: typing.Dict[str, object] = {"cu": cu,
                                             "cycles": int(total)}
            for bucket in present:
                row[bucket] = f"{100.0 * entry.get(bucket, 0.0) / total:.1f}%" \
                    if total else "-"
            rows.append(row)
        return rows

    def gpu_rows(self) -> typing.List[typing.Dict[str, object]]:
        """Per-(platform, task) GPU time breakdown in milliseconds."""
        groups: typing.Dict[typing.Tuple[str, str],
                            typing.Dict[str, float]] = {}
        for (platform, task, bucket), v in self.gpu.items():
            entry = groups.setdefault((platform, task), {})
            entry[bucket] = entry.get(bucket, 0.0) + v
        present = [b for b in GPU_BUCKETS
                   if any(b in e for e in groups.values())]
        rows = []
        for (platform, task) in sorted(groups):
            entry = groups[(platform, task)]
            total = sum(entry.values())
            row: typing.Dict[str, object] = {
                "platform": platform,
                "task": task,
                "total_ms": round(total / 1e6, 3),
            }
            for bucket in present:
                row[bucket] = f"{100.0 * entry.get(bucket, 0.0) / total:.1f}%" \
                    if total else "-"
            rows.append(row)
        return rows
