"""Perf baselines: named scenarios, ``BENCH_fa3c.json`` snapshots, checks.

The simulator is a deterministic discrete-event model, so identical code
produces bit-identical IPS and attribution — any drift in a snapshot
diff is a real behaviour change.  That makes tight tolerances practical:
the defaults allow 5 % relative IPS drop and 2 percentage points of
bucket-share drift, there to absorb intentional small remodelling
without a baseline refresh, not measurement noise.

Workflow (see docs/observability.md):

* ``repro bench --baseline`` runs the scenario matrix and (re)writes the
  committed ``BENCH_fa3c.json`` — IPS plus cause-bucket shares per
  scenario, no timestamps, so the file diffs cleanly in review;
* ``repro bench --check`` re-runs the scenarios named in the snapshot
  and exits non-zero listing every out-of-tolerance metric (the CI
  ``perf-gate`` job).
"""

from __future__ import annotations

import json
import time
import typing

from repro import obs
from repro.obs.prof.attribution import AttributionReport

#: The committed snapshot at the repo root.
DEFAULT_BASELINE = "BENCH_fa3c.json"
SNAPSHOT_VERSION = 1

#: Allowed relative IPS drop before the gate fails.
DEFAULT_IPS_RTOL = 0.05
#: Allowed absolute drift of one bucket's share (0.02 = 2 points).
DEFAULT_SHARE_ATOL = 0.02

#: The committed wall-clock snapshot (host time, not modelled time).
DEFAULT_WALLCLOCK_BASELINE = "BENCH_wallclock.json"
WALLCLOCK_VERSION = 1

#: Wall clock is hardware- and load-dependent, so the check is loose and
#: informational — it catches order-of-magnitude regressions (a fast
#: path accidentally disabled), not noise.  The modelled-IPS gate above
#: stays strict.
DEFAULT_WALLCLOCK_RTOL = 0.5

#: The committed per-scenario latency-distribution snapshot.
DEFAULT_LATENCY_BASELINE = "BENCH_latency.json"
LATENCY_VERSION = 1

#: The p99 gate is informational (like the wall-clock gate): sim-time
#: latencies are deterministic, but HDR quantisation means a one-bucket
#: shift can move a percentile by ~12 %, so the tolerance is wider than
#: the IPS gate's.  Exact distribution changes still show up in the
#: committed ``hdr`` counts, which diff bit-for-bit.
DEFAULT_LATENCY_RTOL = 0.25


class Scenario(typing.NamedTuple):
    """One benchmarked configuration: a backend under a fixed load."""

    name: str
    backend: str                          # repro.backends registry name
    overrides: typing.Tuple[typing.Tuple[str, object], ...] = ()
    num_agents: int = 8
    t_max: int = 5
    routines: int = 25
    host: str = ""                        # "" = default HostModel

    def build(self):
        """A fresh backend instance (default topology) for one run."""
        from repro import backends
        return backends.create(self.backend, **dict(self.overrides))

    def build_host(self):
        """The HostModel for this scenario (None = platform default)."""
        if not self.host:
            return None
        from repro.platforms.throughput import HostModel
        factory = getattr(HostModel, self.host, None)
        if factory is None:
            raise ValueError(f"unknown host model {self.host!r} in "
                             f"scenario {self.name!r}")
        return factory()


#: The bench matrix: the proposed design, the Section 5.4 ablations that
#: move cycles between cause buckets (no double buffering -> buffer
#: stalls, Alt2 -> layout traffic), and the software baselines.
SCENARIOS: typing.Tuple[Scenario, ...] = (
    Scenario("fa3c-n8", "fa3c-fpga"),
    Scenario("fa3c-single-cu-n8", "fa3c-single-cu"),
    Scenario("fa3c-alt2-n8", "fa3c-alt2"),
    Scenario("fa3c-nodb-n8", "fa3c-fpga",
             (("double_buffering", False),)),
    Scenario("gpu-cudnn-n8", "a3c-cudnn"),
    Scenario("ga3c-tf-n8", "ga3c-tf"),
    # GA3C fed by the SoA batched engine: the amortised host step
    # (HostModel.batched, a frozen calibration figure) shifts the
    # occupancy curve toward the contention-limited region.
    Scenario("ga3c-tf-batched-n8", "ga3c-tf", host="batched"),
    Scenario("a3c-tf-gpu-n8", "a3c-tf-gpu"),
    Scenario("a3c-tf-cpu-n8", "a3c-tf-cpu"),
    # Precision-parametric datapaths: same FA3C microarchitecture at
    # narrower operand storage (more words per DRAM beat, more PEs per
    # DSP budget).  Separate scenarios so the fp32 entries above stay
    # untouched — their gate is zero-drift by construction.
    Scenario("fa3c-fp16-n8", "fa3c-fp16"),
    Scenario("fa3c-int8-n8", "fa3c-int8"),
)

_BY_NAME = {scenario.name: scenario for scenario in SCENARIOS}


def scenario_names(backend: typing.Optional[str] = None
                   ) -> typing.List[str]:
    """Scenario names, optionally only those of one registry backend."""
    return [scenario.name for scenario in SCENARIOS
            if backend is None or scenario.backend == backend]


def run_scenario(name: str) -> typing.Tuple[typing.Dict[str, object],
                                            AttributionReport]:
    """Run one scenario under a fresh metrics scope.

    Returns the snapshot entry (rounded for diff-stable JSON) and the
    validated attribution report backing it.
    """
    try:
        scenario = _BY_NAME[name]
    except KeyError:
        raise ValueError(
            f"unknown scenario {name!r}; known: "
            f"{', '.join(scenario_names())}") from None
    from repro.platforms import measure_ips
    platform = scenario.build()
    with obs.enabled_scope(reset=True):
        result = measure_ips(platform, scenario.num_agents,
                             t_max=scenario.t_max,
                             routines_per_agent=scenario.routines,
                             host=scenario.build_host())
        report = AttributionReport.from_registry(obs.metrics()).validate()
    shares = report.bucket_shares()
    entry = {
        "ips": round(result.ips, 3),
        "buckets": {bucket: round(share, 4)
                    for bucket, share in sorted(shares.items())},
    }
    return entry, report


def run_wallclock_scenario(name: str, repeats: int = 3
                           ) -> typing.Dict[str, object]:
    """Best-of-``repeats`` host-side timing of one scenario.

    Telemetry stays in its ambient state (off for the committed
    snapshot): this measures the production fast path, and the first
    repeat warms the stage-plan caches so the best-of reflects the
    steady state.  Modelled numbers are ignored here — only host
    routines/second matter.
    """
    try:
        scenario = _BY_NAME[name]
    except KeyError:
        raise ValueError(
            f"unknown scenario {name!r}; known: "
            f"{', '.join(scenario_names())}") from None
    from repro.platforms import ThroughputSetup
    setup = ThroughputSetup(scenario.build(), scenario.build_host())
    best = float("inf")
    for _ in range(max(1, repeats)):
        started = time.perf_counter()
        setup.measure(scenario.num_agents, t_max=scenario.t_max,
                      routines_per_agent=scenario.routines)
        best = min(best, time.perf_counter() - started)
    routines = scenario.num_agents * scenario.routines
    return {
        "wall_seconds": round(best, 4),
        "routines_per_second": round(routines / best, 1),
    }


def collect_wallclock(names: typing.Optional[
                          typing.Sequence[str]] = None,
                      repeats: int = 3,
                      rtol: float = DEFAULT_WALLCLOCK_RTOL
                      ) -> typing.Dict[str, object]:
    """Run the wall-clock matrix and assemble a snapshot document."""
    scenarios = {}
    total = 0.0
    for name in names or scenario_names():
        entry = run_wallclock_scenario(name, repeats=repeats)
        scenarios[name] = entry
        total += float(entry["wall_seconds"])
    return {
        "version": WALLCLOCK_VERSION,
        "tolerances": {"wallclock_rtol": rtol},
        "total_wall_seconds": round(total, 4),
        "scenarios": scenarios,
    }


def load_wallclock(path) -> typing.Dict[str, object]:
    with open(path, "r", encoding="utf-8") as handle:
        snapshot = json.load(handle)
    version = snapshot.get("version")
    if version != WALLCLOCK_VERSION:
        raise ValueError(f"unsupported wall-clock baseline version "
                         f"{version!r} in {path}")
    return snapshot


def check_wallclock(baseline: typing.Mapping[str, object],
                    current: typing.Mapping[str, object],
                    rtol: typing.Optional[float] = None
                    ) -> typing.List[str]:
    """Loose wall-clock comparison; returns failure messages.

    Only slowdowns beyond ``rtol`` fail (faster runs pass), and the
    default tolerance is wide — see :data:`DEFAULT_WALLCLOCK_RTOL`.
    """
    if rtol is None:
        tolerances = baseline.get("tolerances") or {}
        rtol = float(tolerances.get("wallclock_rtol",
                                    DEFAULT_WALLCLOCK_RTOL))
    failures = []
    base_scenarios = baseline.get("scenarios") or {}
    cur_scenarios = current.get("scenarios") or {}
    for name in sorted(base_scenarios):
        cur = cur_scenarios.get(name)
        if cur is None:
            failures.append(f"{name}: scenario missing from current run")
            continue
        base_rps = float(base_scenarios[name]
                         .get("routines_per_second", 0.0))
        cur_rps = float(cur.get("routines_per_second", 0.0))
        floor = base_rps * (1.0 - rtol)
        if cur_rps < floor:
            failures.append(
                f"{name}: routines/s regressed {base_rps:.1f} -> "
                f"{cur_rps:.1f} ({100.0 * (cur_rps / base_rps - 1.0):+.1f}%"
                f", tolerance -{100.0 * rtol:.0f}%)")
    return failures


def run_latency_scenario(name: str) -> typing.Dict[str, object]:
    """One scenario's modelled inference-latency distribution.

    Folds the deterministic sim-time per-request latencies
    (:attr:`repro.platforms.throughput.ThroughputResult
    .inference_latencies`) through the HDR bucketing, so the committed
    entry carries exact bucket counts alongside rounded microsecond
    percentiles — the queueing-vs-turnaround story FA3C's Figure 5
    argument rests on, per backend.
    """
    try:
        scenario = _BY_NAME[name]
    except KeyError:
        raise ValueError(
            f"unknown scenario {name!r}; known: "
            f"{', '.join(scenario_names())}") from None
    from repro.obs.registry import hdr_bucket_index, hdr_percentile
    from repro.platforms import ThroughputSetup
    setup = ThroughputSetup(scenario.build(), scenario.build_host())
    result = setup.measure(scenario.num_agents, t_max=scenario.t_max,
                           routines_per_agent=scenario.routines)
    latencies = result.inference_latencies
    buckets: typing.Dict[int, int] = {}
    for value in latencies:
        index = hdr_bucket_index(value)
        buckets[index] = buckets.get(index, 0) + 1

    def us(q: float) -> float:
        return round(hdr_percentile(buckets, q) * 1e6, 3)

    return {
        "requests": len(latencies),
        "p50_us": us(50.0) if latencies else None,
        "p90_us": us(90.0) if latencies else None,
        "p99_us": us(99.0) if latencies else None,
        "p999_us": us(99.9) if latencies else None,
        "max_us": (round(max(latencies) * 1e6, 3)
                   if latencies else None),
        "hdr": {str(index): buckets[index]
                for index in sorted(buckets)},
    }


def collect_latency(names: typing.Optional[
                        typing.Sequence[str]] = None,
                    rtol: float = DEFAULT_LATENCY_RTOL
                    ) -> typing.Dict[str, object]:
    """Run the latency matrix and assemble a snapshot document."""
    scenarios = {}
    for name in names or scenario_names():
        scenarios[name] = run_latency_scenario(name)
    return {
        "version": LATENCY_VERSION,
        "tolerances": {"latency_rtol": rtol},
        "scenarios": scenarios,
    }


def load_latency(path) -> typing.Dict[str, object]:
    with open(path, "r", encoding="utf-8") as handle:
        snapshot = json.load(handle)
    version = snapshot.get("version")
    if version != LATENCY_VERSION:
        raise ValueError(f"unsupported latency baseline version "
                         f"{version!r} in {path}")
    return snapshot


def check_latency(baseline: typing.Mapping[str, object],
                  current: typing.Mapping[str, object],
                  rtol: typing.Optional[float] = None
                  ) -> typing.List[str]:
    """Informational p99 comparison; returns failure messages.

    Fails on tail-latency growth beyond ``rtol`` (lower latency
    passes), on a request-count mismatch (the workload itself changed),
    and on missing scenarios.
    """
    if rtol is None:
        tolerances = baseline.get("tolerances") or {}
        rtol = float(tolerances.get("latency_rtol",
                                    DEFAULT_LATENCY_RTOL))
    failures = []
    base_scenarios = baseline.get("scenarios") or {}
    cur_scenarios = current.get("scenarios") or {}
    for name in sorted(base_scenarios):
        base = base_scenarios[name]
        cur = cur_scenarios.get(name)
        if cur is None:
            failures.append(f"{name}: scenario missing from current run")
            continue
        base_requests = int(base.get("requests", 0) or 0)
        cur_requests = int(cur.get("requests", 0) or 0)
        if base_requests != cur_requests:
            failures.append(
                f"{name}: request count changed {base_requests} -> "
                f"{cur_requests} (workload drift)")
        base_p99 = base.get("p99_us")
        cur_p99 = cur.get("p99_us")
        if base_p99 is None or cur_p99 is None:
            continue
        ceiling = float(base_p99) * (1.0 + rtol)
        if float(cur_p99) > ceiling:
            failures.append(
                f"{name}: p99 latency grew {float(base_p99):.1f}us -> "
                f"{float(cur_p99):.1f}us "
                f"({100.0 * (float(cur_p99) / float(base_p99) - 1.0):+.1f}%"
                f", tolerance +{100.0 * rtol:.0f}%)")
    return failures


def collect_snapshot(names: typing.Optional[typing.Sequence[str]] = None,
                     ips_rtol: float = DEFAULT_IPS_RTOL,
                     share_atol: float = DEFAULT_SHARE_ATOL,
                     ) -> typing.Dict[str, object]:
    """Run scenarios and assemble a snapshot document (no reports)."""
    scenarios = {}
    for name in names or scenario_names():
        entry, _report = run_scenario(name)
        scenarios[name] = entry
    return {
        "version": SNAPSHOT_VERSION,
        "tolerances": {"ips_rtol": ips_rtol, "share_atol": share_atol},
        "scenarios": scenarios,
    }


def write_snapshot(snapshot: typing.Mapping[str, object], path) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(snapshot, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_snapshot(path) -> typing.Dict[str, object]:
    with open(path, "r", encoding="utf-8") as handle:
        snapshot = json.load(handle)
    version = snapshot.get("version")
    if version != SNAPSHOT_VERSION:
        raise ValueError(f"unsupported baseline version {version!r} "
                         f"in {path}")
    return snapshot


def check_snapshot(baseline: typing.Mapping[str, object],
                   current: typing.Mapping[str, object],
                   ips_rtol: typing.Optional[float] = None,
                   share_atol: typing.Optional[float] = None
                   ) -> typing.List[str]:
    """Compare two snapshots; returns failure messages (empty = pass).

    IPS fails only on regression beyond ``ips_rtol`` (a faster run passes
    — refresh the baseline to lock it in); bucket shares fail on drift in
    either direction, because a share shift means the cycle attribution
    itself changed.
    """
    tolerances = baseline.get("tolerances") or {}
    if ips_rtol is None:
        ips_rtol = float(tolerances.get("ips_rtol", DEFAULT_IPS_RTOL))
    if share_atol is None:
        share_atol = float(tolerances.get("share_atol",
                                          DEFAULT_SHARE_ATOL))
    failures = []
    base_scenarios = baseline.get("scenarios") or {}
    cur_scenarios = current.get("scenarios") or {}
    for name in sorted(base_scenarios):
        base = base_scenarios[name]
        cur = cur_scenarios.get(name)
        if cur is None:
            failures.append(f"{name}: scenario missing from current run")
            continue
        base_ips = float(base.get("ips", 0.0))
        cur_ips = float(cur.get("ips", 0.0))
        floor = base_ips * (1.0 - ips_rtol)
        if cur_ips < floor:
            failures.append(
                f"{name}: ips regressed {base_ips:.1f} -> {cur_ips:.1f} "
                f"({100.0 * (cur_ips / base_ips - 1.0):+.1f}%, "
                f"tolerance -{100.0 * ips_rtol:.0f}%)")
        base_buckets = base.get("buckets") or {}
        cur_buckets = cur.get("buckets") or {}
        for bucket in sorted(set(base_buckets) | set(cur_buckets)):
            base_share = float(base_buckets.get(bucket, 0.0))
            cur_share = float(cur_buckets.get(bucket, 0.0))
            drift = cur_share - base_share
            if abs(drift) > share_atol:
                failures.append(
                    f"{name}: bucket {bucket!r} share moved "
                    f"{base_share:.4f} -> {cur_share:.4f} "
                    f"({100.0 * drift:+.1f} points, tolerance "
                    f"±{100.0 * share_atol:.0f})")
    return failures
