"""Chrome trace-event JSON export (``chrome://tracing`` / Perfetto).

Spans become complete events (``"ph": "X"``) with microsecond ``ts`` /
``dur`` fields.  Sim-time and wall-clock spans land in separate trace
*processes* so the two time bases never interleave on one track: Perfetto
shows "sim" lanes (CUs, DRAM channels) and "wall" lanes (trainer threads)
as distinct process groups.  Lane names become named threads via ``"M"``
metadata events.

Format reference: the Trace Event Format spec (Google), also accepted by
https://ui.perfetto.dev.
"""

from __future__ import annotations

import json
import typing

from repro.obs.tracer import SIM, WALL, ObsSpan, SpanTracer

#: Trace process ids for the two clocks.
PID_SIM = 1
PID_WALL = 2

#: Spans merged from worker shards carry real OS pids; any that collide
#: with the pseudo-pids above are offset by this base (real pids 1 and 2
#: belong to init/kthreadd on Linux, so collisions are container-only
#: oddities — but the offset makes the invariant unconditional).
WORKER_PID_BASE = 1 << 22

_PIDS = {SIM: PID_SIM, WALL: PID_WALL}
_PROCESS_NAMES = {PID_SIM: "sim-time", PID_WALL: "wall-clock"}


def _span_pid(span: ObsSpan) -> int:
    """Trace process id for a span: clock pseudo-pid, or the worker pid.

    The remap must be injective: a worker whose real OS pid happens to
    equal an already-remapped value (``WORKER_PID_BASE + 1``/``+ 2``)
    must not merge into the Perfetto group of the worker remapped onto
    it, so every real pid at or above the base shifts by the base too —
    low pids land in ``[BASE+1, BASE+2]``, high pids in ``[2*BASE, …)``,
    and untouched pids stay below the base.
    """
    if span.pid is None:
        return _PIDS.get(span.clock, PID_SIM)
    pid = int(span.pid)
    if pid in _PROCESS_NAMES or pid >= WORKER_PID_BASE:
        return WORKER_PID_BASE + pid
    return pid


def _lane_tids(spans: typing.Sequence[ObsSpan]
               ) -> typing.Dict[typing.Tuple[int, str], int]:
    """Assign one thread id per (pid, lane) in first-appearance order."""
    tids: typing.Dict[typing.Tuple[int, str], int] = {}
    for span in spans:
        key = (_span_pid(span), span.lane)
        if key not in tids:
            tids[key] = len([k for k in tids if k[0] == key[0]]) + 1
    return tids


def chrome_trace_events(spans: typing.Sequence[ObsSpan]
                        ) -> typing.List[typing.Dict[str, object]]:
    """Convert spans to a trace-event list (metadata events first).

    Wall-clock spans are rebased to the earliest wall start so traces
    begin near ts=0; sim spans already start near zero.  Spans carrying
    an OS ``pid`` (merged worker shards) become their own Perfetto
    process groups named ``worker-<ospid>``, alongside the sim/wall
    pseudo-processes.
    """
    tids = _lane_tids(spans)
    names: typing.Dict[int, str] = {}
    for span in spans:
        pid = _span_pid(span)
        if pid not in names:
            names[pid] = (_PROCESS_NAMES.get(pid, str(pid))
                          if span.pid is None else f"worker-{span.pid}")
    events: typing.List[typing.Dict[str, object]] = []
    for pid in sorted({key[0] for key in tids}):
        events.append({"ph": "M", "name": "process_name", "pid": pid,
                       "tid": 0,
                       "args": {"name": names.get(pid, str(pid))}})
    for (pid, lane), tid in tids.items():
        events.append({"ph": "M", "name": "thread_name", "pid": pid,
                       "tid": tid, "args": {"name": lane}})
    wall_starts = [s.start for s in spans if s.clock == WALL]
    wall_base = min(wall_starts) if wall_starts else 0.0
    for span in spans:
        pid = _span_pid(span)
        base = wall_base if span.clock == WALL else 0.0
        event: typing.Dict[str, object] = {
            "name": span.label,
            "cat": span.clock,
            "ph": "X",
            "ts": (span.start - base) * 1e6,
            "dur": span.duration * 1e6,
            "pid": pid,
            "tid": tids[(pid, span.lane)],
        }
        if span.args:
            event["args"] = dict(span.args)
        events.append(event)
    return events


def chrome_trace_document(tracer: SpanTracer,
                          meta: typing.Optional[
                              typing.Mapping[str, object]] = None
                          ) -> typing.Dict[str, object]:
    """The full trace JSON document for one tracer."""
    doc: typing.Dict[str, object] = {
        "traceEvents": chrome_trace_events(tracer.spans),
        "displayTimeUnit": "ms",
    }
    if meta:
        doc["otherData"] = dict(meta)
    return doc


def write_chrome_trace(path: str, tracer: SpanTracer,
                       meta: typing.Optional[
                           typing.Mapping[str, object]] = None) -> int:
    """Write a Perfetto-loadable trace; returns the span count."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(chrome_trace_document(tracer, meta), fh)
    return len(tracer.spans)


def load_chrome_trace(path: str) -> typing.Dict[str, object]:
    """Read a trace document back (validation / reporting)."""
    with open(path, encoding="utf-8") as fh:
        return json.load(fh)
