"""Per-routine latency decomposition and critical-path extraction.

FA3C's core argument is latency: single-inference turnaround on the
FPGA keeps actors busy, while GPU-style baselines buy throughput by
batching requests through queues that add wait time.  This module makes
that trade measurable end to end:

* :class:`RoutineLatency` — one routine's end-to-end latency decomposed
  into named segments (``queue_wait``, ``batch_form``, ``infer``,
  ``train``, ``param_sync``), recorded as integer nanoseconds so the
  segments-sum-to-total invariant is *exact* (mirroring the attribution
  profiler's cycles invariant).  Whatever no segment claims lands in
  ``other``, and a negative remainder — overlapping segment timers —
  fails loudly via :class:`LatencyError`.
* :func:`validate_rows` — checks the invariant over snapshot rows, so
  it survives cross-process folds.
* :func:`critical_path_rows` — the longest nested-span chain per lane
  over recorded :class:`repro.obs.tracer.ObsSpan` records, reported per
  run by ``obs-report --latency``.

Everything is gated the usual way: trainers build a recorder only when
``repro.obs.enabled()`` and thread it as ``lat=None`` through the hot
path, so disabled runs pay one ``is not None`` branch and allocate
nothing.
"""

from __future__ import annotations

import time
import typing

from repro.obs import runtime as _runtime
from repro.obs.tracer import ObsSpan

#: Counter of integer nanoseconds spent per (trainer, segment).
SEGMENT_NS = "lat.segment_ns"
#: Counter of integer nanoseconds end-to-end per trainer; by
#: construction equal to the sum of that trainer's SEGMENT_NS samples.
TOTAL_NS = "lat.total_ns"
#: Histogram of per-routine segment durations in seconds (percentiles).
SEGMENT_SECONDS = "lat.segment_seconds"
#: Histogram of per-routine end-to-end durations in seconds.
ROUTINE_SECONDS = "lat.routine_seconds"
#: Segment name for latency no named segment claimed.
OTHER = "other"

#: The named segments trainers record, in report order.
SEGMENTS = ("queue_wait", "batch_form", "infer", "train",
            "param_sync", OTHER)


class LatencyError(ValueError):
    """A latency invariant does not hold (segments exceed the total)."""


class _SegmentTimer:
    """Context manager adding its elapsed ns to one segment."""

    __slots__ = ("_lat", "_segment", "_start")

    def __init__(self, lat: "RoutineLatency", segment: str):
        self._lat = lat
        self._segment = segment
        self._start = 0

    def __enter__(self) -> "_SegmentTimer":
        self._start = time.perf_counter_ns()
        return self

    def __exit__(self, *exc) -> None:
        self._lat.add_ns(self._segment,
                         time.perf_counter_ns() - self._start)


class RoutineLatency:
    """One routine's latency, decomposed into named segments.

    Created at routine start (``start_ns`` defaults to now), fed
    integer-nanosecond segment durations via :meth:`add_ns` or
    :meth:`measure`, and closed with :meth:`finish`, which records
    every segment plus the unclaimed ``other`` remainder into the
    process registry.  All arithmetic is on integer nanoseconds, so
    segments sum to the total *exactly*.
    """

    __slots__ = ("trainer", "platform", "_start_ns", "_segments")

    def __init__(self, trainer: str,
                 platform: typing.Optional[str] = None,
                 start_ns: typing.Optional[int] = None):
        self.trainer = trainer
        self.platform = platform
        self._start_ns = (time.perf_counter_ns()
                          if start_ns is None else int(start_ns))
        self._segments: typing.Dict[str, int] = {}

    @property
    def start_ns(self) -> int:
        return self._start_ns

    def add_ns(self, segment: str, ns: int) -> None:
        """Attribute ``ns`` nanoseconds to ``segment`` (accumulates)."""
        self._segments[segment] = self._segments.get(segment, 0) + int(ns)

    def measure(self, segment: str) -> _SegmentTimer:
        """``with lat.measure("infer"):`` — time a block into a segment."""
        return _SegmentTimer(self, segment)

    def finish(self, end_ns: typing.Optional[int] = None) -> int:
        """Close the routine and record it; returns the total ns.

        Records one ``lat.segment_ns`` counter increment and one
        ``lat.segment_seconds`` observation per segment (including the
        ``other`` remainder), plus ``lat.total_ns`` /
        ``lat.routine_seconds`` for the end-to-end latency.  Raises
        :class:`LatencyError` if the named segments exceed the total —
        that means two segment timers overlapped, and a silently
        clamped remainder would hide it.
        """
        end = time.perf_counter_ns() if end_ns is None else int(end_ns)
        total = end - self._start_ns
        claimed = sum(self._segments.values())
        if claimed > total:
            raise LatencyError(
                f"{self.trainer}: segments sum to {claimed} ns but the "
                f"routine took {total} ns — segment timers overlap")
        registry = _runtime.metrics()
        seg_ns = registry.counter(
            SEGMENT_NS, "per-routine latency by segment (ns)")
        seg_seconds = registry.histogram(
            SEGMENT_SECONDS, "per-routine segment latency (s)")
        labels: typing.Dict[str, str] = {"trainer": self.trainer}
        if self.platform is not None:
            labels["platform"] = self.platform
        segments = dict(self._segments)
        segments[OTHER] = total - claimed
        for segment, ns in segments.items():
            seg_ns.inc(ns, segment=segment, **labels)
            seg_seconds.observe(ns * 1e-9, segment=segment, **labels)
        registry.counter(
            TOTAL_NS, "end-to-end routine latency (ns)").inc(
            total, **labels)
        registry.histogram(
            ROUTINE_SECONDS, "end-to-end routine latency (s)").observe(
            total * 1e-9, **labels)
        return total


def validate_rows(rows: typing.Iterable[typing.Mapping[str, object]]
                  ) -> int:
    """Check segments-sum-to-total over snapshot rows; returns the
    number of (trainer, platform, …) groups checked.

    Works on any registry snapshot — including one folded from worker
    shards — because counters merge exactly.  Raises
    :class:`LatencyError` on a mismatch or on segment rows with no
    matching total.
    """
    def group_key(labels: typing.Mapping[str, object]) -> typing.Tuple[
            typing.Tuple[str, str], ...]:
        return tuple(sorted((str(k), str(v)) for k, v in labels.items()
                            if k != "segment"))

    segment_sums: typing.Dict[typing.Tuple, float] = {}
    totals: typing.Dict[typing.Tuple, float] = {}
    for row in rows:
        name = row.get("name")
        labels = typing.cast(typing.Mapping[str, object],
                             row.get("labels") or {})
        value = float(typing.cast(float, row.get("value", 0.0)) or 0.0)
        if name == SEGMENT_NS:
            key = group_key(labels)
            segment_sums[key] = segment_sums.get(key, 0.0) + value
        elif name == TOTAL_NS:
            totals[group_key(labels)] = value
    for key, claimed in segment_sums.items():
        if key not in totals:
            raise LatencyError(
                f"segment rows with no lat.total_ns: {dict(key)}")
        if claimed != totals[key]:
            raise LatencyError(
                f"{dict(key)}: segments sum to {claimed:.0f} ns but "
                f"lat.total_ns is {totals[key]:.0f} ns")
    for key in totals:
        if key not in segment_sums:
            raise LatencyError(
                f"lat.total_ns with no segment rows: {dict(key)}")
    return len(totals)


def _as_span(row: typing.Union[ObsSpan, typing.Mapping[str, object]]
             ) -> ObsSpan:
    if isinstance(row, ObsSpan):
        return row
    pid = row.get("pid")
    return ObsSpan(
        lane=str(row.get("lane", "?")), label=str(row.get("label", "?")),
        start=float(typing.cast(float, row.get("start", 0.0))),
        end=float(typing.cast(float, row.get("end", 0.0))),
        clock=str(row.get("clock", "sim")),
        depth=int(typing.cast(int, row.get("depth", 0))),
        args=dict(typing.cast(typing.Mapping[str, object],
                              row.get("args") or {})),
        pid=int(typing.cast(int, pid)) if pid is not None else None)


def critical_path_rows(
        spans: typing.Iterable[
            typing.Union[ObsSpan, typing.Mapping[str, object]]],
        top: int = 5) -> typing.List[typing.Dict[str, object]]:
    """The longest span chain per (process, clock, lane).

    Starting from the longest depth-0 span in each lane, greedily
    descends into the longest interval-contained child one depth level
    down — the critical path through the routine's nested spans.
    Returns up to ``top`` rows sorted by chain duration, each with the
    ``" > "``-joined chain of labels.  Durations are in the span's own
    clock units (seconds for ``wall`` spans, cycles for ``sim`` spans —
    the ``clock`` column disambiguates).  Deterministic: ties break on
    span start, then label.
    """
    by_lane: typing.Dict[typing.Tuple[int, str, str],
                         typing.List[ObsSpan]] = {}
    for row in spans:
        span = _as_span(row)
        key = (span.pid if span.pid is not None else -1,
               span.clock, span.lane)
        by_lane.setdefault(key, []).append(span)

    def pick(candidates: typing.List[ObsSpan]) -> ObsSpan:
        return max(candidates,
                   key=lambda s: (s.duration, -s.start, s.label))

    rows: typing.List[typing.Dict[str, object]] = []
    for (pid, clock, lane), lane_spans in sorted(
            by_lane.items(), key=lambda item: item[0]):
        roots = [s for s in lane_spans if s.depth == 0]
        if not roots:
            continue
        current = pick(roots)
        chain = [current.label]
        while True:
            children = [s for s in lane_spans
                        if s.depth == current.depth + 1
                        and s.start >= current.start
                        and s.end <= current.end]
            if not children:
                break
            current = pick(children)
            chain.append(current.label)
        root = pick(roots)
        rows.append({
            "lane": lane, "clock": clock,
            "worker": str(pid) if pid >= 0 else "-",
            "chain": " > ".join(chain),
            "duration": root.duration,
            "depth": len(chain)})
    rows.sort(key=lambda r: (-typing.cast(float, r["duration"]),
                             str(r["lane"])))
    return rows[:top]
