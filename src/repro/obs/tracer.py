"""Unified span tracing over two clocks.

A :class:`SpanTracer` records both

* **sim-time** spans — it exposes the exact ``record(lane, label, start,
  end)`` signature of :class:`repro.sim.trace.Tracer`, so it can be passed
  anywhere a sim tracer is expected (e.g. ``FA3CPlatform.build_sim``) or
  absorb an existing sim tracer's spans after a run; and
* **wall-clock** spans — a context manager / decorator API stamped with
  ``time.perf_counter`` (monotonic; immune to NTP adjustments).

Both kinds carry a ``clock`` tag so the Chrome exporter can place them in
separate trace processes with sensible time scales.
"""

from __future__ import annotations

import contextlib
import dataclasses
import functools
import threading
import time
import typing

from repro.sim.trace import Tracer as SimTracer

SIM = "sim"
WALL = "wall"


@dataclasses.dataclass(frozen=True)
class ObsSpan:
    """One traced interval on either clock."""

    lane: str
    label: str
    start: float
    end: float
    clock: str = SIM
    depth: int = 0
    args: typing.Mapping[str, object] = dataclasses.field(
        default_factory=dict)
    #: OS pid of the process that recorded the span, for spans merged in
    #: from another process's run-log shard.  ``None`` for spans recorded
    #: locally — the Chrome exporter then groups purely by clock.
    pid: typing.Optional[int] = None

    @property
    def duration(self) -> float:
        return self.end - self.start

    def as_dict(self) -> typing.Dict[str, object]:
        out: typing.Dict[str, object] = {
            "lane": self.lane, "label": self.label,
            "start": self.start, "end": self.end,
            "clock": self.clock, "depth": self.depth,
            "args": dict(self.args)}
        if self.pid is not None:
            out["pid"] = self.pid
        return out


class SpanTracer:
    """Collects :class:`ObsSpan` records from sim and wall clocks."""

    def __init__(self, clock: typing.Callable[[], float]
                 = time.perf_counter):
        self._clock = clock
        self.spans: typing.List[ObsSpan] = []
        self._lock = threading.Lock()
        self._stacks = threading.local()

    # -- sim-time API (repro.sim.trace.Tracer compatible) -----------------

    def record(self, lane: str, label: str, start: float, end: float,
               clock: str = SIM, **args: object) -> None:
        """Add one completed span (sim-time unless ``clock`` says wall)."""
        if end < start:
            raise ValueError(f"span ends before it starts: {label}")
        span = ObsSpan(lane=lane, label=label, start=start, end=end,
                       clock=clock, args=args)
        with self._lock:
            self.spans.append(span)

    def absorb(self, tracer: SimTracer, clock: str = SIM) -> int:
        """Copy every span out of a :class:`repro.sim.trace.Tracer`.

        Returns the number of spans absorbed.
        """
        with self._lock:
            for span in tracer.spans:
                self.spans.append(ObsSpan(lane=span.lane, label=span.label,
                                          start=span.start, end=span.end,
                                          clock=clock))
        return len(tracer.spans)

    def snapshot(self) -> typing.List[typing.Dict[str, object]]:
        """Every span as a JSON-ready dict (see :meth:`ObsSpan.as_dict`)."""
        with self._lock:
            return [span.as_dict() for span in self.spans]

    def absorb_rows(self, rows: typing.Iterable[
            typing.Mapping[str, object]],
            pid: typing.Optional[int] = None) -> int:
        """Rebuild spans from :meth:`snapshot` rows (another process's).

        ``pid`` stamps every absorbed span with the recording process's
        OS pid so the Chrome exporter can place it in its own Perfetto
        process group; a ``pid`` already present in a row wins.  Returns
        the number of spans absorbed.
        """
        count = 0
        with self._lock:
            for row in rows:
                row_pid = row.get("pid", pid)
                self.spans.append(ObsSpan(
                    lane=str(row.get("lane", "?")),
                    label=str(row.get("label", "?")),
                    start=float(typing.cast(float, row.get("start", 0.0))),
                    end=float(typing.cast(float, row.get("end", 0.0))),
                    clock=str(row.get("clock", SIM)),
                    depth=int(typing.cast(int, row.get("depth", 0))),
                    args=dict(typing.cast(typing.Mapping[str, object],
                                          row.get("args") or {})),
                    pid=int(typing.cast(int, row_pid))
                    if row_pid is not None else None))
                count += 1
        return count

    # -- wall-clock API ----------------------------------------------------

    def _depth_stack(self) -> typing.List[str]:
        stack = getattr(self._stacks, "stack", None)
        if stack is None:
            stack = []
            self._stacks.stack = stack
        return stack

    @contextlib.contextmanager
    def span(self, lane: str, label: str, **args: object):
        """Wall-clock span context manager; nests per thread."""
        stack = self._depth_stack()
        depth = len(stack)
        stack.append(label)
        start = self._clock()
        try:
            yield self
        finally:
            end = self._clock()
            stack.pop()
            record = ObsSpan(lane=lane, label=label, start=start,
                             end=end, clock=WALL, depth=depth, args=args)
            with self._lock:
                self.spans.append(record)

    def traced(self, lane: str, label: typing.Optional[str] = None):
        """Decorator form of :meth:`span`."""
        def decorate(func):
            span_label = label or func.__qualname__

            @functools.wraps(func)
            def wrapper(*args, **kwargs):
                with self.span(lane, span_label):
                    return func(*args, **kwargs)
            return wrapper
        return decorate

    # -- queries -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.spans)

    def clear(self) -> None:
        with self._lock:
            self.spans.clear()

    def lanes(self, clock: typing.Optional[str] = None
              ) -> typing.List[str]:
        """Lane names in first-appearance order (optionally one clock)."""
        seen: typing.List[str] = []
        for span in self.spans:
            if clock is not None and span.clock != clock:
                continue
            if span.lane not in seen:
                seen.append(span.lane)
        return seen

    def by_clock(self, clock: str) -> typing.List[ObsSpan]:
        return [s for s in self.spans if s.clock == clock]

    def lane_busy(self, lane: str, clock: typing.Optional[str] = None
                  ) -> float:
        """Total busy time of one lane (top-level spans only, so nested
        wall spans are not double-counted)."""
        return sum(s.duration for s in self.spans
                   if s.lane == lane and s.depth == 0
                   and (clock is None or s.clock == clock))

    def window(self, clock: typing.Optional[str] = None
               ) -> typing.Tuple[float, float]:
        """(earliest start, latest end) over the selected spans."""
        spans = [s for s in self.spans
                 if clock is None or s.clock == clock]
        if not spans:
            return (0.0, 0.0)
        return (min(s.start for s in spans), max(s.end for s in spans))

    def to_sim_tracer(self, clock: str = SIM) -> SimTracer:
        """A :class:`repro.sim.trace.Tracer` view of one clock's spans
        (for the text Gantt renderer)."""
        tracer = SimTracer()
        for span in self.by_clock(clock):
            tracer.record(span.lane, span.label, span.start, span.end)
        return tracer
