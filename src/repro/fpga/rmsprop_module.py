"""The RMSProp module (paper Section 4.2.3, Figure 5).

Computed gradients are applied to the global parameters by a dedicated
module of fully-pipelined *RMSProp units* (RUs).  Each RU reads two words
(θ and g) and writes two words per cycle:

    g'     = rho * g + (1 - rho) * grad^2
    theta' = theta - eta * grad / sqrt(g' + eps)

With a 16-word DRAM interface, four RUs saturate the off-chip bandwidth
(each RU moves 2+2 words per cycle).  The module double-buffers: while the
RUs update one on-chip buffer, the other handles off-chip traffic.

The functional path is bit-comparable to
:class:`repro.nn.optim.RMSProp` (verified by the test suite), so training
through the FPGA simulator reproduces the software optimizer exactly.
"""

from __future__ import annotations

import dataclasses
import typing

import numpy as np

from repro.fpga.dram import WORDS_PER_BEAT, DRAMChannel
from repro.obs import runtime as _obs


@dataclasses.dataclass
class RMSPropUpdateStats:
    """Cycle and traffic accounting for one buffer-sized update."""

    elements: int
    compute_cycles: int
    memory_cycles: int

    @property
    def pipelined_cycles(self) -> int:
        """Duration with double buffering: compute and traffic overlap."""
        return max(self.compute_cycles, self.memory_cycles)


class RMSPropModule:
    """RU-pipelined global-parameter updater."""

    #: Pipeline depth of one RU (mult, add, sqrt, divide stages).
    PIPELINE_DEPTH = 12

    def __init__(self, learning_rate: float = 7e-4, rho: float = 0.99,
                 eps: float = 0.1, num_rus: int = 4,
                 buffer_words: int = 4096):
        self.learning_rate = learning_rate
        self.rho = rho
        self.eps = eps
        self.num_rus = num_rus
        self.buffer_words = buffer_words
        self.total_cycles = 0
        self.updates = 0

    def required_rus(self, dram_words_per_cycle: int = WORDS_PER_BEAT
                     ) -> int:
        """RUs needed to saturate the DRAM interface (paper: 4 for 16)."""
        return -(-dram_words_per_cycle // 4)  # each RU moves 4 words/cycle

    def update_arrays(self, theta: np.ndarray, g: np.ndarray,
                      grad: np.ndarray,
                      learning_rate: typing.Optional[float] = None
                      ) -> None:
        """Apply the RU recurrence in place, fp32 like the datapath."""
        if not theta.shape == g.shape == grad.shape:
            raise ValueError("theta/g/grad shapes differ")
        lr = self.learning_rate if learning_rate is None else learning_rate
        grad32 = grad.astype(np.float32, copy=False)
        # Identical operation order and scalar types as
        # repro.nn.optim.RMSProp, so hardware and software trajectories
        # are bit-for-bit equal (asserted by the test suite).
        g *= self.rho
        g += (1.0 - self.rho) * grad32 * grad32
        theta -= lr * grad32 / np.sqrt(g + self.eps)

    def update_with_stats(self, theta: np.ndarray, g: np.ndarray,
                          grad: np.ndarray,
                          channel: typing.Optional[DRAMChannel] = None,
                          learning_rate: typing.Optional[float] = None,
                          extra_store_copies: int = 0
                          ) -> RMSPropUpdateStats:
        """Functional update plus cycle/traffic accounting.

        ``extra_store_copies`` models the FA3C-Alt2 configuration, which
        writes an additional layout copy of θ back to DRAM per update
        (Section 5.4).
        """
        self.update_arrays(theta, g, grad, learning_rate)
        n = theta.size
        # Per buffer-sized chunk the RUs stream one element per RU-cycle.
        chunks = -(-n // self.buffer_words)
        compute = -(-n // self.num_rus) + chunks * self.PIPELINE_DEPTH
        # Off-chip: load theta + g, store theta + g (+ extra layout copies).
        words_moved = n * (4 + extra_store_copies)
        if channel is not None:
            memory = channel.load(2 * n)
            memory += channel.store((2 + extra_store_copies) * n)
        else:
            memory = -(-words_moved // WORDS_PER_BEAT)
        stats = RMSPropUpdateStats(elements=n, compute_cycles=compute,
                                   memory_cycles=memory)
        self.total_cycles += stats.pipelined_cycles
        self.updates += 1
        if _obs.enabled():
            metrics = _obs.metrics()
            metrics.counter("fpga.rmsprop.cycles").inc(
                stats.pipelined_cycles)
            metrics.counter("fpga.rmsprop.elements").inc(n)
        return stats
