"""Off-chip DRAM channel model.

The DDR4 interface moves 16 single-precision words (512 bits) per beat in
burst mode (paper Section 4.3).  A channel tracks the words loaded and
stored (the Table 2 traffic accounting) and the busy cycles they occupy at
a configurable burst efficiency; the platform layer arbitrates channels
between CUs with a discrete-event resource.

``DRAMModel`` also owns named *regions* holding real data (global θ, local
θ per agent, RMSProp g, feature maps) so the functional simulation keeps
exactly one copy of the parameters in DRAM, as the paper's design does.
"""

from __future__ import annotations

import dataclasses
import math
import typing

import numpy as np

from repro.obs import runtime as _obs
from repro.perf.hotpath import hot_path

#: Words per DRAM interface beat at fp32 (512-bit bus / 32-bit words).
#: Channels accept per-instance overrides for narrower operand widths
#: (the bus is fixed at 512 bits; narrower words pack more per beat).
WORDS_PER_BEAT = 16
WORD_BYTES = 4


@dataclasses.dataclass
class TrafficCounter:
    """Load/store word counters for one channel."""

    loaded_words: int = 0
    stored_words: int = 0

    @property
    def loaded_bytes(self) -> int:
        return self.loaded_words * WORD_BYTES

    @property
    def stored_bytes(self) -> int:
        return self.stored_words * WORD_BYTES

    @property
    def total_bytes(self) -> int:
        return self.loaded_bytes + self.stored_bytes


class DRAMChannel:
    """One DDR4 channel: burst transfers, traffic and busy-cycle counts."""

    def __init__(self, name: str, efficiency: float = 0.7,
                 latency_cycles: int = 40,
                 words_per_beat: int = WORDS_PER_BEAT,
                 word_bytes: int = WORD_BYTES):
        """``efficiency`` is the achievable fraction of the peak burst rate
        (row misses, refresh, read/write turnaround); ``latency_cycles`` is
        the first-word latency hidden by prefetching but paid by dependent
        accesses.  ``words_per_beat``/``word_bytes`` describe the operand
        width the channel moves (fp32 defaults)."""
        if not 0.0 < efficiency <= 1.0:
            raise ValueError(f"efficiency must be in (0, 1]: {efficiency}")
        self.name = name
        self.efficiency = efficiency
        self.latency_cycles = latency_cycles
        self.words_per_beat = words_per_beat
        self.word_bytes = word_bytes
        self.traffic = TrafficCounter()
        self.busy_cycles = 0

    @hot_path
    def transfer_cycles(self, words: int, sequential: bool = True) -> int:
        """Interface cycles to move ``words`` in burst mode.

        Non-sequential transfers additionally pay the first-word latency.
        """
        # math.ceil over the same float64 quotient np.ceil would see:
        # identical result without the numpy scalar round-trip.
        beats = -(-words // self.words_per_beat)
        cycles = math.ceil(beats / self.efficiency)
        if not sequential:
            cycles += self.latency_cycles
        return cycles

    @hot_path
    def load(self, words: int, sequential: bool = True) -> int:
        """Account a load; returns the busy cycles it occupies."""
        cycles = self.transfer_cycles(words, sequential)
        self.traffic.loaded_words += words
        self.busy_cycles += cycles
        if _obs.enabled():
            metrics = _obs.metrics()
            metrics.counter("fpga.dram.bytes").inc(
                words * self.word_bytes, channel=self.name, dir="load")
            metrics.counter("fpga.dram.bursts").inc(
                -(-words // self.words_per_beat), channel=self.name)
            metrics.counter("fpga.dram.busy_cycles").inc(
                cycles, channel=self.name, dir="load")
        return cycles

    @hot_path
    def store(self, words: int, sequential: bool = True) -> int:
        """Account a store; returns the busy cycles it occupies."""
        cycles = self.transfer_cycles(words, sequential)
        self.traffic.stored_words += words
        self.busy_cycles += cycles
        if _obs.enabled():
            metrics = _obs.metrics()
            metrics.counter("fpga.dram.bytes").inc(
                words * self.word_bytes, channel=self.name, dir="store")
            metrics.counter("fpga.dram.bursts").inc(
                -(-words // self.words_per_beat), channel=self.name)
            metrics.counter("fpga.dram.busy_cycles").inc(
                cycles, channel=self.name, dir="store")
        return cycles


class DRAMModel:
    """Channels plus named data regions (the functional DRAM contents)."""

    def __init__(self, num_channels: int = 2, efficiency: float = 0.7):
        self.channels = [DRAMChannel(f"ddr{i}", efficiency)
                         for i in range(num_channels)]
        self._regions: typing.Dict[str, np.ndarray] = {}

    def channel(self, index: int) -> DRAMChannel:
        return self.channels[index % len(self.channels)]

    def allocate(self, name: str, words: int) -> np.ndarray:
        """Allocate (or return) a named region of ``words`` float32."""
        if name not in self._regions:
            self._regions[name] = np.zeros(words, dtype=np.float32)
        elif self._regions[name].size != words:
            raise ValueError(f"region {name!r} exists with size "
                             f"{self._regions[name].size}, requested "
                             f"{words}")
        return self._regions[name]

    def write(self, name: str, data: np.ndarray,
              channel: int = 0) -> int:
        """Store ``data`` into a region; returns busy cycles."""
        data = np.asarray(data, dtype=np.float32).reshape(-1)
        region = self.allocate(name, data.size)
        np.copyto(region, data)
        return self.channel(channel).store(data.size)

    def read(self, name: str, channel: int = 0) -> np.ndarray:
        """Load a region's contents; accounts the traffic."""
        region = self._regions[name]
        self.channel(channel).load(region.size)
        return region.copy()

    def region(self, name: str) -> np.ndarray:
        """Direct (no traffic) access for test assertions."""
        return self._regions[name]

    def total_traffic(self) -> TrafficCounter:
        """Aggregate traffic across channels."""
        total = TrafficCounter()
        for channel in self.channels:
            total.loaded_words += channel.traffic.loaded_words
            total.stored_words += channel.traffic.stored_words
        return total
