"""BCU operation schedules: how each stage drives the line buffers.

Bridges the structural Table 3 plan (how many line buffers of what width)
to the dynamic behaviour of Section 4.5 (how often the BCU shifts,
stitches, and scatters per stage).  The counts are closed-form from the
layer geometry, and the functional buffer classes are validated against
them in the tests — so the cycle model's assumption that operand supply
keeps up with the PEs is backed by an explicit schedule, not hand-waving.
"""

from __future__ import annotations

import dataclasses

from repro.analysis.linebuffers import stitching_rows
from repro.nn.network import LayerSpec


@dataclasses.dataclass(frozen=True)
class StageSchedule:
    """BCU operation counts for one layer stage (batch 1)."""

    stage: str                 # FW | GC | BW
    layer: str
    line_loads: int            # line buffers (re)filled from buffers
    stitch_ops: int            # multi-row stitches among those loads
    shift_ops: int             # single-word shifts
    scatter_ops: int           # output line-buffer scatters

    @property
    def total_bcu_ops(self) -> int:
        return (self.line_loads + self.stitch_ops + self.shift_ops
                + self.scatter_ops)


def fw_schedule(spec: LayerSpec) -> StageSchedule:
    """Forward propagation (Section 4.5, "Shifting"):

    For every output row, each of the K contributing input rows of every
    input channel is loaded into the input line buffer (stitched when
    C_in > 16) and shifted one word per output column x stride.
    Output values are scattered to per-channel buffer rows once per
    output row.
    """
    k = spec.kernel
    rows_loaded = spec.out_height * k * spec.in_channels
    stitches = rows_loaded if stitching_rows(spec.in_width) > 1 else 0
    shifts = rows_loaded * max(spec.out_width - 1, 0) * spec.stride
    scatters = spec.out_height * spec.out_width
    return StageSchedule("FW", spec.name, rows_loaded, stitches, shifts,
                         scatters)


def gc_schedule(spec: LayerSpec, batch: int, n_pe: int = 64
                ) -> StageSchedule:
    """Gradient computation: K input lines + M_GC gradient lines per
    output row per sample; shifting walks the K x K window positions."""
    k = spec.kernel
    m_gc = max(1, n_pe // (k * k))
    per_sample = spec.out_height * spec.in_channels
    line_loads = batch * per_sample * (k + m_gc)
    stitches = batch * per_sample * k \
        if stitching_rows(spec.in_width) > 1 else 0
    shifts = batch * per_sample * max(spec.out_width - 1, 0) \
        * spec.stride
    scatters = -(-(spec.num_weights + spec.out_channels) // n_pe)
    return StageSchedule("GC", spec.name, line_loads, stitches, shifts,
                         scatters)


def bw_schedule(spec: LayerSpec, batch: int, n_pe: int = 64
                ) -> StageSchedule:
    """Backward propagation: M_BW output-gradient lines per input row;
    input-gradient outputs are scattered back to the feature-map buffer
    (whose dimensions BW reuses, Section 4.3)."""
    k = spec.kernel
    m_w = max(1, spec.out_channels // (k * k))
    m_bw = max(1, n_pe // (m_w * max(spec.in_width, 1)))
    per_sample = spec.in_height * max(spec.in_channels // m_w, 1)
    line_loads = batch * per_sample * m_bw
    shifts = batch * per_sample * max(spec.in_width - 1, 0)
    scatters = -(-batch * spec.num_inputs // n_pe)
    stitches = line_loads if stitching_rows(spec.out_width) > 1 else 0
    return StageSchedule("BW", spec.name, line_loads, stitches, shifts,
                         scatters)


def stage_schedules(spec: LayerSpec, batch: int = 1, n_pe: int = 64
                    ) -> list:
    """All three stage schedules for one layer."""
    return [fw_schedule(spec), gc_schedule(spec, batch, n_pe),
            bw_schedule(spec, batch, n_pe)]
