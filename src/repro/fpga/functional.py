"""A network backend that computes through the simulated FA3C hardware.

:class:`FPGANetworkBackend` exposes the same interface as
:class:`repro.nn.network.A3CNetwork` (``forward`` /
``backward_and_grads`` / parameter application) but every FW, BW, and GC
runs through a :class:`~repro.fpga.cu.ComputeUnit`:

* parameters live as Figure 7c patch images in a :class:`DRAMModel`
  (single copy per layer — the single-copy-in-DRAM invariant);
* FW loads the FW layout, BW loads the BW layout through the
  (optionally register-level) TLU path;
* gradients come back as FW-layout images, and
  :meth:`apply_gradients` routes them through the
  :class:`~repro.fpga.rmsprop_module.RMSPropModule` RUs against the
  global theta/g images.

Because every step is fp32 with the same reduction structure, results are
bit-comparable with the software path — asserted by the integration tests
— which is the reproduction's analogue of the paper's Section 5.6 claim
that "the FA3C platform correctly trains the A3C DNNs".
"""

from __future__ import annotations

import typing

import numpy as np

from repro.fpga.cu import ComputeUnit
from repro.fpga.dram import DRAMModel
from repro.fpga.layouts import (
    dram_image_from_fw,
    fw_layout,
    fw_layout_to_weight,
    load_fw_from_dram,
)
from repro.fpga.rmsprop_module import RMSPropModule
from repro.nn import functional as F
from repro.nn.network import A3CNetwork, LayerSpec
from repro.nn.parameters import ParameterSet


def _weight_shape(spec: LayerSpec) -> typing.Tuple[int, ...]:
    if spec.kind == "conv":
        return (spec.out_channels, spec.in_channels, spec.kernel,
                spec.kernel)
    return (spec.out_channels, spec.in_channels)


def _fw_dims(spec: LayerSpec) -> typing.Tuple[int, int]:
    return spec.in_channels * spec.kernel ** 2, spec.out_channels


class FPGANetworkBackend:
    """The A3C network evaluated by the simulated FA3C hardware."""

    def __init__(self, network: A3CNetwork,
                 params: typing.Optional[ParameterSet] = None,
                 rng: typing.Optional[np.random.Generator] = None,
                 use_tlu_emulation: bool = False,
                 learning_rate: float = 7e-4, rho: float = 0.99,
                 eps: float = 0.1):
        self.network = network
        self.topology = network.topology()
        self.num_actions = network.num_actions
        self.fc4_width = network.fc4_width
        self.dram = DRAMModel(num_channels=2)
        self.inference_cu = ComputeUnit("infer", 64,
                                        use_tlu_emulation=use_tlu_emulation)
        self.training_cu = ComputeUnit("train", 64,
                                       use_tlu_emulation=use_tlu_emulation)
        self.rmsprop = RMSPropModule(learning_rate=learning_rate, rho=rho,
                                     eps=eps)
        params = params or network.init_params(rng)
        self._relu_after = {"Conv1", "Conv2", "FC3"}
        self._load_params_to_dram(params)
        # Per-layer forward caches (inputs + pre-activation outputs).
        self._inputs: typing.Dict[str, np.ndarray] = {}
        self._preact: typing.Dict[str, np.ndarray] = {}

    # -- DRAM parameter images ----------------------------------------------

    def _load_params_to_dram(self, params: ParameterSet) -> None:
        """Serialise theta into patch images; allocate RMSProp g images."""
        for spec in self.topology.layers:
            weight = params[f"{spec.name}.weight"]
            bias = params[f"{spec.name}.bias"]
            image = dram_image_from_fw(fw_layout(weight))
            self.dram.write(f"{spec.name}.theta", image, channel=1)
            self.dram.write(f"{spec.name}.bias", bias, channel=1)
            self.dram.allocate(f"{spec.name}.g", image.size)
            self.dram.allocate(f"{spec.name}.g.bias", bias.size)

    def parameters(self) -> ParameterSet:
        """Read theta back out of DRAM as a software ParameterSet."""
        params = ParameterSet()
        for spec in self.topology.layers:
            image = self.dram.region(f"{spec.name}.theta")
            rows, cols = _fw_dims(spec)
            fw_matrix = load_fw_from_dram(image, rows, cols)
            params[f"{spec.name}.weight"] = fw_layout_to_weight(
                fw_matrix, _weight_shape(spec))
            params[f"{spec.name}.bias"] = \
                self.dram.region(f"{spec.name}.bias").copy()
        return params

    def load_parameters(self, params: ParameterSet) -> None:
        """Overwrite DRAM theta from a software ParameterSet (sync)."""
        for spec in self.topology.layers:
            image = dram_image_from_fw(
                fw_layout(params[f"{spec.name}.weight"]))
            np.copyto(self.dram.region(f"{spec.name}.theta"), image)
            np.copyto(self.dram.region(f"{spec.name}.bias"),
                      params[f"{spec.name}.bias"])

    # -- FW / BW / GC through the CUs -----------------------------------------

    def forward(self, states: np.ndarray,
                training: bool = False) -> typing.Tuple[np.ndarray,
                                                        np.ndarray]:
        """FW through the inference (or training) CU; returns
        (logits, values)."""
        cu = self.training_cu if training else self.inference_cu
        channel = self.dram.channel(0)
        x = np.ascontiguousarray(states, dtype=np.float32)
        for spec in self.topology.layers:
            if spec.kind == "dense" and x.ndim > 2:
                x = x.reshape(x.shape[0], -1)
            self._inputs[spec.name] = x
            image = self.dram.region(f"{spec.name}.theta")
            bias = self.dram.region(f"{spec.name}.bias")
            y = cu.run_fw(spec, x, image, bias, channel=channel)
            self._preact[spec.name] = y
            if spec.name in self._relu_after:
                y = F.relu_forward(y)
            x = y
        logits = x[:, :self.num_actions]
        values = x[:, self.num_actions]
        return logits, values

    def backward_and_grads(self, dlogits: np.ndarray,
                           dvalues: np.ndarray
                           ) -> typing.Dict[str, typing.Tuple[np.ndarray,
                                                              np.ndarray]]:
        """GC then BW per layer, last to first (Section 4.3 schedule).

        Returns per-layer ``(gradient image, bias gradients)`` in the FW
        layout, ready for the RMSProp module.
        """
        n = dlogits.shape[0]
        dy = np.zeros((n, self.fc4_width), dtype=np.float32)
        dy[:, :self.num_actions] = dlogits
        dy[:, self.num_actions] = dvalues
        channel = self.dram.channel(1)
        grads: typing.Dict[str, typing.Tuple[np.ndarray, np.ndarray]] = {}
        layers = self.topology.layers
        for index in range(len(layers) - 1, -1, -1):
            spec = layers[index]
            if spec.name in self._relu_after:
                dy = F.relu_backward(dy, self._preact[spec.name])
            x = self._inputs[spec.name]
            grads[spec.name] = self.training_cu.run_gc(spec, x, dy,
                                                       channel=channel)
            if index > 0:
                image = self.dram.region(f"{spec.name}.theta")
                dy = self.training_cu.run_bw(spec, dy, image, x.shape,
                                             channel=channel)
                if spec.kind == "dense" and \
                        layers[index - 1].kind == "conv":
                    prev = layers[index - 1]
                    dy = dy.reshape(n, prev.out_channels, prev.out_height,
                                    prev.out_width)
        return grads

    def apply_gradients(self, grads: typing.Mapping[
            str, typing.Tuple[np.ndarray, np.ndarray]],
            learning_rate: typing.Optional[float] = None) -> None:
        """Run the RMSProp module's RUs over every layer's theta/g images.

        The gradient buffer is already in the FW layout (Section 4.4.4),
        so no TLU pass is needed here.
        """
        channel = self.dram.channel(1)
        for spec in self.topology.layers:
            grad_image, bias_grad = grads[spec.name]
            self.rmsprop.update_with_stats(
                self.dram.region(f"{spec.name}.theta"),
                self.dram.region(f"{spec.name}.g"),
                grad_image, channel=channel,
                learning_rate=learning_rate)
            self.rmsprop.update_arrays(
                self.dram.region(f"{spec.name}.bias"),
                self.dram.region(f"{spec.name}.g.bias"),
                bias_grad, learning_rate=learning_rate)

    def train_step(self, states: np.ndarray, actions: np.ndarray,
                   returns: np.ndarray, entropy_beta: float = 0.01,
                   learning_rate: typing.Optional[float] = None) -> float:
        """One full training task through the simulated hardware.

        Host-side softmax/objective (Section 4.1) feeds head gradients to
        the FPGA; returns the total loss.
        """
        from repro.nn.losses import a3c_loss_and_head_gradients
        logits, values = self.forward(states, training=True)
        loss = a3c_loss_and_head_gradients(logits, values, actions,
                                           returns,
                                           entropy_beta=entropy_beta)
        grads = self.backward_and_grads(loss.dlogits, loss.dvalues)
        self.apply_gradients(grads, learning_rate=learning_rate)
        return loss.total_loss
