"""Functional + cycle-level simulator of the FA3C FPGA microarchitecture.

Implements every hardware structure of paper Section 4:

* :mod:`~repro.fpga.pe` — processing elements (fp32 multiplier +
  accumulator with controllable accumulation frequency).
* :mod:`~repro.fpga.buffers` — on-chip buffers and register line buffers
  with the BCU's shifting / stitching / scattering operations.
* :mod:`~repro.fpga.layouts` — the FW and BW parameter layouts, the
  16x16-word DRAM patch layout, and the single-copy-in-DRAM invariant.
* :mod:`~repro.fpga.tlu` — the transpose load unit.
* :mod:`~repro.fpga.rmsprop_module` — the RU-pipelined RMSProp updater.
* :mod:`~repro.fpga.dram` — the off-chip DRAM channel model (16-word burst
  interface, per-channel traffic and busy-cycle accounting).
* :mod:`~repro.fpga.cu` — compute units executing FW/BW/GC across layers.
* :mod:`~repro.fpga.timing` — the per-stage cycle model.
* :mod:`~repro.fpga.resources` — the Table 4 FPGA resource model.
* :mod:`~repro.fpga.platform` — whole-platform configurations (FA3C,
  FA3C-SingleCU, FA3C-Alt1, FA3C-Alt2).
* :mod:`~repro.fpga.simloop` / :mod:`~repro.fpga.binding` — the
  discrete-event simulation loop and its fast-path bound-stage
  scheduling.
"""

from repro.fpga.buffers import BufferControlUnit, LineBuffer, OnChipBuffer
from repro.fpga.cu import ComputeUnit
from repro.fpga.dram import DRAMChannel, DRAMModel
from repro.fpga.layouts import (
    PATCH,
    bw_layout,
    dram_image_from_fw,
    fw_layout,
    fw_layout_to_weight,
    load_bw_from_dram,
    load_fw_from_dram,
)
from repro.fpga.pe import PEArray, ProcessingElement
from repro.fpga.platform import FA3CPlatform, FPGAConfig
from repro.fpga.resources import ResourceModel, resource_table
from repro.fpga.rmsprop_module import RMSPropModule
from repro.fpga.functional import FPGANetworkBackend
from repro.fpga.schedule import (
    StageSchedule,
    bw_schedule,
    fw_schedule,
    gc_schedule,
    stage_schedules,
)
from repro.fpga.timing import StageTiming, TimingModel
from repro.fpga.tlu import TransposeLoadUnit

__all__ = [
    "BufferControlUnit",
    "ComputeUnit",
    "DRAMChannel",
    "DRAMModel",
    "FA3CPlatform",
    "FPGANetworkBackend",
    "FPGAConfig",
    "LineBuffer",
    "OnChipBuffer",
    "PATCH",
    "PEArray",
    "ProcessingElement",
    "RMSPropModule",
    "ResourceModel",
    "StageSchedule",
    "StageTiming",
    "TimingModel",
    "TransposeLoadUnit",
    "bw_layout",
    "bw_schedule",
    "dram_image_from_fw",
    "fw_layout",
    "fw_schedule",
    "fw_layout_to_weight",
    "gc_schedule",
    "load_bw_from_dram",
    "load_fw_from_dram",
    "resource_table",
    "stage_schedules",
]
