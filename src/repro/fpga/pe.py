"""Processing elements (paper Section 4.2.1).

A PE is a pair of a 32-bit single-precision multiplier and accumulator.
Unlike an adder tree or systolic array, the *accumulation frequency* — how
many products are summed into one output — is controlled per operation,
which is what lets the same PE serve FW (accumulate I*K*K + 1 values), BW,
and GC (accumulate ``batch`` values for a fully-connected weight gradient).

:class:`ProcessingElement` is the single-MAC functional model (used by the
unit tests to validate scheduling); :class:`PEArray` evaluates whole
operand matrices the way ``N_PE`` PEs would, while counting the cycles the
schedule takes.
"""

from __future__ import annotations

import typing

import numpy as np

from repro.nn.quant import fake_quant_int8, fp16_storage
from repro.obs import runtime as _obs
from repro.perf.hotpath import hot_path
from repro.precision import FP32, Precision


class ProcessingElement:
    """One fp32 multiplier + accumulator."""

    def __init__(self):
        self._accumulator = np.float32(0.0)
        self.mac_count = 0

    @property
    def value(self) -> float:
        """The current accumulator contents."""
        return float(self._accumulator)

    def clear(self) -> None:
        """Reset the accumulator (start of a new output element)."""
        self._accumulator = np.float32(0.0)

    def mac(self, a: float, b: float) -> None:
        """One multiply-accumulate (one cycle).

        Arithmetic is performed in fp32, like the hardware datapath.
        """
        self._accumulator = np.float32(
            self._accumulator + np.float32(a) * np.float32(b))
        self.mac_count += 1

    @hot_path
    def accumulate_sequence(self, a_values: typing.Sequence[float],
                            b_values: typing.Sequence[float]) -> float:
        """Run a full accumulation of ``len(a_values)`` products.

        The accumulation frequency is simply the sequence length — the
        controllability that fixed adder trees lack.
        """
        if len(a_values) != len(b_values):
            raise ValueError("operand sequences differ in length")
        self.clear()
        n = len(a_values)
        if n:
            products = np.asarray(a_values, dtype=np.float32) \
                * np.asarray(b_values, dtype=np.float32)
            # np.add.accumulate is strictly left-to-right in fp32, so the
            # running sum is bit-identical to n individual mac() calls
            # (1-D np.add.reduce would pairwise-sum and is not).
            self._accumulator = np.float32(
                np.add.accumulate(products, dtype=np.float32)[-1])
            self.mac_count += n
        return self.value


class PEArray:
    """``n_pe`` PEs evaluated in lockstep with cycle accounting.

    ``precision`` selects the *operand storage* format: narrower formats
    coerce both operand matrices to their storage precision before the
    MAC, while accumulation always happens in fp32 (the paper's
    datapath, widened multipliers feeding fp32 adders).  At fp32 the
    coercion is skipped entirely, so the reference path stays
    bit-identical by construction.
    """

    def __init__(self, n_pe: int = 64, precision: Precision = FP32):
        if n_pe < 1:
            raise ValueError(f"need at least one PE: {n_pe}")
        self.n_pe = n_pe
        self.precision = precision
        self.total_cycles = 0
        self.busy_pe_cycles = 0

    def _coerce(self, operand: np.ndarray) -> np.ndarray:
        """Round an operand matrix to the storage precision (fp32 out)."""
        if self.precision.name == "fp16":
            return fp16_storage(operand)
        if self.precision.name == "int8":
            return fake_quant_int8(np.asarray(operand, dtype=np.float32))
        return operand

    def utilisation(self) -> float:
        """Average fraction of PEs busy over all counted cycles."""
        if self.total_cycles == 0:
            return 0.0
        return self.busy_pe_cycles / (self.total_cycles * self.n_pe)

    @hot_path
    def run_reduction(self, operand_a: np.ndarray,
                      operand_b: np.ndarray) -> np.ndarray:
        """Compute ``outputs[j] = sum_r a[r, j] * b[r, j]`` PE-parallel.

        ``operand_a``/``operand_b`` have shape ``(freq, n_outputs)``:
        column ``j`` is the operand sequence PE ``j`` consumes over
        ``freq`` cycles (the accumulation frequency).  Outputs are computed
        in groups of ``n_pe``; cycle count is ``ceil(n_outputs / n_pe) *
        freq``.
        """
        if operand_a.shape != operand_b.shape:
            raise ValueError("operand shapes differ")
        if self.precision.name != "fp32":
            operand_a = self._coerce(operand_a)
            operand_b = self._coerce(operand_b)
        freq, n_outputs = operand_a.shape
        rounds = -(-n_outputs // self.n_pe)
        self.total_cycles += rounds * freq
        self.busy_pe_cycles += n_outputs * freq
        if _obs.enabled():
            _obs.metrics().counter("fpga.pe.cycles").inc(rounds * freq)
        # fp32 accumulation order matches the sequential hardware sum:
        # np.add.reduce over axis 0 adds rows first-to-last in fp32,
        # bit-identical to the per-row accumulation loop it replaces.
        acc = np.zeros(n_outputs, dtype=np.float32)
        if freq:
            products = operand_a.astype(np.float32) \
                * operand_b.astype(np.float32)
            acc += np.add.reduce(products, axis=0, dtype=np.float32)
        return acc

    @hot_path
    def schedule_cycles(self, n_outputs: int, accumulation_frequency: int,
                        parallel_limit: typing.Optional[int] = None) -> int:
        """Cycle count of a schedule without evaluating it.

        ``parallel_limit`` caps how many PEs the data layout can feed per
        cycle (e.g. the Alt1 layout starves BW of fully-connected layers,
        Section 5.4).
        """
        usable = self.n_pe if parallel_limit is None \
            else max(1, min(self.n_pe, parallel_limit))
        rounds = -(-n_outputs // usable)
        cycles = rounds * accumulation_frequency
        self.total_cycles += cycles
        self.busy_pe_cycles += n_outputs * accumulation_frequency
        if _obs.enabled():
            _obs.metrics().counter("fpga.pe.cycles").inc(cycles)
        return cycles
