"""The per-stage cycle model of a compute unit.

Converts a network topology (Table 1) into sequences of *stages*, each with
a compute-cycle count (from the PE scheduling rules of Sections 4.4-4.5)
and per-channel DRAM word counts (the Table 2 traffic items).  The
discrete-event platform layer turns stages into simulated time, arbitrating
the shared DRAM channels between CUs — which is exactly the effect the
dual-CU design exploits (Section 4.2.2).

Layout modes (Section 5.4):

* ``"fa3c"`` — FW layout for FW/GC, BW layout via the TLU for BW; every
  stage feeds all PEs.
* ``"alt1"`` — the FW layout is used for *all* computation types; BW can
  only feed PEs within one input channel, so its parallelism collapses to
  the layer's output spatial size (1 for fully-connected layers).
* ``"alt2"`` — both layouts are materialised in DRAM; BW is fast but every
  parameter update writes an extra layout copy.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.fpga.layouts import image_words
from repro.nn.network import LayerSpec, NetworkTopology
from repro.precision import FP32, Precision

#: Logical channel names: the paper places global and local parameters in
#: different memory channels when more than one is available (Section 4.1).
LOCAL = "local"
GLOBAL = "global"

LAYOUT_MODES = ("fa3c", "alt1", "alt2")


@dataclasses.dataclass
class StageTiming:
    """One pipeline stage: compute cycles plus DRAM words per channel."""

    name: str
    compute_cycles: int
    loads: typing.Dict[str, int] = dataclasses.field(default_factory=dict)
    stores: typing.Dict[str, int] = dataclasses.field(default_factory=dict)
    overhead_cycles: int = 0
    """Share of ``compute_cycles`` that is fixed control overhead
    (pipeline fill, buffer swap, task handshake) rather than PE work —
    the attribution profiler's ``control`` bucket."""
    transform_words: int = 0
    """Share of the stage's DRAM words that exists only for layout
    transformation (TLU-transposed BW parameters, the Alt2 second
    layout copy) — the profiler's ``tlu_layout`` bucket."""

    def words(self, channel: str) -> int:
        """Total words moved on one channel."""
        return self.loads.get(channel, 0) + self.stores.get(channel, 0)

    @property
    def total_load_words(self) -> int:
        return sum(self.loads.values())

    @property
    def total_store_words(self) -> int:
        return sum(self.stores.values())


def _parallel_fw(n_pe: int, spec: LayerSpec) -> int:
    """PEs usable in FW: each output channel gets a PE; extra PEs take
    more spatial positions (M_FW = floor(N_PE / O), Section 4.5.1)."""
    o = spec.out_channels
    if o >= n_pe:
        return n_pe
    return o * max(1, n_pe // o)


def _parallel_gc(n_pe: int, spec: LayerSpec) -> int:
    """PEs usable in GC: K*K weights in parallel x M_GC = floor(N_PE/K^2)
    output channels (Section 4.5.1)."""
    ksq = spec.kernel ** 2
    if ksq >= n_pe:
        return n_pe
    return min(n_pe, ksq * max(1, n_pe // ksq), spec.num_weights)


def _parallel_bw(n_pe: int, spec: LayerSpec, layout_mode: str,
                 fetch_words: int = 16) -> int:
    """PEs usable in BW.

    With the BW layout a buffer row spans M_w = floor(O/K^2) input
    channels, so PEs cover multiple input channels at once and the array
    stays busy.  Under Alt1 (FW layout) every simultaneously accessible
    parameter belongs to one input channel (Section 4.4.2):

    * dense layers have no parameter reuse, so PEs can only be fed at the
      DRAM fetch rate — 16 words per cycle ("the required parameter values
      are not fetched at the rate required by the PEs");
    * convolutions reuse each parameter over the output plane, but
      computing several input gradients of the *same* channel needs that
      many distinct output-gradient windows live in line buffers at once,
      capping parallelism at roughly one output row per kernel row.
    """
    if layout_mode == "alt1":
        if spec.kind == "dense":
            # One beat of operands per cycle (16 fp32 words), halved
            # because the FW-order stream defeats the line buffers'
            # double buffering (no TLU prefetch path in this
            # configuration).  Narrower operands raise the fetch rate.
            return max(1, min(n_pe, fetch_words // 2))
        window_limit = spec.out_width * spec.kernel
        return max(1, min(n_pe, window_limit))
    return n_pe


class TimingModel:
    """Cycle/traffic model for one CU running Table 1 layers."""

    #: Fixed per-stage control overhead (pipeline fill, buffer swap).
    STAGE_OVERHEAD_CYCLES = 64
    #: Fixed per-task overhead (request decode, start/finish handshake) —
    #: the FPGA analogue of a kernel launch.  24 cycles (~133 ns at
    #: 180 MHz) keeps the per-routine share under the paper's measured
    #: 0.02 % (Section 3.4).
    TASK_OVERHEAD_CYCLES = 24

    def __init__(self, topology: NetworkTopology, n_pe: int = 64,
                 layout_mode: str = "fa3c", num_rus: int = 8,
                 precision: Precision = FP32):
        if layout_mode not in LAYOUT_MODES:
            raise ValueError(f"unknown layout mode {layout_mode!r}")
        self.topology = topology
        self.n_pe = n_pe
        self.layout_mode = layout_mode
        self.num_rus = num_rus
        self.precision = precision
        # One DRAM beat in operands: the patch edge, burst-alignment
        # unit, and per-cycle fetch width all follow the operand width
        # (16 at fp32 — every count below is then unchanged).
        self._beat_words = precision.words_per_beat

    # -- per-layer parameter footprints -----------------------------------

    def param_image_words(self, spec: LayerSpec) -> int:
        """Words of the layer's DRAM parameter image (patch-padded
        weights + burst-aligned biases)."""
        rows = spec.in_channels * spec.kernel ** 2
        cols = spec.out_channels
        beat = self._beat_words
        bias_words = -(-spec.out_channels // beat) * beat
        return image_words(rows, cols, patch=beat) + bias_words

    def total_param_words(self) -> int:
        """One full parameter set in DRAM (all layers)."""
        return sum(self.param_image_words(spec)
                   for spec in self.topology.layers)

    def feature_words(self, spec: LayerSpec, batch: int) -> int:
        """Output feature-map words.

        Rows are packed contiguously and each *transfer* is aligned to
        the burst beat (16 words at fp32), so the internal fragmentation
        stays below 1 % of the traffic (Section 4.3).
        """
        beat = self._beat_words
        return batch * (-(-spec.num_outputs // beat) * beat)

    def input_words(self, batch: int) -> int:
        """Network-input words per batch (burst-aligned as a whole)."""
        c, h, w = self.topology.input_shape
        beat = self._beat_words
        return batch * (-(-(c * h * w) // beat) * beat)

    # -- stages ------------------------------------------------------------

    def fw_stage(self, spec: LayerSpec, batch: int,
                 first_layer: bool) -> StageTiming:
        """Forward propagation of one layer (plus ReLU, free in the PE
        output path)."""
        outputs = batch * spec.num_outputs
        parallel = _parallel_fw(self.n_pe, spec)
        rounds = -(-outputs // parallel)
        compute = rounds * spec.accumulation_frequency_fw \
            + self.STAGE_OVERHEAD_CYCLES
        loads = {LOCAL: self.param_image_words(spec)}
        if first_layer:
            loads[LOCAL] += self.input_words(batch)
        # Output feature maps are saved to DRAM for reuse by the training
        # task (Section 4.3).
        stores = {LOCAL: self.feature_words(spec, batch)}
        return StageTiming(f"FW:{spec.name}", compute, loads, stores,
                           overhead_cycles=self.STAGE_OVERHEAD_CYCLES)

    def gc_stage(self, spec: LayerSpec, batch: int,
                 first_layer: bool) -> StageTiming:
        """Gradient computation of one layer.

        Loads the layer's input feature maps saved at inference time plus
        the output gradients (on-chip from the following BW); stores the
        parameter gradients to the global channel for the RMSProp module.
        """
        accumulation = spec.accumulation_frequency_gc(batch)
        parallel = _parallel_gc(self.n_pe, spec)
        weights = spec.num_weights + spec.out_channels  # + bias gradients
        rounds = -(-weights // parallel)
        compute = rounds * accumulation + self.STAGE_OVERHEAD_CYCLES
        input_feature_words = self.input_words(batch) if first_layer \
            else 0
        loads = {LOCAL: input_feature_words}
        stores = {GLOBAL: self.param_image_words(spec)}
        return StageTiming(f"GC:{spec.name}", compute, loads, stores,
                           overhead_cycles=self.STAGE_OVERHEAD_CYCLES)

    def bw_stage(self, spec: LayerSpec, batch: int,
                 prev_spec: typing.Optional[LayerSpec]) -> StageTiming:
        """Backward propagation of one layer.

        Loads parameters in the BW layout (TLU transposition is pipelined
        with the transfer, adding no cycles) and the saved feature maps of
        the preceding layer for the next GC.
        """
        macs = spec.macs_bw(batch)
        parallel = _parallel_bw(self.n_pe, spec, self.layout_mode,
                                fetch_words=self._beat_words)
        compute = -(-macs // parallel) + self.STAGE_OVERHEAD_CYCLES
        param_words = self.param_image_words(spec)
        loads = {LOCAL: param_words}
        if prev_spec is not None:
            # Feature maps of the upstream layer, needed by its GC.
            loads[LOCAL] += self.feature_words(prev_spec, batch)
        # In the FA3C layout the BW parameter load flows through the TLU
        # transpose; Alt1 reuses the FW layout untransformed and Alt2
        # reads the pre-materialised second copy.
        transform = param_words if self.layout_mode == "fa3c" else 0
        return StageTiming(f"BW:{spec.name}", compute, loads, {},
                           overhead_cycles=self.STAGE_OVERHEAD_CYCLES,
                           transform_words=transform)

    def rmsprop_stage(self, num_rus: typing.Optional[int] = None
                      ) -> StageTiming:
        """Global parameter update by the RMSProp module.

        Each RU moves four words per cycle, so four RUs saturate one
        16-word channel (Section 4.2.3); the default of eight matches the
        two-channel global stripe."""
        num_rus = num_rus or self.num_rus
        words = self.total_param_words()
        compute = -(-words // num_rus) + self.STAGE_OVERHEAD_CYCLES
        extra = words if self.layout_mode == "alt2" else 0
        loads = {GLOBAL: 2 * words}              # theta + g
        stores = {GLOBAL: 2 * words + extra}     # theta + g (+ 2nd layout)
        return StageTiming("RMSProp", compute, loads, stores,
                           overhead_cycles=self.STAGE_OVERHEAD_CYCLES,
                           transform_words=extra)

    def sync_stage(self) -> StageTiming:
        """Parameter sync: copy global theta to the agent's local theta."""
        words = self.total_param_words()
        return StageTiming("ParamSync", 0, {GLOBAL: words},
                           {LOCAL: words})

    # -- tasks ---------------------------------------------------------------

    def inference_task(self, batch: int = 1) -> typing.List[StageTiming]:
        """All FW stages of one inference request."""
        stages = []
        for index, spec in enumerate(self.topology.layers):
            stages.append(self.fw_stage(spec, batch, first_layer=index == 0))
        stages[0].compute_cycles += self.TASK_OVERHEAD_CYCLES
        stages[0].overhead_cycles += self.TASK_OVERHEAD_CYCLES
        return stages

    def training_task(self, batch: int) -> typing.List[StageTiming]:
        """GC then BW per layer from the last to the first (Section 4.3),
        followed by the RMSProp update of global theta."""
        stages: typing.List[StageTiming] = []
        layers = self.topology.layers
        for index in range(len(layers) - 1, -1, -1):
            spec = layers[index]
            stages.append(self.gc_stage(spec, batch,
                                        first_layer=index == 0))
            if index > 0:
                stages.append(self.bw_stage(spec, batch,
                                            layers[index - 1]))
        stages.append(self.rmsprop_stage())
        stages[0].compute_cycles += self.TASK_OVERHEAD_CYCLES
        stages[0].overhead_cycles += self.TASK_OVERHEAD_CYCLES
        return stages

    def sync_task(self) -> typing.List[StageTiming]:
        """The parameter-sync task preceding each routine."""
        return [self.sync_stage()]

    # -- aggregates ----------------------------------------------------------

    @staticmethod
    def task_compute_cycles(stages: typing.Sequence[StageTiming]) -> int:
        return sum(stage.compute_cycles for stage in stages)

    @staticmethod
    def task_words(stages: typing.Sequence[StageTiming],
                   channel: typing.Optional[str] = None) -> int:
        if channel is None:
            return sum(stage.total_load_words + stage.total_store_words
                       for stage in stages)
        return sum(stage.words(channel) for stage in stages)
