"""The Transpose Load Unit (paper Section 4.4.3).

The TLU turns the single FW-layout DRAM copy into the BW on-chip layout
while the data is in flight: DRAM patches are staged into a FIFO, then
transposed 16x16 using registers and shift operations.  A CU has two TLU
instances working in a double-buffered pair — one fills the parameter
buffer while the other prepares the next transposed patch — and the TLU
issues read requests ahead of PE consumption to hide DRAM latency.

With ``emulate=True`` this class emulates the register-level
shift-transpose beat by beat so the test suite can validate the
mechanism itself; the default path produces the identical patch with one
``np.transpose`` (pure data movement — no arithmetic, so the outputs are
bit-equal) while keeping the same FIFO, counter, and cycle accounting.
"""

from __future__ import annotations

import collections
import typing

import numpy as np

from repro.fpga.layouts import PATCH
from repro.obs import runtime as _obs
from repro.perf.hotpath import hot_path


class TransposeLoadUnit:
    """Shift-register emulation of one TLU instance."""

    def __init__(self, patch: int = PATCH, fifo_depth: int = 4,
                 emulate: bool = False):
        self.patch = patch
        self.fifo_depth = fifo_depth
        self.emulate = emulate
        self._fifo: collections.deque = collections.deque()
        # The register file: `patch` shift rows of `patch` words.
        self._rows = np.zeros((patch, patch), dtype=np.float32)
        self.patches_transposed = 0
        self.words_loaded = 0

    @classmethod
    def for_precision(cls, precision, fifo_depth: int = 4,
                      emulate: bool = False) -> "TransposeLoadUnit":
        """A TLU sized to one DRAM beat of the given operand precision.

        The transpose array edge equals the words-per-beat of the
        precision (16 at fp32, 32 at fp16, 64 at int8): each beat still
        fills exactly one register row, so the shift-transpose schedule
        is unchanged — only the patch edge grows with packing density.
        """
        return cls(patch=precision.words_per_beat, fifo_depth=fifo_depth,
                   emulate=emulate)

    @property
    def register_words(self) -> int:
        """Register words the transpose array occupies."""
        return self.patch * self.patch

    def stage(self, patch_words: np.ndarray) -> None:
        """Stage one serialised 16x16 patch from DRAM into the FIFO.

        Raises if the prefetch FIFO is full (the hardware would apply
        back-pressure to the DRAM read stream).
        """
        patch_words = np.asarray(patch_words, dtype=np.float32).reshape(-1)
        if patch_words.size != self.patch * self.patch:
            raise ValueError(f"a patch is {self.patch * self.patch} words, "
                             f"got {patch_words.size}")
        if len(self._fifo) >= self.fifo_depth:
            raise RuntimeError("TLU prefetch FIFO full")
        self._fifo.append(patch_words.copy())
        self.words_loaded += patch_words.size

    @hot_path
    def transpose_next(self) -> np.ndarray:
        """Transpose the oldest staged patch via row shifts.

        Cycle-level behaviour: for each of the 16 beats, one 16-word DRAM
        row is pushed broadside into the register columns while every
        register row shifts one word — after 16 beats the columns hold the
        rows, i.e. the patch is transposed.  Returns the transposed patch
        as a ``(16, 16)`` array.
        """
        if not self._fifo:
            raise RuntimeError("no staged patch to transpose")
        words = self._fifo.popleft().reshape(self.patch, self.patch)
        if self.emulate:
            self._rows[:] = 0.0
            for beat in range(self.patch):
                # Shift every register row right by one word...
                self._rows[:, 1:] = self._rows[:, :-1]
                # ...and insert the incoming DRAM row broadside into
                # column 0.
                self._rows[:, 0] = words[beat]
            # Register row r now holds original column r, last-in first:
            # reading rows back reversed yields the transpose.
            transposed = self._rows[:, ::-1].copy()
        else:
            transposed = words.T.copy()
        self.patches_transposed += 1
        if _obs.enabled():
            metrics = _obs.metrics()
            metrics.counter("fpga.tlu.patches").inc()
            metrics.counter("fpga.tlu.words").inc(self.patch * self.patch)
            metrics.counter("fpga.tlu.cycles").inc(self.transpose_cycles())
        return transposed

    def transpose_cycles(self) -> int:
        """Cycles to transpose one patch (one beat per word row)."""
        return self.patch

    def load_transposed(self, patches: typing.Iterable[np.ndarray]
                        ) -> typing.List[np.ndarray]:
        """Stage-and-transpose a stream of serialised patches."""
        out = []
        for patch_words in patches:
            self.stage(patch_words)
            out.append(self.transpose_next())
        return out
