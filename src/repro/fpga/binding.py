"""Bound-stage scheduling: cached plans resolved to one simulator.

A :class:`~repro.perf.stageplan.StagePlan` is pure data shared by every
simulator instance; a :class:`BoundStage` is that plan *bound* to one
:class:`~repro.fpga.simloop.FPGASim` — channel resources resolved to the
sim's CU pair, attribution counter cells pre-resolved lazily so the
fast-path replay increments cells instead of re-sorting label dicts per
stage.  :class:`BoundTask` caches a whole task's bound stages plus its
PCIe bookends.

Both classes record *exactly* the integer arithmetic of the derivation
path in :mod:`repro.fpga.simloop` (``_count_dma`` + ``_record_stage``):
the perf gate and the fast/legacy equivalence tests assert bit-identical
attribution.
"""

from __future__ import annotations

import typing

from repro.obs.prof import buckets as _prof
from repro.perf import stageplan as _stageplan

if typing.TYPE_CHECKING:                     # pragma: no cover
    from repro.fpga.simloop import FPGASim


class BoundStage:
    """One :class:`~repro.perf.stageplan.StagePlan` bound to a simulator
    instance: channel resources resolved, attribution counter cells
    pre-resolved lazily (labels sorted once, not per increment)."""

    __slots__ = ("plan", "name", "compute_seconds", "double_buffering",
                 "holds", "cu_name", "task", "clock_hz", "_local_name",
                 "_global_names", "_cells")

    def __init__(self, sim: "FPGASim", plan: _stageplan.StagePlan,
                 pair: int, cu_name: str, task: str):
        self.plan = plan
        self.name = plan.name
        self.compute_seconds = plan.compute_seconds
        self.double_buffering = plan.double_buffering
        holds = []
        if plan.local_words:
            holds.append((sim.local_channels[pair], plan.local_seconds))
        if plan.global_share_words:
            for channel in sim.global_channels:
                holds.append((channel, plan.global_share_seconds))
        self.holds = tuple(holds)
        self.cu_name = cu_name
        self.task = task
        self.clock_hz = sim.platform.config.clock_hz
        self._local_name = sim.local_channels[pair].name
        self._global_names = tuple(channel.name
                                   for channel in sim.global_channels)
        self._cells = None

    def _build_cells(self, metrics):
        plan = self.plan
        counter = metrics.counter(_prof.FPGA_CYCLES_METRIC)
        labels = dict(cu=self.cu_name, task=self.task, stage=plan.kind,
                      layer=plan.layer)
        traffic = metrics.counter("fpga.dram.bytes")
        bursts = metrics.counter("fpga.dram.bursts")
        dma = []
        for direction, num_bytes, num_bursts in plan.local_traffic:
            dma.append((traffic.cell(channel=self._local_name,
                                     dir=direction), num_bytes))
            dma.append((bursts.cell(channel=self._local_name),
                        num_bursts))
        for direction, num_bytes, num_bursts in plan.global_traffic:
            for name in self._global_names:
                dma.append((traffic.cell(channel=name, dir=direction),
                            num_bytes))
                dma.append((bursts.cell(channel=name), num_bursts))
        cells = (
            metrics,
            counter.cell(bucket=plan.compute_bucket, **labels),
            counter.cell(bucket=_prof.CONTROL, **labels),
            counter.cell(bucket=_prof.BUFFER_STALL, **labels),
            counter.cell(bucket=_prof.TLU_LAYOUT, **labels),
            counter.cell(bucket=_prof.DRAM_WAIT, **labels),
            metrics.counter(_prof.FPGA_CYCLES_TOTAL_METRIC).cell(
                cu=self.cu_name),
            tuple(dma),
        )
        self._cells = cells
        return cells

    def record(self, metrics, elapsed: float) -> None:
        """Fast-path equivalent of ``_count_dma`` + ``_record_stage``:
        identical integer arithmetic, pre-resolved label keys."""
        cells = self._cells
        if cells is None or cells[0] is not metrics:
            cells = self._build_cells(metrics)
        (_registry, work_c, control_c, stall_c, tlu_c, dram_c,
         total_c, dma) = cells
        for cell, value in dma:
            cell.inc(value)
        plan = self.plan
        cycles = int(round(elapsed * self.clock_hz))
        compute = plan.compute_cycles
        total = cycles if cycles > compute else compute
        if plan.work_cycles:
            work_c.inc(plan.work_cycles)
        if plan.overhead_cycles:
            control_c.inc(plan.overhead_cycles)
        residual = total - compute
        if residual > 0:
            if not self.double_buffering and compute:
                stall_c.inc(residual)
            else:
                transform = 0
                if plan.transform_words:
                    transform = (residual * plan.transform_words
                                 // plan.dma_words)
                if transform:
                    tlu_c.inc(transform)
                rest = residual - transform
                if rest:
                    dram_c.inc(rest)
        total_c.inc(total)


class BoundTask:
    """A cached :class:`~repro.perf.stageplan.TaskPlan` bound to one
    simulator's resources for one CU pair."""

    __slots__ = ("plan", "stages", "cu_name", "task", "pcie_in_seconds",
                 "pcie_out_seconds", "double_buffering", "_cells")

    def __init__(self, sim: "FPGASim", plan: _stageplan.TaskPlan,
                 pair: int, cu_name: str, task: str):
        self.plan = plan
        self.stages = tuple(BoundStage(sim, stage_plan, pair, cu_name,
                                       task)
                            for stage_plan in plan.stages)
        self.cu_name = cu_name
        self.task = task
        self.pcie_in_seconds = plan.pcie_in_seconds
        self.pcie_out_seconds = plan.pcie_out_seconds
        # Uniform across a task's stages (it is a config field).
        self.double_buffering = all(stage.double_buffering
                                    for stage in self.stages)
        self._cells = None

    def record_task(self, metrics, elapsed: float) -> None:
        cells = self._cells
        if cells is None or cells[0] is not metrics:
            cells = (metrics,
                     metrics.counter("fpga.cu.busy_seconds").cell(
                         cu=self.cu_name),
                     metrics.counter("fpga.cu.tasks").cell(
                         cu=self.cu_name, task=self.task))
            self._cells = cells
        cells[1].inc(elapsed)
        cells[2].inc()
