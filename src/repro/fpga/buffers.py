"""On-chip buffers, line buffers, and the buffer control unit (BCU).

Paper Section 4.5: an **on-chip buffer** is made of Block-RAM rows, each a
one-dimensional word array 16 words wide (matching the DRAM burst width);
a **line buffer** is a register array that prefetches and caches elements
from one or more on-chip buffer rows, feeding all PEs simultaneously.  The
BCU implements three management operations:

* **shifting** — the line buffer shifts left one word per cycle so each PE
  reads a moving window without rerouting;
* **stitching** — several on-chip buffer rows are concatenated into one
  logical line when the feature-map width exceeds the 16-word row width;
* **scattering** — PE outputs written to a line buffer are distributed to
  multiple on-chip buffer rows.

These classes are functional (they hold real values) and count the
register/word resources they would occupy, which feeds the Table 4
resource model.
"""

from __future__ import annotations

import typing

import numpy as np

from repro.obs import runtime as _obs

#: On-chip buffer row width in fp32 words (= DRAM burst width).
ROW_WORDS = 16


def row_words_for(precision) -> int:
    """Row width in words for an operand precision.

    Block-RAM rows are one DRAM beat (512 bits) wide regardless of
    operand width, so narrower words pack more per row — the same
    capacity in bits holds ``words_per_beat`` words per row.
    """
    return precision.words_per_beat


class OnChipBuffer:
    """A named on-chip memory of ``rows`` x 16-word rows."""

    def __init__(self, name: str, rows: int, row_words: int = ROW_WORDS):
        if rows < 1 or row_words < 1:
            raise ValueError("buffer must have positive dimensions")
        self.name = name
        self.rows = rows
        self.row_words = row_words
        self.data = np.zeros((rows, row_words), dtype=np.float32)

    @property
    def words(self) -> int:
        """Total capacity in words."""
        return self.rows * self.row_words

    def write_row(self, row: int, values: np.ndarray,
                  offset: int = 0) -> None:
        """Write ``values`` into one row starting at ``offset``."""
        values = np.asarray(values, dtype=np.float32)
        if offset + values.size > self.row_words:
            raise ValueError(f"{self.name}: write of {values.size} words at "
                             f"offset {offset} overflows a "
                             f"{self.row_words}-word row")
        self.data[row, offset:offset + values.size] = values

    def read_row(self, row: int) -> np.ndarray:
        """A copy of one full row."""
        return self.data[row].copy()

    def load_matrix(self, matrix: np.ndarray) -> int:
        """Fill the buffer from a 2-D matrix, one matrix row per buffer row
        group (wide matrix rows span multiple buffer rows, 16-word aligned
        as Section 4.3 describes).  Returns the number of buffer rows used.
        """
        matrix = np.asarray(matrix, dtype=np.float32)
        if matrix.ndim != 2:
            raise ValueError("load_matrix requires a 2-D matrix")
        rows_per_line = -(-matrix.shape[1] // self.row_words)
        needed = matrix.shape[0] * rows_per_line
        if needed > self.rows:
            raise ValueError(f"{self.name}: matrix needs {needed} rows, "
                             f"buffer has {self.rows}")
        self.data[:needed] = 0.0
        for line_index, line in enumerate(matrix):
            for part in range(rows_per_line):
                chunk = line[part * self.row_words:
                             (part + 1) * self.row_words]
                self.write_row(line_index * rows_per_line + part, chunk)
        return needed

    def read_line(self, line_index: int, width: int,
                  rows_per_line: typing.Optional[int] = None) -> np.ndarray:
        """Read a logical line of ``width`` words (stitching read path)."""
        rows_per_line = rows_per_line or -(-width // self.row_words)
        flat = self.data[line_index * rows_per_line:
                         (line_index + 1) * rows_per_line].reshape(-1)
        return flat[:width].copy()


class LineBuffer:
    """A one-dimensional register array feeding operands to the PEs."""

    def __init__(self, width: int, word_bits: int = 32):
        if width < 1:
            raise ValueError(f"line buffer width must be >= 1: {width}")
        if word_bits < 1:
            raise ValueError(f"word bits must be >= 1: {word_bits}")
        self.width = width
        self.word_bits = word_bits
        self.registers = np.zeros(width, dtype=np.float32)

    @property
    def register_count(self) -> int:
        """Register bits this line buffer occupies (fp32 words default)."""
        return self.width * self.word_bits

    def load(self, values: np.ndarray) -> None:
        """Replace the whole register contents."""
        values = np.asarray(values, dtype=np.float32)
        if values.size != self.width:
            raise ValueError(f"expected {self.width} words, "
                             f"got {values.size}")
        self.registers = values.copy()

    def shift(self, count: int = 1, fill: float = 0.0) -> np.ndarray:
        """Shift left ``count`` words (one per cycle in hardware).

        Returns the words shifted out.
        """
        if count < 0:
            raise ValueError("shift count must be non-negative")
        count = min(count, self.width)
        out = self.registers[:count].copy()
        self.registers = np.concatenate([
            self.registers[count:],
            np.full(count, fill, dtype=np.float32)])
        return out

    def peek(self, index: int = 0) -> float:
        """The word a PE connected at position ``index`` currently sees."""
        return float(self.registers[index])


class BufferControlUnit:
    """Implements the shift / stitch / scatter operations over buffers."""

    def __init__(self):
        self.shift_ops = 0
        self.stitch_ops = 0
        self.scatter_ops = 0

    def stitch(self, buffer: OnChipBuffer, row_indices:
               typing.Sequence[int], width: int) -> LineBuffer:
        """Combine several on-chip buffer rows into one line buffer.

        Used when the feature-map width exceeds the 16-word row width
        (Section 4.5, "Stitching").
        """
        parts = [buffer.read_row(r) for r in row_indices]
        flat = np.concatenate(parts)[:width]
        if flat.size < width:
            raise ValueError(f"stitched rows provide {flat.size} words, "
                             f"need {width}")
        line = LineBuffer(width)
        line.load(flat)
        self.stitch_ops += 1
        if _obs.enabled():
            _obs.metrics().counter("fpga.bcu.ops").inc(op="stitch")
        return line

    def shift_window(self, line: LineBuffer, window: int
                     ) -> typing.Iterator[np.ndarray]:
        """Yield successive ``window``-word views, shifting one word per
        cycle (Section 4.5, "Shifting").  Yields until the line drains.
        """
        steps = line.width - window + 1
        shifted = 0
        for _ in range(max(steps, 0)):
            yield line.registers[:window].copy()
            line.shift(1)
            self.shift_ops += 1
            shifted += 1
        if shifted and _obs.enabled():
            metrics = _obs.metrics()
            metrics.counter("fpga.bcu.ops").inc(shifted, op="shift")
            # One word per cycle: shift ops double as a cycle count.
            metrics.counter("fpga.bcu.cycles").inc(shifted, op="shift")

    def scatter(self, line: LineBuffer, buffer: OnChipBuffer,
                placements: typing.Sequence[typing.Tuple[int, int]]
                ) -> None:
        """Distribute line-buffer words to on-chip buffer rows.

        ``placements[i] = (row, offset)`` is the destination of word ``i``
        (Section 4.5, "Scattering": PE outputs spread over channel rows).
        """
        if len(placements) > line.width:
            raise ValueError("more placements than line-buffer words")
        for index, (row, offset) in enumerate(placements):
            buffer.write_row(row, line.registers[index:index + 1], offset)
        self.scatter_ops += 1
        if _obs.enabled():
            _obs.metrics().counter("fpga.bcu.ops").inc(op="scatter")
