"""Whole-platform FPGA configurations (FA3C and its ablations).

A :class:`FA3CPlatform` owns the timing model and exposes:

* analytic, uncontended task latencies (inference / training / sync);
* a discrete-event *simulation instance* in which CUs and DRAM channels
  are shared resources, used by the throughput experiments (Figures 8
  and 10) where contention between agents is the whole story.

Configurations:

* ``FA3CPlatform.fa3c()`` — the proposed design: per pair, one CU
  dedicated to inference and one to training (asymmetric loads sharing
  the off-chip bandwidth, Section 4.2.2).
* ``.single_cu()`` — one CU with 2N PEs per pair serving both task types.
* ``.alt1()`` — FW parameter layout for all computation types.
* ``.alt2()`` — both layouts materialised in DRAM (extra store traffic).

This module is the *orchestration* layer only; the simulation loop lives
in :mod:`repro.fpga.simloop` and the fast-path bound-stage scheduling in
:mod:`repro.fpga.binding` (``FPGASim`` is re-exported here for
backwards compatibility).
"""

from __future__ import annotations

import dataclasses
import typing

from repro.fpga.resources import VU9P, DeviceCapacity, ResourceModel
from repro.fpga.timing import GLOBAL, LOCAL, StageTiming, TimingModel
from repro.nn.network import NetworkTopology
from repro.obs.prof import buckets as _prof
from repro.precision import Precision, resolve_precision
from repro.sim import Engine, Tracer

if typing.TYPE_CHECKING:                     # pragma: no cover
    from repro.fpga.simloop import FPGASim


@dataclasses.dataclass
class FPGAConfig:
    """Parameters of an FA3C hardware configuration."""

    name: str = "FA3C"
    clock_hz: float = 180e6
    n_pe: int = 64                   # PEs per CU
    cu_pairs: int = 2                # the VCU1525 build has two pairs
    single_cu: bool = False          # SingleCU ablation (2N-PE single CU)
    layout_mode: str = "fa3c"        # "fa3c" | "alt1" | "alt2"
    dram_efficiency: float = 0.70    # achieved fraction of burst peak
    double_buffering: bool = True    # overlap DMA with compute (4.4.3)
    global_channels: int = 2         # global theta/g striped over channels
    num_rus: int = 8
    device: DeviceCapacity = VU9P
    pcie_bandwidth: float = 11e9     # effective host-link bytes/s
    pcie_latency: float = 8e-6       # per-DMA descriptor latency
    precision: str = "fp32"          # operand width of the datapath

    @property
    def cus_per_pair(self) -> int:
        return 1 if self.single_cu else 2

    @property
    def precision_spec(self) -> Precision:
        """The resolved :class:`~repro.precision.Precision`."""
        return resolve_precision(self.precision)

    @property
    def words_per_beat(self) -> int:
        """Operands per 512-bit DRAM beat (16 at fp32)."""
        return self.precision_spec.words_per_beat

    @property
    def word_bytes(self) -> int:
        """Bytes per operand in DRAM and over the host link."""
        return self.precision_spec.storage_bytes

    @property
    def pe_per_cu(self) -> int:
        """PEs one CU hosts: ``n_pe`` is the fp32 PE budget; narrower
        operands pack more MACs into the same DSP/logic budget."""
        base = 2 * self.n_pe if self.single_cu else self.n_pe
        return base * self.precision_spec.pe_scale


class FA3CPlatform:
    """The FA3C platform model for one network topology."""

    def __init__(self, topology: NetworkTopology,
                 config: typing.Optional[FPGAConfig] = None):
        self.topology = topology
        self.config = config or FPGAConfig()
        self.timing = TimingModel(topology, n_pe=self.config.pe_per_cu,
                                  layout_mode=self.config.layout_mode,
                                  num_rus=self.config.num_rus,
                                  precision=self.config.precision_spec)

    # -- constructors for the Section 5.4 configurations --------------------

    @classmethod
    def fa3c(cls, topology: NetworkTopology,
             **overrides) -> "FA3CPlatform":
        return cls(topology, FPGAConfig(name="FA3C", **overrides))

    @classmethod
    def single_cu(cls, topology: NetworkTopology,
                  **overrides) -> "FA3CPlatform":
        return cls(topology, FPGAConfig(name="FA3C-SingleCU",
                                        single_cu=True, **overrides))

    @classmethod
    def alt1(cls, topology: NetworkTopology,
             **overrides) -> "FA3CPlatform":
        return cls(topology, FPGAConfig(name="FA3C-Alt1",
                                        layout_mode="alt1", **overrides))

    @classmethod
    def alt2(cls, topology: NetworkTopology,
             **overrides) -> "FA3CPlatform":
        return cls(topology, FPGAConfig(name="FA3C-Alt2",
                                        layout_mode="alt2", **overrides))

    # -- quantized-datapath variants (precision-parametric family) ----------

    @classmethod
    def fp16(cls, topology: NetworkTopology,
             **overrides) -> "FA3CPlatform":
        """fp16 storage with fp32 accumulate: 32 words/beat, 2x PEs."""
        overrides.setdefault("precision", "fp16")
        return cls(topology, FPGAConfig(name="FA3C-FP16", **overrides))

    @classmethod
    def int8(cls, topology: NetworkTopology,
             **overrides) -> "FA3CPlatform":
        """int8 symmetric quantized datapath: 64 words/beat, 4x PEs."""
        overrides.setdefault("precision", "int8")
        return cls(topology, FPGAConfig(name="FA3C-INT8", **overrides))

    # -- analytic latencies ---------------------------------------------------

    def _words_seconds(self, words: int) -> float:
        beats = -(-words // self.config.words_per_beat)
        return beats / self.config.dram_efficiency / self.config.clock_hz

    def stage_seconds(self, stage: StageTiming) -> float:
        """Uncontended stage duration: compute overlaps channel traffic
        (double-buffered), so the slowest of the three wins.

        Global traffic (theta and the RMSProp g) is striped across
        ``global_channels`` DDR4 channels — the VCU1525 has four channels
        and the paper places global and local parameters in different
        channels (Section 4.1)."""
        compute = stage.compute_cycles / self.config.clock_hz
        local = self._words_seconds(stage.words(LOCAL))
        global_ = self._words_seconds(
            -(-stage.words(GLOBAL) // self.config.global_channels))
        if not self.config.double_buffering:
            # Without double-buffered parameter/line buffers the PEs
            # stall while each buffer refills.
            return compute + local + global_
        return max(compute, local, global_)

    def task_seconds(self, stages: typing.Sequence[StageTiming]) -> float:
        return sum(self.stage_seconds(stage) for stage in stages)

    def stage_attribution(self, stage: StageTiming
                          ) -> typing.Dict[str, float]:
        """Uncontended stage duration split into cause buckets.

        Fractional cycles summing to ``stage_seconds(stage) * clock_hz``
        (up to float rounding); the measured counterpart is recorded per
        executed stage by :class:`~repro.fpga.simloop.FPGASim`.
        """
        total = self.stage_seconds(stage) * self.config.clock_hz
        # stage_seconds round-trips compute_cycles through seconds;
        # clamp the last-ulp loss so the compute floor holds exactly.
        total = max(total, float(stage.compute_cycles))
        return _prof.fpga_stage_buckets(stage, total,
                                        self.config.double_buffering)

    def task_attribution(self, stages: typing.Sequence[StageTiming]
                         ) -> typing.Dict[str, float]:
        """Summed :meth:`stage_attribution` over a task's stages."""
        totals: typing.Dict[str, float] = {}
        for stage in stages:
            for bucket, cycles in self.stage_attribution(stage).items():
                totals[bucket] = totals.get(bucket, 0.0) + cycles
        return totals

    def inference_latency(self, batch: int = 1) -> float:
        """Uncontended single-inference latency in seconds."""
        return self.task_seconds(self.timing.inference_task(batch))

    def training_latency(self, batch: int = 5) -> float:
        """Uncontended training-task latency in seconds."""
        return self.task_seconds(self.timing.training_task(batch))

    def sync_latency(self) -> float:
        """Uncontended parameter-sync latency in seconds."""
        return self.task_seconds(self.timing.sync_task())

    def task_launch_overhead(self) -> float:
        """Per-task control overhead in seconds (Section 3.4: < 0.02 %)."""
        return self.timing.TASK_OVERHEAD_CYCLES / self.config.clock_hz

    def resource_model(self) -> ResourceModel:
        """Table 4 resource estimate of this configuration."""
        num_cus = self.config.cu_pairs * self.config.cus_per_pair
        return ResourceModel(num_cus=num_cus, n_pe=self.config.pe_per_cu,
                             num_rus=self.config.num_rus,
                             device=self.config.device,
                             precision=self.config.precision_spec)

    def build_sim(self, engine: Engine,
                  tracer: typing.Optional["Tracer"] = None) -> "FPGASim":
        """A discrete-event instance with shared CUs and channels.

        Pass a :class:`~repro.sim.Tracer` to record a per-CU stage
        Gantt chart of the run."""
        from repro.fpga.simloop import FPGASim

        return FPGASim(self, engine, tracer=tracer)


def __getattr__(name: str):
    # Backwards-compatible re-export: FPGASim moved to repro.fpga.simloop
    # (imported lazily to avoid a platform <-> simloop import cycle).
    if name == "FPGASim":
        from repro.fpga.simloop import FPGASim

        return FPGASim
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
