"""DNN parameter layouts (paper Section 4.4, Figure 7).

FA3C keeps **one** copy of each layer's parameters in off-chip DRAM and
changes the layout on the fly while loading into on-chip buffers:

* **FW parameter layout** (Figure 7a): row ``r`` of the on-chip buffer
  holds, for reduction index ``r`` (one of the I*K*K values a PE consumes
  in sequence), the parameter of every output channel.  As a matrix this is
  ``(I*K*K, O)``: column ``o`` is the parameter sequence PE ``o`` consumes.
* **BW parameter layout** (Figure 7b): input and output channel roles are
  switched — the transpose ``(O*K*K, I)`` arranged so PEs can produce input
  gradients of *multiple input channels* simultaneously.
* **DRAM layout** (Figure 7c): the FW matrix is partitioned into
  16x16-word patches stored contiguously.  Loading the FW layout streams
  patches as-is; loading the BW layout streams the patch grid transposed,
  with the TLU transposing each patch's 16x16 interior.

For a fully-connected layer (I = in_features, O = out_features, K = 1) the
FW matrix is simply ``weight.T`` and the BW matrix is ``weight``.
"""

from __future__ import annotations

import typing

import numpy as np

#: Patch edge in words: the DRAM interface moves 16 fp32 words per burst
#: beat.  Narrower operands pack more words per beat, so the precision-
#: parametric timing model passes ``patch=precision.words_per_beat`` to
#: the padding/footprint helpers below; the functional load/store paths
#: default to the fp32 patch.
PATCH = 16


def fw_layout(weight: np.ndarray) -> np.ndarray:
    """FW parameter layout of a ``(O, I, K, K)`` or ``(O, I)`` weight.

    Returns the ``(I*K*K, O)`` matrix: element ``[r, o]`` is the parameter
    PE ``o`` consumes at reduction step ``r``.
    """
    if weight.ndim == 2:  # dense (O, I)
        return np.ascontiguousarray(weight.T)
    if weight.ndim == 4:
        o, i, k1, k2 = weight.shape
        return np.ascontiguousarray(
            weight.reshape(o, i * k1 * k2).T)
    raise ValueError(f"unsupported weight shape {weight.shape}")


def bw_layout(weight: np.ndarray) -> np.ndarray:
    """BW parameter layout: the FW matrix with input/output switched.

    Returns the ``(O, I*K*K)`` matrix (the FW matrix transposed): a row now
    spans many *input* channels, so PEs can produce input gradients across
    input channels simultaneously — the fix for the FC-layer PE-starvation
    problem of Section 4.4.2.
    """
    return np.ascontiguousarray(fw_layout(weight).T)


def fw_layout_to_weight(matrix: np.ndarray,
                        weight_shape: typing.Sequence[int]) -> np.ndarray:
    """Invert :func:`fw_layout` back to the natural weight tensor."""
    weight_shape = tuple(weight_shape)
    if len(weight_shape) == 2:
        return np.ascontiguousarray(matrix.T).reshape(weight_shape)
    o = weight_shape[0]
    return np.ascontiguousarray(matrix.T).reshape(o, -1) \
        .reshape(weight_shape)


def _padded_shape(rows: int, cols: int,
                  patch: int = PATCH) -> typing.Tuple[int, int]:
    pad_rows = -rows % patch
    pad_cols = -cols % patch
    return rows + pad_rows, cols + pad_cols


def pad_to_patches(matrix: np.ndarray, patch: int = PATCH) -> np.ndarray:
    """Zero-pad a matrix so both dimensions are patch multiples."""
    rows, cols = matrix.shape
    p_rows, p_cols = _padded_shape(rows, cols, patch)
    if (p_rows, p_cols) == (rows, cols):
        return matrix.astype(np.float32)
    padded = np.zeros((p_rows, p_cols), dtype=np.float32)
    padded[:rows, :cols] = matrix
    return padded


def dram_image_from_fw(fw_matrix: np.ndarray) -> np.ndarray:
    """Serialise the FW matrix into the Figure 7c DRAM image.

    The matrix is zero-padded to 16x16 patches; patches are stored
    contiguously in patch-row-major order, each patch serialised row by
    row.  Returns a flat float32 array — the single parameter copy kept in
    DRAM.
    """
    padded = pad_to_patches(np.asarray(fw_matrix, dtype=np.float32))
    rows, cols = padded.shape
    grid = padded.reshape(rows // PATCH, PATCH, cols // PATCH, PATCH)
    # (patch_row, patch_col, PATCH, PATCH) then flatten.
    return np.ascontiguousarray(grid.transpose(0, 2, 1, 3)).reshape(-1)


def load_fw_from_dram(image: np.ndarray, rows: int,
                      cols: int) -> np.ndarray:
    """Reassemble the FW layout matrix from the DRAM image.

    This is the *untransposed* load path: patches stream into the on-chip
    parameter buffer in storage order.
    """
    p_rows, p_cols = _padded_shape(rows, cols)
    grid = np.asarray(image, dtype=np.float32).reshape(
        p_rows // PATCH, p_cols // PATCH, PATCH, PATCH)
    padded = grid.transpose(0, 2, 1, 3).reshape(p_rows, p_cols)
    return np.ascontiguousarray(padded[:rows, :cols])


def load_bw_from_dram(image: np.ndarray, rows: int,
                      cols: int) -> np.ndarray:
    """Load the BW layout matrix from the same DRAM image.

    ``rows``/``cols`` are the FW matrix dimensions.  The load walks the
    patch grid transposed (patch (i, j) is consumed as patch (j, i)) and
    the TLU transposes each patch's interior (see
    :class:`~repro.fpga.tlu.TransposeLoadUnit` for the register-level
    emulation) — together this realises the full matrix transpose without
    a second DRAM copy.
    """
    p_rows, p_cols = _padded_shape(rows, cols)
    grid = np.asarray(image, dtype=np.float32).reshape(
        p_rows // PATCH, p_cols // PATCH, PATCH, PATCH)
    transposed = grid.transpose(1, 3, 0, 2).reshape(p_cols, p_rows)
    return np.ascontiguousarray(transposed[:cols, :rows])


def image_words(rows: int, cols: int, patch: int = PATCH) -> int:
    """Number of words the DRAM image occupies (with patch padding)."""
    p_rows, p_cols = _padded_shape(rows, cols, patch)
    return p_rows * p_cols
