"""The compute unit: PEs + buffers + TLU executing FW / BW / GC.

A CU executes one inference or training task at a time across all layers
(paper Section 4.2.2).  This class is *functional*: parameters live as
Figure 7c DRAM images, are loaded through the FW or BW layout paths (with
optional register-level TLU emulation), and the PE array computes on the
loaded values in fp32 — so results are bit-comparable with the software
network, which the test suite asserts.  Cycle accounting follows
:class:`~repro.fpga.timing.TimingModel`.
"""

from __future__ import annotations

import typing

import numpy as np

from repro.fpga.buffers import BufferControlUnit, OnChipBuffer
from repro.fpga.dram import DRAMChannel
from repro.fpga.layouts import (
    PATCH,
    dram_image_from_fw,
    fw_layout,
    load_bw_from_dram,
    load_fw_from_dram,
)
from repro.fpga.pe import PEArray
from repro.fpga.tlu import TransposeLoadUnit
from repro.nn import functional as F
from repro.nn.network import LayerSpec


def _fw_dims(spec: LayerSpec) -> typing.Tuple[int, int]:
    """(rows, cols) of the layer's FW layout matrix."""
    return spec.in_channels * spec.kernel ** 2, spec.out_channels


class ComputeUnit:
    """One CU with ``n_pe`` processing elements."""

    def __init__(self, name: str, n_pe: int = 64,
                 use_tlu_emulation: bool = False):
        """``use_tlu_emulation`` routes BW parameter loads through the
        register-level :class:`TransposeLoadUnit` shift-transpose (slow,
        for validation); otherwise the mathematically identical vectorised
        path is used."""
        self.name = name
        self.pes = PEArray(n_pe)
        self.bcu = BufferControlUnit()
        self.tlus = (TransposeLoadUnit(emulate=use_tlu_emulation),
                     TransposeLoadUnit(emulate=use_tlu_emulation))
        self.use_tlu_emulation = use_tlu_emulation
        # On-chip buffers sized like the VU9P configuration (Table 4):
        # row counts are generous; capacity checks are in load_matrix.
        self.parameter_buffer = OnChipBuffer(f"{name}.param", rows=4096)
        self.feature_buffer = OnChipBuffer(f"{name}.feature", rows=4096)
        self.gradient_buffer = OnChipBuffer(f"{name}.grad", rows=4096)
        self.tasks_executed = 0

    # -- parameter load paths ----------------------------------------------

    def load_fw_parameters(self, image: np.ndarray, spec: LayerSpec,
                           channel: typing.Optional[DRAMChannel] = None
                           ) -> np.ndarray:
        """Load the FW-layout matrix from a DRAM image (no transform)."""
        rows, cols = _fw_dims(spec)
        if channel is not None:
            channel.load(image.size)
        return load_fw_from_dram(image, rows, cols)

    def load_bw_parameters(self, image: np.ndarray, spec: LayerSpec,
                           channel: typing.Optional[DRAMChannel] = None
                           ) -> np.ndarray:
        """Load the BW-layout matrix: patch-grid transpose + per-patch TLU
        transpose over the *same* DRAM image (single-copy invariant)."""
        rows, cols = _fw_dims(spec)
        if channel is not None:
            channel.load(image.size)
        if not self.use_tlu_emulation:
            return load_bw_from_dram(image, rows, cols)
        # Register-level path: walk the patch grid transposed; the two TLU
        # instances alternate (double buffering).
        p_rows = -(-rows // PATCH)
        p_cols = -(-cols // PATCH)
        patches = np.asarray(image, dtype=np.float32).reshape(
            p_rows, p_cols, PATCH * PATCH)
        out = np.zeros((p_cols * PATCH, p_rows * PATCH), dtype=np.float32)
        for index, (j, i) in enumerate(
                (j, i) for j in range(p_cols) for i in range(p_rows)):
            tlu = self.tlus[index % 2]
            tlu.stage(patches[i, j])
            out[j * PATCH:(j + 1) * PATCH,
                i * PATCH:(i + 1) * PATCH] = tlu.transpose_next()
        return out[:cols, :rows]

    # -- computation stages --------------------------------------------------

    def run_fw(self, spec: LayerSpec, x: np.ndarray, image: np.ndarray,
               bias: np.ndarray,
               channel: typing.Optional[DRAMChannel] = None,
               apply_relu: bool = False) -> np.ndarray:
        """Forward propagation of one layer from its DRAM image.

        ``x`` is ``(N, I, H, W)`` for conv or ``(N, I)`` for dense.
        """
        fw_matrix = self.load_fw_parameters(image, spec, channel)
        if spec.kind == "conv":
            cols, (oh, ow) = F.im2col(
                np.ascontiguousarray(x, dtype=np.float32),
                spec.kernel, spec.stride)
            # PEs: output[o] accumulates fw_matrix[:, o] against the input
            # window sequence — einsum over the reduction axis.
            y = np.einsum("ko,nkp->nop", fw_matrix, cols, optimize=True)
            y += bias[None, :, None]
            y = y.reshape(x.shape[0], spec.out_channels, oh, ow)
        else:
            y = x.astype(np.float32) @ fw_matrix + bias
        self.pes.schedule_cycles(
            x.shape[0] * spec.num_outputs,
            spec.accumulation_frequency_fw,
            parallel_limit=None)
        self.tasks_executed += 1
        if apply_relu:
            y = F.relu_forward(y)
        return y

    def run_bw(self, spec: LayerSpec, dy: np.ndarray, image: np.ndarray,
               input_shape: typing.Sequence[int],
               channel: typing.Optional[DRAMChannel] = None) -> np.ndarray:
        """Backward propagation: input-feature gradients from the BW
        layout."""
        bw_matrix = self.load_bw_parameters(image, spec, channel)
        # bw_matrix is (O, I*K*K) == weight matrix flattened; reuse the
        # software kernels on the reconstructed weight.
        if spec.kind == "conv":
            weight = bw_matrix.reshape(spec.out_channels, spec.in_channels,
                                       spec.kernel, spec.kernel)
            dx = F.conv_backward_input(dy, weight, spec.stride,
                                       tuple(input_shape))
        else:
            dx = dy @ bw_matrix
        self.pes.schedule_cycles(
            spec.macs_bw(dy.shape[0]) // max(
                1, spec.accumulation_frequency_fw - 1),
            spec.accumulation_frequency_fw - 1,
            parallel_limit=None)
        self.tasks_executed += 1
        return dx

    def run_gc(self, spec: LayerSpec, x: np.ndarray, dy: np.ndarray,
               channel: typing.Optional[DRAMChannel] = None
               ) -> typing.Tuple[np.ndarray, np.ndarray]:
        """Gradient computation; returns (gradient DRAM image, bias grads).

        The gradient buffer keeps the FW layout (Section 4.4.4) so the
        RMSProp module needs no TLU.
        """
        if spec.kind == "conv":
            cols, _ = F.im2col(np.ascontiguousarray(x, dtype=np.float32),
                               spec.kernel, spec.stride)
            dw, db = F.conv_grad_params(
                cols, dy, (spec.out_channels, spec.in_channels,
                           spec.kernel, spec.kernel))
        else:
            dw, db = F.dense_grad_params(x.astype(np.float32), dy)
        grad_image = dram_image_from_fw(fw_layout(dw))
        if channel is not None:
            channel.store(grad_image.size + db.size)
        self.pes.schedule_cycles(
            spec.num_weights + spec.out_channels,
            spec.accumulation_frequency_gc(dy.shape[0]),
            parallel_limit=None)
        self.tasks_executed += 1
        return grad_image, db
