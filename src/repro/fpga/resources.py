"""FPGA resource model (paper Table 4).

Estimates logic LUTs, registers, on-chip memory blocks, and DSP blocks for
an FA3C configuration from first principles (per-PE multiplier/accumulator
costs, buffer geometry, interconnect), calibrated to the paper's VU9P
breakdown.  Used to check that a requested configuration fits the device
and to regenerate Table 4.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.precision import FP32, Precision


@dataclasses.dataclass(frozen=True)
class DeviceCapacity:
    """Available resources of an FPGA device."""

    name: str
    logic_luts: int
    registers: int
    memory_blocks: int       # 36Kb BRAM-equivalent blocks
    dsp_blocks: int


#: Xilinx UltraScale+ VU9P (VCU1525 / AWS F1), per the paper's Table 4
#: percentages: 677.3K LUTs = 57.3 %, 875.7K regs = 37.0 %,
#: 1267 blocks = 40.6 %, 2348 DSPs = 34.3 %.
VU9P = DeviceCapacity("xcvu9p", logic_luts=1_182_000,
                      registers=2_364_000, memory_blocks=3_120,
                      dsp_blocks=6_840)

#: Altera Stratix V (the Figure 10 ablation board), approximate capacity.
STRATIX_V = DeviceCapacity("stratix-v-gs", logic_luts=622_000,
                           registers=939_000, memory_blocks=2_560,
                           dsp_blocks=1_963)


@dataclasses.dataclass
class ComponentUsage:
    """Resource usage of one named component."""

    component: str
    logic_luts: int
    registers: int
    memory_blocks: int
    dsp_blocks: int

    def scaled(self, factor: int) -> "ComponentUsage":
        return ComponentUsage(self.component,
                              self.logic_luts * factor,
                              self.registers * factor,
                              self.memory_blocks * factor,
                              self.dsp_blocks * factor)


# Per-unit cost constants, derived from Table 4 at 256 PEs total
# (2 CU pairs x 2 CUs x 64 PEs).
_PER_PE_LUTS = 738             # 188.8K / 256: fp32 mult + acc datapath
_PER_PE_REGS = 987             # 252.6K / 256
_PER_PE_DSPS = 8               # 2048 / 256: 3 DSPs mult + 2 add, pipelined
_PER_RU_LUTS = 6675            # RMSProp RU incl. sqrt/divide
_PER_RU_REGS = 8100
_PER_RU_DSPS = 36
_PER_RU_BLOCKS = 27            # double-buffered theta/g staging


class ResourceModel:
    """Estimate the Table 4 breakdown for a CU configuration."""

    def __init__(self, num_cus: int = 4, n_pe: int = 64, num_rus: int = 4,
                 num_channels: int = 2, device: DeviceCapacity = VU9P,
                 precision: Precision = FP32):
        self.num_cus = num_cus
        self.n_pe = n_pe
        self.num_rus = num_rus
        self.num_channels = num_channels
        self.device = device
        self.precision = precision

    def components(self) -> typing.List[ComponentUsage]:
        """Per-component usage in Table 4 order.

        ``n_pe`` counts the *instantiated* PEs per CU; at narrower
        precisions ``pe_scale`` of them share one fp32 PE's DSP/logic
        budget, and the buffer/interconnect fabric is sized by that fp32-
        equivalent footprint (capacity in bits, not in words).
        """
        total_pes = self.num_cus * self.n_pe
        dp = self.precision.pe_scale  # PEs per fp32 PE's resource budget
        scale = total_pes / dp / 256  # fp32-equivalent datapath footprint
        rus = self.num_cus // 2 * self.num_rus or self.num_rus

        def s(value: float) -> int:
            return int(round(value * scale))

        return [
            ComponentUsage("PEs", total_pes * _PER_PE_LUTS // dp,
                           total_pes * _PER_PE_REGS // dp, 0,
                           total_pes * _PER_PE_DSPS // dp),
            ComponentUsage("Parameter buffer", s(20_800), s(1_700),
                           s(256), 0),
            ComponentUsage("Gradient buffer", s(8_900), s(600), s(128), 0),
            ComponentUsage("Feature-map buffer", s(9_200), s(1_200),
                           s(192), 0),
            ComponentUsage("BCU (line buffer)", s(72_100), s(111_000),
                           0, 0),
            ComponentUsage("RMSProp", rus * _PER_RU_LUTS,
                           rus * _PER_RU_REGS, rus * _PER_RU_BLOCKS,
                           rus * _PER_RU_DSPS),
            ComponentUsage("Pipelined MUX", s(50_100), s(50_100), s(16), 0),
            ComponentUsage("TLU", s(17_000), s(35_100), s(16), 0),
            ComponentUsage("DDR-CU interconnect",
                           s(83_300), s(136_200), s(263), 0),
            ComponentUsage("DDR4 controller",
                           self.num_channels * 43_150,
                           self.num_channels * 49_000,
                           self.num_channels * 51,
                           self.num_channels * 6),
            ComponentUsage("PCI-E DMA", 87_400, 124_400, 78, 0),
        ]

    def total(self) -> ComponentUsage:
        """Summed usage across components."""
        total = ComponentUsage("Total", 0, 0, 0, 0)
        for item in self.components():
            total.logic_luts += item.logic_luts
            total.registers += item.registers
            total.memory_blocks += item.memory_blocks
            total.dsp_blocks += item.dsp_blocks
        return total

    def utilisation(self) -> typing.Dict[str, float]:
        """Fraction of the device each resource class occupies."""
        total = self.total()
        return {
            "logic_luts": total.logic_luts / self.device.logic_luts,
            "registers": total.registers / self.device.registers,
            "memory_blocks": total.memory_blocks /
            self.device.memory_blocks,
            "dsp_blocks": total.dsp_blocks / self.device.dsp_blocks,
        }

    def fits(self) -> bool:
        """True if every resource class fits on the device."""
        return all(value <= 1.0 for value in self.utilisation().values())


def resource_table(model: typing.Optional[ResourceModel] = None
                   ) -> typing.List[typing.Dict[str, object]]:
    """Rows matching Table 4 (component, LUTs, regs, blocks, DSPs)."""
    model = model or ResourceModel()
    rows = []
    for item in model.components() + [model.total()]:
        rows.append({
            "component": item.component,
            "logic": item.logic_luts,
            "registers": item.registers,
            "memory_blocks": item.memory_blocks,
            "dsp_blocks": item.dsp_blocks,
        })
    return rows
