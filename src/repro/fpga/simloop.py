"""The FA3C discrete-event simulation loop.

:class:`FPGASim` owns the shared resources (CUs, DRAM channels) of one
:class:`~repro.fpga.platform.FA3CPlatform` instance and exposes the task
process bodies (``inference`` / ``train`` / ``sync``) that the
throughput experiments drive.  Orchestration (configurations, analytic
latencies) lives in :mod:`repro.fpga.platform`; bound-stage scheduling
(cached plans resolved to this sim's resources) in
:mod:`repro.fpga.binding`.
"""

from __future__ import annotations

import typing

from repro.fpga.binding import BoundTask
from repro.fpga.timing import GLOBAL, LOCAL, StageTiming
from repro.obs import runtime as _obs
from repro.obs.prof import buckets as _prof
from repro.perf import runtime as _fast
from repro.perf import stageplan as _stageplan
from repro.sim import Engine, Resource, Tracer
from repro.sim.events import Event

if typing.TYPE_CHECKING:                     # pragma: no cover
    from repro.fpga.platform import FA3CPlatform


class FPGASim:
    """Discrete-event resources + task processes for one FA3C platform.

    Per CU pair: an inference CU and a training CU (or one combined CU in
    the SingleCU ablation) plus a *local* DRAM channel; one *global*
    channel is shared platform-wide (the single global θ copy).  Agents
    are assigned to pairs round-robin, as the host runtime does.

    Tasks run on one of two equivalent paths: the default *fast path*
    replays memoized :mod:`repro.perf.stageplan` plans through
    callback-chained channel holds; with ``REPRO_FASTPATH=0`` the
    original derivation path re-builds stages per task.  Both produce
    bit-identical simulated times, grant orders, and attribution — the
    perf gate and the equivalence tests assert it.
    """

    def __init__(self, platform: "FA3CPlatform", engine: Engine,
                 tracer: typing.Optional[Tracer] = None):
        self.platform = platform
        self.engine = engine
        if tracer is None and _obs.enabled():
            # With observability on, stage spans flow to the global
            # tracer by default (and from there to the Chrome export).
            tracer = _obs.tracer()
        self.tracer = tracer
        self._bound: typing.Dict[tuple, BoundTask] = {}
        self._bound_topology = platform.topology
        config = platform.config
        self.infer_cus = []
        self.train_cus = []
        self.local_channels = []
        for pair in range(config.cu_pairs):
            if config.single_cu:
                cu = Resource(engine, name=f"cu{pair}")
                self.infer_cus.append(cu)
                self.train_cus.append(cu)
            else:
                self.infer_cus.append(Resource(engine,
                                               name=f"icu{pair}"))
                self.train_cus.append(Resource(engine,
                                               name=f"tcu{pair}"))
            self.local_channels.append(Resource(engine,
                                                name=f"ddr-local{pair}"))
        self.global_channels = [Resource(engine, name=f"ddr-global{i}")
                                for i in range(config.global_channels)]

    def utilisation(self) -> float:
        """Average compute-unit occupancy (drives the power model)."""
        cus = {id(cu): cu for cu in self.infer_cus + self.train_cus}
        values = [cu.utilisation() for cu in cus.values()]
        return sum(values) / len(values) if values else 0.0

    def _pair(self, agent_id: int) -> int:
        return agent_id % self.platform.config.cu_pairs

    def _dma_plan(self, stage: StageTiming, pair: int):
        """(channel resource, hold seconds, words) triples for one
        stage's DMA."""
        platform = self.platform
        plan = []
        local_words = stage.words(LOCAL)
        if local_words:
            plan.append((self.local_channels[pair],
                         platform._words_seconds(local_words),
                         local_words))
        global_words = stage.words(GLOBAL)
        if global_words:
            # Striped across the global channels in parallel.
            share = -(-global_words // len(self.global_channels))
            duration = platform._words_seconds(share)
            for channel in self.global_channels:
                plan.append((channel, duration, share))
        return plan

    def _count_dma(self, stage: StageTiming, pair: int) -> None:
        """Per-channel byte/burst counters for one stage's transfers."""
        metrics = _obs.metrics()
        traffic = metrics.counter("fpga.dram.bytes")
        bursts = metrics.counter("fpga.dram.bursts")
        stripe = len(self.global_channels)
        config = self.platform.config
        word_bytes = config.word_bytes
        words_per_beat = config.words_per_beat
        for direction, words_by_channel in (("load", stage.loads),
                                            ("store", stage.stores)):
            local_words = words_by_channel.get(LOCAL, 0)
            if local_words:
                name = self.local_channels[pair].name
                traffic.inc(local_words * word_bytes, channel=name,
                            dir=direction)
                bursts.inc(-(-local_words // words_per_beat),
                           channel=name)
            global_words = words_by_channel.get(GLOBAL, 0)
            if global_words:
                share = -(-global_words // stripe)
                for channel in self.global_channels:
                    traffic.inc(share * word_bytes, channel=channel.name,
                                dir=direction)
                    bursts.inc(-(-share // words_per_beat),
                               channel=channel.name)

    def _run_stage(self, stage: StageTiming, pair: int):
        """Process body: one stage = compute overlapped with channel DMA
        (or serialised after it when double buffering is disabled)."""
        platform = self.platform
        compute_seconds = stage.compute_cycles / platform.config.clock_hz
        plan = self._dma_plan(stage, pair)
        if _obs.enabled():
            self._count_dma(stage, pair)
        if platform.config.double_buffering:
            events = [self.engine.timeout(compute_seconds)]
            events.extend(self.engine.process(resource.use(duration),
                                              name=f"dma-{stage.name}")
                          for resource, duration, _words in plan)
            yield self.engine.all_of(events)
        else:
            # No overlap: the PEs stall until every transfer finishes.
            for resource, duration, _words in plan:
                yield from resource.use(duration)
            yield self.engine.timeout(compute_seconds)

    def _record_stage(self, stage: StageTiming, cu_name: str, task: str,
                      elapsed: float) -> None:
        """Attribute one executed stage's cycles to cause buckets.

        The simulated duration is snapped to integer cycles (DMA burst
        times are fractional-cycle at the modelled efficiency, so up to
        half a cycle per stage is rounded away) and decomposed by
        :func:`repro.obs.prof.buckets.fpga_stage_buckets`; the total
        counter is incremented by the bucket sum itself, making the
        buckets-sum-to-total invariant exact by construction.
        """
        config = self.platform.config
        cycles = int(round(elapsed * config.clock_hz))
        total = max(cycles, stage.compute_cycles)
        buckets = _prof.fpga_stage_buckets(stage, total,
                                           config.double_buffering)
        kind, layer = _prof.split_stage_name(stage.name)
        metrics = _obs.metrics()
        counter = metrics.counter(_prof.FPGA_CYCLES_METRIC)
        recorded = 0
        for bucket, value in buckets.items():
            counter.inc(value, cu=cu_name, task=task, stage=kind,
                        layer=layer, bucket=bucket)
            recorded += value
        metrics.counter(_prof.FPGA_CYCLES_TOTAL_METRIC).inc(recorded,
                                                            cu=cu_name)

    def _run_task(self, stages: typing.Sequence[StageTiming],
                  cu: Resource, pair: int, task: str = "task"):
        """Process body: acquire the CU, run all stages, release."""
        yield cu.acquire()
        observing = _obs.enabled()
        task_start = self.engine.now
        try:
            for stage in stages:
                start = self.engine.now
                yield from self._run_stage(stage, pair)
                if self.tracer is not None:
                    self.tracer.record(cu.name, stage.name, start,
                                       self.engine.now)
                if observing:
                    self._record_stage(stage, cu.name, task,
                                       self.engine.now - start)
        finally:
            cu.release()
            if observing:
                metrics = _obs.metrics()
                metrics.counter("fpga.cu.busy_seconds").inc(
                    self.engine.now - task_start, cu=cu.name)
                metrics.counter("fpga.cu.tasks").inc(cu=cu.name,
                                                     task=task)

    # -- the fast path: memoized plan replay --------------------------------

    def _bound_task(self, kind: str, batch: int, pair: int) -> BoundTask:
        """The task's plan bound to this sim's pair resources.

        The key embeds the live config's field values, so mutating the
        config (or swapping the topology) naturally misses and rebinds.
        """
        if self.platform.topology is not self._bound_topology:
            self._bound.clear()
            self._bound_topology = self.platform.topology
        cfg_key = _stageplan.config_key(self.platform.config)
        key = (kind, batch, pair, cfg_key)
        bound = self._bound.get(key)
        if bound is None:
            plan = _stageplan.CACHE.task_plan(self.platform, kind, batch,
                                              cfg_key=cfg_key)
            if kind == "inference":
                cu_name, task = self.infer_cus[pair].name, "inference"
            elif kind == "train":
                cu_name, task = self.train_cus[pair].name, "train"
            else:
                cu_name, task = f"sync{pair}", "sync"
            bound = BoundTask(self, plan, pair, cu_name, task)
            self._bound[key] = bound
        return bound

    def _hold(self, resource: Resource, duration: float,
              finish) -> None:
        """Callback-chained equivalent of ``process(resource.use(d))``:
        acquire -> hold ``duration`` -> release -> ``finish``.

        The release happens while the hold timeout is being processed
        and ``finish`` runs one queue hop later (via the chain event) —
        exactly where the derivation path's process-end event sits, so
        same-timestamp resume ordering between agents is preserved
        bit-for-bit."""
        engine = self.engine

        def _granted(_event):
            def _expired(_event2):
                resource.release()
                chain = Event(engine)
                chain.callbacks.append(finish)
                chain.succeed()
            engine.timeout(duration).callbacks.append(_expired)

        resource.acquire().callbacks.append(_granted)

    def _launch_stage(self, bound) -> Event:
        """Start one double-buffered stage; returns its stage-end event.

        Compute overlaps every channel hold; the join counts the compute
        timeout plus each hold's post-release chain event, mirroring the
        derivation path's ``AllOf`` over (timeout, DMA processes)."""
        engine = self.engine
        holds = bound.holds
        done = Event(engine)
        remaining = [1 + len(holds)]

        def _finish(_event):
            remaining[0] -= 1
            if not remaining[0]:
                done.succeed()

        engine.timeout(bound.compute_seconds).callbacks.append(_finish)
        for resource, duration in holds:
            self._hold(resource, duration, _finish)
        return done

    def _serial_stage(self, bound):
        """Process body for one stage without double buffering: each
        channel hold completes before the next starts, then compute runs
        — hop-identical to the derivation path's serial generators."""
        for resource, duration in bound.holds:
            yield resource.acquire()
            try:
                yield self.engine.timeout(duration)
            finally:
                resource.release()
        yield self.engine.timeout(bound.compute_seconds)

    def _replay_task(self, bound: BoundTask, cu: Resource):
        """Fast-path process body mirroring ``_run_task``."""
        yield cu.acquire()
        engine = self.engine
        tracer = self.tracer
        observing = _obs.enabled()
        task_start = engine.now
        try:
            if tracer is None and not observing:
                if bound.double_buffering:
                    for stage in bound.stages:
                        yield self._launch_stage(stage)
                else:
                    for stage in bound.stages:
                        yield from self._serial_stage(stage)
            else:
                metrics = _obs.metrics() if observing else None
                for stage in bound.stages:
                    start = engine.now
                    if stage.double_buffering:
                        yield self._launch_stage(stage)
                    else:
                        yield from self._serial_stage(stage)
                    if tracer is not None:
                        tracer.record(cu.name, stage.name, start,
                                      engine.now)
                    if observing:
                        stage.record(metrics, engine.now - start)
        finally:
            cu.release()
            if observing:
                bound.record_task(_obs.metrics(),
                                  engine.now - task_start)

    def _replay_sync(self, bound: BoundTask, pair: int):
        """Fast-path process body mirroring the ``sync`` stage loop."""
        engine = self.engine
        tracer = self.tracer
        observing = _obs.enabled()
        if tracer is None and not observing:
            if bound.double_buffering:
                for stage in bound.stages:
                    yield self._launch_stage(stage)
            else:
                for stage in bound.stages:
                    yield from self._serial_stage(stage)
            return
        metrics = _obs.metrics() if observing else None
        lane = f"sync{pair}"
        for stage in bound.stages:
            start = engine.now
            if stage.double_buffering:
                yield self._launch_stage(stage)
            else:
                yield from self._serial_stage(stage)
            if tracer is not None:
                tracer.record(lane, stage.name, start, engine.now)
            if observing:
                stage.record(metrics, engine.now - start)

    # -- the task interface used by the throughput simulation ---------------

    def _pcie_seconds(self, num_bytes: float) -> float:
        config = self.platform.config
        return config.pcie_latency + num_bytes / config.pcie_bandwidth

    def inference(self, agent_id: int, batch: int = 1):
        """Process body for one inference task of ``agent_id``.

        The request starts with the game-screen DMA into the FPGA and ends
        with the (tiny) output DMA back to the host (Section 4.1).
        """
        pair = self._pair(agent_id)
        if _fast.enabled():
            bound = self._bound_task("inference", batch, pair)
            yield self.engine.timeout(bound.pcie_in_seconds)
            yield from self._replay_task(bound, self.infer_cus[pair])
            yield self.engine.timeout(bound.pcie_out_seconds)
            return
        timing = self.platform.timing
        word_bytes = self.platform.config.word_bytes
        yield self.engine.timeout(
            self._pcie_seconds(batch * timing.input_words(1) * word_bytes))
        stages = timing.inference_task(batch)
        yield from self._run_task(stages, self.infer_cus[pair], pair,
                                  task="inference")
        last = self.platform.topology.layers[-1]
        yield self.engine.timeout(
            self._pcie_seconds(batch * last.num_outputs * word_bytes))

    def train(self, agent_id: int, batch: int):
        """Process body for one training task."""
        pair = self._pair(agent_id)
        if _fast.enabled():
            bound = self._bound_task("train", batch, pair)
            yield from self._replay_task(bound, self.train_cus[pair])
            return
        stages = self.platform.timing.training_task(batch)
        yield from self._run_task(stages, self.train_cus[pair], pair,
                                  task="train")

    def sync(self, agent_id: int):
        """Process body for one parameter-sync task (runs on the training
        CU's DMA path; occupies channels but not PEs)."""
        pair = self._pair(agent_id)
        if _fast.enabled():
            yield from self._replay_sync(self._bound_task("sync", 0,
                                                          pair), pair)
            return
        stages = self.platform.timing.sync_task()
        observing = _obs.enabled()
        for stage in stages:
            start = self.engine.now
            yield from self._run_stage(stage, pair)
            if self.tracer is not None:
                self.tracer.record(f"sync{pair}", stage.name, start,
                                   self.engine.now)
            if observing:
                self._record_stage(stage, f"sync{pair}", "sync",
                                   self.engine.now - start)
