"""Platform-agnostic layer: the throughput experiment and IPS metrics.

Every platform model (FPGA configurations in :mod:`repro.fpga.platform`,
GPU/CPU baselines in :mod:`repro.gpu.platform`) exposes ``build_sim``
returning process bodies for inference / train / sync; this package drives
them with the A3C agent structure of paper Figure 2 inside the
discrete-event engine and measures inferences per second — the metric of
Figures 8-10.
"""

from repro.platforms.metrics import IPSMeter, ips_definition_check
from repro.platforms.throughput import (
    HostModel,
    ThroughputResult,
    ThroughputSetup,
    measure_ips,
    sweep_agents,
)

__all__ = [
    "HostModel",
    "IPSMeter",
    "ThroughputResult",
    "ThroughputSetup",
    "ips_definition_check",
    "measure_ips",
    "sweep_agents",
]
