"""IPS accounting (paper Section 5.2).

The paper measures "the number of inferences processed per second (IPS)
across all agents", counting only the t_max rollout inferences: "when
t_max is 5 and the achieved IPS is 500, the Deep RL platform processes 500
inference tasks, 100 extra inferences for value bootstrapping, and 100
training tasks per second."
"""

from __future__ import annotations

import dataclasses
import typing


class IPSMeter:
    """Counts rollout inferences in a measurement window."""

    def __init__(self, t_max: int = 5):
        self.t_max = t_max
        self._events: typing.List[typing.Tuple[float, int]] = []

    def record_routine(self, sim_time: float, steps: int) -> None:
        """Record one finished routine of ``steps`` rollout inferences."""
        self._events.append((sim_time, steps))

    @property
    def total_steps(self) -> int:
        return sum(steps for _, steps in self._events)

    def ips(self, discard_fraction: float = 0.25) -> float:
        """Steady-state IPS: drop the warm-up prefix of routines.

        The first ``discard_fraction`` of routines is excluded so the
        pipeline-fill transient does not bias the estimate.  Boundary
        behaviour for tiny windows: with a non-zero ``discard_fraction``
        at least one routine is always discarded once there are three or
        more (``int(3 * 0.25) == 0`` used to silently discard nothing
        while claiming steady state); with exactly two routines the rate
        between them is returned — there is nothing left to discard and
        the figure is *not* steady-state.
        """
        if len(self._events) < 2:
            return 0.0
        events = sorted(self._events)
        start_index = int(len(events) * discard_fraction)
        if discard_fraction > 0 and len(events) >= 3:
            start_index = max(start_index, 1)
        start_index = min(start_index, len(events) - 2)
        t0 = events[start_index][0]
        t1 = events[-1][0]
        if t1 <= t0:
            return 0.0
        steps = sum(s for t, s in events[start_index + 1:])
        return steps / (t1 - t0)


@dataclasses.dataclass
class IPSBreakdown:
    """Derived task rates implied by an IPS figure."""

    ips: float
    t_max: int

    @property
    def routines_per_second(self) -> float:
        return self.ips / self.t_max

    @property
    def bootstrap_inferences_per_second(self) -> float:
        return self.routines_per_second

    @property
    def training_tasks_per_second(self) -> float:
        return self.routines_per_second


def ips_definition_check(ips: float, t_max: int = 5) -> IPSBreakdown:
    """The paper's worked example: IPS 500 at t_max 5 means 100 bootstrap
    inferences and 100 training tasks per second."""
    return IPSBreakdown(ips=ips, t_max=t_max)
