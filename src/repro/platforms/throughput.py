"""The multi-agent throughput experiment (Figures 8 and 10).

Runs ``n`` simulated A3C agents against a platform's discrete-event
instance.  Each agent executes the Figure 2 routine: parameter sync, t_max
environment-step + inference pairs, a bootstrapping inference, host-side
objective-gradient computation, and a training task.  Contention — agents
queueing on CUs, DRAM channels, the GPU, or the predictor queue — is what
shapes the IPS-vs-agents curves.
"""

from __future__ import annotations

import dataclasses
import typing

import numpy as np

from repro.gpu.calibration import GPUCalibration
from repro.obs import runtime as _obs
from repro.perf import runtime as _fast
from repro.platforms.metrics import IPSMeter
from repro.sim import Engine


@dataclasses.dataclass
class HostModel:
    """Host-side (CPU) time per agent between accelerator tasks."""

    step_time: float = GPUCalibration.host_step_time
    """Environment frame(s) + preprocessing + softmax/action sampling."""
    train_prep_time: float = GPUCalibration.host_train_prep_time
    """Objective-function and head-gradient computation (Section 4.1)."""

    @classmethod
    def dummy(cls) -> "HostModel":
        """The Section 5.3 dummy platform: environment only, no DNN."""
        return cls(train_prep_time=0.0)

    @classmethod
    def batched(cls, frames_per_second: typing.Optional[float] = None,
                frame_skip: int = 4) -> "HostModel":
        """Host model when a SoA batched engine feeds the agents.

        With ``repro.ale.vec`` one vector step advances every slot
        ``frame_skip`` frames at the engine's aggregate frame rate, so
        the per-agent host time between inference requests amortises to
        ``frame_skip / frames_per_second``.  This is the occupancy-curve
        input to the GPU cost model: a cheaper host step pushes the
        accelerator into its contention-limited region at lower agent
        counts.  ``frames_per_second`` must be a fixed calibration
        figure (default :attr:`GPUCalibration.batched_env_fps`), never a
        live measurement — modelled numbers stay deterministic.
        """
        if frames_per_second is None:
            frames_per_second = GPUCalibration.batched_env_fps
        if frames_per_second <= 0 or frame_skip <= 0:
            raise ValueError(
                "frames_per_second and frame_skip must be positive, "
                f"got {frames_per_second!r} / {frame_skip!r}")
        return cls(step_time=frame_skip / frames_per_second)


@dataclasses.dataclass
class ThroughputResult:
    """Outcome of one throughput measurement."""

    platform: str
    num_agents: int
    t_max: int
    ips: float
    routines: int
    sim_seconds: float
    utilisation: float = 0.0
    inference_latencies: typing.Tuple[float, ...] = ()
    """Per-request inference latencies (queueing + service) observed
    after warm-up — the responsiveness side of the throughput story."""

    @property
    def routines_per_second(self) -> float:
        return self.ips / self.t_max

    def latency_percentile(self, percentile: float) -> float:
        """Inference-latency percentile in seconds (nan if untracked)."""
        if not self.inference_latencies:
            return float("nan")
        return float(np.percentile(self.inference_latencies, percentile))


def _agent_process(sim, engine: Engine, agent_id: int, t_max: int,
                   routines: int, host: HostModel, meter: IPSMeter,
                   needs_sync: bool, needs_bootstrap: bool,
                   latencies: typing.Optional[list] = None):
    """One agent's lifetime: ``routines`` full A3C routines."""
    warmup = routines // 4
    for routine_index in range(routines):
        if needs_sync:
            yield from sim.sync(agent_id)
        for _ in range(t_max):
            if host.step_time > 0:
                yield engine.timeout(host.step_time)
            started = engine.now
            yield from sim.inference(agent_id)
            if latencies is not None and routine_index >= warmup:
                latencies.append(engine.now - started)
        if needs_bootstrap:
            yield from sim.inference(agent_id)
        if host.train_prep_time > 0:
            yield engine.timeout(host.train_prep_time)
        yield from sim.train(agent_id, t_max)
        meter.record_routine(engine.now, t_max)


class ThroughputSetup:
    """Per-platform measurement state shared across sweep points.

    The simulated clock, resource statistics, and event queue are
    cumulative, so a fresh :class:`Engine` (and sim instance) is required
    per measurement — reusing one would change the modelled numbers.
    Everything derived purely from the *platform* is shared here instead:
    the platform name, the host model, and (implicitly) the platform's
    memoized stage/task plans — the first measurement warms the
    :mod:`repro.perf.stageplan` cache and every later sweep point replays
    the same plans instead of re-deriving them per agent count.
    """

    def __init__(self, platform,
                 host: typing.Optional[HostModel] = None):
        self.platform = platform
        self.host = host or HostModel()
        self.name = getattr(platform, "name", None) \
            or platform.config.name
        self.needs_sync = getattr(platform, "needs_sync", True)
        self.needs_bootstrap = getattr(platform, "needs_bootstrap", True)

    def measure(self, num_agents: int, t_max: int = 5,
                routines_per_agent: int = 40) -> ThroughputResult:
        """One measurement at ``num_agents`` on a fresh engine."""
        engine = Engine()
        sim = self.platform.build_sim(engine)
        meter = IPSMeter(t_max)
        latencies: typing.List[float] = []
        if _fast.enabled() and hasattr(sim, "agent_chain"):
            # Fused fast path: each agent is a callback chain instead of
            # a generator process.  The chains create the same events in
            # the same order, so every modelled number is bit-identical
            # to the generator path (REPRO_FASTPATH=0).
            agents = [
                sim.agent_chain(agent_id, t_max, routines_per_agent,
                                self.host, meter, self.needs_sync,
                                self.needs_bootstrap, latencies)
                for agent_id in range(num_agents)
            ]
        else:
            agents = [
                engine.process(_agent_process(sim, engine, agent_id,
                                              t_max, routines_per_agent,
                                              self.host, meter,
                                              self.needs_sync,
                                              self.needs_bootstrap,
                                              latencies),
                               name=f"agent-{agent_id}")
                for agent_id in range(num_agents)
            ]
        engine.run(engine.all_of(agents))
        utilisation = sim.utilisation() \
            if hasattr(sim, "utilisation") else 0.0
        result = ThroughputResult(platform=self.name,
                                  num_agents=num_agents,
                                  t_max=t_max, ips=meter.ips(),
                                  routines=num_agents
                                  * routines_per_agent,
                                  sim_seconds=engine.now,
                                  utilisation=utilisation,
                                  inference_latencies=tuple(latencies))
        if _obs.enabled():
            _record_throughput(sim, result)
        return result


def measure_ips(platform, num_agents: int, t_max: int = 5,
                routines_per_agent: int = 40,
                host: typing.Optional[HostModel] = None
                ) -> ThroughputResult:
    """Simulate ``num_agents`` agents and return steady-state IPS.

    ``platform`` is any object with ``build_sim(engine)`` and a ``name``
    (FPGA configurations expose the name via their config).  For sweeps
    over several agent counts, build one :class:`ThroughputSetup` and
    call :meth:`ThroughputSetup.measure` per point instead.
    """
    return ThroughputSetup(platform, host).measure(
        num_agents, t_max=t_max, routines_per_agent=routines_per_agent)


def _record_throughput(sim, result: ThroughputResult) -> None:
    """End-of-run gauges: IPS, sim duration, per-CU busy fraction."""
    metrics = _obs.metrics()
    labels = {"platform": result.platform,
              "agents": str(result.num_agents)}
    metrics.gauge("platform.ips").set(result.ips, **labels)
    metrics.gauge("platform.sim_seconds").set(result.sim_seconds,
                                              **labels)
    cus = []
    for attr in ("infer_cus", "train_cus"):
        cus.extend(getattr(sim, attr, []))
    unique = {id(cu): cu for cu in cus}
    for cu in unique.values():
        metrics.gauge("fpga.cu.utilisation").set(
            cu.utilisation(), cu=cu.name, platform=result.platform)


def sweep_agents(platform, agent_counts: typing.Sequence[int],
                 t_max: int = 5, routines_per_agent: int = 40,
                 host: typing.Optional[HostModel] = None
                 ) -> typing.List[ThroughputResult]:
    """The Figure 8/10 x-axis sweep.

    One :class:`ThroughputSetup` serves every point: the platform's plan
    caches are warmed once instead of rebuilt per agent count.
    """
    setup = ThroughputSetup(platform, host)
    return [setup.measure(n, t_max=t_max,
                          routines_per_agent=routines_per_agent)
            for n in agent_counts]
