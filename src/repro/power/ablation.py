"""Precision ablation: accuracy vs throughput vs energy per datapath.

``repro bench --ablation precision`` runs the FA3C configuration at each
supported operand precision and reports, side by side:

* **accuracy** — the max absolute policy-logit deviation of a seeded
  :class:`~repro.nn.network.A3CNetwork` forward pass against the fp32
  reference (0 for fp32 by construction);
* **throughput** — modelled inferences/second from the discrete-event
  contention simulation, same load as the bench matrix;
* **energy** — modelled watts from the Section 5.3 dummy-platform
  methodology, plus derived IPS/W and mJ per inference.

The table quantifies the quantization trade the precision-parametric
datapath exists to expose: int8 moves 4x the words per DRAM beat and
packs 4x the PEs per DSP budget, buying throughput and efficiency at a
bounded logit error.
"""

from __future__ import annotations

import typing

import numpy as np

from repro.power.model import PowerModel

#: Precision -> backend registry name, in ablation-report order.
PRECISION_BACKENDS: typing.Tuple[typing.Tuple[str, str], ...] = (
    ("fp32", "fa3c-fpga"),
    ("fp16", "fa3c-fp16"),
    ("int8", "fa3c-int8"),
)

#: Seeds for the accuracy probe (fixed: the ablation is deterministic).
_PARAM_SEED = 7
_STATE_SEED = 11
_PROBE_BATCH = 8
_NUM_ACTIONS = 6


def max_logit_error(precision: str, num_actions: int = _NUM_ACTIONS,
                    batch: int = _PROBE_BATCH) -> float:
    """Max |logit - fp32 logit| of a seeded forward at ``precision``.

    Both networks share identical fp32 parameters and inputs; only the
    datapath coercion differs, so the deviation is purely quantization
    error.  fp32 returns exactly 0.0 (same code path, no coercion).
    """
    from repro.nn.network import A3CNetwork

    reference = A3CNetwork(num_actions)
    params = reference.init_params(np.random.default_rng(_PARAM_SEED))
    states = np.random.default_rng(_STATE_SEED).uniform(
        0.0, 1.0, size=(batch,) + reference.input_shape
    ).astype(np.float32)
    ref_logits, _ = reference.forward(states, params)
    if precision == "fp32":
        return 0.0
    quantized = A3CNetwork(num_actions, precision=precision)
    logits, _ = quantized.forward(states, params)
    return float(np.max(np.abs(logits - ref_logits)))


def precision_ablation(num_agents: int = 8, t_max: int = 5,
                       routines: int = 25
                       ) -> typing.List[typing.Dict[str, object]]:
    """One row per precision: accuracy, modelled IPS, modelled energy."""
    from repro import backends
    from repro.platforms import measure_ips

    model = PowerModel()
    rows = []
    for precision, backend in PRECISION_BACKENDS:
        platform = backends.create(backend)
        result = measure_ips(platform, num_agents, t_max=t_max,
                             routines_per_agent=routines)
        report = model.report(result)
        rows.append({
            "precision": precision,
            "backend": backend,
            "ips": round(result.ips, 1),
            "watts": round(report.watts, 2),
            "ips_per_watt": round(report.inferences_per_watt, 1),
            "mj_per_inference": round(1000.0 * report.watts / result.ips,
                                      4) if result.ips else None,
            "max_abs_logit_err": round(max_logit_error(precision), 6),
        })
    return rows
