"""The dummy-platform power methodology (paper Section 5.3).

The paper measures each platform's power as the *difference* between the
whole system running A3C and a dummy platform in which agents play with
random actions and no DNN runs — isolating the accelerator's contribution
(including host communication overhead).  We reproduce that methodology
over a modelled power envelope:

    delta_watts = idle_delta + (active - idle_delta) * utilisation

where *utilisation* comes from the discrete-event throughput simulation.
Envelope constants are anchored to the paper's absolute numbers: FA3C
draws 18 W on average for the A3C computation — a 30 % reduction from
A3C-cuDNN — and achieves more than 142 inferences per Watt, 1.62x the
cuDNN platform's efficiency.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.platforms.throughput import ThroughputResult


@dataclasses.dataclass(frozen=True)
class PowerEnvelope:
    """Idle-delta and fully-active power of one platform (Watts).

    ``idle_delta`` is the extra draw over the dummy platform merely from
    having the accelerator configured and clocked; ``active`` is the draw
    at 100 % device utilisation.
    """

    idle_delta: float
    active: float

    def watts(self, utilisation: float) -> float:
        """Modelled power delta at a device utilisation in [0, 1]."""
        utilisation = min(max(utilisation, 0.0), 1.0)
        return self.idle_delta + (self.active - self.idle_delta) \
            * utilisation


#: Power envelopes per platform, anchored to the Section 5.3 numbers
#: (FA3C ~18 W at its operating utilisation, A3C-cuDNN ~25-26 W) and to
#: typical board powers (VCU1525 <= 75 W PCIe budget, P100 250 W TDP but
#: far below it at these occupancies; CPU platform draws package power on
#: both sockets).
PLATFORM_POWER: typing.Dict[str, PowerEnvelope] = {
    "FA3C": PowerEnvelope(idle_delta=5.0, active=18.5),
    "FA3C-SingleCU": PowerEnvelope(idle_delta=5.0, active=18.5),
    "FA3C-Alt1": PowerEnvelope(idle_delta=5.0, active=18.5),
    "FA3C-Alt2": PowerEnvelope(idle_delta=5.0, active=19.5),
    # Quantized-datapath variants: narrower multipliers and fewer DRAM
    # beats per task cut the dynamic (utilisation-proportional) draw;
    # the static idle delta of a configured, clocked device is unchanged.
    "FA3C-FP16": PowerEnvelope(idle_delta=5.0, active=15.5),
    "FA3C-INT8": PowerEnvelope(idle_delta=5.0, active=13.0),
    "A3C-cuDNN": PowerEnvelope(idle_delta=10.0, active=25.5),
    "A3C-TF-GPU": PowerEnvelope(idle_delta=10.0, active=28.0),
    "GA3C-TF": PowerEnvelope(idle_delta=10.0, active=30.0),
    "A3C-TF-CPU": PowerEnvelope(idle_delta=8.0, active=42.0),
}


@dataclasses.dataclass
class EnergyReport:
    """One platform's Figure 9 entry."""

    platform: str
    ips: float
    watts: float
    utilisation: float

    @property
    def inferences_per_watt(self) -> float:
        """The Figure 9b metric."""
        return self.ips / self.watts if self.watts > 0 else 0.0


class PowerModel:
    """Turns throughput results into the Figure 9 power/efficiency data."""

    def __init__(self, envelopes: typing.Optional[
            typing.Mapping[str, PowerEnvelope]] = None):
        self.envelopes = dict(envelopes or PLATFORM_POWER)

    def report(self, result: ThroughputResult) -> EnergyReport:
        """Power and efficiency for one measured configuration."""
        if result.platform not in self.envelopes:
            raise KeyError(f"no power envelope for {result.platform!r}; "
                           f"known: {sorted(self.envelopes)}")
        envelope = self.envelopes[result.platform]
        watts = envelope.watts(result.utilisation)
        return EnergyReport(platform=result.platform, ips=result.ips,
                            watts=watts, utilisation=result.utilisation)

    def figure9(self, results: typing.Sequence[ThroughputResult],
                baseline: str = "A3C-cuDNN"
                ) -> typing.List[typing.Dict[str, float]]:
        """Rows normalised to the baseline platform, as the paper plots.

        Each row carries absolute watts and IPS/W plus both values
        normalised to ``baseline``.
        """
        reports = {r.platform: self.report(r) for r in results}
        if baseline not in reports:
            raise ValueError(f"baseline {baseline!r} missing from results")
        base = reports[baseline]
        rows = []
        for report in reports.values():
            rows.append({
                "platform": report.platform,
                "watts": report.watts,
                "ips": report.ips,
                "ips_per_watt": report.inferences_per_watt,
                "relative_power": report.watts / base.watts,
                "relative_efficiency": report.inferences_per_watt /
                base.inferences_per_watt,
            })
        return rows
