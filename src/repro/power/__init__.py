"""Power and energy-efficiency models (paper Section 5.3, Figure 9)."""

from repro.power.ablation import PRECISION_BACKENDS, precision_ablation
from repro.power.model import (
    PLATFORM_POWER,
    EnergyReport,
    PowerEnvelope,
    PowerModel,
)

__all__ = [
    "EnergyReport",
    "PLATFORM_POWER",
    "PRECISION_BACKENDS",
    "PowerEnvelope",
    "PowerModel",
    "precision_ablation",
]
