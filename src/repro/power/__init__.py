"""Power and energy-efficiency models (paper Section 5.3, Figure 9)."""

from repro.power.model import (
    PLATFORM_POWER,
    EnergyReport,
    PowerEnvelope,
    PowerModel,
)

__all__ = ["EnergyReport", "PLATFORM_POWER", "PowerEnvelope", "PowerModel"]
