"""Small, fast environments for unit tests and quickstart examples.

These run thousands of steps per second with tiny observations, so the A3C
core can be integration-tested (including end-to-end learning) in seconds,
without the pixel pipeline.
"""

from __future__ import annotations

import typing

import numpy as np

from repro.envs.base import Env
from repro.envs.spaces import Box, Discrete


class Catch(Env):
    """Catch a falling ball with a paddle on a ``size x size`` grid.

    Observation: the grid as floats (1 at the ball and paddle cells).
    Actions: 0 = left, 1 = stay, 2 = right.  Reward +1 for catching,
    -1 for missing, episode length = ``size`` steps.  Solvable by A3C in a
    few hundred episodes — the standard sanity-check environment.
    """

    def __init__(self, size: int = 7):
        super().__init__()
        if size < 3:
            raise ValueError(f"grid too small: {size}")
        self.size = size
        self.observation_space = Box(0.0, 1.0, (size, size))
        self.action_space = Discrete(3)
        self._ball_row = 0
        self._ball_col = 0
        self._paddle = 0
        self._done = True

    def _observation(self) -> np.ndarray:
        obs = np.zeros((self.size, self.size), dtype=np.float32)
        obs[self._ball_row, self._ball_col] = 1.0
        obs[self.size - 1, self._paddle] = 1.0
        return obs

    def reset(self) -> np.ndarray:
        self._ball_row = 0
        self._ball_col = int(self.rng.integers(self.size))
        self._paddle = self.size // 2
        self._done = False
        return self._observation()

    def step(self, action: int):
        if self._done:
            raise RuntimeError("step() called on a finished episode")
        if not self.action_space.contains(action):
            raise ValueError(f"invalid action {action!r}")
        self._paddle = int(np.clip(self._paddle + (int(action) - 1),
                                   0, self.size - 1))
        self._ball_row += 1
        reward = 0.0
        done = False
        if self._ball_row == self.size - 1:
            done = True
            reward = 1.0 if self._paddle == self._ball_col else -1.0
        self._done = done
        return self._observation(), reward, done, {}


class GridWorld(Env):
    """A deterministic shortest-path grid with a goal and step penalty.

    The agent starts at the top-left and must reach the bottom-right goal.
    Observation: one-hot position grid.  Actions: up/down/left/right.
    Reward: -0.01 per step, +1 at the goal.  Used to test value bootstrapping
    over multi-step returns.
    """

    ACTIONS = ((-1, 0), (1, 0), (0, -1), (0, 1))

    def __init__(self, size: int = 5, max_steps: int = 100):
        super().__init__()
        self.size = size
        self.max_steps = max_steps
        self.observation_space = Box(0.0, 1.0, (size, size))
        self.action_space = Discrete(4)
        self._pos = (0, 0)
        self._steps = 0

    def _observation(self) -> np.ndarray:
        obs = np.zeros((self.size, self.size), dtype=np.float32)
        obs[self._pos] = 1.0
        return obs

    def reset(self) -> np.ndarray:
        self._pos = (0, 0)
        self._steps = 0
        return self._observation()

    def step(self, action: int):
        if not self.action_space.contains(action):
            raise ValueError(f"invalid action {action!r}")
        dr, dc = self.ACTIONS[int(action)]
        row = int(np.clip(self._pos[0] + dr, 0, self.size - 1))
        col = int(np.clip(self._pos[1] + dc, 0, self.size - 1))
        self._pos = (row, col)
        self._steps += 1
        at_goal = self._pos == (self.size - 1, self.size - 1)
        done = at_goal or self._steps >= self.max_steps
        reward = 1.0 if at_goal else -0.01
        return self._observation(), reward, done, {}


class CartPole(Env):
    """The classic cart-pole balancing task (Barto, Sutton & Anderson).

    Dynamics follow the standard formulation (Euler integration,
    tau = 0.02 s).  Observation: ``(x, x_dot, theta, theta_dot)``.
    Reward +1 per step until the pole falls or the cart leaves the track.
    """

    GRAVITY = 9.8
    CART_MASS = 1.0
    POLE_MASS = 0.1
    POLE_HALF_LENGTH = 0.5
    FORCE = 10.0
    TAU = 0.02
    THETA_LIMIT = 12 * np.pi / 180
    X_LIMIT = 2.4

    def __init__(self, max_steps: int = 500):
        super().__init__()
        self.max_steps = max_steps
        self.observation_space = Box(-np.inf, np.inf, (4,))
        self.action_space = Discrete(2)
        self._state = np.zeros(4, dtype=np.float64)
        self._steps = 0

    def reset(self) -> np.ndarray:
        self._state = self.rng.uniform(-0.05, 0.05, size=4)
        self._steps = 0
        return self._state.astype(np.float32)

    def step(self, action: int):
        if not self.action_space.contains(action):
            raise ValueError(f"invalid action {action!r}")
        x, x_dot, theta, theta_dot = self._state
        force = self.FORCE if int(action) == 1 else -self.FORCE
        total_mass = self.CART_MASS + self.POLE_MASS
        pole_ml = self.POLE_MASS * self.POLE_HALF_LENGTH
        cos_t, sin_t = np.cos(theta), np.sin(theta)
        temp = (force + pole_ml * theta_dot ** 2 * sin_t) / total_mass
        theta_acc = (self.GRAVITY * sin_t - cos_t * temp) / (
            self.POLE_HALF_LENGTH *
            (4.0 / 3.0 - self.POLE_MASS * cos_t ** 2 / total_mass))
        x_acc = temp - pole_ml * theta_acc * cos_t / total_mass
        self._state = np.array([
            x + self.TAU * x_dot,
            x_dot + self.TAU * x_acc,
            theta + self.TAU * theta_dot,
            theta_dot + self.TAU * theta_acc,
        ])
        self._steps += 1
        fell = (abs(self._state[0]) > self.X_LIMIT
                or abs(self._state[2]) > self.THETA_LIMIT)
        done = fell or self._steps >= self.max_steps
        return self._state.astype(np.float32), 1.0, done, {}


class MemoryCue(Env):
    """A minimal memory task: recall a cue shown ``delay`` steps ago.

    The first observation shows a binary cue in one of two slots; the
    following ``delay - 1`` observations are blank; on the last step the
    agent must choose the action matching the cue (+1 / -1 reward).
    A feed-forward policy is chance-level (the decision-time observation
    carries no information); a recurrent policy solves it — the test
    separating :class:`~repro.core.recurrent_agent.RecurrentA3CAgent`
    from the plain agent.
    """

    def __init__(self, delay: int = 3):
        super().__init__()
        if delay < 1:
            raise ValueError(f"delay must be >= 1: {delay}")
        self.delay = delay
        self.observation_space = Box(0.0, 1.0, (3,))
        self.action_space = Discrete(2)
        self._cue = 0
        self._t = 0

    def _observation(self) -> np.ndarray:
        obs = np.zeros(3, dtype=np.float32)
        if self._t == 0:
            obs[self._cue] = 1.0
        obs[2] = 1.0 if self._t == self.delay - 1 else 0.0  # "answer now"
        return obs

    def reset(self) -> np.ndarray:
        self._cue = int(self.rng.integers(2))
        self._t = 0
        return self._observation()

    def step(self, action: int):
        if not self.action_space.contains(action):
            raise ValueError(f"invalid action {action!r}")
        done = self._t == self.delay - 1
        reward = 0.0
        if done:
            reward = 1.0 if int(action) == self._cue else -1.0
        self._t += 1
        return self._observation(), reward, done, {}


def rollout_random(env: Env, steps: int,
                   seed: typing.Optional[int] = None) -> float:
    """Run random actions for ``steps`` steps; returns total reward.

    Convenience used by tests and the dummy-platform power methodology
    (the paper's dummy platform plays with randomly-selected actions,
    Section 5.3).
    """
    env.seed(seed)
    rng = np.random.default_rng(seed)
    total = 0.0
    env.reset()
    for _ in range(steps):
        _, reward, done, _ = env.step(env.action_space.sample(rng))
        total += reward
        if done:
            env.reset()
    return total
