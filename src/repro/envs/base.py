"""The environment interface and generic wrappers."""

from __future__ import annotations

import typing

import numpy as np


class Env:
    """Base environment: ``reset() -> obs``, ``step(a) -> (obs, r, done,
    info)``.

    Environments own a :class:`numpy.random.Generator` seeded through
    :meth:`seed` so that rollouts are reproducible — the paper notes each
    game instance is assigned a different random seed (Section 5.6).
    """

    observation_space = None
    action_space = None

    def __init__(self):
        self.rng = np.random.default_rng()

    def seed(self, seed: typing.Optional[int] = None) -> None:
        """Re-seed the environment's random stream."""
        self.rng = np.random.default_rng(seed)

    def reset(self) -> np.ndarray:
        """Start a new episode and return the first observation."""
        raise NotImplementedError

    def step(self, action: int) -> typing.Tuple[
            np.ndarray, float, bool, dict]:
        """Apply an action; returns (observation, reward, done, info)."""
        raise NotImplementedError

    def close(self) -> None:
        """Release any resources (no-op by default)."""

    def __repr__(self) -> str:
        return f"<{type(self).__name__}>"


class Wrapper(Env):
    """Forwarding base class for environment wrappers."""

    def __init__(self, env: Env):
        super().__init__()
        self.env = env
        self.observation_space = env.observation_space
        self.action_space = env.action_space

    def seed(self, seed: typing.Optional[int] = None) -> None:
        self.env.seed(seed)

    def reset(self) -> np.ndarray:
        return self.env.reset()

    def step(self, action: int):
        return self.env.step(action)

    def close(self) -> None:
        self.env.close()

    @property
    def unwrapped(self) -> Env:
        """The innermost environment."""
        env = self.env
        while isinstance(env, Wrapper):
            env = env.env
        return env

    def __repr__(self) -> str:
        return f"<{type(self).__name__}{self.env!r}>"


class TimeLimit(Wrapper):
    """Terminate episodes after a fixed number of steps.

    Sets ``info["truncated"] = True`` when the limit (rather than the
    underlying game) ends the episode.
    """

    def __init__(self, env: Env, max_steps: int):
        super().__init__(env)
        if max_steps < 1:
            raise ValueError(f"max_steps must be >= 1, got {max_steps}")
        self.max_steps = max_steps
        self._elapsed = 0

    def reset(self) -> np.ndarray:
        self._elapsed = 0
        return self.env.reset()

    def step(self, action: int):
        obs, reward, done, info = self.env.step(action)
        self._elapsed += 1
        if self._elapsed >= self.max_steps and not done:
            done = True
            info = dict(info, truncated=True)
        return obs, reward, done, info
