"""Image preprocessing primitives: grayscale conversion and resizing.

Pure-NumPy implementations of the two image operations the DeepMind Atari
pipeline needs (luminance extraction and 84x84 bilinear resize), so the
preprocessing path the paper's agents run on the host is exercised for real.
"""

from __future__ import annotations

import numpy as np

# ITU-R BT.601 luma coefficients, as used by ALE/OpenCV grayscale.
_LUMA = np.array([0.299, 0.587, 0.114], dtype=np.float32)


def rgb_to_grayscale(frame: np.ndarray) -> np.ndarray:
    """Convert an ``(H, W, 3)`` uint8/float RGB frame to ``(H, W)`` float32
    luminance in [0, 255]."""
    if frame.ndim != 3 or frame.shape[-1] != 3:
        raise ValueError(f"expected (H, W, 3) RGB frame, got {frame.shape}")
    return frame.astype(np.float32) @ _LUMA


def bilinear_resize(image: np.ndarray, out_height: int,
                    out_width: int) -> np.ndarray:
    """Bilinearly resize a 2-D float image to ``(out_height, out_width)``.

    Uses the half-pixel-centres convention (align_corners=False), matching
    OpenCV's ``INTER_LINEAR`` used by the standard Atari wrappers.
    """
    if image.ndim != 2:
        raise ValueError(f"expected a 2-D image, got shape {image.shape}")
    in_h, in_w = image.shape
    if (in_h, in_w) == (out_height, out_width):
        return image.astype(np.float32)

    image = image.astype(np.float32)
    row_pos = (np.arange(out_height) + 0.5) * (in_h / out_height) - 0.5
    col_pos = (np.arange(out_width) + 0.5) * (in_w / out_width) - 0.5
    row_pos = np.clip(row_pos, 0, in_h - 1)
    col_pos = np.clip(col_pos, 0, in_w - 1)

    r0 = np.floor(row_pos).astype(np.intp)
    c0 = np.floor(col_pos).astype(np.intp)
    r1 = np.minimum(r0 + 1, in_h - 1)
    c1 = np.minimum(c0 + 1, in_w - 1)
    wr = (row_pos - r0).astype(np.float32)[:, None]
    wc = (col_pos - c0).astype(np.float32)[None, :]

    top = image[r0][:, c0] * (1 - wc) + image[r0][:, c1] * wc
    bottom = image[r1][:, c0] * (1 - wc) + image[r1][:, c1] * wc
    return top * (1 - wr) + bottom * wr


def preprocess_frame(frame: np.ndarray, out_height: int = 84,
                     out_width: int = 84) -> np.ndarray:
    """Full per-frame pipeline: grayscale, resize, scale to [0, 1]."""
    gray = rgb_to_grayscale(frame) if frame.ndim == 3 else \
        frame.astype(np.float32)
    resized = bilinear_resize(gray, out_height, out_width)
    return resized / 255.0
