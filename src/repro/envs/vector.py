"""Synchronous vectorised environments.

PAAC's defining trait is stepping all agents' environments in lockstep
and batching every DNN call (paper Section 6).  :class:`SyncVectorEnv`
provides that substrate: N independent environments advanced together,
with automatic reset-on-done and per-slot episode-score accounting
(respecting the EpisodicLife convention that a life loss ends a training
episode but not the scored game).
"""

from __future__ import annotations

import dataclasses
import typing

import numpy as np

from repro.envs.base import Env


@dataclasses.dataclass
class VectorStep:
    """The result of stepping every slot once."""

    observations: np.ndarray          # (N, ...) float32
    rewards: np.ndarray               # (N,)
    dones: np.ndarray                 # (N,) bool — training episode end
    infos: typing.List[dict]
    finished_scores: typing.List[typing.Tuple[int, float]]
    """(slot, full-game score) for every game that truly ended."""


class SyncVectorEnv:
    """N environments stepped in lockstep."""

    def __init__(self, env_factories: typing.Sequence[
            typing.Callable[[], Env]],
            seed: typing.Optional[int] = None):
        self.envs: typing.List[Env] = [factory()
                                       for factory in env_factories]
        if not self.envs:
            raise ValueError("need at least one environment")
        # Slot 0's spaces stand in for the whole batch (the policy head
        # sizes itself from them), so every slot must agree on the
        # action count.
        sizes = {getattr(env.action_space, "n", None)
                 for env in self.envs}
        if len(sizes) > 1:
            raise ValueError(
                "heterogeneous action spaces across slots: "
                f"{sorted(str(s) for s in sizes)}; all environments in "
                "a vector must expose the same action count")
        self.num_envs = len(self.envs)
        if seed is not None:
            # Lazy: the seeding contract lives with the backend
            # protocol, and a module-scope import would drag the
            # platform adapters into every envs import (layering).
            from repro.backends.protocol import derive_agent_seed
            for index, env in enumerate(self.envs):
                env.seed(derive_agent_seed(seed, index))
        self._scores = np.zeros(self.num_envs)
        self._observations: typing.Optional[np.ndarray] = None

    @property
    def action_space(self):
        return self.envs[0].action_space

    @property
    def observation_space(self):
        return self.envs[0].observation_space

    def reset(self) -> np.ndarray:
        """Reset every slot; returns stacked observations."""
        self._scores[:] = 0.0
        observations = [env.reset() for env in self.envs]
        self._observations = np.stack(observations).astype(np.float32)
        return self._observations

    @property
    def observations(self) -> np.ndarray:
        """The latest stacked observations."""
        if self._observations is None:
            raise RuntimeError("reset() the vector env first")
        return self._observations

    def step(self, actions: typing.Sequence[int]) -> VectorStep:
        """Step every slot; finished slots auto-reset."""
        if len(actions) != self.num_envs:
            raise ValueError(f"expected {self.num_envs} actions, "
                             f"got {len(actions)}")
        observations = self.observations.copy()
        rewards = np.zeros(self.num_envs, dtype=np.float32)
        dones = np.zeros(self.num_envs, dtype=bool)
        infos: typing.List[dict] = []
        finished: typing.List[typing.Tuple[int, float]] = []
        for index, (env, action) in enumerate(zip(self.envs, actions)):
            obs, reward, done, info = env.step(int(action))
            self._scores[index] += info.get("raw_reward", reward)
            rewards[index] = reward
            dones[index] = done
            infos.append(info)
            if done:
                if not info.get("life_lost"):
                    finished.append((index, float(self._scores[index])))
                    self._scores[index] = 0.0
                obs = env.reset()
            observations[index] = obs
        self._observations = observations
        return VectorStep(observations=observations, rewards=rewards,
                          dones=dones, infos=infos,
                          finished_scores=finished)

    def close(self) -> None:
        for env in self.envs:
            env.close()
