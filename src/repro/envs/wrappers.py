"""DeepMind-style Atari preprocessing wrappers.

The stack assembled by :func:`make_atari_env` reproduces the preprocessing
of the original DQN/A3C papers, which the FA3C evaluation inherits:

* **MaxAndSkip** — repeat each action for 4 frames, observing the pixelwise
  max of the last two (de-flickers sprites drawn on alternating frames).
* **EpisodicLife** — treat a life loss as episode end for training.
* **AtariPreprocessing** — grayscale + bilinear resize to 84x84, [0, 1].
* **FrameStack** — stack the last 4 processed frames into ``(4, 84, 84)``,
  the Table 1 network input (28K features).
* **ClipReward** — clip rewards to the sign, as in the DQN/A3C training
  setup.
"""

from __future__ import annotations

import collections
import typing

import numpy as np

from repro.envs.base import Env, TimeLimit, Wrapper
from repro.envs.preprocessing import preprocess_frame
from repro.envs.spaces import Box


class MaxAndSkip(Wrapper):
    """Repeat the action ``skip`` frames; observe the max of the last two."""

    def __init__(self, env: Env, skip: int = 4):
        super().__init__(env)
        if skip < 1:
            raise ValueError(f"skip must be >= 1, got {skip}")
        self.skip = skip

    def step(self, action: int):
        total_reward = 0.0
        done = False
        info: dict = {}
        frames: typing.List[np.ndarray] = []
        for _ in range(self.skip):
            obs, reward, done, info = self.env.step(action)
            frames.append(obs)
            total_reward += reward
            if done:
                break
        if len(frames) >= 2:
            obs = np.maximum(frames[-1], frames[-2])
        else:
            obs = frames[-1]
        return obs, total_reward, done, info


class EpisodicLife(Wrapper):
    """End training episodes on life loss, but only truly reset when the
    underlying game is over.

    Requires the wrapped env to report the remaining lives via
    ``info["lives"]``.
    """

    def __init__(self, env: Env):
        super().__init__(env)
        self._lives = 0
        self._game_over = True

    def reset(self) -> np.ndarray:
        if self._game_over:
            obs = self.env.reset()
        else:
            # Life-loss pseudo-reset: keep playing the same game with a
            # no-op so training episodes stay short.
            obs, _, done, _ = self.env.step(0)
            if done:
                obs = self.env.reset()
        self._lives = self._current_lives()
        return obs

    def _current_lives(self) -> int:
        game = self.unwrapped
        return int(getattr(game, "lives", 0))

    def step(self, action: int):
        obs, reward, done, info = self.env.step(action)
        self._game_over = done
        lives = info.get("lives", self._current_lives())
        if 0 < lives < self._lives:
            done = True
            info = dict(info, life_lost=True)
        self._lives = lives
        return obs, reward, done, info


class AtariPreprocessing(Wrapper):
    """Grayscale + resize each frame to ``(height, width)`` in [0, 1]."""

    def __init__(self, env: Env, height: int = 84, width: int = 84):
        super().__init__(env)
        self.height = height
        self.width = width
        self.observation_space = Box(0.0, 1.0, (height, width))

    def _process(self, frame: np.ndarray) -> np.ndarray:
        return preprocess_frame(frame, self.height, self.width)

    def reset(self) -> np.ndarray:
        return self._process(self.env.reset())

    def step(self, action: int):
        obs, reward, done, info = self.env.step(action)
        return self._process(obs), reward, done, info


class FrameStack(Wrapper):
    """Stack the last ``count`` observations along a leading axis."""

    def __init__(self, env: Env, count: int = 4):
        super().__init__(env)
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        self.count = count
        base = env.observation_space
        self.observation_space = Box(base.low, base.high,
                                     (count,) + base.shape)
        self._frames: collections.deque = collections.deque(maxlen=count)

    def _stacked(self) -> np.ndarray:
        return np.stack(self._frames, axis=0)

    def reset(self) -> np.ndarray:
        obs = self.env.reset()
        self._frames.clear()
        for _ in range(self.count):
            self._frames.append(obs)
        return self._stacked()

    def step(self, action: int):
        obs, reward, done, info = self.env.step(action)
        self._frames.append(obs)
        return self._stacked(), reward, done, info


class ClipReward(Wrapper):
    """Clip rewards to their sign: {-1, 0, +1}."""

    def step(self, action: int):
        obs, reward, done, info = self.env.step(action)
        info = dict(info, raw_reward=reward)
        return obs, float(np.sign(reward)), done, info


def make_atari_env(env: Env, frame_skip: int = 4, stack: int = 4,
                   episodic_life: bool = True, clip_rewards: bool = True,
                   size: int = 84,
                   max_episode_steps: typing.Optional[int] = None) -> Env:
    """Assemble the standard DeepMind preprocessing stack around ``env``.

    The result produces ``(stack, size, size)`` float32 observations in
    [0, 1] — the input of the Table 1 network.
    """
    wrapped: Env = MaxAndSkip(env, skip=frame_skip)
    if episodic_life:
        wrapped = EpisodicLife(wrapped)
    wrapped = AtariPreprocessing(wrapped, height=size, width=size)
    wrapped = FrameStack(wrapped, count=stack)
    if clip_rewards:
        wrapped = ClipReward(wrapped)
    if max_episode_steps is not None:
        wrapped = TimeLimit(wrapped, max_episode_steps)
    return wrapped
