"""Environment substrate: spaces, base API, classic control, and the
DeepMind-style Atari preprocessing pipeline.

The API mirrors the familiar gym interface (``reset() -> obs``,
``step(a) -> (obs, reward, done, info)``) because the paper's software
baselines are built on gym + the Arcade Learning Environment; ALE itself is
simulated in :mod:`repro.ale`.
"""

from repro.envs.base import Env, TimeLimit
from repro.envs.batched import BatchedVectorEnv, BatchPreprocessor
from repro.envs.classic import CartPole, Catch, GridWorld, MemoryCue
from repro.envs.preprocessing import bilinear_resize, rgb_to_grayscale
from repro.envs.spaces import Box, Discrete
from repro.envs.vector import SyncVectorEnv, VectorStep
from repro.envs.wrappers import (
    AtariPreprocessing,
    ClipReward,
    EpisodicLife,
    FrameStack,
    MaxAndSkip,
    make_atari_env,
)

__all__ = [
    "AtariPreprocessing",
    "BatchPreprocessor",
    "BatchedVectorEnv",
    "Box",
    "CartPole",
    "Catch",
    "ClipReward",
    "Discrete",
    "Env",
    "EpisodicLife",
    "FrameStack",
    "GridWorld",
    "MemoryCue",
    "MaxAndSkip",
    "SyncVectorEnv",
    "TimeLimit",
    "VectorStep",
    "bilinear_resize",
    "make_atari_env",
    "rgb_to_grayscale",
]
