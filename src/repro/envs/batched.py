"""Batched DeepMind preprocessing over the structure-of-arrays engine.

:class:`BatchedVectorEnv` is a drop-in replacement for
:class:`~repro.envs.vector.SyncVectorEnv` wrapping ``N`` copies of one
Atari game: one :meth:`step` advances every slot through the full
MaxAndSkip / EpisodicLife / grayscale-resize / FrameStack / ClipReward /
TimeLimit stack with batched NumPy, instead of N wrapper chains of
Python calls.  Per slot it is bit-identical to
``SyncVectorEnv([make_atari_env(make_game(name)) ...], seed=s)`` — same
observations, rewards, dones, infos and finished scores under the same
seed and action sequence (see ``tests/test_envs_batched.py``).

The frame-skip loop steps only still-active slots (``engine.step``
accepts a slot subset), so a slot whose game ends mid-cycle drops out
exactly where the scalar MaxAndSkip loop breaks.
"""

from __future__ import annotations

import typing

import numpy as np

from repro.envs.preprocessing import _LUMA
from repro.envs.spaces import Box
from repro.envs.vector import VectorStep
from repro.perf.hotpath import hot_path


class BatchPreprocessor:
    """Batched grayscale + bilinear resize + [0, 1] scaling.

    Bit-identical per slot to
    :func:`repro.envs.preprocessing.preprocess_frame`: the gather indices
    and float32 weights are precomputed once, and the multiply/add order
    matches :func:`~repro.envs.preprocessing.bilinear_resize` exactly.
    """

    def __init__(self, in_height: int, in_width: int,
                 out_height: int, out_width: int):
        self.out_shape = (out_height, out_width)
        self._identity = (in_height, in_width) == (out_height, out_width)
        if self._identity:
            return
        row_pos = (np.arange(out_height) + 0.5) * (in_height / out_height) \
            - 0.5
        col_pos = (np.arange(out_width) + 0.5) * (in_width / out_width) \
            - 0.5
        row_pos = np.clip(row_pos, 0, in_height - 1)
        col_pos = np.clip(col_pos, 0, in_width - 1)
        r0 = np.floor(row_pos).astype(np.intp)
        c0 = np.floor(col_pos).astype(np.intp)
        self._r0 = r0
        self._c0 = c0
        self._r1 = np.minimum(r0 + 1, in_height - 1)
        self._c1 = np.minimum(c0 + 1, in_width - 1)
        wr = (row_pos - r0).astype(np.float32)
        wc = (col_pos - c0).astype(np.float32)
        self._wr = wr[None, :, None]
        self._wc = wc[None, None, :]
        self._omwr = 1 - self._wr
        self._omwc = 1 - self._wc

    @hot_path
    def __call__(self, frames: np.ndarray) -> np.ndarray:
        """Process ``(N, H, W, 3)`` uint8 frames to ``(N, out_h, out_w)``
        float32 in [0, 1]."""
        gray = frames.astype(np.float32) @ _LUMA
        if self._identity:
            return gray / 255.0
        g0 = gray[:, self._r0]
        g1 = gray[:, self._r1]
        top = g0[:, :, self._c0] * self._omwc + g0[:, :, self._c1] * self._wc
        bottom = g1[:, :, self._c0] * self._omwc + \
            g1[:, :, self._c1] * self._wc
        return (top * self._omwr + bottom * self._wr) / 255.0


class BatchedVectorEnv:
    """N copies of one Atari game stepped as a single batch.

    Drop-in for :class:`~repro.envs.vector.SyncVectorEnv` (same
    ``reset``/``step``/``observations`` protocol and
    :class:`~repro.envs.vector.VectorStep` results), built on
    :func:`repro.ale.vec.make_vec_game` instead of N scalar wrapper
    chains.
    """

    def __init__(self, game: typing.Union[str, "VecAtariGame"],
                 num_envs: typing.Optional[int] = None,
                 seed: typing.Optional[int] = None,
                 frame_skip: int = 4, stack: int = 4,
                 episodic_life: bool = True, clip_rewards: bool = True,
                 size: int = 84,
                 max_episode_steps: typing.Optional[int] = None):
        # Imported here: repro.ale builds on repro.envs, so a module-level
        # import would be circular.
        from repro.ale.vec import make_vec_game
        from repro.ale.vec.base import VecAtariGame
        if isinstance(game, VecAtariGame):
            engine = game
        else:
            if num_envs is None:
                raise ValueError("num_envs is required when game is a name")
            engine = make_vec_game(game, num_envs)
        if frame_skip < 1:
            raise ValueError(f"skip must be >= 1, got {frame_skip}")
        if stack < 1:
            raise ValueError(f"count must be >= 1, got {stack}")
        if max_episode_steps is not None and max_episode_steps < 1:
            raise ValueError(f"max_steps must be >= 1, "
                             f"got {max_episode_steps}")
        self.engine = engine
        self.num_envs = engine.batch
        self.frame_skip = int(frame_skip)
        self.stack = int(stack)
        self.episodic_life = bool(episodic_life)
        self.clip_rewards = bool(clip_rewards)
        self.max_episode_steps = max_episode_steps
        self.action_space = engine.action_space
        self.observation_space = Box(0.0, 1.0, (stack, size, size))
        if seed is not None:
            # Lazy for the same layering reason as SyncVectorEnv: the
            # contract lives with the backend protocol.
            from repro.backends.protocol import derive_agent_seed
            engine.seed([derive_agent_seed(seed, index)
                         for index in range(self.num_envs)])

        batch = self.num_envs
        height, width = engine.screen.height, engine.screen.width
        self._pre = BatchPreprocessor(height, width, size, size)
        self._prev = np.zeros((batch, height, width, 3), dtype=np.uint8)
        self._raw = np.zeros_like(self._prev)
        self._lives = np.zeros(batch, dtype=np.int64)
        # EpisodicLife._game_over per slot: a fresh env fully resets.
        self._ep_game_over = np.ones(batch, dtype=bool)
        self._elapsed = np.zeros(batch, dtype=np.int64)
        self._scores = np.zeros(batch)
        self._observations: typing.Optional[np.ndarray] = None
        self._all = np.arange(batch, dtype=np.intp)

    # -- internals ---------------------------------------------------------

    @hot_path
    def _skip_slots(self, slots: np.ndarray,
                    actions: np.ndarray) -> typing.Tuple[np.ndarray,
                                                         np.ndarray]:
        """One MaxAndSkip cycle for ``slots``; the de-flickered frames land
        in ``self._raw[slots]``.  Returns (total_rewards, dones)."""
        engine = self.engine
        rewards = np.zeros(slots.size)
        dones = np.zeros(slots.size, dtype=bool)
        seen = np.zeros(slots.size, dtype=np.int64)
        alive = np.ones(slots.size, dtype=bool)
        for sub in range(self.frame_skip):
            idx = np.nonzero(alive)[0]
            if idx.size == 0:
                break
            current = slots[idx]
            if sub:
                self._prev[current] = engine.frames[current]
            sub_rewards, sub_dones = engine.step(actions[idx], current)
            rewards[idx] += sub_rewards
            seen[idx] += 1
            dones[idx] = sub_dones
            alive[idx] = ~sub_dones
        two = seen >= 2
        pair = slots[two]
        if pair.size:
            self._raw[pair] = np.maximum(engine.frames[pair],
                                         self._prev[pair])
        single = slots[~two]
        if single.size:
            self._raw[single] = engine.frames[single]
        return rewards, dones

    def _pseudo_reset(self, slots: np.ndarray,
                      new_obs: np.ndarray) -> None:
        """EpisodicLife life-loss reset: one NOOP skip cycle per slot (full
        engine reset if the game ends during it), stacked into
        ``new_obs``."""
        engine = self.engine
        _, died = self._skip_slots(slots,
                                   np.zeros(slots.size, dtype=np.int64))
        kept = slots[~died]
        if kept.size:
            new_obs[kept] = self._pre(self._raw[kept])[:, None]
        lost = slots[died]
        if lost.size:
            engine.reset_slots(lost)
            new_obs[lost] = self._pre(engine.frames[lost])[:, None]

    # -- SyncVectorEnv protocol --------------------------------------------

    def reset(self) -> np.ndarray:
        """Reset every slot; returns stacked observations."""
        engine = self.engine
        self._scores[:] = 0.0
        self._elapsed[:] = 0
        if self.episodic_life:
            full = self._ep_game_over.copy()
        else:
            full = np.ones(self.num_envs, dtype=bool)
        new_obs = np.empty(
            (self.num_envs, self.stack) + self._pre.out_shape,
            dtype=np.float32)
        pseudo_idx = np.nonzero(~full)[0]
        if pseudo_idx.size:
            self._pseudo_reset(pseudo_idx, new_obs)
        full_idx = np.nonzero(full)[0]
        if full_idx.size:
            engine.reset_slots(full_idx)
            new_obs[full_idx] = self._pre(engine.frames[full_idx])[:, None]
        self._lives[:] = engine.lives
        self._observations = new_obs
        return new_obs

    @property
    def observations(self) -> np.ndarray:
        """The latest stacked observations."""
        if self._observations is None:
            raise RuntimeError("reset() the vector env first")
        return self._observations

    @hot_path
    def step(self, actions: typing.Sequence[int]) -> VectorStep:
        """Step every slot; finished slots auto-reset."""
        if len(actions) != self.num_envs:
            raise ValueError(f"expected {self.num_envs} actions, "
                             f"got {len(actions)}")
        old_obs = self.observations
        engine = self.engine
        batch = self.num_envs
        actions = np.asarray(actions, dtype=np.int64)

        rewards_raw, done_raw = self._skip_slots(self._all, actions)
        lives = engine.lives.copy()
        dones = done_raw.copy()
        life_lost = np.zeros(batch, dtype=bool)
        if self.episodic_life:
            life_lost = ~done_raw & (lives > 0) & (lives < self._lives)
            dones |= life_lost
            self._ep_game_over = done_raw.copy()
        self._lives = lives
        truncated = np.zeros(batch, dtype=bool)
        if self.max_episode_steps is not None:
            self._elapsed += 1
            truncated = (self._elapsed >= self.max_episode_steps) & ~dones
            dones |= truncated

        # Per-slot infos, captured before any resets (as the scalar stack
        # observes them).
        scores = engine.score
        infos: typing.List[dict] = []
        for index in range(batch):
            info = {"lives": int(lives[index]),
                    "score": float(scores[index])}
            if life_lost[index]:
                info["life_lost"] = True
            if self.clip_rewards:
                info["raw_reward"] = float(rewards_raw[index])
            if truncated[index]:
                info["truncated"] = True
            infos.append(info)

        if self.clip_rewards:
            rewards = np.sign(rewards_raw).astype(np.float32)
        else:
            rewards = rewards_raw.astype(np.float32)
        self._scores += rewards_raw
        finished: typing.List[typing.Tuple[int, float]] = []
        done_idx = np.nonzero(dones)[0]
        for index in done_idx:
            if not infos[index].get("life_lost"):
                finished.append((int(index), float(self._scores[index])))
                self._scores[index] = 0.0

        # New frame stacks: live slots shift-and-append; finished slots
        # rebuild from their reset observation.
        new_obs = np.empty((batch, self.stack) + self._pre.out_shape,
                           dtype=np.float32)
        live_idx = np.nonzero(~dones)[0]
        if live_idx.size:
            new_obs[live_idx, :-1] = old_obs[live_idx, 1:]
            new_obs[live_idx, -1] = self._pre(self._raw[live_idx])
        if self.episodic_life:
            pseudo_idx = np.nonzero(dones & ~done_raw)[0]
            full_idx = np.nonzero(done_raw)[0]
        else:
            pseudo_idx = np.zeros(0, dtype=np.intp)
            full_idx = done_idx
        if pseudo_idx.size:
            self._pseudo_reset(pseudo_idx, new_obs)
        if full_idx.size:
            engine.reset_slots(full_idx)
            new_obs[full_idx] = self._pre(engine.frames[full_idx])[:, None]
        if done_idx.size:
            self._lives[done_idx] = engine.lives[done_idx]
            self._elapsed[done_idx] = 0

        self._observations = new_obs
        return VectorStep(observations=new_obs, rewards=rewards,
                          dones=dones, infos=infos,
                          finished_scores=finished)

    def close(self) -> None:
        close = getattr(self.engine, "close", None)
        if close is not None:
            close()
