"""Observation and action spaces."""

from __future__ import annotations

import typing

import numpy as np


class Discrete:
    """A finite set of actions ``{0, ..., n-1}``."""

    def __init__(self, n: int):
        if n < 1:
            raise ValueError(f"Discrete space needs n >= 1, got {n}")
        self.n = n

    def contains(self, value) -> bool:
        """True if ``value`` is a valid action index."""
        try:
            index = int(value)
        except (TypeError, ValueError):
            return False
        return 0 <= index < self.n

    def sample(self, rng: np.random.Generator) -> int:
        """A uniformly random action."""
        return int(rng.integers(self.n))

    def __eq__(self, other) -> bool:
        return isinstance(other, Discrete) and other.n == self.n

    def __repr__(self) -> str:
        return f"Discrete({self.n})"


class Box:
    """A bounded array-valued space with a fixed shape and dtype."""

    def __init__(self, low: float, high: float,
                 shape: typing.Sequence[int], dtype=np.float32):
        self.low = low
        self.high = high
        self.shape = tuple(shape)
        self.dtype = np.dtype(dtype)

    def contains(self, value) -> bool:
        """True if ``value`` has the right shape and lies in the bounds."""
        array = np.asarray(value)
        if array.shape != self.shape:
            return False
        return bool((array >= self.low).all() and (array <= self.high).all())

    def sample(self, rng: np.random.Generator) -> np.ndarray:
        """A uniform random point of the box."""
        return rng.uniform(self.low, self.high,
                           size=self.shape).astype(self.dtype)

    def __eq__(self, other) -> bool:
        return (isinstance(other, Box) and other.shape == self.shape
                and other.low == self.low and other.high == self.high
                and other.dtype == self.dtype)

    def __repr__(self) -> str:
        return f"Box({self.low}, {self.high}, {self.shape}, {self.dtype})"
