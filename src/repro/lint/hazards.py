"""Hot-path hazard scanning, shared by the ``hot-path`` rule and the
whole-program index.

A *hazard* is anything the hot-path discipline forbids outside the
``REPRO_OBS`` gate: telemetry calls, wall-clock reads, string building,
run-log shard writes, latency-recorder calls, and per-iteration
allocation.  :func:`scan_hazards` returns the **ungated** hazards of one
function — the ``hot-path`` rule turns them into findings when the
function is hot, and the program index stores them per function so
``hot-path-transitive`` can flag a hot caller *reaching* them through
the call graph without re-parsing the callee's file.

Loop semantics are precise about what actually re-executes per
iteration:

* ``for``: the target and body — **not** the iterable (evaluated once)
  and **not** the ``else`` clause (runs once, on normal exit);
* ``while``: the test **and** body — the test re-evaluates every
  iteration; the ``else`` clause again runs once;
* comprehensions: the element and condition expressions are
  per-iteration of the comprehension itself; the first ``for``'s
  iterable is evaluated once;
* anything inside an *outer* loop is per-iteration regardless of which
  clause of an inner statement it sits in.
"""

from __future__ import annotations

import ast
import dataclasses
import typing

from repro.lint import astutil

_ALLOC_NP = {"zeros", "ones", "empty", "full", "array", "arange",
             "concatenate", "stack", "vstack", "hstack", "tile",
             "repeat", "copy", "zeros_like", "ones_like", "empty_like",
             "full_like"}
_ALLOC_BUILTINS = {"list", "dict", "set", "tuple", "bytearray"}
_ALLOC_METHODS = {"copy", "astype", "tolist", "flatten", "ravel"}
_STRING_BUILDERS = {"print"}
_WALLCLOCK = {"time", "time_ns", "monotonic", "monotonic_ns",
              "perf_counter", "perf_counter_ns"}
_COMPREHENSIONS = (ast.ListComp, ast.DictComp, ast.SetComp,
                   ast.GeneratorExp)

RUNLOG_DEFAULT_METHODS = ("flush", "heartbeat", "maybe_heartbeat")
# "measure" is deliberately absent: the receiver-mentions-"lat"
# heuristic would catch `platform.measure(...)` ("platform" contains
# "lat"), which is a throughput run, not a latency recorder.
LATENCY_DEFAULT_METHODS = ("add_ns", "finish")


@dataclasses.dataclass(frozen=True)
class Hazard:
    """One ungated hot-path violation candidate inside a function.

    ``kind`` is ``obs`` / ``wallclock`` / ``string`` / ``runlog`` /
    ``latency`` / ``alloc``; ``subkind`` refines it (``fstring``,
    ``np``, ``builtin``, ``method``, ``comprehension``, ...).
    ``in_loop`` means the hazard re-executes per iteration of a loop
    *within the scanned function* — allocation hazards only matter in a
    loop (their own, or transitively a caller's loop around the call
    site).
    """

    kind: str
    subkind: str
    name: str
    lineno: int
    col: int
    end_lineno: typing.Optional[int]
    in_loop: bool

    def describe(self) -> str:
        """Short human-readable form for transitive-chain messages."""
        if self.kind == "obs":
            return f"ungated obs call `{self.name}(...)`"
        if self.kind == "wallclock":
            return f"ungated wall-clock read `{self.name}()`"
        if self.kind == "runlog":
            return f"ungated runlog shard write `{self.name}(...)`"
        if self.kind == "latency":
            return f"ungated latency-recorder call `{self.name}(...)`"
        if self.kind == "string":
            if self.subkind == "fstring":
                return "ungated f-string construction"
            return f"ungated `{self.name}` call"
        if self.subkind == "comprehension":
            return "per-iteration comprehension allocation"
        return f"per-iteration allocation `{self.name}`"

    def to_dict(self) -> typing.Dict[str, object]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: typing.Mapping[str, object]) -> "Hazard":
        return cls(kind=str(data["kind"]), subkind=str(data["subkind"]),
                   name=str(data["name"]), lineno=int(data["lineno"]),
                   col=int(data["col"]),
                   end_lineno=(int(data["end_lineno"])
                               if data.get("end_lineno") is not None
                               else None),
                   in_loop=bool(data["in_loop"]))


def loop_nodes(func: astutil.FunctionNode) -> typing.Set[int]:
    """ids of nodes in ``func`` that re-execute per loop iteration.

    See the module docstring for the clause-level semantics; nested
    function definitions are skipped (they gate themselves).
    """
    inside: typing.Set[int] = set()

    def visit(node: ast.AST, in_loop: bool) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef,
                                  ast.AsyncFunctionDef)):
                continue
            if in_loop:
                inside.add(id(child))
                visit(child, True)
            elif isinstance(child, (ast.For, ast.AsyncFor)):
                _split(child, [child.target] + child.body,
                       [child.iter] + child.orelse)
            elif isinstance(child, ast.While):
                _split(child, [child.test] + child.body, child.orelse)
            elif isinstance(child, _COMPREHENSIONS):
                per_iter: typing.List[ast.AST] = []
                once: typing.List[ast.AST] = []
                for index, gen in enumerate(child.generators):
                    per_iter.append(gen.target)
                    per_iter.extend(gen.ifs)
                    (once if index == 0 else per_iter).append(gen.iter)
                if isinstance(child, ast.DictComp):
                    per_iter.extend([child.key, child.value])
                else:
                    per_iter.append(child.elt)
                _split(child, per_iter, once)
            else:
                visit(child, False)

    def _split(parent: ast.AST, per_iter: typing.Sequence[ast.AST],
               once: typing.Sequence[ast.AST]) -> None:
        for node in per_iter:
            inside.add(id(node))
            visit(node, True)
        for node in once:
            visit(node, False)

    visit(func, False)
    return inside


def scan_hazards(ctx: astutil.FileContext, func: astutil.FunctionNode,
                 shard_methods: typing.Optional[typing.Set[str]] = None,
                 latency_methods: typing.Optional[typing.Set[str]] = None,
                 ) -> typing.List[Hazard]:
    """All **ungated** hazards in ``func`` (gated ones are fine by
    definition and never recorded)."""
    shard_methods = shard_methods if shard_methods is not None \
        else set(RUNLOG_DEFAULT_METHODS)
    latency_methods = latency_methods if latency_methods is not None \
        else set(LATENCY_DEFAULT_METHODS)
    loops = loop_nodes(func)
    hazards: typing.List[Hazard] = []
    for node in ast.walk(func):
        if isinstance(node, ast.Call):
            hazard = _classify_call(ctx, func, node, loops,
                                    shard_methods, latency_methods)
            if hazard is not None:
                hazards.append(hazard)
        elif isinstance(node, ast.JoinedStr):
            if not ctx.is_gated(func, node) and not ctx.in_raise(node):
                hazards.append(_hazard("string", "fstring", "f-string",
                                       node, loops))
        elif isinstance(node, _COMPREHENSIONS):
            if not ctx.is_gated(func, node):
                hazards.append(_hazard("alloc", "comprehension",
                                       "comprehension", node, loops))
    hazards.sort(key=lambda h: (h.lineno, h.col, h.kind, h.name))
    return hazards


def _hazard(kind: str, subkind: str, name: str, node: ast.AST,
            loops: typing.Set[int]) -> Hazard:
    return Hazard(kind=kind, subkind=subkind, name=name,
                  lineno=getattr(node, "lineno", 1),
                  col=getattr(node, "col_offset", 0),
                  end_lineno=getattr(node, "end_lineno", None),
                  in_loop=id(node) in loops)


def _classify_call(ctx: astutil.FileContext, func: astutil.FunctionNode,
                   node: ast.Call, loops: typing.Set[int],
                   shard_methods: typing.Set[str],
                   latency_methods: typing.Set[str],
                   ) -> typing.Optional[Hazard]:
    if ctx.is_gated(func, node):
        return None
    lat_name = latency_call_name(ctx, node, latency_methods)
    if lat_name is not None:
        return _hazard("latency", "call", lat_name, node, loops)
    shard_name = runlog_call_name(ctx, node, shard_methods)
    if shard_name is not None:
        return _hazard("runlog", "call", shard_name, node, loops)
    obs_name = ctx.is_obs_call(node)
    if obs_name is not None:
        terminal = obs_name.split(".")[-1]
        if terminal == "enabled":
            return None
        if terminal == "span" and \
                isinstance(ctx.parent(node), ast.withitem):
            return None                      # self-gating `with` context
        return _hazard("obs", "call", obs_name, node, loops)
    name = astutil.dotted(node.func)
    parts = name.split(".") if name else []
    if parts and parts[0] in ctx.time_aliases and len(parts) == 2 \
            and parts[1] in _WALLCLOCK:
        return _hazard("wallclock", "call", name, node, loops)
    if not ctx.in_raise(node):
        if name in _STRING_BUILDERS or \
                (parts and parts[0] in ("logging", "log", "logger")):
            return _hazard("string", "call", name, node, loops)
        if isinstance(node.func, ast.Attribute) \
                and node.func.attr == "format" \
                and isinstance(node.func.value,
                               (ast.Constant, ast.JoinedStr)):
            return _hazard("string", "format", "str.format", node, loops)
    if len(parts) == 2 and parts[0] in ctx.numpy_aliases \
            and parts[1] in _ALLOC_NP:
        return _hazard("alloc", "np", name, node, loops)
    if name in _ALLOC_BUILTINS:
        return _hazard("alloc", "builtin", name, node, loops)
    if isinstance(node.func, ast.Attribute) \
            and node.func.attr in _ALLOC_METHODS \
            and not (parts and parts[0] in ctx.numpy_aliases):
        return _hazard("alloc", "method", "." + node.func.attr,
                       node, loops)
    return None


def latency_call_name(ctx: astutil.FileContext, node: ast.Call,
                      methods: typing.Set[str]) -> typing.Optional[str]:
    """The dotted name of a latency-recorder call, or ``None``.

    Module-rooted :mod:`repro.obs.lat` calls are always in scope;
    method calls match only when the method is a configured latency
    method *and* the dotted receiver mentions ``lat`` — so an
    unrelated ``writer.finish()`` never trips the rule.
    """
    name = ctx.is_lat_call(node)
    if name is not None:
        return name
    if not isinstance(node.func, ast.Attribute) \
            or node.func.attr not in methods:
        return None
    name = astutil.dotted(node.func)
    if name is None:
        return None
    receiver = name.rsplit(".", 1)[0].lower()
    if "lat" in receiver:
        return name
    return None


def runlog_call_name(ctx: astutil.FileContext, node: ast.Call,
                     methods: typing.Set[str]) -> typing.Optional[str]:
    """The dotted name of a run-log shard write, or ``None``.

    Module-rooted runlog calls are always in scope; method calls
    match only when the method is a configured shard method *and*
    the dotted receiver mentions ``shard`` or ``runlog`` — so a
    plain ``stream.flush()`` never trips the rule.
    """
    name = ctx.is_runlog_call(node)
    if name is not None:
        return name
    if not isinstance(node.func, ast.Attribute) \
            or node.func.attr not in methods:
        return None
    name = astutil.dotted(node.func)
    if name is None:
        return None
    receiver = name.lower()
    if "shard" in receiver or "runlog" in receiver:
        return name
    return None
