"""Lint configuration: the ``[tool.repro-lint]`` table in pyproject.toml.

The schema is flat and string-valued on purpose so the fallback parser
(for Python 3.9/3.10, which lack :mod:`tomllib`; the sandbox cannot
install ``tomli``) only needs tables, strings, booleans, and string
lists::

    [tool.repro-lint]
    paths = ["src"]
    select = ["determinism", "hot-path", ...]
    exclude = ["lint_corpus"]

    [tool.repro-lint.fp32-order]
    modules = ["repro/fpga/pe.py", "repro/nn"]

Module/path patterns match *path segments*: ``repro/fpga`` matches any
file under a ``repro/fpga`` directory regardless of the leading ``src/``
or an absolute prefix, and ``repro/fpga/pe.py`` matches exactly that
file.  See :func:`path_matches`.
"""

from __future__ import annotations

import dataclasses
import os
import re
import typing

try:
    import tomllib as _toml
except ImportError:                                   # Python < 3.11
    _toml = None

#: Rule execution order is alphabetical; this is also the default select.
DEFAULT_SELECT = ("attribution", "determinism", "fp32-order", "hot-path",
                  "hot-path-transitive", "layering", "seed-flow",
                  "seqlock")

TABLE = "repro-lint"

#: Default on-disk cache for incremental (``--changed``) runs.
DEFAULT_CACHE_PATH = ".repro-lint-cache.json"


@dataclasses.dataclass
class LintConfig:
    """Parsed lint configuration."""

    paths: typing.List[str] = dataclasses.field(
        default_factory=lambda: ["src"])
    select: typing.List[str] = dataclasses.field(
        default_factory=lambda: list(DEFAULT_SELECT))
    exclude: typing.List[str] = dataclasses.field(default_factory=list)
    rule_options: typing.Dict[str, typing.Dict[str, object]] = \
        dataclasses.field(default_factory=dict)
    cache_path: str = DEFAULT_CACHE_PATH
    source: typing.Optional[str] = None   # pyproject path, for reports

    def options(self, rule: str) -> typing.Dict[str, object]:
        return self.rule_options.get(rule, {})


def path_matches(path: str, pattern: str) -> bool:
    """Does ``pattern`` name this file or one of its parent directories?

    Both sides are compared as ``/``-joined path segments, so the match
    is insensitive to ``src/`` prefixes, absolute paths, and trailing
    slashes: ``repro/fpga`` matches ``src/repro/fpga/pe.py`` and
    ``repro/fpga/pe.py`` matches only that file.
    """
    norm = "/" + path.replace(os.sep, "/").strip("/") + "/"
    pat = "/" + pattern.replace(os.sep, "/").strip("/") + "/"
    return pat in norm


def path_matches_any(path: str,
                     patterns: typing.Iterable[str]) -> bool:
    return any(path_matches(path, pattern) for pattern in patterns)


def find_pyproject(start: str = ".") -> typing.Optional[str]:
    """Walk up from ``start`` to the nearest pyproject.toml."""
    here = os.path.abspath(start)
    if os.path.isfile(here):
        here = os.path.dirname(here)
    while True:
        candidate = os.path.join(here, "pyproject.toml")
        if os.path.isfile(candidate):
            return candidate
        parent = os.path.dirname(here)
        if parent == here:
            return None
        here = parent


def load_config(pyproject: typing.Optional[str] = None,
                start: str = ".") -> LintConfig:
    """Load ``[tool.repro-lint]``; defaults when absent."""
    path = pyproject or find_pyproject(start)
    if path is None:
        return LintConfig()
    with open(path, "rb") as handle:
        raw = handle.read()
    if _toml is not None:
        document = _toml.loads(raw.decode("utf-8"))
    else:
        document = _parse_mini_toml(raw.decode("utf-8"))
    table = document.get("tool", {}).get(TABLE, {})
    return config_from_table(table, source=path)


def config_from_table(table: typing.Dict[str, object],
                      source: typing.Optional[str] = None) -> LintConfig:
    config = LintConfig(source=source)
    if "paths" in table:
        config.paths = [str(p) for p in table["paths"]]
    if "select" in table:
        config.select = [str(s) for s in table["select"]]
    if "exclude" in table:
        config.exclude = [str(e) for e in table["exclude"]]
    if "cache-path" in table:
        config.cache_path = str(table["cache-path"])
    for key, value in table.items():
        if isinstance(value, dict):
            config.rule_options[key] = value
    return config


# -- minimal TOML subset parser (pre-3.11 fallback) ------------------------

_SECTION = re.compile(r"^\[([^\]]+)\]\s*$")
_KEY = re.compile(r"^([A-Za-z0-9_-]+)\s*=\s*(.*)$")


def _parse_mini_toml(text: str) -> typing.Dict[str, object]:
    """Parse the subset of TOML the lint schema uses.

    Tables, string values, booleans, and (possibly multi-line) arrays of
    strings.  Anything fancier belongs in real TOML on Python >= 3.11.
    """
    root: typing.Dict[str, object] = {}
    current = root
    lines = text.splitlines()
    index = 0
    while index < len(lines):
        line = _strip_comment(lines[index])
        index += 1
        if not line:
            continue
        section = _SECTION.match(line)
        if section:
            current = root
            for part in _split_table_key(section.group(1)):
                current = current.setdefault(part, {})  # type: ignore
            continue
        key = _KEY.match(line)
        if not key:
            continue
        name, value = key.group(1), key.group(2).strip()
        if value.startswith("[") and "]" not in value:
            # Multi-line array: accumulate until the closing bracket.
            while index < len(lines) and "]" not in value:
                value += " " + _strip_comment(lines[index])
                index += 1
        current[name] = _parse_value(value)
    return root


def _split_table_key(key: str) -> typing.List[str]:
    """``tool."repro-lint".fp32-order`` -> its dotted parts, unquoted."""
    parts = []
    for part in re.findall(r'"[^"]*"|[^.]+', key):
        parts.append(part.strip().strip('"'))
    return [p for p in parts if p]


def _strip_comment(line: str) -> str:
    out = []
    in_string = False
    for char in line:
        if char == '"':
            in_string = not in_string
        if char == "#" and not in_string:
            break
        out.append(char)
    return "".join(out).strip()


def _parse_value(value: str) -> object:
    value = value.strip()
    if value.startswith("["):
        inner = value.strip()[1:]
        inner = inner.rsplit("]", 1)[0]
        return [_parse_value(item) for item
                in _split_array_items(inner)]
    if value.startswith('"') and value.endswith('"'):
        return value[1:-1]
    if value in ("true", "false"):
        return value == "true"
    try:
        return int(value)
    except ValueError:
        return value


def _split_array_items(inner: str) -> typing.List[str]:
    items = []
    depth = 0
    in_string = False
    current = ""
    for char in inner:
        if char == '"':
            in_string = not in_string
        if char == "," and depth == 0 and not in_string:
            if current.strip():
                items.append(current.strip())
            current = ""
            continue
        if char == "[" and not in_string:
            depth += 1
        if char == "]" and not in_string:
            depth -= 1
        current += char
    if current.strip():
        items.append(current.strip())
    return items
