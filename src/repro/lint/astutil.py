"""Shared AST analysis for the lint rules.

One :class:`FileContext` is built per linted file and handed to every
rule.  It provides:

* parent links and enclosing-function lookup,
* the module's dotted name derived from its path,
* import tracking for the observability runtime (``repro.obs``) and for
  ``numpy``/``random``/``time``/``datetime`` aliases,
* obs-gate analysis: which nodes execute only when ``obs.enabled()`` (or
  a local alias of it) is true — covering ``if _obs.enabled():`` blocks,
  ``x if _obs.enabled() else y`` ternaries, ``observing =
  _obs.enabled()`` aliases, the early-return guard
  ``if not _obs.enabled(): ...; return``, and latency-recorder
  sentinels (``lat = _lat.RoutineLatency(...) if _obs.enabled() else
  None`` followed by ``if lat is not None:`` / ``timed = lat is not
  None``).  Optional recorder parameters (``lat=None``) are sentinels
  too, and ``self.X`` gates when every assignment to ``X`` in the
  enclosing class is an ``enabled()`` call,
* the set of hot-path functions (``@hot_path`` decorator or configured
  dotted names).
"""

from __future__ import annotations

import ast
import typing

from repro.lint.findings import Finding

FunctionNode = typing.Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: Decorator terminal name that marks a hot-path function.
HOT_PATH_DECORATOR = "hot_path"


def dotted(node: ast.AST) -> typing.Optional[str]:
    """``"a.b.c"`` for a Name/Attribute chain, else ``None``."""
    parts: typing.List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def terminal_name(node: ast.AST) -> typing.Optional[str]:
    """The last identifier of a Name/Attribute chain (``c`` of ``a.b.c``)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def root_name(node: ast.AST) -> typing.Optional[str]:
    """The first identifier of a Name/Attribute chain (``a`` of ``a.b.c``)."""
    while isinstance(node, ast.Attribute):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def module_name_for(relpath: str) -> str:
    """Dotted module name for a file path.

    Uses everything from the last ``repro`` path segment on, so
    ``src/repro/core/trainer.py`` -> ``repro.core.trainer``; paths
    without a ``repro`` segment dot their whole stem.
    """
    parts = relpath.replace("\\", "/").strip("/").split("/")
    if parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if parts[-1] == "__init__":
        parts = parts[:-1]
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro":
            parts = parts[index:]
            break
    return ".".join(parts)


class FileContext:
    """Everything the rules need to know about one parsed file."""

    def __init__(self, tree: ast.Module, relpath: str,
                 hot_functions: typing.Sequence[str] = ()):
        self.tree = tree
        self.relpath = relpath.replace("\\", "/")
        self.module = module_name_for(relpath)
        self._parents: typing.Dict[int, ast.AST] = {}
        self._qualnames: typing.Dict[int, str] = {}
        self._functions: typing.List[FunctionNode] = []
        self.obs_aliases: typing.Set[str] = set()
        self.obs_direct: typing.Set[str] = set()   # from repro.obs import X
        self.runlog_aliases: typing.Set[str] = set()
        self.runlog_direct: typing.Set[str] = set()
        self.lat_aliases: typing.Set[str] = set()
        self.lat_direct: typing.Set[str] = set()   # from repro.obs.lat import X
        self.numpy_aliases: typing.Set[str] = set()
        self.random_aliases: typing.Set[str] = set()
        self.time_aliases: typing.Set[str] = set()
        self.datetime_aliases: typing.Set[str] = set()
        self._index(hot_functions)

    # -- construction ------------------------------------------------------

    def _index(self, hot_functions: typing.Sequence[str]) -> None:
        self._link_parents(self.tree, "")
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                self._record_import(node)
            elif isinstance(node, ast.ImportFrom):
                self._record_import_from(node)
        self._gate_cache: typing.Dict[int, typing.Set[int]] = {}
        self._class_gate_cache: typing.Dict[int, typing.Set[str]] = {}
        hot = set(hot_functions)
        self.hot_function_nodes: typing.List[FunctionNode] = []
        for func in self._functions:
            if self._is_hot(func, hot):
                self.hot_function_nodes.append(func)

    def _link_parents(self, node: ast.AST, qualname: str) -> None:
        for child in ast.iter_child_nodes(node):
            self._parents[id(child)] = node
            child_qual = qualname
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.ClassDef)):
                child_qual = f"{qualname}.{child.name}" if qualname \
                    else child.name
                if not isinstance(child, ast.ClassDef):
                    self._functions.append(child)
                self._qualnames[id(child)] = child_qual
            self._link_parents(child, child_qual)

    def _record_import(self, node: ast.Import) -> None:
        for alias in node.names:
            bound = alias.asname or alias.name.split(".")[0]
            if alias.name == "numpy":
                self.numpy_aliases.add(bound)
            elif alias.name == "random":
                self.random_aliases.add(bound)
            elif alias.name == "time":
                self.time_aliases.add(bound)
            elif alias.name == "datetime":
                self.datetime_aliases.add(bound)
            elif alias.name == "repro.obs.runlog":
                self.runlog_aliases.add(alias.asname or alias.name)
            elif alias.name == "repro.obs.lat":
                self.lat_aliases.add(alias.asname or alias.name)
            elif alias.name in ("repro.obs", "repro.obs.runtime"):
                self.obs_aliases.add(alias.asname or alias.name)

    def _record_import_from(self, node: ast.ImportFrom) -> None:
        module = node.module or ""
        for alias in node.names:
            bound = alias.asname or alias.name
            if module == "repro" and alias.name == "obs":
                self.obs_aliases.add(bound)
            elif module == "repro.obs" and alias.name == "runtime":
                self.obs_aliases.add(bound)
            elif module == "repro.obs" and alias.name == "runlog":
                self.runlog_aliases.add(bound)
            elif module == "repro.obs" and alias.name == "lat":
                self.lat_aliases.add(bound)
            elif module == "repro.obs.runlog":
                self.runlog_direct.add(bound)
            elif module == "repro.obs.lat":
                self.lat_direct.add(bound)
            elif module in ("repro.obs", "repro.obs.runtime"):
                self.obs_direct.add(bound)
            elif module == "datetime" and alias.name == "datetime":
                self.datetime_aliases.add(bound)

    def _is_hot(self, func: FunctionNode,
                configured: typing.Set[str]) -> bool:
        for decorator in func.decorator_list:
            target = decorator.func if isinstance(decorator, ast.Call) \
                else decorator
            if terminal_name(target) == HOT_PATH_DECORATOR:
                return True
        return self.full_name(func) in configured

    # -- lookups -----------------------------------------------------------

    def parent(self, node: ast.AST) -> typing.Optional[ast.AST]:
        return self._parents.get(id(node))

    def qualname(self, func: FunctionNode) -> str:
        return self._qualnames.get(id(func), func.name)

    def full_name(self, func: FunctionNode) -> str:
        """``repro.core.trainer.A3CTrainer._agent_loop``-style name."""
        return f"{self.module}.{self.qualname(func)}"

    def functions(self) -> typing.List[FunctionNode]:
        return list(self._functions)

    def enclosing_function(self, node: ast.AST
                           ) -> typing.Optional[FunctionNode]:
        current = self.parent(node)
        while current is not None:
            if isinstance(current, (ast.FunctionDef,
                                    ast.AsyncFunctionDef)):
                return current
            current = self.parent(current)
        return None

    def ancestors(self, node: ast.AST) -> typing.Iterator[ast.AST]:
        current = self.parent(node)
        while current is not None:
            yield current
            current = self.parent(current)

    def in_raise(self, node: ast.AST) -> bool:
        """Is the node part of a ``raise`` statement (cold error path)?"""
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, ast.Raise):
                return True
            if isinstance(ancestor, ast.stmt):
                return False
        return False

    def finding(self, rule, node: ast.AST, message: str) -> Finding:
        return Finding(rule=rule.name, path=self.relpath,
                       line=getattr(node, "lineno", 1),
                       col=getattr(node, "col_offset", 0),
                       message=message,
                       end_line=getattr(node, "end_lineno", None))

    # -- observability-gate analysis --------------------------------------

    def is_obs_call(self, node: ast.Call) -> typing.Optional[str]:
        """If this call is rooted at the obs runtime, its dotted form."""
        name = dotted(node.func)
        if name is None:
            return None
        root = name.split(".")[0]
        if root in self.obs_aliases:
            return name
        if name in self.obs_direct:
            return name
        return None

    def is_runlog_call(self, node: ast.Call) -> typing.Optional[str]:
        """If this call is rooted at :mod:`repro.obs.runlog`, its dotted
        form (module alias chains and names imported from the module)."""
        name = dotted(node.func)
        if name is None:
            return None
        for alias in self.runlog_aliases:
            if name == alias or name.startswith(alias + "."):
                return name
        root = name.split(".")[0]
        if root in self.runlog_direct:
            return name
        return None

    def is_lat_call(self, node: ast.Call) -> typing.Optional[str]:
        """If this call is rooted at :mod:`repro.obs.lat`, its dotted
        form (module alias chains and names imported from the module)."""
        name = dotted(node.func)
        if name is None:
            return None
        for alias in self.lat_aliases:
            if name == alias or name.startswith(alias + "."):
                return name
        root = name.split(".")[0]
        if root in self.lat_direct:
            return name
        return None

    def _is_gate_call(self, node: ast.AST) -> bool:
        if not isinstance(node, ast.Call):
            return False
        if terminal_name(node.func) != "enabled":
            return False
        root = root_name(node.func)
        return root in self.obs_aliases or "enabled" in self.obs_direct \
            or root == "enabled"

    def _gate_test_kind(self, test: ast.AST, aliases: typing.Set[str],
                        recorders: typing.FrozenSet[str] = frozenset()
                        ) -> typing.Optional[str]:
        """``"pos"`` if the test is true only while obs is enabled.

        ``recorders`` are latency-recorder sentinels (``lat`` in
        ``lat = ... if _obs.enabled() else None``): their truthiness
        and ``is not None`` / ``is None`` comparisons gate like
        ``enabled()`` itself.
        """
        if self._is_gate_call(test):
            return "pos"
        if isinstance(test, ast.Name) and \
                (test.id in aliases or test.id in recorders):
            return "pos"
        if isinstance(test, ast.Attribute):
            name = dotted(test)
            if name is not None and name in aliases:
                return "pos"
        if isinstance(test, ast.Compare) and \
                isinstance(test.left, ast.Name) and \
                test.left.id in recorders and len(test.ops) == 1 and \
                isinstance(test.comparators[0], ast.Constant) and \
                test.comparators[0].value is None:
            if isinstance(test.ops[0], ast.IsNot):
                return "pos"
            if isinstance(test.ops[0], ast.Is):
                return "neg"
            return None
        if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
            inner = self._gate_test_kind(test.operand, aliases, recorders)
            if inner == "pos":
                return "neg"
            if inner == "neg":
                return "pos"
            return None
        if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.And):
            for value in test.values:
                if self._gate_test_kind(value, aliases,
                                        recorders) == "pos":
                    return "pos"
        return None

    def _gate_aliases(self, func: FunctionNode) -> typing.Set[str]:
        aliases: typing.Set[str] = set()
        for node in ast.walk(func):
            if isinstance(node, ast.Assign) and \
                    isinstance(node.value, ast.Call) and \
                    self._is_gate_call(node.value):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        aliases.add(target.id)
        aliases.update(self._class_gate_attrs(func))
        return aliases

    def _class_gate_attrs(self, func: FunctionNode) -> typing.Set[str]:
        """``self.X`` names that gate like ``enabled()`` in ``func``.

        An attribute qualifies when *every* ``self.X = ...`` assignment
        in the enclosing class — and its same-file base classes, where
        the flag usually lives (``self._observing = _obs.enabled()``
        in a base ``__init__``, tested in subclass methods) — is an
        ``enabled()`` call.  One non-gate assignment disqualifies the
        attribute: its truthiness then no longer implies obs is on."""
        node: typing.Optional[ast.AST] = func
        while node is not None and not isinstance(node, ast.ClassDef):
            node = self.parent(node)
        if node is None:
            return set()
        cached = self._class_gate_cache.get(id(node))
        if cached is not None:
            return cached
        by_name = {cd.name: cd for cd in ast.walk(self.tree)
                   if isinstance(cd, ast.ClassDef)}
        gate_assigned: typing.Set[str] = set()
        other_assigned: typing.Set[str] = set()
        seen: typing.Set[str] = set()
        stack = [node]
        while stack:
            cls = stack.pop()
            if cls.name in seen:
                continue
            seen.add(cls.name)
            self._collect_self_flags(cls, gate_assigned, other_assigned)
            for base in cls.bases:
                if isinstance(base, ast.Name) and base.id in by_name:
                    stack.append(by_name[base.id])
        attrs = {"self." + name
                 for name in gate_assigned - other_assigned}
        self._class_gate_cache[id(node)] = attrs
        return attrs

    def _collect_self_flags(self, cls: ast.ClassDef,
                            gate_assigned: typing.Set[str],
                            other_assigned: typing.Set[str]) -> None:
        for sub in ast.walk(cls):
            if not isinstance(sub, (ast.Assign, ast.AugAssign,
                                    ast.AnnAssign)):
                continue
            targets = sub.targets if isinstance(sub, ast.Assign) \
                else [sub.target]
            is_gate = isinstance(sub, ast.Assign) and \
                isinstance(sub.value, ast.Call) and \
                self._is_gate_call(sub.value)
            for target in targets:
                if isinstance(target, ast.Attribute) and \
                        isinstance(target.value, ast.Name) and \
                        target.value.id == "self":
                    (gate_assigned if is_gate
                     else other_assigned).add(target.attr)

    def _recorder_aliases(self, func: FunctionNode,
                          aliases: typing.Set[str]
                          ) -> typing.FrozenSet[str]:
        """Names bound to a latency recorder (or None while disabled).

        Covers ``lat = _lat.RoutineLatency(...)`` and the gated ternary
        ``lat = _lat.RoutineLatency(...) if _obs.enabled() else None``;
        such names become gate sentinels — see :meth:`_gate_test_kind`.

        An optional recorder *parameter* (``lat=None`` /
        ``latency=None`` — the shared-helper contract: callers pass a
        recorder only while observing) is a sentinel too.  Only those
        exact names qualify; a substring match would wrongly gate on
        ``platform=None``.
        """
        recorders: typing.Set[str] = set()
        pos_args = list(func.args.posonlyargs) + list(func.args.args)
        pos_defaults = list(func.args.defaults)
        defaulted = zip(pos_args[len(pos_args) - len(pos_defaults):],
                        pos_defaults)
        kw_defaulted = [(arg, default) for arg, default
                        in zip(func.args.kwonlyargs,
                               func.args.kw_defaults)
                        if default is not None]
        for arg, default in list(defaulted) + kw_defaulted:
            if arg.arg in ("lat", "latency") and \
                    isinstance(default, ast.Constant) and \
                    default.value is None:
                recorders.add(arg.arg)
        for node in ast.walk(func):
            if not isinstance(node, ast.Assign):
                continue
            value = node.value
            if isinstance(value, ast.IfExp) and \
                    self._gate_test_kind(value.test, aliases) == "pos" \
                    and isinstance(value.orelse, ast.Constant) \
                    and value.orelse.value is None:
                value = value.body
            if isinstance(value, ast.Call) and \
                    self.is_lat_call(value) is not None:
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        recorders.add(target.id)
        # `timed = lat is not None` makes `timed` a plain gate alias.
        for node in ast.walk(func):
            if isinstance(node, ast.Assign) and \
                    self._gate_test_kind(node.value, aliases,
                                         frozenset(recorders)) == "pos":
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        aliases.add(target.id)
        return frozenset(recorders)

    def gated_nodes(self, func: FunctionNode) -> typing.Set[int]:
        """ids of nodes in ``func`` that only run while obs is enabled."""
        cached = self._gate_cache.get(id(func))
        if cached is not None:
            return cached
        aliases = self._gate_aliases(func)
        recorders = self._recorder_aliases(func, aliases)
        gated: typing.Set[int] = set()

        def mark(node: ast.AST) -> None:
            for sub in ast.walk(node):
                gated.add(id(sub))

        def walk_block(stmts: typing.Sequence[ast.stmt],
                       gated_from_here: bool) -> None:
            active = gated_from_here
            for stmt in stmts:
                if active:
                    mark(stmt)
                    continue
                if isinstance(stmt, ast.If):
                    kind = self._gate_test_kind(stmt.test, aliases,
                                                recorders)
                    if kind == "pos":
                        for body_stmt in stmt.body:
                            mark(body_stmt)
                        walk_block(stmt.orelse, False)
                        continue
                    if kind == "neg":
                        for else_stmt in stmt.orelse:
                            mark(else_stmt)
                        walk_block(stmt.body, False)
                        # `if not enabled(): ...; return` gates the rest
                        # of this block.
                        if stmt.body and not stmt.orelse and \
                                isinstance(stmt.body[-1],
                                           (ast.Return, ast.Raise,
                                            ast.Continue, ast.Break)):
                            active = True
                        continue
                # Recurse into compound statements' blocks (but not into
                # nested function definitions — they gate themselves).
                if isinstance(stmt, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                    continue
                for field in ("body", "orelse", "finalbody"):
                    inner = getattr(stmt, field, None)
                    if inner:
                        walk_block(inner, False)
                for handler in getattr(stmt, "handlers", ()):
                    walk_block(handler.body, False)

        walk_block(func.body, False)
        # Ternaries: `x if _obs.enabled() else y` gates the body branch.
        for node in ast.walk(func):
            if isinstance(node, ast.IfExp):
                kind = self._gate_test_kind(node.test, aliases,
                                            recorders)
                if kind == "pos":
                    mark(node.body)
                elif kind == "neg":
                    mark(node.orelse)
        self._gate_cache[id(func)] = gated
        return gated

    def is_gated(self, func: FunctionNode, node: ast.AST) -> bool:
        return id(node) in self.gated_nodes(func)
