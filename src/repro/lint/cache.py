"""On-disk result cache for incremental lint runs.

One JSON file (default ``.repro-lint-cache.json``, configurable via
``cache-path`` in ``[tool.repro-lint]``) maps each linted file's
display path to its content digest, serialised
:class:`~repro.lint.program.ModuleSummary`, findings, and suppression
stats.  The cache is keyed by a hash of the effective configuration
(selected rules, rule options, schema versions): change the config and
the whole cache silently invalidates.

A warm ``repro lint --changed`` run then

1. re-extracts summaries only for files whose digest changed (clean
   files load their summary from the cache without re-parsing),
2. rebuilds the (cheap) program index from all summaries,
3. re-runs rules only on dirty files plus their reverse-dependency
   cone — everyone whose interprocedural findings could read a dirty
   file — and replays cached findings verbatim for the rest.

The cache write is atomic (temp file + ``os.replace``) so a crashed
run never leaves a torn cache behind.
"""

from __future__ import annotations

import hashlib
import json
import os
import typing

from repro.lint.findings import Finding
from repro.lint.program import SCHEMA_VERSION, ModuleSummary

CACHE_VERSION = 1
DEFAULT_CACHE_PATH = ".repro-lint-cache.json"


def config_cache_key(config, select: typing.Sequence[str]) -> str:
    """Hash of everything that changes what a lint run computes."""
    blob = json.dumps({
        "cache": CACHE_VERSION,
        "schema": SCHEMA_VERSION,
        "select": sorted(select),
        "exclude": sorted(config.exclude),
        "rules": {name: config.options(name)
                  for name in sorted(select)},
    }, sort_keys=True, default=str)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


class CacheStats:
    """What a ``--changed`` run actually did, for the report."""

    def __init__(self) -> None:
        self.total = 0        # files collected
        self.dirty = 0        # content changed (or new)
        self.cone = 0         # clean, re-run as reverse dependents
        self.analysed = 0     # dirty + cone: rules actually ran
        self.reused = 0       # findings replayed from cache

    def to_dict(self) -> typing.Dict[str, int]:
        return {"total": self.total, "dirty": self.dirty,
                "cone": self.cone, "analysed": self.analysed,
                "reused": self.reused}

    def line(self) -> str:
        return (f"cache: {self.analysed} analysed "
                f"({self.dirty} dirty + {self.cone} dependents), "
                f"{self.reused} reused of {self.total} files")


class LintCache:
    """Digest-keyed store of per-file summaries and findings."""

    def __init__(self, path: str, config_key: str):
        self.path = path
        self.config_key = config_key
        self.files: typing.Dict[str, typing.Dict[str, object]] = {}

    @classmethod
    def load(cls, path: str, config_key: str) -> "LintCache":
        cache = cls(path, config_key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, ValueError):
            return cache
        if not isinstance(data, dict) \
                or data.get("version") != CACHE_VERSION \
                or data.get("config_key") != config_key:
            return cache
        files = data.get("files")
        if isinstance(files, dict):
            cache.files = files
        return cache

    def fresh_entry(self, display_path: str, digest: str
                    ) -> typing.Optional[typing.Dict[str, object]]:
        entry = self.files.get(display_path)
        if entry is not None and entry.get("digest") == digest:
            return entry
        return None

    @staticmethod
    def summary_of(entry: typing.Dict[str, object]
                   ) -> typing.Optional[ModuleSummary]:
        raw = entry.get("summary")
        if raw is None:
            return None
        return ModuleSummary.from_dict(raw)

    @staticmethod
    def findings_of(entry: typing.Dict[str, object]
                    ) -> typing.List[Finding]:
        return [Finding.from_dict(item)
                for item in entry.get("findings", ())]

    def update(self, display_path: str, digest: str,
               summary: typing.Optional[ModuleSummary],
               findings: typing.Sequence[Finding],
               suppressed: int,
               suppressed_by_rule: typing.Mapping[str, int],
               warnings: typing.Sequence[str],
               skipped: bool = False) -> None:
        self.files[display_path] = {
            "digest": digest,
            "summary": summary.to_dict() if summary else None,
            "findings": [f.cache_dict() for f in findings],
            "suppressed": suppressed,
            "suppressed_by_rule": dict(suppressed_by_rule),
            "warnings": list(warnings),
            "skipped": skipped,
        }

    def prune(self, keep: typing.Iterable[str]) -> None:
        """Drop entries for files no longer in the run."""
        keep_set = set(keep)
        for stale in [p for p in self.files if p not in keep_set]:
            del self.files[stale]

    def save(self) -> None:
        payload = {"version": CACHE_VERSION,
                   "config_key": self.config_key,
                   "files": self.files}
        tmp = f"{self.path}.tmp.{os.getpid()}"
        try:
            with open(tmp, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, sort_keys=True)
            os.replace(tmp, self.path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
