"""Text and JSON reporters for a lint run."""

from __future__ import annotations

import json
import typing

from repro.lint.engine import LintRun

JSON_VERSION = 1


def render_text(run: LintRun, verbose: bool = False) -> str:
    """Human-readable report: one line per finding plus a summary."""
    lines: typing.List[str] = []
    for finding in run.findings:
        lines.append(f"{finding.location()}: [{finding.rule}] "
                     f"{finding.message}")
    for result in run.errors:
        lines.append(f"{result.path}: error: {result.error}")
    counts = run.counts_by_rule()
    if counts:
        per_rule = ", ".join(f"{rule}={count}"
                             for rule, count in sorted(counts.items()))
        lines.append("")
        lines.append(f"{len(run.findings)} finding(s) "
                     f"({per_rule}) in {run.files_checked} file(s)")
    else:
        lines.append(f"ok: 0 findings in {run.files_checked} file(s)")
    if run.suppressed:
        lines.append(f"{run.suppressed} finding(s) suppressed by "
                     "pragmas")
    if verbose:
        skipped = [r.path for r in run.files if r.skipped]
        if skipped:
            lines.append("skipped: " + ", ".join(skipped))
    return "\n".join(lines)


def render_json(run: LintRun) -> str:
    """Machine-readable report (stable schema, see JSON_VERSION)."""
    document = {
        "version": JSON_VERSION,
        "files_checked": run.files_checked,
        "suppressed": run.suppressed,
        "counts": run.counts_by_rule(),
        "findings": [finding.as_dict() for finding in run.findings],
        "errors": [{"path": r.path, "error": r.error}
                   for r in run.errors],
    }
    return json.dumps(document, indent=2, sort_keys=True)
