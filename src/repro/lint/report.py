"""Text and JSON reporters for a lint run."""

from __future__ import annotations

import json
import typing

from repro.lint.engine import LintRun
from repro.lint.findings import Finding

#: v2: findings carry ``id`` and (interprocedural) ``chain``; the
#: document gains ``suppressed_by_rule``, per-rule ``timing_ms``,
#: ``warnings``, and ``cache`` stats on incremental runs.
JSON_VERSION = 2


def render_text(run: LintRun, verbose: bool = False) -> str:
    """Human-readable report: one line per finding plus a summary."""
    lines: typing.List[str] = []
    for finding in run.findings:
        lines.append(f"{finding.location()}: [{finding.rule}] "
                     f"{finding.message}")
    for result in run.errors:
        lines.append(f"{result.path}: error: {result.error}")
    for path, message in run.warnings:
        lines.append(f"{path}: warning: {message}")
    counts = run.counts_by_rule()
    if counts:
        per_rule = ", ".join(f"{rule}={count}"
                             for rule, count in sorted(counts.items()))
        lines.append("")
        lines.append(f"{len(run.findings)} finding(s) "
                     f"({per_rule}) in {run.files_checked} file(s)")
    else:
        lines.append(f"ok: 0 findings in {run.files_checked} file(s)")
    if run.suppressed:
        lines.append(f"{run.suppressed} finding(s) suppressed by "
                     "pragmas")
    if run.cache_stats is not None:
        lines.append(run.cache_stats.line())
    if verbose:
        skipped = [r.path for r in run.files if r.skipped]
        if skipped:
            lines.append("skipped: " + ", ".join(skipped))
        if run.timing:
            per_rule = ", ".join(
                f"{name}={seconds * 1000:.1f}ms" for name, seconds
                in sorted(run.timing.items()))
            lines.append(f"timing: {per_rule}")
    return "\n".join(lines)


def render_why(finding: Finding) -> str:
    """The ``--why <id>`` explainer block for one finding."""
    lines = [f"finding {finding.finding_id()}: [{finding.rule}] "
             f"{finding.location()}",
             f"  {finding.message}"]
    if finding.chain:
        lines.append("  chain:")
        for step, hop in enumerate(finding.chain, start=1):
            lines.append(f"    {step}. {hop}")
    else:
        lines.append("  (single-file finding; no call/import chain)")
    return "\n".join(lines)


def render_json(run: LintRun) -> str:
    """Machine-readable report (stable schema, see JSON_VERSION)."""
    document = {
        "version": JSON_VERSION,
        "files_checked": run.files_checked,
        "suppressed": run.suppressed,
        "suppressed_by_rule": run.suppressed_by_rule(),
        "counts": run.counts_by_rule(),
        "findings": [finding.as_dict() for finding in run.findings],
        "errors": [{"path": r.path, "error": r.error}
                   for r in run.errors],
        "warnings": [{"path": path, "message": message}
                     for path, message in run.warnings],
        "timing_ms": {name: round(seconds * 1000, 3)
                      for name, seconds in sorted(run.timing.items())},
        "cache": run.cache_stats.to_dict()
        if run.cache_stats is not None else None,
    }
    return json.dumps(document, indent=2, sort_keys=True)
