"""Walk files, run the selected rules, apply pragma suppressions."""

from __future__ import annotations

import ast
import dataclasses
import os
import typing

from repro.lint import astutil
from repro.lint.config import LintConfig, path_matches_any
from repro.lint.findings import Finding
from repro.lint.pragmas import PragmaIndex
from repro.lint.registry import Rule, all_rules, get_rule


@dataclasses.dataclass
class FileResult:
    """Per-file outcome."""

    path: str
    findings: typing.List[Finding] = dataclasses.field(default_factory=list)
    suppressed: int = 0
    skipped: bool = False
    error: typing.Optional[str] = None


@dataclasses.dataclass
class LintRun:
    """Aggregate outcome of one lint invocation."""

    files: typing.List[FileResult] = dataclasses.field(default_factory=list)

    @property
    def findings(self) -> typing.List[Finding]:
        out: typing.List[Finding] = []
        for result in self.files:
            out.extend(result.findings)
        return sorted(out, key=Finding.sort_key)

    @property
    def errors(self) -> typing.List[FileResult]:
        return [r for r in self.files if r.error]

    @property
    def suppressed(self) -> int:
        return sum(r.suppressed for r in self.files)

    @property
    def files_checked(self) -> int:
        return sum(1 for r in self.files if not r.skipped and not r.error)

    def counts_by_rule(self) -> typing.Dict[str, int]:
        counts: typing.Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return counts


def build_rules(config: LintConfig,
                select: typing.Optional[typing.Sequence[str]] = None
                ) -> typing.List[Rule]:
    """Instantiate the selected rules with their config options."""
    names = list(select) if select else list(config.select)
    registered = all_rules()
    rules = []
    for name in names:
        if name not in registered:
            get_rule(name)                # raises with the known-rule list
        rules.append(registered[name](config.options(name)))
    return rules


def lint_source(source: str, relpath: str, config: LintConfig,
                select: typing.Optional[typing.Sequence[str]] = None,
                ) -> FileResult:
    """Lint one in-memory source blob (the test/corpus entry point)."""
    result = FileResult(path=relpath.replace(os.sep, "/"))
    pragmas = PragmaIndex(source)
    if pragmas.skip_file:
        result.skipped = True
        return result
    try:
        tree = ast.parse(source, filename=relpath)
    except SyntaxError as exc:
        result.error = f"syntax error: {exc.msg} (line {exc.lineno})"
        return result
    hot = _hot_functions(config)
    ctx = astutil.FileContext(tree, relpath, hot_functions=hot)
    for rule in build_rules(config, select):
        for finding in rule.check(ctx):
            if pragmas.suppresses(finding.rule, finding.line,
                                  finding.end_line):
                result.suppressed += 1
            else:
                result.findings.append(finding)
    result.findings.sort(key=Finding.sort_key)
    return result


def lint_file(path: str, config: LintConfig,
              select: typing.Optional[typing.Sequence[str]] = None
              ) -> FileResult:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
    except OSError as exc:
        return FileResult(path=path.replace(os.sep, "/"),
                          error=f"cannot read: {exc.strerror}")
    return lint_source(source, _display_path(path), config, select)


def lint_paths(paths: typing.Sequence[str], config: LintConfig,
               select: typing.Optional[typing.Sequence[str]] = None
               ) -> LintRun:
    """Lint every ``.py`` file under ``paths`` (files or directories)."""
    run = LintRun()
    for path in _collect(paths, config):
        run.files.append(lint_file(path, config, select))
    return run


def _collect(paths: typing.Sequence[str],
             config: LintConfig) -> typing.List[str]:
    # (path, explicit): a file named on the command line is linted even
    # when config.exclude matches it (the CI self-check relies on this);
    # excludes only prune directory walks.
    files: typing.List[typing.Tuple[str, bool]] = []
    for path in paths:
        if os.path.isfile(path):
            files.append((path, True))
            continue
        for root, dirs, names in os.walk(path):
            dirs[:] = sorted(d for d in dirs
                             if d != "__pycache__"
                             and not d.startswith("."))
            for name in sorted(names):
                if name.endswith(".py"):
                    files.append((os.path.join(root, name), False))
    seen: typing.Set[str] = set()
    unique = []
    for path, explicit in files:
        display = _display_path(path)
        if display in seen:
            continue
        seen.add(display)
        if not explicit and config.exclude \
                and path_matches_any(display, config.exclude):
            continue
        unique.append(path)
    return unique


def _display_path(path: str) -> str:
    """Relative-to-cwd posix path when possible (stable in reports)."""
    try:
        rel = os.path.relpath(path)
    except ValueError:                      # different drive on Windows
        rel = path
    if not rel.startswith(".."):
        path = rel
    return path.replace(os.sep, "/")


def _hot_functions(config: LintConfig) -> typing.List[str]:
    options = config.options("hot-path")
    value = options.get("functions", [])
    if isinstance(value, str):
        return [value]
    return [str(item) for item in value]
